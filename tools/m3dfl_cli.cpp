// m3dfl — command-line driver for the library's deployment workflow.
//
// Subcommands:
//   gen       --benchmark aes|tate|netcard|leon3mp|tiny --config Syn-1|TPI|
//             Syn-2|Par [--out design.v]
//             Generate an M3D benchmark netlist and write it as Verilog.
//   train     --benchmark <name> [--out framework.m3dfl] [--compacted]
//             Train Tier-predictor / MIV-pinpointer / Classifier on Syn-1 +
//             two random partitions and save the framework.
//   inject    --benchmark <name> --config <cfg> [--seed N] [--compacted]
//             [--out chip.faillog]
//             Inject a random TDF, simulate the tester, write the failure
//             log (and print the ground truth for reference).
//   diagnose  --benchmark <name> --config <cfg> --faillog chip.faillog
//             [--framework framework.m3dfl] [--inference fp32|int8]
//             Run ATPG-style diagnosis; with a framework, also apply the
//             GNN candidate pruning & reordering policy (--inference int8
//             routes the policy models through the quantized twin).
//   dict      --benchmark <name> [--config <cfg>] [--threads N]
//             [--partition-gates N] [--spill sigs.bin] [--faillog F]
//             Run the full fault-dictionary campaign (the paper-scale
//             workload). --partition-gates shards it over cone-closed
//             hierarchical regions; --spill streams signatures to an
//             out-of-core compressed store instead of the heap. Prints the
//             entry count, fingerprint, signature footprint and peak RSS;
//             with --faillog, also diagnoses the log against the
//             dictionary.
//   quantize  --benchmark <name> [--config <cfg>] [--framework F]
//             [--out F2] [--calib-samples N] [--seed N] [--threads N]
//             [--precision P]
//             Calibrate an int8 twin for a trained framework (training one
//             first when --framework is absent): collect activation scales
//             on a calibration set, re-derive T_p on the quantized score
//             distribution, print the fp32-vs-int8 quality report
//             (AUPRC/recall deltas, score-delta bound) and save the
//             extended framework file.
//   eval      --benchmark <name> --framework F [--config <cfg>]
//             [--samples N] [--seed N] [--inference fp32|int8]
//             Re-measure a saved framework's diagnosis quality on freshly
//             generated samples; with --inference int8 the saved quantized
//             twin is evaluated side by side with the fp32 path.
//   serve     --benchmark <name> --config <cfg> --framework framework.m3dfl
//             --logs a.faillog,b.faillog,... [--threads N] [--batch N]
//             [--wait-us N] [--repeat N] [--quiet] [--admin-port N]
//             [--linger-ms N] [--inference fp32|int8]
//             Batch-diagnose the logs through the concurrent serving stack
//             (src/serve/): micro-batching, executor fan-out, sub-graph
//             cache, and a metrics table at the end. With --admin-port the
//             process exposes the live-introspection plane (/healthz,
//             /readyz, /metrics, /metrics.json, /statusz, /tracez) on
//             loopback while it runs; --linger-ms keeps it alive after the
//             batch drains so scrapers can poll it.
//
// The benchmark/config pair pins the netlist + pattern set (both are
// regenerated deterministically from the spec seeds, standing in for the
// design database a real flow would load).
//
// Every subcommand accepts the observability flags:
//   --trace out.json          Write a Chrome/Perfetto trace-event file
//                             covering the command's pipeline spans.
//   --metrics-json out.json   Dump the process metrics registry (and, for
//                             serve, the service metrics) as JSON. "-"
//                             writes the JSON to stdout; the surrounding
//                             notice lines go through the logger (stderr),
//                             so stdout stays machine-parseable.
// gen/train additionally take --progress (per-epoch training lines plus a
// per-span summary table at exit).
//
// Exit codes: 0 success, 1 runtime failure (unreadable/corrupt files,
// failed diagnosis), 2 usage error (unknown subcommand/flag, missing or
// malformed argument).
//
// Diagnostics go through the obs logger (text sink on stderr by default;
// --log-json switches every subcommand's diagnostics to JSON-lines). The
// text-sink output is byte-identical to the fprintf(stderr) sites it
// replaced, so scripts matching on error text keep working.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "diagnosis/dictionary.h"
#include "eval/framework_io.h"
#include "eval/quantize.h"
#include "netlist/verilog.h"
#include "obs/build_info.h"
#include "obs/exemplar.h"
#include "obs/httpd.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/prof/profiler.h"
#include "obs/trace.h"
#include "serve/admin.h"
#include "serve/service.h"
#include "sim/backend.h"
#include "sim/bitpar/dispatch.h"

namespace m3dfl {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

/// Service metrics JSON captured by cmd_serve after drain(); main() folds
/// it into the --metrics-json payload (the service is long gone by then).
std::string g_service_metrics_json;

/// Campaign simulation engine selected with --sim-backend (main() parses
/// it once for every subcommand; train and inject consume it).
sim::SimBackend g_sim_backend = sim::SimBackend::kEvent;

int usage() {
  std::fputs(
      "usage: m3dfl <gen|train|inject|diagnose|dict|quantize|eval|serve> "
      "[options]\n"
      "  gen      --benchmark B --config C [--out design.v]\n"
      "  train    --benchmark B [--compacted] [--threads N]\n"
      "           [--out framework.m3dfl]\n"
      "  inject   --benchmark B --config C [--seed N] [--compacted]\n"
      "           [--out chip.faillog]\n"
      "  diagnose --benchmark B --config C --faillog F\n"
      "           [--framework framework.m3dfl] [--inference fp32|int8]\n"
      "  dict     --benchmark B [--config C] [--threads N]\n"
      "           [--partition-gates N] [--spill sigs.bin] [--faillog F]\n"
      "  quantize --benchmark B [--config C] [--framework F] [--out F2]\n"
      "           [--calib-samples N] [--seed N] [--threads N]\n"
      "           [--precision P]\n"
      "  eval     --benchmark B --framework F [--config C] [--samples N]\n"
      "           [--seed N] [--inference fp32|int8]\n"
      "  serve    --benchmark B --config C --framework framework.m3dfl\n"
      "           --logs F1,F2,... [--threads N] [--batch N] [--wait-us N]\n"
      "           [--repeat N] [--quiet] [--admin-port N] [--linger-ms N]\n"
      "           [--inference fp32|int8]\n"
      "all subcommands also take [--trace out.json] [--metrics-json out.json|-]\n"
      "[--profile out.folded] [--counters] [--log-json]\n"
      "[--sim-backend event|bitpar] [--simd scalar|sse2|avx2]\n"
      "(M3DFL_SIMD env is the no-flag equivalent of --simd);\n"
      "gen/train also take [--progress]\n"
      "m3dfl --version prints build metadata\n"
      "benchmarks: aes tate netcard leon3mp tiny m3d100k m3d338k\n"
      "configs:    Syn-1 TPI Syn-2 Par\n"
      "exit codes: 0 ok, 1 runtime failure, 2 usage error\n",
      stderr);
  return kExitUsage;
}

std::optional<eval::BenchmarkSpec> spec_by_name(const std::string& name) {
  if (name == "aes") return eval::aes_spec();
  if (name == "tate") return eval::tate_spec();
  if (name == "netcard") return eval::netcard_spec();
  if (name == "leon3mp") return eval::leon3mp_spec();
  if (name == "tiny") return eval::tiny_spec();
  if (name == "m3d100k") return eval::m3d100k_spec();
  if (name == "m3d338k") return eval::m3d338k_spec();
  return std::nullopt;
}

std::optional<eval::Config> config_by_name(const std::string& name) {
  for (eval::Config c : eval::eval_configs()) {
    if (name == eval::config_name(c)) return c;
  }
  return std::nullopt;
}

/// Per-subcommand flag schema: which --flags take a value and which are
/// bare switches. Anything else — an unknown flag, a switch given with no
/// leading "--", a value flag at the end of the line — is a usage error
/// (exit 2), not silently ignored.
struct FlagSpec {
  std::set<std::string> value_flags;
  std::set<std::string> switch_flags;
};

std::optional<std::map<std::string, std::string>> parse_flags(
    int argc, char** argv, int first, const FlagSpec& spec) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      M3DFL_LOG_ERROR("cli", "unexpected argument '%s'", arg.c_str());
      return std::nullopt;
    }
    const std::string key = arg.substr(2);
    if (spec.switch_flags.count(key)) {
      flags[key] = "1";
    } else if (spec.value_flags.count(key)) {
      if (i + 1 >= argc) {
        M3DFL_LOG_ERROR("cli", "flag --%s needs a value", key.c_str());
        return std::nullopt;
      }
      flags[key] = argv[++i];
    } else {
      M3DFL_LOG_ERROR("cli", "unknown flag --%s", key.c_str());
      return std::nullopt;
    }
  }
  return flags;
}

/// Strict unsigned parse; nullopt on junk like "--seed 12x" or "--seed -3".
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    if (value > (UINT64_MAX - (c - '0')) / 10) return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

/// Strict finite-double parse for threshold-like flags (--precision).
std::optional<double> parse_f64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || end == text.c_str() || *end != '\0' ||
      !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

/// Shared --inference handling; defaults to fp32 when the flag is absent.
bool parse_inference_flag(const std::map<std::string, std::string>& flags,
                          eval::InferenceMode& mode) {
  if (!flags.count("inference")) return true;
  if (!eval::parse_inference_mode(flags.at("inference"), mode)) {
    M3DFL_LOG_ERROR("cli", "--inference wants fp32|int8");
    return false;
  }
  return true;
}

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(text);
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();
  const eval::Design& d = eval::cached_design(*spec, *config);

  const std::string out =
      flags.count("out") ? flags.at("out") : spec->name + ".v";
  std::ofstream os(out);
  if (!os) {
    M3DFL_LOG_ERROR("cli", "cannot write %s", out.c_str());
    return kExitRuntime;
  }
  netlist::write_verilog(d.nl, os, spec->name);
  std::printf("wrote %s: %zu logic gates, %zu MIVs, %zu scan cells, "
              "test coverage %.1f%%\n",
              out.c_str(), d.nl.num_logic_gates(), d.nl.num_mivs(),
              d.nl.num_scan_cells(), 100.0 * d.test_coverage);
  return kExitOk;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  if (!spec) return usage();
  const bool compacted = flags.count("compacted") > 0;
  eval::RunScale scale;
  if (spec->name == "tiny") scale = eval::RunScale::tiny();
  scale.sim_backend = g_sim_backend;
  if (flags.count("threads")) {
    const auto parsed = parse_u64(flags.at("threads"));
    if (!parsed || *parsed < 1) {
      M3DFL_LOG_ERROR("cli", "--threads wants an integer >= 1");
      return usage();
    }
    scale.num_threads = static_cast<std::size_t>(*parsed);
  }
  if (flags.count("progress")) {
    scale.on_epoch = [](const std::string& model,
                        const gnn::EpochStats& es) {
      std::printf("  [%s] epoch %3d  loss %.5f  %.3f s", model.c_str(),
                  es.epoch + 1, es.loss, es.seconds);
      if (es.grad_merge_seconds > 0.0) {
        std::printf("  (grad merge %.3f s)", es.grad_merge_seconds);
      }
      std::printf("\n");
      std::fflush(stdout);
    };
  }

  std::printf("training on %s (Syn-1 + 2 random partitions, %s)...\n",
              spec->name.c_str(), compacted ? "compacted" : "bypass");
  const eval::TrainingBundle bundle =
      eval::build_training_bundle(*spec, compacted, scale);
  const eval::TrainedFramework fw = eval::train_framework(bundle, scale);
  std::printf("tier training accuracy %.1f%%, T_p = %.3f, %.1f s\n",
              100 * fw.train_tier_accuracy, fw.policy.t_p,
              fw.gnn_train_seconds);

  const std::string out =
      flags.count("out") ? flags.at("out") : spec->name + ".m3dfl";
  std::ofstream os(out);
  if (!os) {
    M3DFL_LOG_ERROR("cli", "cannot write %s", out.c_str());
    return kExitRuntime;
  }
  eval::save_framework(fw, os);
  std::printf("saved framework to %s\n", out.c_str());
  return kExitOk;
}

int cmd_inject(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();
  std::uint64_t seed = 1;
  if (flags.count("seed")) {
    const auto parsed = parse_u64(flags.at("seed"));
    if (!parsed) {
      M3DFL_LOG_ERROR("cli", "--seed wants an unsigned integer");
      return usage();
    }
    seed = *parsed;
  }
  const eval::Design& d = eval::cached_design(*spec, *config);

  eval::DatagenOptions opts;
  opts.num_samples = 1;
  opts.compacted = flags.count("compacted") > 0;
  opts.seed = seed;
  opts.backend = g_sim_backend;
  const eval::Dataset ds = eval::generate_dataset(d, opts);
  if (ds.samples.empty()) {
    M3DFL_LOG_ERROR("cli", "drew no detectable fault; try another --seed");
    return kExitRuntime;
  }
  const eval::Sample& chip = ds.samples.front();

  const std::string out =
      flags.count("out") ? flags.at("out") : "chip.faillog";
  std::ofstream os(out);
  if (!os) {
    M3DFL_LOG_ERROR("cli", "cannot write %s", out.c_str());
    return kExitRuntime;
  }
  os << sim::to_text(chip.log);
  std::printf("wrote %s: %zu failing observations\n", out.c_str(),
              chip.log.size());
  std::printf("ground truth (for reference): site %u, %s tier%s\n",
              chip.truth_sites.front(),
              chip.fault_tier == 1 ? "top" : "bottom",
              chip.truth_is_miv ? " [MIV]" : "");
  return kExitOk;
}

std::optional<sim::FailureLog> read_faillog(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    M3DFL_LOG_ERROR("cli", "cannot read %s", path.c_str());
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  const sim::FailureLogParseResult parsed =
      sim::failure_log_from_text(buffer.str());
  if (!parsed.ok) {
    M3DFL_LOG_ERROR("cli", "bad failure log %s: %s", path.c_str(),
                    parsed.message.c_str());
    return std::nullopt;
  }
  return parsed.log;
}

void print_report(const diag::DiagnosisReport& report) {
  std::puts("rank  site      tier    score   (MIV)");
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const diag::Candidate& c = report.candidates[i];
    std::printf("%4zu  %-8u  %-6s  %.3f   %s\n", i + 1, c.site,
                c.tier == netlist::Tier::kTop ? "top" : "bottom", c.score,
                c.is_miv ? "MIV" : "");
  }
}

int cmd_diagnose(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config || !flags.count("faillog")) return usage();
  const eval::Design& d = eval::cached_design(*spec, *config);

  const auto log = read_faillog(flags.at("faillog"));
  if (!log) return kExitRuntime;

  diag::Diagnoser diagnoser = d.make_diagnoser();
  const diag::DiagnosisReport report = diagnoser.diagnose(*log);
  std::printf("ATPG diagnosis: %zu candidates in %.1f ms\n",
              report.resolution(), 1e3 * report.seconds);

  diag::DiagnosisReport final_report = report;
  if (flags.count("framework")) {
    eval::InferenceMode mode = eval::InferenceMode::kFp32;
    if (!parse_inference_flag(flags, mode)) return usage();
    eval::TrainedFramework fw;
    std::string error;
    if (!eval::load_framework_file(fw, flags.at("framework"), &error)) {
      M3DFL_LOG_ERROR("cli", "bad framework file: %s", error.c_str());
      return kExitRuntime;
    }
    if (mode == eval::InferenceMode::kInt8 && !fw.quant) {
      M3DFL_LOG_WARN("cli",
                     "--inference int8 but %s has no quantized twin "
                     "(run `m3dfl quantize`); using fp32",
                     flags.at("framework").c_str());
    }
    const graphx::SubGraph sub =
        graphx::backtrace_subgraph(*d.graph, *log, d.scan);
    const core::PolicyOutcome outcome =
        core::apply_policy(report, sub, fw.models(mode), fw.policy_for(mode));
    std::printf("tier prediction: %s (confidence %.3f) — report %s, "
                "%zu candidates moved to the backup dictionary\n",
                outcome.predicted_tier == netlist::Tier::kTop ? "TOP"
                                                              : "BOTTOM",
                outcome.confidence, outcome.pruned ? "pruned" : "reordered",
                outcome.backup.size());
    final_report = outcome.report;
  }

  print_report(final_report);
  return kExitOk;
}

int cmd_dict(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();

  diag::FaultDictionaryOptions opts;
  opts.backend = g_sim_backend;
  opts.num_threads = 1;
  if (flags.count("threads")) {
    const auto parsed = parse_u64(flags.at("threads"));
    if (!parsed || *parsed < 1) {
      M3DFL_LOG_ERROR("cli", "--threads wants an integer >= 1");
      return usage();
    }
    opts.num_threads = static_cast<std::size_t>(*parsed);
  }
  if (flags.count("partition-gates")) {
    const auto parsed = parse_u64(flags.at("partition-gates"));
    if (!parsed || *parsed < 1) {
      M3DFL_LOG_ERROR("cli", "--partition-gates wants an integer >= 1");
      return usage();
    }
    opts.partition_max_gates = static_cast<std::size_t>(*parsed);
  }
  if (flags.count("spill")) opts.spill_path = flags.at("spill");

  const eval::Design& d = eval::cached_design(*spec, *config);
  const auto t0 = std::chrono::steady_clock::now();
  const diag::FaultDictionary dict(d.nl, d.sites, *d.fsim, opts);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Campaign stats are notices, not primary output: they go through the
  // logger (stderr) so `--metrics-json -` leaves stdout pure JSON.
  const diag::FaultDictionary::SignatureFootprint fp = dict.footprint();
  M3DFL_LOG_INFO("cli",
                 "dictionary: %zu entries over %zu sites in %.2f s "
                 "(fingerprint %016llx)",
                 dict.num_entries(), d.sites.size(), seconds,
                 static_cast<unsigned long long>(dict.fingerprint()));
  M3DFL_LOG_INFO("cli",
                 "signatures: %.1f MB resident, %.1f MB on disk "
                 "(%.1f MB logical); peak RSS %.1f MB",
                 fp.resident_bytes / 1048576.0, fp.disk_bytes / 1048576.0,
                 fp.logical_bytes / 1048576.0,
                 obs::peak_rss_bytes() / 1048576.0);
  if (opts.partition_max_gates > 0) {
    M3DFL_LOG_INFO("cli", "partitioned campaign: <= %zu gates per region",
                   opts.partition_max_gates);
  }

  if (flags.count("faillog")) {
    const auto log = read_faillog(flags.at("faillog"));
    if (!log) return kExitRuntime;
    if (log->compacted) {
      M3DFL_LOG_ERROR(
          "cli", "dictionary diagnosis wants a bypass (non-compacted) log");
      return kExitRuntime;
    }
    const diag::DiagnosisReport report = dict.diagnose(*log);
    std::printf("dictionary diagnosis: %zu candidates\n",
                report.resolution());
    print_report(report);
  }
  return kExitOk;
}

/// Parses a "uint >= min" flag into *out; leaves *out alone when absent.
bool flag_u64(const std::map<std::string, std::string>& flags,
              const char* key, std::uint64_t min_value, std::uint64_t* out) {
  if (!flags.count(key)) return true;
  const auto parsed = parse_u64(flags.at(key));
  if (!parsed || *parsed < min_value) {
    M3DFL_LOG_ERROR("cli", "--%s wants an integer >= %llu", key,
                    static_cast<unsigned long long>(min_value));
    return false;
  }
  *out = *parsed;
  return true;
}

int cmd_quantize(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();
  std::uint64_t seed = 1, threads = 1, calib_samples = 32;
  if (!flag_u64(flags, "seed", 0, &seed) ||
      !flag_u64(flags, "threads", 1, &threads) ||
      !flag_u64(flags, "calib-samples", 1, &calib_samples)) {
    return usage();
  }
  double precision = 0.99;
  if (flags.count("precision")) {
    const auto parsed = parse_f64(flags.at("precision"));
    if (!parsed || *parsed <= 0.0 || *parsed > 1.0) {
      M3DFL_LOG_ERROR("cli", "--precision wants a value in (0, 1]");
      return usage();
    }
    precision = *parsed;
  }

  eval::TrainedFramework fw;
  if (flags.count("framework")) {
    std::string error;
    if (!eval::load_framework_file(fw, flags.at("framework"), &error)) {
      M3DFL_LOG_ERROR("cli", "bad framework file: %s", error.c_str());
      return kExitRuntime;
    }
  } else {
    eval::RunScale scale;
    if (spec->name == "tiny") scale = eval::RunScale::tiny();
    scale.sim_backend = g_sim_backend;
    scale.num_threads = static_cast<std::size_t>(threads);
    std::printf("no --framework given; training on %s first...\n",
                spec->name.c_str());
    const eval::TrainingBundle bundle =
        eval::build_training_bundle(*spec, /*compacted=*/false, scale);
    fw = eval::train_framework(bundle, scale);
  }

  // Three disjoint deterministic sample streams (datagen seeds samples
  // individually, so distinct base seeds keep the sets independent):
  // calibration, tier evaluation, and MIV-targeted evaluation.
  const eval::Design& d = eval::cached_design(*spec, *config);
  eval::DatagenOptions dopts;
  dopts.num_samples = calib_samples;
  dopts.seed = seed;
  dopts.num_threads = static_cast<std::size_t>(threads);
  dopts.backend = g_sim_backend;
  const eval::Dataset calib_ds = eval::generate_dataset(d, dopts);
  dopts.num_samples = calib_samples * 2;
  dopts.seed = seed + 0x9e3779b9ull;
  const eval::Dataset eval_ds = eval::generate_dataset(d, dopts);
  dopts.mode = eval::FaultMode::kSingleMiv;
  dopts.num_samples = calib_samples;
  dopts.seed = seed + 0x51ed270bull;
  const eval::Dataset miv_ds = eval::generate_dataset(d, dopts);
  if (calib_ds.samples.empty() || eval_ds.samples.empty()) {
    M3DFL_LOG_ERROR(
        "cli", "datagen drew no detectable faults; try another --seed");
    return kExitRuntime;
  }
  std::printf("calibrating on %zu graphs, evaluating on %zu (+%zu MIV)...\n",
              calib_ds.size(), eval_ds.size(), miv_ds.size());

  eval::QuantizeOptions qopts;
  qopts.num_threads = static_cast<std::size_t>(threads);
  qopts.tp_precision_target = precision;
  const std::vector<const graphx::SubGraph*> calib =
      eval::graphs_of(calib_ds);
  const std::vector<gnn::LabeledGraph> tier_eval = eval::tier_labeled(eval_ds);
  const std::vector<const graphx::SubGraph*> miv_eval =
      eval::graphs_of(miv_ds);
  const eval::QuantReport report =
      eval::quantize_framework(fw, calib, tier_eval, miv_eval, qopts);
  std::fputs(eval::format_quant_report(report).c_str(), stdout);

  const std::string out = flags.count("out") ? flags.at("out")
                          : flags.count("framework")
                              ? flags.at("framework")
                              : spec->name + ".m3dfl";
  std::ofstream os(out);
  if (!os) {
    M3DFL_LOG_ERROR("cli", "cannot write %s", out.c_str());
    return kExitRuntime;
  }
  eval::save_framework(fw, os);
  std::printf("saved quantized framework to %s\n", out.c_str());
  return kExitOk;
}

int cmd_eval(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config || !flags.count("framework")) return usage();
  std::uint64_t seed = 1, samples = 64;
  if (!flag_u64(flags, "seed", 0, &seed) ||
      !flag_u64(flags, "samples", 1, &samples)) {
    return usage();
  }
  eval::InferenceMode mode = eval::InferenceMode::kFp32;
  if (!parse_inference_flag(flags, mode)) return usage();

  eval::TrainedFramework fw;
  std::string error;
  if (!eval::load_framework_file(fw, flags.at("framework"), &error)) {
    M3DFL_LOG_ERROR("cli", "bad framework file: %s", error.c_str());
    return kExitRuntime;
  }
  if (mode == eval::InferenceMode::kInt8 && !fw.quant) {
    M3DFL_LOG_ERROR("cli",
                    "%s has no quantized twin; run `m3dfl quantize` first",
                    flags.at("framework").c_str());
    return kExitRuntime;
  }

  const eval::Design& d = eval::cached_design(*spec, *config);
  eval::DatagenOptions dopts;
  dopts.num_samples = samples;
  dopts.seed = seed;
  dopts.backend = g_sim_backend;
  const eval::Dataset eval_ds = eval::generate_dataset(d, dopts);
  dopts.mode = eval::FaultMode::kSingleMiv;
  dopts.seed = seed + 0x51ed270bull;
  const eval::Dataset miv_ds = eval::generate_dataset(d, dopts);
  if (eval_ds.samples.empty()) {
    M3DFL_LOG_ERROR(
        "cli", "datagen drew no detectable faults; try another --seed");
    return kExitRuntime;
  }
  std::printf("evaluating %s on %s/%s: %zu samples (+%zu MIV), %s path\n",
              flags.at("framework").c_str(), spec->name.c_str(),
              eval::config_name(*config), eval_ds.size(), miv_ds.size(),
              eval::inference_mode_name(mode));

  const std::vector<gnn::LabeledGraph> tier_eval = eval::tier_labeled(eval_ds);
  const std::vector<const graphx::SubGraph*> miv_eval =
      eval::graphs_of(miv_ds);
  const eval::QuantReport report =
      eval::evaluate_framework(fw, mode, tier_eval, miv_eval);
  std::fputs(eval::format_quant_report(report).c_str(), stdout);
  return kExitOk;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config || !flags.count("framework") || !flags.count("logs")) {
    return usage();
  }
  serve::ServiceOptions opts;
  std::uint64_t repeat = 1;
  const auto numeric = [&](const char* key, std::uint64_t min_value,
                           std::uint64_t* out) -> bool {
    if (!flags.count(key)) return true;
    const auto parsed = parse_u64(flags.at(key));
    if (!parsed || *parsed < min_value) {
      M3DFL_LOG_ERROR("cli", "--%s wants an integer >= %llu", key,
                      static_cast<unsigned long long>(min_value));
      return false;
    }
    *out = *parsed;
    return true;
  };
  std::uint64_t threads = opts.num_threads, batch = opts.max_batch;
  std::uint64_t wait_us =
      static_cast<std::uint64_t>(opts.max_wait.count());
  std::uint64_t admin_port = 0, linger_ms = 0;
  if (!numeric("threads", 1, &threads) || !numeric("batch", 1, &batch) ||
      !numeric("wait-us", 0, &wait_us) || !numeric("repeat", 1, &repeat) ||
      !numeric("admin-port", 0, &admin_port) ||
      !numeric("linger-ms", 0, &linger_ms)) {
    return usage();
  }
  const bool want_admin = flags.count("admin-port") > 0;
  if (want_admin && admin_port > 65535) {
    M3DFL_LOG_ERROR("cli", "--admin-port wants a port number <= 65535");
    return usage();
  }
  opts.num_threads = threads;
  opts.max_batch = batch;
  opts.max_wait = std::chrono::microseconds(wait_us);
  if (!parse_inference_flag(flags, opts.inference)) return usage();
  const bool quiet = flags.count("quiet") > 0;

  const std::vector<std::string> paths = split_commas(flags.at("logs"));
  if (paths.empty()) {
    M3DFL_LOG_ERROR("cli", "--logs wants a comma-separated file list");
    return usage();
  }
  std::vector<sim::FailureLog> logs;
  for (const std::string& path : paths) {
    const auto log = read_faillog(path);
    if (!log) return kExitRuntime;
    logs.push_back(*log);
  }

  serve::ModelRegistry registry;
  {
    eval::TrainedFramework fw;
    std::string error;
    if (!eval::load_framework_file(fw, flags.at("framework"), &error)) {
      M3DFL_LOG_ERROR("cli", "bad framework file: %s", error.c_str());
      return kExitRuntime;
    }
    if (opts.inference == eval::InferenceMode::kInt8 && !fw.quant) {
      M3DFL_LOG_WARN("cli",
                     "--inference int8 but %s has no quantized twin "
                     "(run `m3dfl quantize`); serving fp32",
                     flags.at("framework").c_str());
    }
    registry.publish(opts.model_name, std::move(fw), flags.at("framework"));
  }

  const eval::Design& d = eval::cached_design(*spec, *config);
  serve::DiagnosisService service(registry, opts);
  service.register_design(d);

  // Declared after `service` so its handlers (which read the service) stop
  // before the service is torn down. Off by default: without --admin-port no
  // socket is opened and no server thread exists.
  obs::AdminHttpServer admin;
  if (want_admin) {
    obs::ExemplarStore::instance().set_enabled(true);
#if M3DFL_OBS_ENABLED
    // /tracez serves live spans; without the tracer it would only carry
    // the exemplar store.
    obs::Tracer::instance().set_enabled(true);
#endif
    serve::register_admin_endpoints(admin, service);
    obs::AdminHttpServer::Options admin_opts;
    admin_opts.port = static_cast<std::uint16_t>(admin_port);
    std::string error;
    if (!admin.start(admin_opts, &error)) {
      M3DFL_LOG_ERROR("cli", "cannot start admin server: %s", error.c_str());
      return kExitRuntime;
    }
    std::printf("admin endpoints on http://127.0.0.1:%u "
                "(/healthz /readyz /metrics /metrics.json /statusz /tracez "
                "/profilez /countersz)\n",
                admin.port());
    std::fflush(stdout);
  }

  std::vector<std::future<serve::DiagnosisResponse>> futures;
  futures.reserve(paths.size() * repeat);
  for (std::uint64_t r = 0; r < repeat; ++r) {
    for (const sim::FailureLog& log : logs) {
      futures.push_back(service.submit(d, log));
    }
  }

  bool any_failed = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::DiagnosisResponse resp = futures[i].get();
    const std::string& path = paths[i % paths.size()];
    if (!resp.ok) {
      any_failed = true;
      // rid matches the serve-side warn log and the /tracez exemplar.
      M3DFL_LOG_ERROR("cli", "%s: serve error (rid=%llu): %s", path.c_str(),
                      static_cast<unsigned long long>(resp.request_id),
                      resp.error.c_str());
      continue;
    }
    if (!quiet) {
      std::printf(
          "%s: rid=%llu, %zu -> %zu candidates, tier %s (conf %.3f), %s, "
          "model v%llu%s, %.1f ms\n",
          path.c_str(), static_cast<unsigned long long>(resp.request_id),
          resp.atpg_report.resolution(),
          resp.outcome.report.resolution(),
          resp.outcome.predicted_tier == netlist::Tier::kTop ? "TOP"
                                                             : "BOTTOM",
          resp.outcome.confidence,
          resp.outcome.pruned ? "pruned" : "reordered",
          static_cast<unsigned long long>(resp.model_version),
          resp.cache_hit ? ", cached sub-graph" : "", 1e3 * resp.seconds);
    }
  }
  service.drain();
  g_service_metrics_json = service.metrics().to_json();
  std::fputs(service.metrics().render("m3dfl serve").c_str(), stdout);
  if (want_admin && linger_ms > 0) {
    // Keep the process (and the admin plane) up so external scrapers can
    // poll the endpoints — this is what the CI smoke test curls against.
    std::printf("lingering %llu ms for admin scrapers...\n",
                static_cast<unsigned long long>(linger_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  return any_failed ? kExitRuntime : kExitOk;
}

/// Post-run observability output: the Chrome trace file, the --progress
/// span-summary table, and the metrics JSON dump. Returns kExitRuntime on
/// a failed file write (folded into the command's rc only if it was OK).
int write_observability(const std::map<std::string, std::string>& flags) {
  int rc = kExitOk;
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_enabled(false);  // Quiesce before snapshotting.

  // Stop sampling before any export: the folded file and the Chrome-trace
  // sample sections must both read a quiesced profile.
  std::string chrome_extra;
#if M3DFL_OBS_ENABLED
  obs::prof::CpuProfiler& profiler = obs::prof::CpuProfiler::instance();
  if (flags.count("profile")) {
    profiler.stop();
    if (flags.count("trace")) {
      chrome_extra = profiler.chrome_sample_sections();
    }
  }
#endif

  if (flags.count("trace")) {
    const std::string& path = flags.at("trace");
    std::ofstream os(path);
    if (os) tracer.write_chrome_trace(os, chrome_extra);
    if (!os) {
      M3DFL_LOG_ERROR("cli", "cannot write trace file %s", path.c_str());
      rc = kExitRuntime;
    } else if (const std::uint64_t d = tracer.dropped()) {
      M3DFL_LOG_INFO("cli", "wrote trace to %s (%zu spans, %llu dropped)",
                     path.c_str(), tracer.snapshot().size(),
                     static_cast<unsigned long long>(d));
    } else {
      M3DFL_LOG_INFO("cli", "wrote trace to %s (%zu spans)", path.c_str(),
                     tracer.snapshot().size());
    }
  }

#if M3DFL_OBS_ENABLED
  if (flags.count("profile")) {
    const std::string& path = flags.at("profile");
    std::ofstream os(path);
    if (os) profiler.write_folded(os);
    if (!os) {
      M3DFL_LOG_ERROR("cli", "cannot write profile file %s", path.c_str());
      rc = kExitRuntime;
    } else {
      M3DFL_LOG_INFO(
          "cli", "wrote profile to %s (%llu samples @ %d Hz, %llu dropped)",
          path.c_str(),
          static_cast<unsigned long long>(profiler.samples()),
          profiler.sample_hz(),
          static_cast<unsigned long long>(profiler.dropped()));
    }
  }

  if (flags.count("counters")) {
    // Stage-attributed counter table on stdout, like the --progress span
    // table. Hardware columns appear only when the probe ladder reached a
    // perf_event rung; on "rusage" the table is CPU seconds only.
    const obs::prof::CounterAvailability& av =
        obs::prof::counter_availability();
    const bool hw = av.mode == obs::prof::CounterMode::kFull ||
                    av.mode == obs::prof::CounterMode::kBasic;
    const bool full = av.mode == obs::prof::CounterMode::kFull;
    std::printf("\ncounters (%s: %s)\n",
                obs::prof::counter_mode_name(av.mode), av.detail.c_str());
    std::printf("%-24s %10s %10s", "scope", "count", "cpu s");
    if (hw) std::printf(" %14s %14s %6s", "cycles", "instr", "ipc");
    if (full) std::printf(" %10s %10s", "llc/ki", "br/ki");
    std::printf("\n");
    for (const auto& [name, t] :
         obs::prof::CounterRegistry::instance().snapshot()) {
      std::printf("%-24s %10llu %10.3f", name.c_str(),
                  static_cast<unsigned long long>(t.count), t.cpu_seconds);
      if (hw) {
        std::printf(" %14llu %14llu %6.2f",
                    static_cast<unsigned long long>(t.cycles),
                    static_cast<unsigned long long>(t.instructions), t.ipc());
      }
      if (full) {
        std::printf(" %10.3f %10.3f", t.llc_misses_per_kinstr(),
                    t.branch_misses_per_kinstr());
      }
      std::printf("\n");
    }
  }
#endif

  if (flags.count("progress")) {
    const std::vector<obs::SpanSummary> summary =
        obs::summarize_spans(tracer.snapshot());
    if (!summary.empty()) {
      std::printf("\n%-24s %10s %12s %8s\n", "span", "count", "total ms",
                  "threads");
      for (const obs::SpanSummary& s : summary) {
        std::printf("%-24s %10llu %12.3f %8u\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count), s.total_ms,
                    s.threads);
      }
    }
  }

  if (flags.count("metrics-json")) {
    const std::string& path = flags.at("metrics-json");
    obs::publish_process_metrics();  // Fresh process.* gauges in the dump.
#if M3DFL_OBS_ENABLED
    const std::string counters_json =
        obs::prof::CounterRegistry::instance().enabled()
            ? obs::prof::CounterRegistry::instance().to_json()
            : "null";
#else
    // Key kept across build modes so consumers see one schema.
    const std::string counters_json = "null";
#endif
    const std::string payload =
        "{\"registry\": " + obs::MetricsRegistry::instance().to_json() +
        ", \"service\": " +
        (g_service_metrics_json.empty() ? "null" : g_service_metrics_json) +
        ", \"counters\": " + counters_json + "}\n";
    if (path == "-") {
      // Machine-readable mode: the JSON document is the only stdout output
      // of this block; the notice goes through the logger (stderr). This is
      // what keeps `m3dfl ... --metrics-json - | python3 -c 'json.load...'`
      // parseable.
      std::fwrite(payload.data(), 1, payload.size(), stdout);
      std::fflush(stdout);
      M3DFL_LOG_INFO("cli", "wrote metrics to stdout");
    } else {
      std::ofstream os(path);
      if (os) os << payload;
      if (!os) {
        M3DFL_LOG_ERROR("cli", "cannot write metrics file %s", path.c_str());
        rc = kExitRuntime;
      } else {
        M3DFL_LOG_INFO("cli", "wrote metrics to %s", path.c_str());
      }
    }
  }
  return rc;
}

}  // namespace
}  // namespace m3dfl

int main(int argc, char** argv) {
  using namespace m3dfl;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "--version") {
    std::printf("%s\n", obs::build_info_line().c_str());
    return kExitOk;
  }

  FlagSpec spec;
  if (cmd == "gen") {
    spec = {{"benchmark", "config", "out"}, {"progress"}};
  } else if (cmd == "train") {
    spec = {{"benchmark", "out", "threads"}, {"compacted", "progress"}};
  } else if (cmd == "inject") {
    spec = {{"benchmark", "config", "seed", "out"}, {"compacted"}};
  } else if (cmd == "diagnose") {
    spec = {{"benchmark", "config", "faillog", "framework", "inference"}, {}};
  } else if (cmd == "dict") {
    spec = {{"benchmark", "config", "threads", "partition-gates", "spill",
             "faillog"},
            {}};
  } else if (cmd == "quantize") {
    spec = {{"benchmark", "config", "framework", "out", "calib-samples",
             "seed", "threads", "precision"},
            {}};
  } else if (cmd == "eval") {
    spec = {{"benchmark", "config", "framework", "samples", "seed",
             "inference"},
            {}};
  } else if (cmd == "serve") {
    spec = {{"benchmark", "config", "framework", "logs", "threads", "batch",
             "wait-us", "repeat", "admin-port", "linger-ms", "inference"},
            {"quiet"}};
  } else {
    M3DFL_LOG_ERROR("cli", "unknown subcommand '%s'", cmd.c_str());
    return usage();
  }
  // Every subcommand records spans and metrics, can switch its diagnostics
  // to JSON-lines, and can pick the campaign simulation engine / SIMD tier.
  spec.value_flags.insert("trace");
  spec.value_flags.insert("metrics-json");
  spec.value_flags.insert("sim-backend");
  spec.value_flags.insert("simd");
  spec.value_flags.insert("profile");
  spec.switch_flags.insert("counters");
  spec.switch_flags.insert("log-json");

  // --log-json must take effect before any parse error is reported, so scan
  // for it ahead of the structured parse.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log-json") == 0) {
      obs::Logger::instance().set_json(true);
    }
  }

  const auto flags = parse_flags(argc, argv, 2, spec);
  if (!flags) return usage();

  if (flags->count("sim-backend")) {
    const auto b = sim::parse_backend(flags->at("sim-backend"));
    if (!b) {
      M3DFL_LOG_ERROR("cli", "--sim-backend wants event|bitpar");
      return usage();
    }
    g_sim_backend = *b;
  }
  if (flags->count("simd")) {
    const auto t = sim::bitpar::parse_tier(flags->at("simd"));
    if (!t) {
      M3DFL_LOG_ERROR("cli", "--simd wants scalar|sse2|avx2");
      return usage();
    }
    // resolve_tier() falls back (with a notice) if the host lacks it.
    sim::bitpar::force_tier(*t);
  }

  const bool want_obs = flags->count("trace") || flags->count("progress") ||
                        flags->count("metrics-json");
  if (want_obs) {
#if M3DFL_OBS_ENABLED
    obs::Tracer::instance().set_enabled(true);
#else
    M3DFL_LOG_WARN("cli",
                   "note: built with M3DFL_OBS=OFF — the trace will be empty "
                   "(metrics histograms/counters still record)");
#endif
  }
  const bool want_profile = flags->count("profile") > 0;
  const bool want_counters = flags->count("counters") > 0;
#if M3DFL_OBS_ENABLED
  if (want_counters) obs::prof::CounterRegistry::instance().set_enabled(true);
  if (want_profile) {
    // Sample for the whole subcommand; write_observability() stops the
    // profiler and writes the folded stacks once the work is done. Worker
    // threads spawned later self-register (Executor's M3DFL_PROF_THREAD).
    std::string error;
    if (!obs::prof::CpuProfiler::instance().start(
            obs::prof::ProfilerOptions{}, &error)) {
      M3DFL_LOG_ERROR("cli", "cannot start profiler: %s", error.c_str());
      return kExitRuntime;
    }
  }
#else
  if (want_profile || want_counters) {
    M3DFL_LOG_WARN("cli",
                   "note: built with M3DFL_OBS=OFF — --profile/--counters "
                   "are inert (no samples, no counters)");
  }
#endif

  int rc;
  if (cmd == "gen") rc = cmd_gen(*flags);
  else if (cmd == "train") rc = cmd_train(*flags);
  else if (cmd == "inject") rc = cmd_inject(*flags);
  else if (cmd == "diagnose") rc = cmd_diagnose(*flags);
  else if (cmd == "dict") rc = cmd_dict(*flags);
  else if (cmd == "quantize") rc = cmd_quantize(*flags);
  else if (cmd == "eval") rc = cmd_eval(*flags);
  else rc = cmd_serve(*flags);

  if (want_obs || want_profile || want_counters) {
    const int obs_rc = write_observability(*flags);
    if (rc == kExitOk) rc = obs_rc;
  }
  return rc;
}
