// m3dfl — command-line driver for the library's deployment workflow.
//
// Subcommands:
//   gen       --benchmark aes|tate|netcard|leon3mp|tiny --config Syn-1|TPI|
//             Syn-2|Par [--out design.v]
//             Generate an M3D benchmark netlist and write it as Verilog.
//   train     --benchmark <name> [--out framework.m3dfl] [--compacted]
//             Train Tier-predictor / MIV-pinpointer / Classifier on Syn-1 +
//             two random partitions and save the framework.
//   inject    --benchmark <name> --config <cfg> [--seed N] [--compacted]
//             [--out chip.faillog]
//             Inject a random TDF, simulate the tester, write the failure
//             log (and print the ground truth for reference).
//   diagnose  --benchmark <name> --config <cfg> --faillog chip.faillog
//             [--framework framework.m3dfl]
//             Run ATPG-style diagnosis; with a framework, also apply the
//             GNN candidate pruning & reordering policy.
//
// The benchmark/config pair pins the netlist + pattern set (both are
// regenerated deterministically from the spec seeds, standing in for the
// design database a real flow would load).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "eval/framework_io.h"
#include "netlist/verilog.h"

namespace m3dfl {
namespace {

int usage() {
  std::fputs(
      "usage: m3dfl <gen|train|inject|diagnose> [options]\n"
      "  gen      --benchmark B --config C [--out design.v]\n"
      "  train    --benchmark B [--compacted] [--out framework.m3dfl]\n"
      "  inject   --benchmark B --config C [--seed N] [--compacted]\n"
      "           [--out chip.faillog]\n"
      "  diagnose --benchmark B --config C --faillog F\n"
      "           [--framework framework.m3dfl]\n"
      "benchmarks: aes tate netcard leon3mp tiny\n"
      "configs:    Syn-1 TPI Syn-2 Par\n",
      stderr);
  return 2;
}

std::optional<eval::BenchmarkSpec> spec_by_name(const std::string& name) {
  if (name == "aes") return eval::aes_spec();
  if (name == "tate") return eval::tate_spec();
  if (name == "netcard") return eval::netcard_spec();
  if (name == "leon3mp") return eval::leon3mp_spec();
  if (name == "tiny") return eval::tiny_spec();
  return std::nullopt;
}

std::optional<eval::Config> config_by_name(const std::string& name) {
  for (eval::Config c : eval::eval_configs()) {
    if (name == eval::config_name(c)) return c;
  }
  return std::nullopt;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (key == "compacted") {
      flags[key] = "1";
    } else if (i + 1 < argc) {
      flags[key] = argv[++i];
    }
  }
  return flags;
}

int cmd_gen(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();
  const eval::Design& d = eval::cached_design(*spec, *config);

  const std::string out =
      flags.count("out") ? flags.at("out") : spec->name + ".v";
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  netlist::write_verilog(d.nl, os, spec->name);
  std::printf("wrote %s: %zu logic gates, %zu MIVs, %zu scan cells, "
              "test coverage %.1f%%\n",
              out.c_str(), d.nl.num_logic_gates(), d.nl.num_mivs(),
              d.nl.num_scan_cells(), 100.0 * d.test_coverage);
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  if (!spec) return usage();
  const bool compacted = flags.count("compacted") > 0;
  eval::RunScale scale;
  if (spec->name == "tiny") scale = eval::RunScale::tiny();

  std::printf("training on %s (Syn-1 + 2 random partitions, %s)...\n",
              spec->name.c_str(), compacted ? "compacted" : "bypass");
  const eval::TrainingBundle bundle =
      eval::build_training_bundle(*spec, compacted, scale);
  const eval::TrainedFramework fw = eval::train_framework(bundle, scale);
  std::printf("tier training accuracy %.1f%%, T_p = %.3f, %.1f s\n",
              100 * fw.train_tier_accuracy, fw.policy.t_p,
              fw.gnn_train_seconds);

  const std::string out =
      flags.count("out") ? flags.at("out") : spec->name + ".m3dfl";
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  eval::save_framework(fw, os);
  std::printf("saved framework to %s\n", out.c_str());
  return 0;
}

int cmd_inject(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config) return usage();
  const eval::Design& d = eval::cached_design(*spec, *config);

  eval::DatagenOptions opts;
  opts.num_samples = 1;
  opts.compacted = flags.count("compacted") > 0;
  opts.seed = flags.count("seed") ? std::stoull(flags.at("seed")) : 1;
  const eval::Dataset ds = eval::generate_dataset(d, opts);
  if (ds.samples.empty()) {
    std::fputs("drew no detectable fault; try another --seed\n", stderr);
    return 1;
  }
  const eval::Sample& chip = ds.samples.front();

  const std::string out =
      flags.count("out") ? flags.at("out") : "chip.faillog";
  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  os << sim::to_text(chip.log);
  std::printf("wrote %s: %zu failing observations\n", out.c_str(),
              chip.log.size());
  std::printf("ground truth (for reference): site %u, %s tier%s\n",
              chip.truth_sites.front(),
              chip.fault_tier == 1 ? "top" : "bottom",
              chip.truth_is_miv ? " [MIV]" : "");
  return 0;
}

int cmd_diagnose(const std::map<std::string, std::string>& flags) {
  const auto spec = spec_by_name(flags.count("benchmark")
                                     ? flags.at("benchmark")
                                     : "");
  const auto config = config_by_name(
      flags.count("config") ? flags.at("config") : "Syn-1");
  if (!spec || !config || !flags.count("faillog")) return usage();
  const eval::Design& d = eval::cached_design(*spec, *config);

  std::ifstream is(flags.at("faillog"));
  if (!is) {
    std::fprintf(stderr, "cannot read %s\n", flags.at("faillog").c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  const sim::FailureLogParseResult parsed =
      sim::failure_log_from_text(buffer.str());
  if (!parsed.ok) {
    std::fprintf(stderr, "bad failure log: %s\n", parsed.message.c_str());
    return 1;
  }

  diag::Diagnoser diagnoser = d.make_diagnoser();
  const diag::DiagnosisReport report = diagnoser.diagnose(parsed.log);
  std::printf("ATPG diagnosis: %zu candidates in %.1f ms\n",
              report.resolution(), 1e3 * report.seconds);

  diag::DiagnosisReport final_report = report;
  if (flags.count("framework")) {
    std::ifstream fs(flags.at("framework"));
    if (!fs) {
      std::fprintf(stderr, "cannot read %s\n",
                   flags.at("framework").c_str());
      return 1;
    }
    eval::TrainedFramework fw;
    std::string error;
    if (!eval::load_framework(fw, fs, &error)) {
      std::fprintf(stderr, "bad framework file: %s\n", error.c_str());
      return 1;
    }
    const graphx::SubGraph sub =
        graphx::backtrace_subgraph(*d.graph, parsed.log, d.scan);
    const core::PolicyOutcome outcome =
        core::apply_policy(report, sub, fw.models(), fw.policy);
    std::printf("tier prediction: %s (confidence %.3f) — report %s, "
                "%zu candidates moved to the backup dictionary\n",
                outcome.predicted_tier == netlist::Tier::kTop ? "TOP"
                                                              : "BOTTOM",
                outcome.confidence, outcome.pruned ? "pruned" : "reordered",
                outcome.backup.size());
    final_report = outcome.report;
  }

  std::puts("rank  site      tier    score   (MIV)");
  for (std::size_t i = 0; i < final_report.candidates.size(); ++i) {
    const diag::Candidate& c = final_report.candidates[i];
    std::printf("%4zu  %-8u  %-6s  %.3f   %s\n", i + 1, c.site,
                c.tier == netlist::Tier::kTop ? "top" : "bottom", c.score,
                c.is_miv ? "MIV" : "");
  }
  return 0;
}

}  // namespace
}  // namespace m3dfl

int main(int argc, char** argv) {
  using namespace m3dfl;
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "gen") return cmd_gen(flags);
  if (cmd == "train") return cmd_train(flags);
  if (cmd == "inject") return cmd_inject(flags);
  if (cmd == "diagnose") return cmd_diagnose(flags);
  return usage();
}
