#pragma once

// The bench_compare gate's logic, header-only so tests can drive it on
// in-memory JSON. bench_compare.cpp is the thin CLI over this.
//
// Forward-compatibility contract: a candidate BENCH_*.json may carry keys
// the committed baseline has never seen (benches grow ipc / cache-miss
// fields), and the gate must treat those as additive — reported as NOTE
// lines listing the ignored keys, never as failures. In particular the
// throughput counter is chosen from the *baseline's* counter when the
// fresh entry still carries it, so a fresh entry growing a
// higher-priority counter key cannot silently flip which two numbers get
// compared.

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace benchcmp {

/// The slice of a google-benchmark JSON entry the gate cares about.
struct BenchEntry {
  double throughput = 0.0;
  std::string counter;  ///< Which counter `throughput` came from.
  /// Every recognized throughput field present in the entry, so compare()
  /// can pick the counter both sides share.
  std::map<std::string, double> counters;
  /// All depth-1 JSON keys of the entry object, in order of appearance —
  /// the additive-key diff is computed from these.
  std::vector<std::string> keys;
};

/// Purpose-built scanner for google-benchmark's JSON shape: finds the
/// "benchmarks" array and, per object, pulls "name" plus the numeric
/// fields. Not a general JSON parser — but the input is machine-generated
/// with a fixed structure, and a wrong parse fails closed (exit 2), never
/// silently passes the gate.
class BenchJsonScanner {
 public:
  explicit BenchJsonScanner(std::string text) : text_(std::move(text)) {}

  bool scan(std::map<std::string, BenchEntry>* out, std::string* error) {
    const std::size_t arr = text_.find("\"benchmarks\"");
    if (arr == std::string::npos) {
      *error = "no \"benchmarks\" array";
      return false;
    }
    std::size_t pos = text_.find('[', arr);
    if (pos == std::string::npos) {
      *error = "malformed \"benchmarks\" array";
      return false;
    }
    ++pos;
    int depth = 0;
    std::size_t obj_start = 0;
    for (; pos < text_.size(); ++pos) {
      const char c = text_[pos];
      if (c == '"') {
        skip_string(&pos);
        continue;
      }
      if (c == '{') {
        if (depth == 0) obj_start = pos;
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          if (!add_object(text_.substr(obj_start, pos - obj_start + 1), out,
                          error)) {
            return false;
          }
        }
      } else if (c == ']' && depth == 0) {
        return true;
      }
    }
    *error = "unterminated \"benchmarks\" array";
    return false;
  }

 private:
  void skip_string(std::size_t* pos) {
    for (++*pos; *pos < text_.size(); ++*pos) {
      if (text_[*pos] == '\\') {
        ++*pos;
      } else if (text_[*pos] == '"') {
        return;
      }
    }
  }

  static std::optional<std::string> find_string_field(const std::string& obj,
                                                      const char* key) {
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find(':', pos + needle.size());
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find('"', pos);
    if (pos == std::string::npos) return std::nullopt;
    std::string value;
    for (++pos; pos < obj.size() && obj[pos] != '"'; ++pos) {
      if (obj[pos] == '\\' && pos + 1 < obj.size()) ++pos;
      value.push_back(obj[pos]);
    }
    return value;
  }

  static std::optional<double> find_number_field(const std::string& obj,
                                                 const char* key) {
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find(':', pos + needle.size());
    if (pos == std::string::npos) return std::nullopt;
    ++pos;
    while (pos < obj.size() && (obj[pos] == ' ' || obj[pos] == '\t')) ++pos;
    char* end = nullptr;
    const double v = std::strtod(obj.c_str() + pos, &end);
    if (end == obj.c_str() + pos) return std::nullopt;
    return v;
  }

  /// Depth-1 keys of one entry object: a quoted string whose next
  /// non-space character is ':' while not nested inside a sub-object or
  /// array. Nested structure ("hw_counters": {...}) contributes one key.
  static std::vector<std::string> object_keys(const std::string& obj) {
    std::vector<std::string> keys;
    int depth = 0;
    for (std::size_t i = 0; i < obj.size(); ++i) {
      const char c = obj[i];
      if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
      } else if (c == '"') {
        std::string s;
        for (++i; i < obj.size() && obj[i] != '"'; ++i) {
          if (obj[i] == '\\' && i + 1 < obj.size()) ++i;
          s.push_back(obj[i]);
        }
        if (depth != 1) continue;
        std::size_t j = i + 1;
        while (j < obj.size() && (obj[j] == ' ' || obj[j] == '\t' ||
                                  obj[j] == '\n' || obj[j] == '\r')) {
          ++j;
        }
        if (j < obj.size() && obj[j] == ':') keys.push_back(s);
      }
    }
    return keys;
  }

  bool add_object(const std::string& obj,
                  std::map<std::string, BenchEntry>* out,
                  std::string* error) {
    const auto name = find_string_field(obj, "name");
    if (!name) {
      *error = "benchmark entry without a \"name\"";
      return false;
    }
    // Aggregate rows (mean/median/stddev repetitions) would double-count;
    // gate on the raw iterations only.
    if (find_string_field(obj, "aggregate_name")) return true;
    BenchEntry e;
    e.keys = object_keys(obj);
    for (const char* key :
         {"requests_per_second", "items_per_second", "real_time"}) {
      if (const auto v = find_number_field(obj, key)) e.counters[key] = *v;
    }
    if (e.counters.count("requests_per_second")) {
      e.throughput = e.counters["requests_per_second"];
      e.counter = "requests_per_second";
    } else if (e.counters.count("items_per_second")) {
      e.throughput = e.counters["items_per_second"];
      e.counter = "items_per_second";
    } else if (e.counters.count("real_time")) {
      const double rt = e.counters["real_time"];
      if (rt <= 0.0) {
        *error = "non-positive real_time for " + *name;
        return false;
      }
      e.throughput = 1.0 / rt;
      e.counter = "1/real_time";
    } else {
      *error = "no throughput counter in " + *name;
      return false;
    }
    (*out)[*name] = e;
    return true;
  }

  std::string text_;
};

/// Scans a whole BENCH_*.json document. Returns false (and sets *error)
/// on parse failure or when no entries were found — the gate fails closed.
inline bool scan_bench_json(const std::string& text,
                            std::map<std::string, BenchEntry>* out,
                            std::string* error) {
  BenchJsonScanner scanner(text);
  if (!scanner.scan(out, error)) return false;
  if (out->empty()) {
    *error = "no benchmark entries";
    return false;
  }
  return true;
}

struct CompareResult {
  bool regressed = false;
  std::string report;  ///< Printable per-benchmark lines + NOTEs.
};

/// The gate. Benchmarks in both files compare their shared throughput
/// counter against the regression budget; entries present on only one
/// side, and JSON keys present on only one side of a shared entry, are
/// reported but never gate.
inline CompareResult compare(const std::map<std::string, BenchEntry>& baseline,
                             const std::map<std::string, BenchEntry>& fresh,
                             double max_regression_pct) {
  CompareResult result;
  char line[512];
  auto emit = [&result, &line] { result.report += line; };
  auto key_diff = [](const BenchEntry& from, const BenchEntry& to) {
    std::string joined;
    for (const std::string& k : to.keys) {
      bool known = false;
      for (const std::string& b : from.keys) {
        if (b == k) {
          known = true;
          break;
        }
      }
      if (known) continue;
      if (!joined.empty()) joined += ", ";
      joined += k;
    }
    return joined;
  };
  for (const auto& [name, base] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      std::snprintf(line, sizeof(line),
                    "MISSING  %-40s (in baseline only — not gated)\n",
                    name.c_str());
      emit();
      continue;
    }
    const BenchEntry& now = it->second;
    // Counter choice: the baseline's counter whenever the fresh entry
    // still carries it. A fresh entry that *adds* requests_per_second to a
    // bench whose baseline gated on items_per_second keeps comparing
    // items_per_second until the baseline is regenerated.
    std::string counter = base.counter;
    double base_v = base.throughput;
    double now_v;
    const std::string base_key =
        base.counter == "1/real_time" ? "real_time" : base.counter;
    const auto now_it = now.counters.find(base_key);
    if (now_it != now.counters.end() &&
        !(base.counter == "1/real_time" && now_it->second <= 0.0)) {
      now_v = base.counter == "1/real_time" ? 1.0 / now_it->second
                                            : now_it->second;
    } else {
      counter = now.counter;  // Baseline's counter vanished: degrade
      now_v = now.throughput;  // honestly to the fresh priority pick.
      base_v = base.throughput;
    }
    const double delta_pct =
        base_v > 0.0 ? 100.0 * (now_v - base_v) / base_v : 0.0;
    const bool regressed = delta_pct < -max_regression_pct;
    result.regressed = result.regressed || regressed;
    std::snprintf(line, sizeof(line),
                  "%-8s %-40s %s %12.2f -> %12.2f  (%+.1f%%)\n",
                  regressed ? "FAIL" : "OK", name.c_str(), counter.c_str(),
                  base_v, now_v, delta_pct);
    emit();
    const std::string added = key_diff(base, now);
    if (!added.empty()) {
      std::snprintf(line, sizeof(line),
                    "NOTE     %-40s new keys ignored (not gated): %s\n",
                    name.c_str(), added.c_str());
      emit();
    }
    const std::string removed = key_diff(now, base);
    if (!removed.empty()) {
      std::snprintf(line, sizeof(line),
                    "NOTE     %-40s keys absent from fresh (not gated): %s\n",
                    name.c_str(), removed.c_str());
      emit();
    }
  }
  for (const auto& [name, entry] : fresh) {
    if (!baseline.count(name)) {
      std::snprintf(line, sizeof(line),
                    "NEW      %-40s %s %12.2f (no baseline — not gated)\n",
                    name.c_str(), entry.counter.c_str(), entry.throughput);
      emit();
    }
  }
  return result;
}

}  // namespace benchcmp
