// prom_lint — structural conformance check of a Prometheus text-exposition
// page (obs::prometheus_lint), for CI validation of a live /metrics scrape:
//
//   curl -s http://127.0.0.1:18080/metrics | prom_lint
//   prom_lint scraped_metrics.txt
//
// Exit codes: 0 conformant, 1 violations found, 2 unreadable input.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

int main(int argc, char** argv) {
  std::string page;
  if (argc > 2) {
    std::fputs("usage: prom_lint [exposition.txt]  (default: stdin)\n",
               stderr);
    return 2;
  }
  if (argc == 2) {
    std::ifstream is(argv[1]);
    if (!is) {
      std::fprintf(stderr, "prom_lint: cannot read %s\n", argv[1]);
      return 2;
    }
    std::stringstream buffer;
    buffer << is.rdbuf();
    page = buffer.str();
  } else {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    page = buffer.str();
  }

  const std::vector<std::string> violations =
      m3dfl::obs::prometheus_lint(page);
  for (const std::string& v : violations) {
    std::fprintf(stderr, "prom_lint: %s\n", v.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "prom_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("prom_lint: ok\n");
  return 0;
}
