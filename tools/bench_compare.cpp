// bench_compare — the benchmark-regression gate.
//
// Compares a freshly generated BENCH_*.json (google-benchmark
// --benchmark_format=json output, as produced by bench/serve_throughput and
// bench/datagen_throughput) against the committed baseline under
// bench/baselines/, and fails when any benchmark's primary throughput
// counter regressed by more than --max-regression-pct.
//
//   bench_compare --baseline bench/baselines/BENCH_serve_throughput.json \
//                 --fresh build/BENCH_serve_throughput.json \
//                 [--max-regression-pct 25] [--counter auto]
//
// Throughput counter per benchmark: requests_per_second if present, else
// items_per_second, else the inverse of real_time (so lower-is-better
// timings still gate). Benchmarks present only in one file are reported but
// never fail the gate (new benchmarks land without a baseline first).
//
// Exit codes: 0 within budget, 1 regression beyond budget, 2 usage/parse
// error — mirroring the m3dfl CLI convention.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int usage() {
  std::fputs(
      "usage: bench_compare --baseline FILE --fresh FILE\n"
      "                     [--max-regression-pct P] (default 25)\n"
      "compares per-benchmark throughput counters (requests_per_second,\n"
      "items_per_second, or 1/real_time) and fails on a regression > P%\n"
      "exit codes: 0 ok, 1 regression, 2 usage/parse error\n",
      stderr);
  return kExitUsage;
}

/// The slice of a google-benchmark JSON entry the gate cares about.
struct BenchEntry {
  double throughput = 0.0;
  std::string counter;  ///< Which counter `throughput` came from.
};

/// Purpose-built scanner for google-benchmark's JSON shape: finds the
/// "benchmarks" array and, per object, pulls "name" plus the numeric fields.
/// Not a general JSON parser — but the input is machine-generated with a
/// fixed structure, and a wrong parse fails closed (exit 2), never silently
/// passes the gate.
class BenchJsonScanner {
 public:
  explicit BenchJsonScanner(std::string text) : text_(std::move(text)) {}

  bool scan(std::map<std::string, BenchEntry>* out, std::string* error) {
    const std::size_t arr = text_.find("\"benchmarks\"");
    if (arr == std::string::npos) {
      *error = "no \"benchmarks\" array";
      return false;
    }
    std::size_t pos = text_.find('[', arr);
    if (pos == std::string::npos) {
      *error = "malformed \"benchmarks\" array";
      return false;
    }
    ++pos;
    int depth = 0;
    std::size_t obj_start = 0;
    for (; pos < text_.size(); ++pos) {
      const char c = text_[pos];
      if (c == '"') {
        skip_string(&pos);
        continue;
      }
      if (c == '{') {
        if (depth == 0) obj_start = pos;
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          if (!add_object(text_.substr(obj_start, pos - obj_start + 1), out,
                          error)) {
            return false;
          }
        }
      } else if (c == ']' && depth == 0) {
        return true;
      }
    }
    *error = "unterminated \"benchmarks\" array";
    return false;
  }

 private:
  void skip_string(std::size_t* pos) {
    for (++*pos; *pos < text_.size(); ++*pos) {
      if (text_[*pos] == '\\') {
        ++*pos;
      } else if (text_[*pos] == '"') {
        return;
      }
    }
  }

  static std::optional<std::string> find_string_field(const std::string& obj,
                                                      const char* key) {
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find(':', pos + needle.size());
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find('"', pos);
    if (pos == std::string::npos) return std::nullopt;
    std::string value;
    for (++pos; pos < obj.size() && obj[pos] != '"'; ++pos) {
      if (obj[pos] == '\\' && pos + 1 < obj.size()) ++pos;
      value.push_back(obj[pos]);
    }
    return value;
  }

  static std::optional<double> find_number_field(const std::string& obj,
                                                 const char* key) {
    const std::string needle = std::string("\"") + key + "\"";
    std::size_t pos = obj.find(needle);
    if (pos == std::string::npos) return std::nullopt;
    pos = obj.find(':', pos + needle.size());
    if (pos == std::string::npos) return std::nullopt;
    ++pos;
    while (pos < obj.size() && (obj[pos] == ' ' || obj[pos] == '\t')) ++pos;
    char* end = nullptr;
    const double v = std::strtod(obj.c_str() + pos, &end);
    if (end == obj.c_str() + pos) return std::nullopt;
    return v;
  }

  bool add_object(const std::string& obj, std::map<std::string, BenchEntry>* out,
                  std::string* error) {
    const auto name = find_string_field(obj, "name");
    if (!name) {
      *error = "benchmark entry without a \"name\"";
      return false;
    }
    // Aggregate rows (mean/median/stddev repetitions) would double-count;
    // gate on the raw iterations only.
    if (find_string_field(obj, "aggregate_name")) return true;
    BenchEntry e;
    if (const auto rps = find_number_field(obj, "requests_per_second")) {
      e.throughput = *rps;
      e.counter = "requests_per_second";
    } else if (const auto ips = find_number_field(obj, "items_per_second")) {
      e.throughput = *ips;
      e.counter = "items_per_second";
    } else if (const auto rt = find_number_field(obj, "real_time")) {
      if (*rt <= 0.0) {
        *error = "non-positive real_time for " + *name;
        return false;
      }
      e.throughput = 1.0 / *rt;
      e.counter = "1/real_time";
    } else {
      *error = "no throughput counter in " + *name;
      return false;
    }
    (*out)[*name] = e;
    return true;
  }

  std::string text_;
};

std::optional<std::map<std::string, BenchEntry>> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::map<std::string, BenchEntry> entries;
  std::string error;
  BenchJsonScanner scanner(buffer.str());
  if (!scanner.scan(&entries, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  if (entries.empty()) {
    std::fprintf(stderr, "bench_compare: %s: no benchmark entries\n",
                 path.c_str());
    return std::nullopt;
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, fresh_path;
  double max_regression_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = value();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--fresh") {
      const char* v = value();
      if (!v) return usage();
      fresh_path = v;
    } else if (arg == "--max-regression-pct") {
      const char* v = value();
      if (!v) return usage();
      char* end = nullptr;
      max_regression_pct = std::strtod(v, &end);
      if (end == v || max_regression_pct < 0.0) return usage();
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) return usage();

  const auto baseline = load(baseline_path);
  const auto fresh = load(fresh_path);
  if (!baseline || !fresh) return kExitUsage;

  bool failed = false;
  for (const auto& [name, base] : *baseline) {
    const auto it = fresh->find(name);
    if (it == fresh->end()) {
      std::printf("MISSING  %-40s (in baseline only — not gated)\n",
                  name.c_str());
      continue;
    }
    const BenchEntry& now = it->second;
    const double delta_pct =
        base.throughput > 0.0
            ? 100.0 * (now.throughput - base.throughput) / base.throughput
            : 0.0;
    const bool regressed = delta_pct < -max_regression_pct;
    failed = failed || regressed;
    std::printf("%-8s %-40s %s %12.2f -> %12.2f  (%+.1f%%)\n",
                regressed ? "FAIL" : "OK", name.c_str(), now.counter.c_str(),
                base.throughput, now.throughput, delta_pct);
  }
  for (const auto& [name, entry] : *fresh) {
    if (!baseline->count(name)) {
      std::printf("NEW      %-40s %s %12.2f (no baseline — not gated)\n",
                  name.c_str(), entry.counter.c_str(), entry.throughput);
    }
  }
  if (failed) {
    std::printf("bench_compare: throughput regressed beyond %.1f%% budget\n",
                max_regression_pct);
    return kExitRegression;
  }
  std::printf("bench_compare: all benchmarks within %.1f%% budget\n",
              max_regression_pct);
  return kExitOk;
}
