// bench_compare — the benchmark-regression gate.
//
// Compares a freshly generated BENCH_*.json (google-benchmark
// --benchmark_format=json output, as produced by bench/serve_throughput and
// bench/datagen_throughput) against the committed baseline under
// bench/baselines/, and fails when any benchmark's primary throughput
// counter regressed by more than --max-regression-pct.
//
//   bench_compare --baseline bench/baselines/BENCH_serve_throughput.json \
//                 --fresh build/BENCH_serve_throughput.json \
//                 [--max-regression-pct 25]
//
// Throughput counter per benchmark: requests_per_second if present, else
// items_per_second, else the inverse of real_time (so lower-is-better
// timings still gate). Benchmarks present only in one file are reported but
// never fail the gate (new benchmarks land without a baseline first), and
// JSON keys the baseline has never seen (benches growing ipc / cache-miss
// fields) are listed in NOTE lines, never gated.
//
// Exit codes: 0 within budget, 1 regression beyond budget, 2 usage/parse
// error — mirroring the m3dfl CLI convention. The scan/compare logic lives
// in bench_compare_lib.h so tests can exercise it directly.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "bench_compare_lib.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int usage() {
  std::fputs(
      "usage: bench_compare --baseline FILE --fresh FILE\n"
      "                     [--max-regression-pct P] (default 25)\n"
      "compares per-benchmark throughput counters (requests_per_second,\n"
      "items_per_second, or 1/real_time) and fails on a regression > P%\n"
      "exit codes: 0 ok, 1 regression, 2 usage/parse error\n",
      stderr);
  return kExitUsage;
}

std::optional<std::map<std::string, benchcmp::BenchEntry>> load(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::map<std::string, benchcmp::BenchEntry> entries;
  std::string error;
  if (!benchcmp::scan_bench_json(buffer.str(), &entries, &error)) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, fresh_path;
  double max_regression_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baseline") {
      const char* v = value();
      if (!v) return usage();
      baseline_path = v;
    } else if (arg == "--fresh") {
      const char* v = value();
      if (!v) return usage();
      fresh_path = v;
    } else if (arg == "--max-regression-pct") {
      const char* v = value();
      if (!v) return usage();
      char* end = nullptr;
      max_regression_pct = std::strtod(v, &end);
      if (end == v || max_regression_pct < 0.0) return usage();
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) return usage();

  const auto baseline = load(baseline_path);
  const auto fresh = load(fresh_path);
  if (!baseline || !fresh) return kExitUsage;

  const benchcmp::CompareResult result =
      benchcmp::compare(*baseline, *fresh, max_regression_pct);
  std::fputs(result.report.c_str(), stdout);
  if (result.regressed) {
    std::printf("bench_compare: throughput regressed beyond %.1f%% budget\n",
                max_regression_pct);
    return kExitRegression;
  }
  std::printf("bench_compare: all benchmarks within %.1f%% budget\n",
              max_regression_pct);
  return kExitOk;
}
