#include "partition/hier.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace m3dfl::part {

namespace {

using netlist::GateId;

struct SplitKeys {
  const std::vector<float>* pos;
  const std::vector<std::uint32_t>* level;
};

// Recursively bisects `group` (a contiguous slice of the work vector) until
// every leaf holds at most max_gates gates, appending leaf groups to `out`.
// The split axis is whichever of (placement pos, topo level) spreads wider
// over the group, normalized to [0, 1]; the median split uses a total order
// (key, gate id), so the resulting leaf *sets* are implementation- and
// platform-independent.
void bisect(std::span<GateId> group, const SplitKeys& keys, float depth_norm,
            std::size_t max_gates, std::vector<std::vector<GateId>>& out) {
  if (group.size() <= max_gates) {
    out.emplace_back(group.begin(), group.end());
    return;
  }
  float lo_pos = 1.0f, hi_pos = 0.0f;
  std::uint32_t lo_lvl = 0xffffffffu, hi_lvl = 0;
  for (GateId g : group) {
    lo_pos = std::min(lo_pos, (*keys.pos)[g]);
    hi_pos = std::max(hi_pos, (*keys.pos)[g]);
    lo_lvl = std::min(lo_lvl, (*keys.level)[g]);
    hi_lvl = std::max(hi_lvl, (*keys.level)[g]);
  }
  const float pos_spread = hi_pos - lo_pos;
  const float lvl_spread = static_cast<float>(hi_lvl - lo_lvl) * depth_norm;
  const bool by_pos = pos_spread >= lvl_spread;
  const auto mid = group.begin() + static_cast<std::ptrdiff_t>(group.size() / 2);
  if (by_pos) {
    std::nth_element(group.begin(), mid, group.end(),
                     [&](GateId a, GateId b) {
                       const float pa = (*keys.pos)[a], pb = (*keys.pos)[b];
                       return pa != pb ? pa < pb : a < b;
                     });
  } else {
    std::nth_element(group.begin(), mid, group.end(),
                     [&](GateId a, GateId b) {
                       const std::uint32_t la = (*keys.level)[a];
                       const std::uint32_t lb = (*keys.level)[b];
                       return la != lb ? la < lb : a < b;
                     });
  }
  bisect(group.subspan(0, group.size() / 2), keys, depth_norm, max_gates, out);
  bisect(group.subspan(group.size() / 2), keys, depth_norm, max_gates, out);
}

}  // namespace

HierPartition::HierPartition(const netlist::Netlist& nl,
                             const netlist::SiteTable& sites,
                             HierPartitionOptions opts) {
  const std::size_t n = nl.num_gates();
  const std::size_t max_gates = std::max<std::size_t>(opts.max_gates_per_region, 1);

  std::vector<float> pos(n);
  for (GateId g = 0; g < n; ++g) pos[g] = nl.gate(g).pos;
  const std::vector<std::uint32_t>& level = nl.levels();
  const std::uint32_t depth = nl.depth();
  const float depth_norm = depth > 0 ? 1.0f / static_cast<float>(depth) : 0.0f;

  std::vector<GateId> work(n);
  for (GateId g = 0; g < n; ++g) work[g] = g;
  std::vector<std::vector<GateId>> groups;
  if (n > 0) {
    bisect(std::span<GateId>(work), {&pos, &level}, depth_norm, max_gates,
           groups);
  }

  // Canonical region order: ascending by smallest member gate id.
  for (auto& g : groups) std::sort(g.begin(), g.end());
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<GateId>& a, const std::vector<GateId>& b) {
              return a.front() < b.front();
            });

  regions_.resize(groups.size());
  region_of_gate_.assign(n, 0);
  for (std::uint32_t r = 0; r < groups.size(); ++r) {
    regions_[r].gates = std::move(groups[r]);
    max_region_gates_ = std::max(max_region_gates_, regions_[r].gates.size());
    for (GateId g : regions_[r].gates) region_of_gate_[g] = r;
  }

  // Sites follow their owning gate; scanning site ids in order keeps each
  // region's list ascending.
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    regions_[region_of_gate_[sites.site(s).gate]].sites.push_back(s);
  }

  // Forward output closure: reach[g] = set of regions with a gate that can
  // reach g, as a per-gate region bitset propagated along fanin edges in
  // topological order. An output o then belongs to every region whose bit
  // is set at its driving gate.
  const std::size_t words = (regions_.size() + 63) / 64;
  std::vector<std::uint64_t> reach(n * words, 0);
  for (GateId g : nl.topo_order()) {
    std::uint64_t* row = reach.data() + static_cast<std::size_t>(g) * words;
    row[region_of_gate_[g] / 64] |= 1ull << (region_of_gate_[g] % 64);
    for (GateId f : nl.gate(g).fanin) {
      const std::uint64_t* src =
          reach.data() + static_cast<std::size_t>(f) * words;
      for (std::size_t w = 0; w < words; ++w) row[w] |= src[w];
      if (region_of_gate_[f] != region_of_gate_[g]) ++cut_edges_;
    }
  }

  output_offsets_.assign(nl.num_outputs() + 1, 0);
  for (std::uint32_t o = 0; o < nl.num_outputs(); ++o) {
    const std::uint64_t* row =
        reach.data() + static_cast<std::size_t>(nl.outputs()[o]) * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t m = row[w];
      while (m) {
        const auto r = static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(m)));
        m &= m - 1;
        regions_[r].outputs.push_back(o);
        ++output_offsets_[o + 1];
      }
    }
  }
  for (std::uint32_t o = 0; o < nl.num_outputs(); ++o) {
    output_offsets_[o + 1] += output_offsets_[o];
  }
  regions_by_output_.resize(output_offsets_.back());
  std::vector<std::size_t> cursor(output_offsets_.begin(),
                                  output_offsets_.end() - 1);
  for (std::uint32_t r = 0; r < regions_.size(); ++r) {
    for (std::uint32_t o : regions_[r].outputs) {
      regions_by_output_[cursor[o]++] = r;
    }
  }
}

}  // namespace m3dfl::part
