#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "netlist/netlist.h"

namespace m3dfl::part {

/// Hierarchical campaign partitioning for paper-scale designs (GROOT-style:
/// partition the netlist graph, then shard the heavy per-site work per
/// partition). This is orthogonal to the two-*tier* partitioning in
/// m3d/partition.h: tiers model the physical M3D stack; these regions are a
/// scheduling decomposition of one (already tier-assigned) design so that
/// fault-simulation campaigns and diagnosis back-tracing touch one bounded
/// chunk of the circuit at a time.
///
/// Construction recursively bisects the gate set — along the placement
/// coordinate or the topological level, whichever currently spreads wider —
/// until every region holds at most `max_gates_per_region` gates. The split
/// key is total-ordered (ties broken by gate id), so the region structure is
/// deterministic across platforms and thread counts.
///
/// Each region is *cone-closed* on the output side: it records the exact set
/// of observation points reachable from any of its gates. A fault campaign
/// sharded by region therefore knows every output its faults can disturb,
/// and diagnosis back-tracing can skip whole regions whose output footprint
/// misses the failing outputs.
struct HierPartitionOptions {
  /// Regions are split until they hold at most this many gates.
  std::size_t max_gates_per_region = 4096;
};

struct Region {
  std::vector<netlist::GateId> gates;  ///< Member gates, ascending.
  std::vector<netlist::SiteId> sites;  ///< Fault sites owned by member
                                       ///< gates (stem + branches), ascending.
  std::vector<std::uint32_t> outputs;  ///< Output indices reachable from any
                                       ///< member gate (forward closure),
                                       ///< ascending.
};

class HierPartition {
 public:
  HierPartition(const netlist::Netlist& nl, const netlist::SiteTable& sites,
                HierPartitionOptions opts = {});

  std::size_t num_regions() const { return regions_.size(); }
  const Region& region(std::size_t r) const { return regions_[r]; }
  const std::vector<Region>& regions() const { return regions_; }

  /// Region owning gate `g`.
  std::uint32_t region_of_gate(netlist::GateId g) const {
    return region_of_gate_[g];
  }

  /// Regions whose output footprint contains output index `o` — i.e. the
  /// regions a failure at `o` could have originated in.
  std::span<const std::uint32_t> regions_of_output(std::uint32_t o) const {
    return {regions_by_output_.data() + output_offsets_[o],
            output_offsets_[o + 1] - output_offsets_[o]};
  }

  /// Fanin edges whose driver and receiver live in different regions.
  std::size_t cut_edges() const { return cut_edges_; }

  /// Largest region, in gates.
  std::size_t max_region_gates() const { return max_region_gates_; }

 private:
  std::vector<Region> regions_;
  std::vector<std::uint32_t> region_of_gate_;
  /// CSR: regions_by_output_[output_offsets_[o] .. output_offsets_[o+1])
  /// lists the regions reaching output o, ascending.
  std::vector<std::uint32_t> regions_by_output_;
  std::vector<std::size_t> output_offsets_;
  std::size_t cut_edges_ = 0;
  std::size_t max_region_gates_ = 0;
};

}  // namespace m3dfl::part
