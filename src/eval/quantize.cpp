#include "eval/quantize.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "core/pr_curve.h"

namespace m3dfl::eval {

namespace {

/// Correctness-PR samples (Table-IV construction) for one prediction
/// function: (confidence, tier-call-correct) per labeled graph.
template <typename Predict>
std::vector<std::pair<double, bool>> tier_pr_samples(
    std::span<const gnn::LabeledGraph> data, Predict predict) {
  std::vector<std::pair<double, bool>> out;
  out.reserve(data.size());
  for (const gnn::LabeledGraph& ex : data) {
    const std::vector<double> p = predict(*ex.graph);
    const int call =
        p[core::TierPredictor::label_of(netlist::Tier::kTop)] >=
                p[core::TierPredictor::label_of(netlist::Tier::kBottom)]
            ? core::TierPredictor::label_of(netlist::Tier::kTop)
            : core::TierPredictor::label_of(netlist::Tier::kBottom);
    out.push_back({std::max(p[0], p[1]), call == ex.label});
  }
  return out;
}

/// recall@3 of a MIV scorer: fraction of labeled graphs whose faulty MIV
/// appears among the 3 top-scoring MIV nodes.
template <typename Score>
double miv_recall_at3(std::span<const graphx::SubGraph* const> data,
                      Score score) {
  std::size_t considered = 0, hits = 0;
  for (const graphx::SubGraph* g : data) {
    const bool has_truth =
        std::any_of(g->miv_label.begin(), g->miv_label.end(),
                    [](float v) { return v > 0.5f; });
    if (!has_truth) continue;
    ++considered;
    const std::vector<double> s = score(*g);
    std::vector<std::size_t> order(s.size());
    for (std::size_t k = 0; k < s.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(),
              [&s](std::size_t a, std::size_t b) { return s[a] > s[b]; });
    if (order.size() > 3) order.resize(3);
    for (std::size_t k : order) {
      if (g->miv_label[k] > 0.5f) {
        ++hits;
        break;
      }
    }
  }
  return considered ? static_cast<double>(hits) / considered : -1.0;
}

/// The fp32-vs-int8 comparison shared by quantize_framework (freshly
/// calibrated twin) and evaluate_framework (the framework's persisted
/// twin). With q == nullptr only the fp32 columns are filled.
QuantReport compare_paths(const TrainedFramework& fw,
                          const QuantizedFramework* q,
                          std::span<const gnn::LabeledGraph> tier_eval,
                          std::span<const graphx::SubGraph* const> miv_eval,
                          double tp_precision_target) {
  QuantReport report;

  const auto fp32_samples = tier_pr_samples(
      tier_eval, [&fw](const graphx::SubGraph& g) {
        return fw.tier.model().predict(g);
      });
  const core::PrCurve fp32_curve = core::PrCurve::from_samples(fp32_samples);
  report.fp32_auprc = fp32_curve.auprc();
  report.fp32_t_p = fp32_curve.threshold_for_precision(tp_precision_target);
  report.fp32_recall_at_tp = fp32_curve.recall_at(report.fp32_t_p);
  report.fp32_miv_recall3 = miv_recall_at3(
      miv_eval, [&fw](const graphx::SubGraph& g) { return fw.miv.scores(g); });
  if (q == nullptr) return report;

  report.has_int8 = true;
  report.calib_graphs = q->calib_graphs();
  report.fingerprint = q->fingerprint();

  // PR curve on the same evaluation graphs through the quantized path, and
  // T_p re-selected on the quantized confidence distribution.
  const auto int8_samples = tier_pr_samples(
      tier_eval, [q](const graphx::SubGraph& g) { return q->tier.predict(g); });
  const core::PrCurve int8_curve = core::PrCurve::from_samples(int8_samples);
  report.int8_auprc = int8_curve.auprc();
  report.int8_t_p = int8_curve.threshold_for_precision(tp_precision_target);
  report.int8_recall_at_tp = int8_curve.recall_at(report.int8_t_p);

  // Score-delta bound over every probability both paths produced.
  for (const gnn::LabeledGraph& ex : tier_eval) {
    const std::vector<double> a = fw.tier.model().predict(*ex.graph);
    const std::vector<double> b = q->tier.predict(*ex.graph);
    for (std::size_t i = 0; i < a.size(); ++i) {
      report.max_abs_score_delta =
          std::max(report.max_abs_score_delta, std::abs(a[i] - b[i]));
    }
  }
  for (const graphx::SubGraph* g : miv_eval) {
    const std::vector<double> a = fw.miv.scores(*g);
    const std::vector<double> b = q->miv.predict_miv(*g);
    for (std::size_t i = 0; i < a.size(); ++i) {
      report.max_abs_score_delta =
          std::max(report.max_abs_score_delta, std::abs(a[i] - b[i]));
    }
  }

  report.int8_miv_recall3 = miv_recall_at3(
      miv_eval,
      [q](const graphx::SubGraph& g) { return q->miv.predict_miv(g); });
  return report;
}

}  // namespace

QuantReport quantize_framework(TrainedFramework& fw,
                               std::span<const graphx::SubGraph* const> calib,
                               std::span<const gnn::LabeledGraph> tier_eval,
                               std::span<const graphx::SubGraph* const>
                                   miv_eval,
                               const QuantizeOptions& opts) {
  gnn::QuantCalibrationOptions copts;
  copts.num_threads = opts.num_threads;

  auto q = std::make_shared<QuantizedFramework>();
  q->tier = gnn::quantize_graph_classifier(fw.tier.model(), calib, copts);
  q->miv = gnn::quantize_node_scorer(fw.miv.model(), calib, copts);
  q->classifier =
      gnn::quantize_graph_classifier(fw.classifier.model(), calib, copts);
  q->policy = fw.policy;

  QuantReport report = compare_paths(fw, q.get(), tier_eval, miv_eval,
                                     opts.tp_precision_target);
  q->policy.t_p = report.int8_t_p;
  fw.quant = std::move(q);
  return report;
}

QuantReport evaluate_framework(const TrainedFramework& fw,
                               InferenceMode mode,
                               std::span<const gnn::LabeledGraph> tier_eval,
                               std::span<const graphx::SubGraph* const>
                                   miv_eval,
                               double tp_precision_target) {
  const QuantizedFramework* q =
      mode == InferenceMode::kInt8 ? fw.quant.get() : nullptr;
  return compare_paths(fw, q, tier_eval, miv_eval, tp_precision_target);
}

std::string format_quant_report(const QuantReport& report) {
  std::ostringstream os;
  if (report.has_int8) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(report.fingerprint));
    os << "calibration graphs     " << report.calib_graphs << '\n'
       << "scale fingerprint      " << fp << '\n';
  }
  os << "tier AUPRC fp32        " << report.fp32_auprc << '\n';
  if (report.has_int8) {
    os << "tier AUPRC int8        " << report.int8_auprc << '\n'
       << "tier AUPRC delta       " << report.auprc_delta() << '\n';
  }
  os << "T_p fp32               " << report.fp32_t_p << '\n';
  if (report.has_int8) {
    os << "T_p int8 (re-derived)  " << report.int8_t_p << '\n';
  }
  os << "recall@T_p fp32        " << report.fp32_recall_at_tp << '\n';
  if (report.has_int8) {
    os << "recall@T_p int8        " << report.int8_recall_at_tp << '\n';
  }
  if (report.fp32_miv_recall3 >= 0.0) {
    os << "MIV recall@3 fp32      " << report.fp32_miv_recall3 << '\n';
    if (report.has_int8) {
      os << "MIV recall@3 int8      " << report.int8_miv_recall3 << '\n';
    }
  }
  if (report.has_int8) {
    os << "max |score delta|      " << report.max_abs_score_delta << '\n';
  }
  return os.str();
}

}  // namespace m3dfl::eval
