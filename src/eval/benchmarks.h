#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atpg/patterns.h"
#include "atpg/scan_config.h"
#include "diagnosis/diagnoser.h"
#include "graphx/hetero_graph.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/fault_site.h"
#include "netlist/generators.h"
#include "netlist/transforms.h"
#include "sim/fault_sim.h"

namespace m3dfl::eval {

/// Design configurations evaluated in the paper (Sec. IV):
///  * kSyn1 — the training synthesis/partitioning flow;
///  * kTPI  — test-point-inserted netlist;
///  * kSyn2 — re-synthesized netlist (different clock target);
///  * kPar  — alternative M3D partitioning algorithm;
///  * kRandomPart — random partitioning (data augmentation only).
enum class Config : std::uint8_t { kSyn1, kTPI, kSyn2, kPar, kRandomPart };

const char* config_name(Config c);

/// All four evaluation configurations, in table order.
std::vector<Config> eval_configs();

/// Everything that defines one benchmark circuit and its test setup. The
/// four presets below stand in for the paper's AES / Tate / netcard /
/// leon3mp (see DESIGN.md "Substitutions"): sizes are scaled down ~60x but
/// the ordering and the diagnosis-difficulty profile (equivalence-class
/// size via buffer_fraction, cone depth via locality/levels) mirror the
/// paper's Table III.
struct BenchmarkSpec {
  std::string name;
  netlist::GeneratorParams gen;
  std::uint32_t num_chains = 32;
  std::uint32_t compaction_ratio = 20;
  std::size_t num_patterns = 256;
  /// Enhanced-scan test application (independently controllable launch and
  /// capture vectors). Gives the 97-99% TDF coverage the paper's
  /// commercial deterministic ATPG reaches; plain launch-off-capture with
  /// random vectors is also supported (see sim/logic_sim.h).
  bool enhanced_scan = true;
  /// Deterministic PODEM top-off budget (extra patterns appended after the
  /// random base to reach paper-level TDF coverage). 0 disables.
  std::size_t max_topoff_patterns = 512;
  diag::DiagnoserOptions diag;
  std::uint64_t seed = 1;
};

BenchmarkSpec aes_spec();
BenchmarkSpec tate_spec();
BenchmarkSpec netcard_spec();
BenchmarkSpec leon3mp_spec();
std::vector<BenchmarkSpec> all_benchmark_specs();

/// A small spec for unit/integration tests (sub-second end-to-end).
BenchmarkSpec tiny_spec();

/// Paper-scale spec: an actual-size design (the paper's benchmarks span
/// 98K–338K gates) with rent-style heavy-tailed fanout
/// (GeneratorParams::rent_exponent) and paper-like scan-chain counts.
/// Deterministic PODEM top-off is disabled and the random pattern budget is
/// reduced — at this scale the dictionary/diagnosis campaigns are the
/// subject under test, not ATPG closure. Campaigns over these specs should
/// use FaultDictionaryOptions::partition_max_gates (cone-closed region
/// sharding) and, for dictionaries, spill_path (out-of-core signatures).
BenchmarkSpec paper_scale_spec(std::uint32_t num_logic_gates,
                               std::uint64_t seed = 0x9a9e0001ull);

/// Named paper-scale presets, CLI-visible as "m3d100k" / "m3d338k".
BenchmarkSpec m3d100k_spec();
BenchmarkSpec m3d338k_spec();

/// A fully built design: M3D netlist + scan + patterns + bound simulator +
/// heterogeneous graph. Heap-held and immovable once built (the simulator
/// and graph hold pointers into the owning struct).
struct Design {
  BenchmarkSpec spec;
  Config config = Config::kSyn1;

  netlist::Netlist nl;  ///< M3D netlist (tiers assigned, MIVs inserted).
  netlist::SiteTable sites;
  part::PartitionResult part;  ///< Tier stats of the final netlist.
  atpg::ScanConfig scan;
  sim::PatternSet patterns;    ///< Launch (V1) scan loads.
  sim::PatternSet patterns_v2; ///< Capture (V2) loads (enhanced scan only).

  std::unique_ptr<sim::FaultSimulator> fsim;   ///< Bound to `patterns`.
  std::unique_ptr<graphx::HeteroGraph> graph;  ///< Transitions bound.

  double graph_build_seconds = 0.0;  ///< Feature-construction time (T. IX).
  double atpg_coverage = 0.0;  ///< Raw TDF coverage (all faults).
  double test_coverage = 0.0;  ///< Coverage over testable faults (the
                               ///< figure commercial tools report).
  std::size_t num_topoff_patterns = 0;

  Design() = default;
  Design(const Design&) = delete;
  Design& operator=(const Design&) = delete;

  /// A diagnoser wired to this design (bound to fsim).
  diag::Diagnoser make_diagnoser(bool multifault = false) const;
};

/// Builds a design for a benchmark in a given configuration.
/// partition_seed distinguishes multiple random partitions (kRandomPart).
std::unique_ptr<Design> build_design(const BenchmarkSpec& spec, Config config,
                                     std::uint64_t partition_seed = 0);

/// Process-wide design cache: building a design (ATPG with deterministic
/// top-off, good-machine simulation, heterogeneous-graph construction) is
/// the expensive step of every experiment, and designs are immutable once
/// built, so experiment drivers share them. Keyed by (spec identity,
/// config, partition_seed). Thread-safe: lookups serialize on an internal
/// mutex (the experiment drivers now fan datagen out over worker threads),
/// and the returned reference stays valid for the process lifetime.
Design& cached_design(const BenchmarkSpec& spec, Config config,
                      std::uint64_t partition_seed = 0);

}  // namespace m3dfl::eval
