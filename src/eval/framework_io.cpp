#include "eval/framework_io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "gnn/serialize.h"

namespace m3dfl::eval {
namespace {

// Every policy knob is a probability-like threshold; anything outside
// [0, 1] (or non-finite, e.g. a corrupted exponent) is a broken file, and
// accepting it would silently disable pruning or prune everything.
bool valid_policy_value(double v) { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

}  // namespace

void save_framework(const TrainedFramework& fw, std::ostream& os) {
  os << "m3dfl-framework v1\n";
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "policy t_p " << fw.policy.t_p << '\n';
  os << "policy miv_threshold " << fw.policy.miv_threshold << '\n';
  os << "policy classifier_threshold " << fw.policy.classifier_threshold
     << '\n';
  os << "policy reorder_floor " << fw.policy.reorder_floor << '\n';
  os.precision(old_precision);
  gnn::save_graph_classifier(fw.tier.model(), os);
  gnn::save_node_scorer(fw.miv.model(), os);
  gnn::save_graph_classifier(fw.classifier.model(), os);
}

bool load_framework(TrainedFramework& fw, std::istream& is,
                    std::string* error) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "m3dfl-framework" ||
      version != "v1") {
    if (error) *error = "bad header (expected 'm3dfl-framework v1')";
    return false;
  }
  TrainedFramework loaded;
  for (int i = 0; i < 4; ++i) {
    std::string word, key;
    double value = 0.0;
    if (!(is >> word >> key >> value) || word != "policy") {
      if (error) *error = "expected 4 'policy <key> <value>' lines";
      return false;
    }
    if (!valid_policy_value(value)) {
      if (error) {
        *error = "policy value for '" + key + "' outside [0, 1]";
      }
      return false;
    }
    if (key == "t_p") {
      loaded.policy.t_p = value;
    } else if (key == "miv_threshold") {
      loaded.policy.miv_threshold = value;
    } else if (key == "classifier_threshold") {
      loaded.policy.classifier_threshold = value;
    } else if (key == "reorder_floor") {
      loaded.policy.reorder_floor = value;
    } else {
      if (error) *error = "unknown policy key '" + key + "'";
      return false;
    }
  }
  if (!gnn::load_graph_classifier(loaded.tier.model(), is, error) ||
      !gnn::load_node_scorer(loaded.miv.model(), is, error) ||
      !gnn::load_graph_classifier(loaded.classifier.model(), is, error)) {
    return false;
  }
  fw = std::move(loaded);
  return true;
}

bool load_framework_file(TrainedFramework& fw, const std::string& path,
                         std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  is.seekg(0, std::ios::end);
  const auto bytes = is.tellg();
  if (bytes < 0 ||
      static_cast<std::uint64_t>(bytes) > kMaxFrameworkFileBytes) {
    if (error) {
      *error = path + " is implausibly large for a framework file (" +
               std::to_string(bytes) + " bytes)";
    }
    return false;
  }
  is.seekg(0, std::ios::beg);
  return load_framework(fw, is, error);
}

std::string framework_to_string(const TrainedFramework& fw) {
  std::ostringstream os;
  save_framework(fw, os);
  return os.str();
}

bool framework_from_string(TrainedFramework& fw, const std::string& text,
                           std::string* error) {
  std::istringstream is(text);
  return load_framework(fw, is, error);
}

}  // namespace m3dfl::eval
