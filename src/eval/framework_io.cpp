#include "eval/framework_io.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "gnn/serialize.h"

namespace m3dfl::eval {
namespace {

// Every policy knob is a probability-like threshold; anything outside
// [0, 1] (or non-finite, e.g. a corrupted exponent) is a broken file, and
// accepting it would silently disable pruning or prune everything.
bool valid_policy_value(double v) { return std::isfinite(v) && v >= 0.0 && v <= 1.0; }

}  // namespace

namespace {

void write_policy(std::ostream& os, const core::PolicyConfig& policy) {
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "policy t_p " << policy.t_p << '\n';
  os << "policy miv_threshold " << policy.miv_threshold << '\n';
  os << "policy classifier_threshold " << policy.classifier_threshold << '\n';
  os << "policy reorder_floor " << policy.reorder_floor << '\n';
  os.precision(old_precision);
}

bool read_policy(std::istream& is, core::PolicyConfig& policy,
                 std::string* error) {
  for (int i = 0; i < 4; ++i) {
    std::string word, key;
    double value = 0.0;
    if (!(is >> word >> key >> value) || word != "policy") {
      if (error) *error = "expected 4 'policy <key> <value>' lines";
      return false;
    }
    if (!valid_policy_value(value)) {
      if (error) *error = "policy value for '" + key + "' outside [0, 1]";
      return false;
    }
    if (key == "t_p") {
      policy.t_p = value;
    } else if (key == "miv_threshold") {
      policy.miv_threshold = value;
    } else if (key == "classifier_threshold") {
      policy.classifier_threshold = value;
    } else if (key == "reorder_floor") {
      policy.reorder_floor = value;
    } else {
      if (error) *error = "unknown policy key '" + key + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

void save_framework(const TrainedFramework& fw, std::ostream& os) {
  os << "m3dfl-framework v1\n";
  write_policy(os, fw.policy);
  gnn::save_graph_classifier(fw.tier.model(), os);
  gnn::save_node_scorer(fw.miv.model(), os);
  gnn::save_graph_classifier(fw.classifier.model(), os);
  if (fw.quant) {
    // Optional trailing section — readers without it (or files without it)
    // stay compatible: the loader treats EOF here as "no quantized twin".
    os << "quant\n";
    write_policy(os, fw.quant->policy);
    gnn::save_quantized_graph_classifier(fw.quant->tier, os);
    gnn::save_quantized_node_scorer(fw.quant->miv, os);
    gnn::save_quantized_graph_classifier(fw.quant->classifier, os);
  }
}

bool load_framework(TrainedFramework& fw, std::istream& is,
                    std::string* error) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != "m3dfl-framework" ||
      version != "v1") {
    if (error) *error = "bad header (expected 'm3dfl-framework v1')";
    return false;
  }
  TrainedFramework loaded;
  if (!read_policy(is, loaded.policy, error)) return false;
  if (!gnn::load_graph_classifier(loaded.tier.model(), is, error) ||
      !gnn::load_node_scorer(loaded.miv.model(), is, error) ||
      !gnn::load_graph_classifier(loaded.classifier.model(), is, error)) {
    return false;
  }
  std::string word;
  if (is >> word) {
    if (word != "quant") {
      if (error) *error = "unexpected trailing section '" + word + "'";
      return false;
    }
    auto q = std::make_shared<QuantizedFramework>();
    if (!read_policy(is, q->policy, error)) return false;
    if (!gnn::load_quantized_graph_classifier(q->tier, is, error) ||
        !gnn::load_quantized_node_scorer(q->miv, is, error) ||
        !gnn::load_quantized_graph_classifier(q->classifier, is, error)) {
      return false;
    }
    loaded.quant = std::move(q);
  }
  fw = std::move(loaded);
  return true;
}

bool load_framework_file(TrainedFramework& fw, const std::string& path,
                         std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  is.seekg(0, std::ios::end);
  const auto bytes = is.tellg();
  if (bytes < 0 ||
      static_cast<std::uint64_t>(bytes) > kMaxFrameworkFileBytes) {
    if (error) {
      *error = path + " is implausibly large for a framework file (" +
               std::to_string(bytes) + " bytes)";
    }
    return false;
  }
  is.seekg(0, std::ios::beg);
  return load_framework(fw, is, error);
}

std::string framework_to_string(const TrainedFramework& fw) {
  std::ostringstream os;
  save_framework(fw, os);
  return os.str();
}

bool framework_from_string(TrainedFramework& fw, const std::string& text,
                           std::string* error) {
  std::istringstream is(text);
  return load_framework(fw, is, error);
}

}  // namespace m3dfl::eval
