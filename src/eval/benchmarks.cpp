#include "eval/benchmarks.h"

#include <cassert>
#include <chrono>
#include <map>
#include <mutex>

#include "common/rng.h"
#include "obs/trace.h"

namespace m3dfl::eval {

using netlist::GeneratorParams;
using netlist::Netlist;

const char* config_name(Config c) {
  switch (c) {
    case Config::kSyn1: return "Syn-1";
    case Config::kTPI: return "TPI";
    case Config::kSyn2: return "Syn-2";
    case Config::kPar: return "Par";
    case Config::kRandomPart: return "Rand";
  }
  return "?";
}

std::vector<Config> eval_configs() {
  return {Config::kSyn1, Config::kTPI, Config::kSyn2, Config::kPar};
}

BenchmarkSpec aes_spec() {
  BenchmarkSpec s;
  s.name = "aes";
  s.gen.num_logic_gates = 1600;
  s.gen.num_scan_cells = 144;
  s.gen.num_primary_inputs = 16;
  s.gen.num_levels = 13;
  s.gen.buffer_fraction = 0.10;
  s.gen.buffer_chain_len = 1;
  s.gen.xor_fraction = 0.22;  // Crypto datapaths are XOR-rich.
  s.gen.locality = 5;
  s.gen.seed = 0xae5'0001;
  s.num_chains = 40;
  s.num_patterns = 160;
  s.max_topoff_patterns = 512;
  s.diag.max_candidates = 32;
  s.diag.keep_score_ratio = 0.50;
  s.diag.min_score = 0.22;
  s.diag.single_fault_relax = 0.80;
  s.seed = 0xae5'1111;
  return s;
}

BenchmarkSpec tate_spec() {
  BenchmarkSpec s;
  s.name = "tate";
  s.gen.num_logic_gates = 2400;
  s.gen.num_scan_cells = 192;
  s.gen.num_primary_inputs = 12;
  s.gen.num_levels = 15;
  s.gen.buffer_fraction = 0.12;
  s.gen.buffer_chain_len = 1;
  s.gen.xor_fraction = 0.18;
  s.gen.locality = 6;
  s.gen.seed = 0x7a7e'0001;
  s.num_chains = 60;
  s.num_patterns = 192;
  s.max_topoff_patterns = 640;
  s.diag.max_candidates = 32;
  s.diag.keep_score_ratio = 0.50;
  s.diag.min_score = 0.22;
  s.diag.single_fault_relax = 0.80;
  s.seed = 0x7a7e'1111;
  return s;
}

BenchmarkSpec netcard_spec() {
  BenchmarkSpec s;
  s.name = "netcard";
  s.gen.num_logic_gates = 3200;
  s.gen.num_scan_cells = 288;
  s.gen.num_primary_inputs = 16;
  s.gen.num_levels = 17;
  // Heavy buffering + low XOR share => large fault-equivalence classes and
  // poor diagnostic resolution, reproducing the paper's hardest benchmark.
  s.gen.buffer_fraction = 0.34;
  s.gen.buffer_chain_len = 6;
  s.gen.xor_fraction = 0.06;
  s.gen.wide_gate_fraction = 0.15;
  s.gen.locality = 8;
  s.gen.seed = 0x0e7c'0001;
  s.num_chains = 80;
  s.num_patterns = 256;
  s.max_topoff_patterns = 768;
  s.diag.max_candidates = 64;
  s.diag.keep_score_ratio = 0.25;
  s.diag.min_score = 0.08;
  s.diag.single_fault_relax = 0.50;
  s.seed = 0x0e7c'1111;
  return s;
}

BenchmarkSpec leon3mp_spec() {
  BenchmarkSpec s;
  s.name = "leon3mp";
  s.gen.num_logic_gates = 4200;
  s.gen.num_scan_cells = 352;
  s.gen.num_primary_inputs = 16;
  s.gen.num_levels = 19;
  s.gen.buffer_fraction = 0.22;
  s.gen.buffer_chain_len = 5;
  s.gen.xor_fraction = 0.10;
  s.gen.locality = 7;
  s.gen.seed = 0x1e0'30001;
  s.num_chains = 80;
  s.num_patterns = 256;
  s.max_topoff_patterns = 896;
  s.diag.max_candidates = 48;
  s.diag.keep_score_ratio = 0.30;
  s.diag.min_score = 0.10;
  s.diag.single_fault_relax = 0.55;
  s.seed = 0x1e0'31111;
  return s;
}

std::vector<BenchmarkSpec> all_benchmark_specs() {
  return {aes_spec(), tate_spec(), netcard_spec(), leon3mp_spec()};
}

BenchmarkSpec tiny_spec() {
  BenchmarkSpec s;
  s.name = "tiny";
  s.gen.num_logic_gates = 260;
  s.gen.num_scan_cells = 40;
  s.gen.num_primary_inputs = 6;
  s.gen.num_levels = 8;
  s.gen.buffer_fraction = 0.15;
  s.gen.seed = 0x71417;
  s.num_chains = 10;
  s.num_patterns = 96;
  s.max_topoff_patterns = 128;
  s.diag.max_candidates = 24;
  s.seed = 0x71418;
  return s;
}

BenchmarkSpec paper_scale_spec(std::uint32_t num_logic_gates,
                               std::uint64_t seed) {
  BenchmarkSpec s;
  s.name = "m3d" + std::to_string(num_logic_gates / 1000) + "k";
  s.gen.num_logic_gates = num_logic_gates;
  // Paper-like flop density (~1 scan cell per 24 gates) keeps scan-out
  // responses proportional to design size without making the output space
  // dominate memory.
  s.gen.num_scan_cells = std::max<std::uint32_t>(256, num_logic_gates / 24);
  s.gen.num_primary_inputs = 64;
  s.gen.num_levels = 32;
  s.gen.buffer_fraction = 0.18;
  s.gen.buffer_chain_len = 3;
  s.gen.xor_fraction = 0.12;
  s.gen.wide_gate_fraction = 0.22;
  s.gen.locality = 8;
  s.gen.column_radius = 0.06;
  s.gen.rent_exponent = 0.65;
  s.gen.seed = derive_seed(seed, num_logic_gates);
  s.num_chains = 256;
  s.compaction_ratio = 20;
  // Reduced pattern budget, no deterministic top-off: the subject under
  // test at this scale is the partitioned campaign + out-of-core
  // dictionary, not ATPG closure.
  s.num_patterns = 64;
  s.max_topoff_patterns = 0;
  s.diag.max_candidates = 48;
  s.diag.keep_score_ratio = 0.30;
  s.diag.min_score = 0.10;
  s.diag.single_fault_relax = 0.55;
  s.seed = derive_seed(seed, 0x5ca1e);
  return s;
}

BenchmarkSpec m3d100k_spec() { return paper_scale_spec(100'000); }
BenchmarkSpec m3d338k_spec() { return paper_scale_spec(338'000); }

diag::Diagnoser Design::make_diagnoser(bool multifault) const {
  diag::DiagnoserOptions opts = spec.diag;
  opts.multifault = multifault;
  diag::Diagnoser d(nl, sites, scan, opts);
  d.bind(*fsim);
  return d;
}

std::unique_ptr<Design> build_design(const BenchmarkSpec& spec, Config config,
                                     std::uint64_t partition_seed) {
  M3DFL_OBS_SPAN(span, "design.build");
  auto d = std::make_unique<Design>();
  d->spec = spec;
  d->config = config;

  // 1. "Synthesis": the base 2D netlist, shared by every configuration of
  // the benchmark, then transformed per configuration.
  Netlist base = netlist::generate_netlist(spec.gen);
  switch (config) {
    case Config::kSyn2:
      base = netlist::resynthesize(base, derive_seed(spec.seed, 21));
      break;
    case Config::kTPI:
      base = netlist::insert_test_points(base, 0.01,
                                         derive_seed(spec.seed, 22));
      break;
    default:
      break;
  }

  // 2. 3D partitioning + MIV insertion.
  part::PartitionOptions popts;
  popts.seed = derive_seed(spec.seed, 31 + partition_seed);
  switch (config) {
    case Config::kPar:
      popts.algo = part::PartitionAlgo::kGreedyGain;
      break;
    case Config::kRandomPart:
      popts.algo = part::PartitionAlgo::kRandom;
      break;
    default:
      popts.algo = part::PartitionAlgo::kMinCut;
      break;
  }
  const part::PartitionResult part2d = part::partition_netlist(base, popts);
  part::MivInsertionResult m3d = part::insert_mivs(base, part2d);
  d->nl = std::move(m3d.netlist);
  d->sites = netlist::SiteTable(d->nl);
  d->part.tier_of_gate.assign(d->nl.num_gates(), netlist::Tier::kBottom);
  for (netlist::GateId g = 0; g < d->nl.num_gates(); ++g) {
    d->part.tier_of_gate[g] = d->nl.gate(g).tier;
  }
  part::update_cut_stats(d->nl, d->part);

  // 3. Scan + TDF pattern generation (regenerated per configuration, as in
  // the paper's flow).
  d->scan = atpg::ScanConfig::make(
      static_cast<std::uint32_t>(d->nl.num_outputs()), spec.num_chains,
      spec.compaction_ratio);
  atpg::PatternGenOptions pgen;
  pgen.num_patterns = spec.num_patterns;
  pgen.seed = derive_seed(spec.seed, 41 + static_cast<std::uint64_t>(config));
  if (spec.enhanced_scan) {
    atpg::TdfPatternPair pair = atpg::generate_tdf_patterns_with_topoff(
        d->nl, d->sites, pgen, spec.max_topoff_patterns);
    d->patterns = std::move(pair.v1);
    d->patterns_v2 = std::move(pair.v2);
    d->atpg_coverage = pair.coverage;
    d->test_coverage = pair.test_coverage;
    d->num_topoff_patterns = pair.num_topoff;
  } else {
    d->patterns = atpg::generate_tdf_patterns(d->nl, pgen);
  }

  // 4. Good-machine simulation + heterogeneous graph (feature
  // construction; timed for Table IX).
  const auto t0 = std::chrono::steady_clock::now();
  d->fsim = std::make_unique<sim::FaultSimulator>(d->nl, d->sites);
  if (spec.enhanced_scan) {
    d->fsim->bind(d->patterns, d->patterns_v2);
  } else {
    d->fsim->bind(d->patterns);
  }
  d->graph = std::make_unique<graphx::HeteroGraph>(d->nl, d->sites);
  d->graph->bind_transitions(d->fsim->good());
  const auto t1 = std::chrono::steady_clock::now();
  d->graph_build_seconds = std::chrono::duration<double>(t1 - t0).count();

  assert(d->nl.validate().empty());
  return d;
}

Design& cached_design(const BenchmarkSpec& spec, Config config,
                      std::uint64_t partition_seed) {
  static std::mutex cache_mu;
  static std::map<std::string, std::unique_ptr<Design>> cache;
  std::string key = spec.name;
  key += '/';
  key += config_name(config);
  key += '/';
  key += std::to_string(partition_seed);
  key += '/';
  key += std::to_string(spec.gen.num_logic_gates);
  key += '/';
  key += std::to_string(spec.num_patterns);
  key += '/';
  key += std::to_string(spec.max_topoff_patterns);
  key += '/';
  key += std::to_string(spec.seed);
  // Held across the build: a design is only ever constructed once, and a
  // second caller racing for the same key blocks until it exists. Designs
  // are immutable after build, so returned references need no lock.
  std::lock_guard<std::mutex> lock(cache_mu);
  auto [it, inserted] = cache.try_emplace(std::move(key));
  if (inserted) {
    it->second = build_design(spec, config, partition_seed);
  }
  return *it->second;
}

}  // namespace m3dfl::eval
