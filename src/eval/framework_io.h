#pragma once

#include <iosfwd>
#include <string>

#include "eval/experiments.h"

namespace m3dfl::eval {

/// On-disk format for a trained framework: the three GNN models plus the
/// calibrated policy thresholds. This is what a production deployment
/// ships to the tester floor — the paper's transferability result means
/// one such file serves every configuration of a design.
void save_framework(const TrainedFramework& fw, std::ostream& os);

/// Loads a framework saved by save_framework. Returns false and fills
/// `error` on malformed input. Robust against hostile bytes: truncation,
/// mutation, out-of-range policy values, and size-inflated tensor shapes
/// all fail cleanly with `fw` untouched (see gnn/serialize.h; fuzzed by
/// tests/io_test.cpp).
bool load_framework(TrainedFramework& fw, std::istream& is,
                    std::string* error = nullptr);

/// Upper bound on a plausible framework file. The text format stores ~10^4
/// parameters at <= 16 bytes each; anything near this limit is corrupt or
/// hostile, and refusing it up front keeps a bad deployment artifact from
/// tying up the loader.
inline constexpr std::size_t kMaxFrameworkFileBytes = 64u << 20;

/// Opens, size-checks (kMaxFrameworkFileBytes) and parses a framework
/// file. Returns false + error on unreadable, over-sized, or corrupt input.
bool load_framework_file(TrainedFramework& fw, const std::string& path,
                         std::string* error = nullptr);

std::string framework_to_string(const TrainedFramework& fw);
bool framework_from_string(TrainedFramework& fw, const std::string& text,
                           std::string* error = nullptr);

}  // namespace m3dfl::eval
