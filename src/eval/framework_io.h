#pragma once

#include <iosfwd>
#include <string>

#include "eval/experiments.h"

namespace m3dfl::eval {

/// On-disk format for a trained framework: the three GNN models plus the
/// calibrated policy thresholds. This is what a production deployment
/// ships to the tester floor — the paper's transferability result means
/// one such file serves every configuration of a design.
void save_framework(const TrainedFramework& fw, std::ostream& os);

/// Loads a framework saved by save_framework. Returns false and fills
/// `error` on malformed input.
bool load_framework(TrainedFramework& fw, std::istream& is,
                    std::string* error = nullptr);

std::string framework_to_string(const TrainedFramework& fw);
bool framework_from_string(TrainedFramework& fw, const std::string& text,
                           std::string* error = nullptr);

}  // namespace m3dfl::eval
