#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "eval/experiments.h"

namespace m3dfl::eval {

struct QuantizeOptions {
  /// Threads for the calibration sweep (scales are bit-identical at every
  /// value; see gnn::QuantCalibrationOptions).
  std::size_t num_threads = 1;
  /// Precision target for re-deriving T_p on the quantized confidence
  /// distribution (matches RunScale::tp_precision_target).
  double tp_precision_target = 0.99;
};

/// Side-by-side quality accounting of the fp32 and int8 paths on the same
/// evaluation samples — the `m3dfl quantize` / `m3dfl eval` report.
struct QuantReport {
  std::size_t calib_graphs = 0;
  std::uint64_t fingerprint = 0;  ///< Combined scale fingerprint.
  bool has_int8 = false;  ///< int8 columns below are meaningful.

  // Tier-predictor correctness-PR curve (the Table-IV construction).
  double fp32_auprc = 0.0;
  double int8_auprc = 0.0;
  double fp32_t_p = 0.0;          ///< Threshold at the precision target.
  double int8_t_p = 0.0;          ///< Re-selected on quantized scores.
  double fp32_recall_at_tp = 0.0;
  double int8_recall_at_tp = 0.0;

  // MIV-pinpointer recall@3 over graphs with a labeled faulty MIV.
  double fp32_miv_recall3 = -1.0;  ///< -1 when no labeled graphs given.
  double int8_miv_recall3 = -1.0;

  /// Largest |fp32 - int8| over every tier probability and MIV score
  /// evaluated — the end-to-end quantization error bound the tests gate.
  double max_abs_score_delta = 0.0;

  double auprc_delta() const { return int8_auprc - fp32_auprc; }
};

/// Calibrates and attaches an int8 twin to `fw` (fw.quant) and returns the
/// fp32-vs-int8 comparison. `calib` feeds activation-scale collection;
/// `tier_eval` drives the PR curves and the re-selection of T_p on
/// quantized confidences; `miv_eval` (graphs with miv_label filled, may be
/// empty) drives recall@3. The twin's policy inherits fw.policy except for
/// the re-derived T_p.
QuantReport quantize_framework(TrainedFramework& fw,
                               std::span<const graphx::SubGraph* const> calib,
                               std::span<const gnn::LabeledGraph> tier_eval,
                               std::span<const graphx::SubGraph* const>
                                   miv_eval,
                               const QuantizeOptions& opts = {});

/// Evaluation without (re-)calibration — the `m3dfl eval` driver. Always
/// fills the fp32 columns; with mode == kInt8 it additionally evaluates
/// the framework's existing quantized twin side by side (the caller must
/// check fw.quant first — a missing twin yields an fp32-only report).
QuantReport evaluate_framework(const TrainedFramework& fw,
                               InferenceMode mode,
                               std::span<const gnn::LabeledGraph> tier_eval,
                               std::span<const graphx::SubGraph* const>
                                   miv_eval,
                               double tp_precision_target = 0.99);

/// Formats a QuantReport as the aligned key/value block the CLI prints.
std::string format_quant_report(const QuantReport& report);

}  // namespace m3dfl::eval
