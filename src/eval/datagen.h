#pragma once

#include <cstdint>
#include <vector>

#include "eval/benchmarks.h"
#include "gnn/trainer.h"
#include "graphx/backtrace.h"
#include "sim/backend.h"
#include "sim/failure_log.h"

namespace m3dfl::eval {

/// Fault-injection mode of the data-generation flow (paper Fig. 4).
enum class FaultMode : std::uint8_t {
  kSingleSite,    ///< One TDF at a uniformly random fault site.
  kSingleMiv,     ///< One TDF at a uniformly random MIV (MIV-targeted set).
  kMultiSameTier, ///< 2-5 TDFs in one tier (tier-systematic defects,
                  ///< paper Sec. VII-A).
};

/// One generated diagnosis sample: the injected defect(s), the tester
/// failure log, and the back-traced labeled sub-graph.
struct Sample {
  sim::FailureLog log;
  std::vector<sim::InjectedFault> faults;
  std::vector<netlist::SiteId> truth_sites;  ///< Sites of `faults`.
  int fault_tier = -1;     ///< Tier label (all faults share it by design).
  bool truth_is_miv = false;
  graphx::SubGraph sub;    ///< Back-traced sub-graph with labels filled.
};

struct Dataset {
  std::vector<Sample> samples;

  std::size_t size() const { return samples.size(); }
};

struct DatagenOptions {
  std::size_t num_samples = 100;
  FaultMode mode = FaultMode::kSingleSite;
  bool compacted = false;
  std::uint64_t seed = 1;
  /// Retries per sample until the injected fault is detected by the
  /// pattern set AND (in compacted mode) survives XOR aliasing. Undetected
  /// draws and fully aliased compacted responses both charge this budget;
  /// a sample whose budget is exhausted is skipped, never retried forever.
  int max_retries = 64;
  /// Worker threads for the sample shards (0 = hardware concurrency).
  /// The output is bit-identical at every thread count — see the RNG
  /// contract below.
  std::size_t num_threads = 0;
  /// Simulation engine. kBitParallel sweeps windows of up to 512 samples
  /// per pass (one fault machine per bit lane); per-sample RNG streams and
  /// retry budgets are preserved, so the Dataset is bit-identical to the
  /// event backend at every thread count.
  sim::SimBackend backend = sim::SimBackend::kEvent;
};

/// Runs the Fig.-4 flow on a built design: inject -> simulate -> failure
/// log -> back-trace -> labeled sub-graph.
///
/// Determinism contract: sample i draws every random decision from its own
/// stream seeded with derive_seed(opts.seed, i). Samples are therefore
/// independent of each other, of num_samples (a longer run extends, never
/// perturbs, a shorter one), and of the thread count — the parallel shards
/// produce a Dataset bit-identical to the sequential flow.
Dataset generate_dataset(const Design& design, const DatagenOptions& opts);

/// Labeled views used by the GNN trainers.
std::vector<gnn::LabeledGraph> tier_labeled(const Dataset& ds);
std::vector<const graphx::SubGraph*> graphs_of(const Dataset& ds);

}  // namespace m3dfl::eval
