#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/policy.h"
#include "diagnosis/baseline.h"
#include "eval/datagen.h"

namespace m3dfl::eval {

/// Dataset-size and training knobs shared by the experiment drivers. The
/// defaults reproduce the paper's tables at library scale (see DESIGN.md);
/// tiny() shrinks everything for fast integration tests.
struct RunScale {
  std::size_t train_single = 300;      ///< Syn-1 single-fault samples.
  std::size_t train_random_part = 130; ///< Per random-partition design.
  std::size_t train_miv = 90;          ///< MIV-targeted training samples.
  std::size_t test_samples = 150;      ///< Per configuration.
  std::size_t baseline_train = 150;    ///< Diagnosed reports for [11].
  int tier_epochs = 48;
  int miv_epochs = 32;
  int cls_epochs = 24;
  /// Precision target on the training PR curve that defines T_p. The
  /// paper uses 0.99; because the prune/reorder Classifier provides a
  /// second safety net on Predicted-Positive samples, a slightly looser
  /// gate trades a fraction of a percent of accuracy for substantially
  /// more pruning opportunity.
  double tp_precision_target = 0.99;
  std::uint64_t seed = 1;
  /// Worker threads for dataset generation and training inside
  /// train_framework / build_training_bundle (0 = hardware concurrency).
  /// Outputs are bit-identical at every value — this is a speed knob only.
  std::size_t num_threads = 0;
  /// Simulation engine for dataset generation (another pure speed knob:
  /// both backends produce bit-identical datasets).
  sim::SimBackend sim_backend = sim::SimBackend::kEvent;
  /// Per-epoch progress hook for every model train_framework runs; `model`
  /// is "tier", "miv" or "classifier". Observational only (the CLI wires
  /// it to --progress); leaving it empty changes nothing.
  std::function<void(const std::string& model, const gnn::EpochStats&)>
      on_epoch;

  static RunScale tiny();
};

/// Which forward pass the diagnosis policy runs its models through.
enum class InferenceMode { kFp32, kInt8 };

const char* inference_mode_name(InferenceMode mode);
bool parse_inference_mode(const std::string& name, InferenceMode& out);

/// The int8 twin of a trained framework: calibrated quantized versions of
/// the three GNN models plus a policy whose thresholds (T_p in particular)
/// were re-derived by re-running the PR-curve selection on *quantized*
/// scores — a threshold tuned on fp32 confidences would silently shift its
/// operating point on the int8 score distribution.
struct QuantizedFramework {
  gnn::QuantizedGraphClassifier tier;
  gnn::QuantizedNodeScorer miv;
  gnn::QuantizedGraphClassifier classifier;
  core::PolicyConfig policy;

  /// Calibration-set size (the three models are calibrated together).
  std::size_t calib_graphs() const { return tier.provenance.calib_graphs; }
  /// Combined scale fingerprint over all three models — what /statusz
  /// reports as the calibration identity of a serving process.
  std::uint64_t fingerprint() const;
};

/// A trained instance of the proposed framework (all three GNN models plus
/// the PR-curve-derived policy configuration).
struct TrainedFramework {
  core::TierPredictor tier;
  core::MivPinpointer miv;
  core::PruneClassifier classifier;
  core::PolicyConfig policy;
  double gnn_train_seconds = 0.0;
  double train_tier_accuracy = 0.0;

  /// Optional calibrated int8 twin (produced by eval::quantize_framework,
  /// persisted through framework_io). shared_ptr so a framework value can
  /// be copied into the serving registry without duplicating the blobs;
  /// const because a published twin is immutable.
  std::shared_ptr<const QuantizedFramework> quant;

  core::PolicyModels models() const {
    return {&tier, &miv, &classifier};
  }

  /// Models for the requested inference mode. kInt8 without a quantized
  /// twin degrades to the fp32 models (callers that need to distinguish
  /// check `quant` first — the serving layer counts such fallbacks).
  core::PolicyModels models(InferenceMode mode) const {
    core::PolicyModels m{&tier, &miv, &classifier};
    if (mode == InferenceMode::kInt8 && quant) {
      m.tier_q = &quant->tier;
      m.miv_q = &quant->miv;
      m.classifier_q = &quant->classifier;
    }
    return m;
  }

  /// Policy thresholds matching models(mode) — the quantized twin carries
  /// its own T_p, selected on quantized scores.
  const core::PolicyConfig& policy_for(InferenceMode mode) const {
    return mode == InferenceMode::kInt8 && quant ? quant->policy : policy;
  }
};

/// Training designs + datasets: Syn-1 plus two randomly partitioned
/// netlists (the paper's data-augmentation recipe, Sec. IV), with both
/// single-fault and MIV-targeted samples.
struct TrainingBundle {
  /// Cache-owned designs (see cached_design); valid for process lifetime.
  Design* syn1 = nullptr;
  Design* rand1 = nullptr;
  Design* rand2 = nullptr;
  Dataset ds_syn1, ds_rand1, ds_rand2;  ///< Single-fault samples.
  Dataset miv_syn1, miv_rand1;          ///< MIV-targeted samples.

  std::vector<gnn::LabeledGraph> tier_training() const;
  std::vector<const graphx::SubGraph*> miv_training() const;
};

TrainingBundle build_training_bundle(const BenchmarkSpec& spec,
                                     bool compacted, const RunScale& scale);

/// Trains Tier-predictor, MIV-pinpointer and (via transfer + oversampling)
/// the prune/reorder Classifier; derives T_p from the training PR curve at
/// >= 99% precision.
TrainedFramework train_framework(const TrainingBundle& bundle,
                                 const RunScale& scale);

/// One table cell: report quality + optional tier-localization rate.
struct Cell {
  double accuracy = 0.0;
  double mean_res = 0.0, std_res = 0.0;
  double mean_fhi = 0.0, std_fhi = 0.0;
  double tier_loc = -1.0;  ///< -1 when not applicable.
};

/// One row of Tables V-VIII: a (benchmark, configuration) pair evaluated
/// under plain ATPG diagnosis, the 2D baseline [11], the GNN framework
/// standalone, and GNN + [11] combined.
struct EffectivenessRow {
  std::string design;
  std::string config;
  Cell atpg;      ///< Tables V / VII.
  Cell baseline;  ///< [11] columns of Tables VI / VIII.
  Cell gnn;       ///< "GNN standalone" columns.
  Cell gnn_plus;  ///< "GNN + [11]" columns.
};

/// Full effectiveness study for one benchmark (all four configurations).
/// Used by bench_table6 (compacted = false) and bench_table8 (true).
std::vector<EffectivenessRow> run_effectiveness(const BenchmarkSpec& spec,
                                                bool compacted,
                                                const RunScale& scale);

/// ATPG-report quality only (Tables V / VII) — much cheaper, no training.
struct AtpgQualityRow {
  std::string design;
  std::string config;
  Cell atpg;
};
std::vector<AtpgQualityRow> run_atpg_quality(const BenchmarkSpec& spec,
                                             bool compacted,
                                             const RunScale& scale);

/// Fig. 6: dedicated vs transferred model accuracy per configuration.
struct Fig6Row {
  std::string config;
  double dedicated_tier = 0.0;
  double transferred_tier = 0.0;
  double dedicated_miv = 0.0;
  double transferred_miv = 0.0;
};
std::vector<Fig6Row> run_fig6(const BenchmarkSpec& spec,
                              const RunScale& scale);

/// Fig. 5: PCA of sub-graph feature vectors across configurations.
struct Fig5Point {
  std::string config;
  double x = 0.0, y = 0.0;
};
struct Fig5Result {
  std::vector<Fig5Point> points;
  /// Mean distance between configuration centroids divided by the mean
  /// intra-configuration spread; << 1 means the clouds overlap (the
  /// paper's transferability argument).
  double separation_ratio = 0.0;
  double explained_variance = 0.0;
};
Fig5Result run_fig5(const BenchmarkSpec& spec, const RunScale& scale);

/// Table II: GNNExplainer-style feature significance (+ permutation
/// importance as a cross-check).
struct FeatureSignificanceResult {
  std::vector<double> significance;     ///< sigma(mask), per feature.
  std::vector<double> perm_importance;  ///< Accuracy drop, per feature.
};
FeatureSignificanceResult run_feature_significance(const BenchmarkSpec& spec,
                                                   const RunScale& scale);

/// Table III: the design matrix (+ measured TDF coverage).
struct DesignMatrixRow {
  std::string design;
  std::size_t gates = 0;
  std::size_t mivs = 0;
  std::size_t scan_chains = 0;
  std::size_t channels = 0;
  std::size_t chain_length = 0;
  std::size_t patterns = 0;
  std::size_t fault_sites = 0;
  double fault_coverage = 0.0;  ///< Raw coverage over all faults.
  double test_coverage = 0.0;   ///< Coverage over testable faults (FC as a
                                ///< commercial tool reports it).
};
std::vector<DesignMatrixRow> run_design_matrix();

/// Table IX + Fig. 10: runtime decomposition per benchmark (Syn-2 test
/// configuration, as in the paper).
struct RuntimeRow {
  std::string design;
  double feature_seconds = 0.0;  ///< Heterogeneous-graph construction.
  double train_seconds = 0.0;    ///< GNN training.
  double t_atpg = 0.0;           ///< Total ATPG diagnosis time (test set).
  double t_gnn = 0.0;            ///< Total back-trace + inference time.
  double t_update = 0.0;         ///< Total pruning/reordering time.
  double fhi_atpg = 0.0;         ///< Mean FHI before updating.
  double fhi_updated = 0.0;      ///< Mean FHI after updating.
};
std::vector<RuntimeRow> run_runtime(const RunScale& scale);

/// Table X: multi-fault (2-5 TDFs in one tier) localization; trained on
/// Syn-1 multi-fault samples, tested on Syn-2.
struct MultiFaultRow {
  std::string design;
  Cell atpg;
  Cell framework;
};
std::vector<MultiFaultRow> run_multifault(const BenchmarkSpec& spec,
                                          const RunScale& scale);

/// Table XI: ablation of the individual models on AES / Syn-1 with the
/// test set augmented by 10% MIV-fault-only samples.
struct AblationRow {
  std::string method;
  Cell cell;
};
std::vector<AblationRow> run_ablation(const BenchmarkSpec& spec,
                                      const RunScale& scale);

}  // namespace m3dfl::eval
