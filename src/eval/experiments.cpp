#include "eval/experiments.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "atpg/coverage.h"
#include "common/rng.h"
#include "core/pr_curve.h"
#include "gnn/explain.h"
#include "gnn/pca.h"
#include "obs/trace.h"

namespace m3dfl::eval {

using core::PolicyOutcome;
using core::QualityAccumulator;
using core::TierLocalizationCounter;
using diag::DiagnosisReport;
using netlist::SiteId;
using netlist::Tier;

const char* inference_mode_name(InferenceMode mode) {
  return mode == InferenceMode::kInt8 ? "int8" : "fp32";
}

bool parse_inference_mode(const std::string& name, InferenceMode& out) {
  if (name == "fp32") {
    out = InferenceMode::kFp32;
    return true;
  }
  if (name == "int8") {
    out = InferenceMode::kInt8;
    return true;
  }
  return false;
}

std::uint64_t QuantizedFramework::fingerprint() const {
  // FNV-1a over the three per-model scale fingerprints, in a fixed order.
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t v : {tier.provenance.scale_fingerprint,
                          miv.provenance.scale_fingerprint,
                          classifier.provenance.scale_fingerprint}) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

RunScale RunScale::tiny() {
  RunScale s;
  s.train_single = 48;
  s.train_random_part = 24;
  s.train_miv = 20;
  s.test_samples = 24;
  s.baseline_train = 32;
  s.tier_epochs = 10;
  s.miv_epochs = 8;
  s.cls_epochs = 6;
  return s;
}

std::vector<gnn::LabeledGraph> TrainingBundle::tier_training() const {
  std::vector<gnn::LabeledGraph> out = tier_labeled(ds_syn1);
  for (const Dataset* ds : {&ds_rand1, &ds_rand2}) {
    const auto more = tier_labeled(*ds);
    out.insert(out.end(), more.begin(), more.end());
  }
  return out;
}

std::vector<const graphx::SubGraph*> TrainingBundle::miv_training() const {
  // MIV-targeted positives plus regular samples as negatives (their MIV
  // nodes are labeled 0), restricted to graphs that contain MIV nodes.
  std::vector<const graphx::SubGraph*> out;
  for (const Dataset* ds : {&miv_syn1, &miv_rand1, &ds_syn1, &ds_rand1}) {
    for (const Sample& s : ds->samples) {
      if (s.sub.num_nodes() > 0 && !s.sub.miv_local.empty()) {
        out.push_back(&s.sub);
      }
    }
  }
  return out;
}

TrainingBundle build_training_bundle(const BenchmarkSpec& spec,
                                     bool compacted, const RunScale& scale) {
  TrainingBundle b;
  b.syn1 = &cached_design(spec, Config::kSyn1);
  b.rand1 = &cached_design(spec, Config::kRandomPart, 1);
  b.rand2 = &cached_design(spec, Config::kRandomPart, 2);

  DatagenOptions o;
  o.compacted = compacted;
  o.mode = FaultMode::kSingleSite;
  o.num_threads = scale.num_threads;
  o.backend = scale.sim_backend;
  o.num_samples = scale.train_single;
  o.seed = derive_seed(spec.seed, 1001 + scale.seed);
  b.ds_syn1 = generate_dataset(*b.syn1, o);
  o.num_samples = scale.train_random_part;
  o.seed = derive_seed(spec.seed, 1002 + scale.seed);
  b.ds_rand1 = generate_dataset(*b.rand1, o);
  o.seed = derive_seed(spec.seed, 1003 + scale.seed);
  b.ds_rand2 = generate_dataset(*b.rand2, o);

  o.mode = FaultMode::kSingleMiv;
  o.num_samples = scale.train_miv;
  o.seed = derive_seed(spec.seed, 1004 + scale.seed);
  b.miv_syn1 = generate_dataset(*b.syn1, o);
  o.num_samples = scale.train_miv / 2;
  o.seed = derive_seed(spec.seed, 1005 + scale.seed);
  b.miv_rand1 = generate_dataset(*b.rand1, o);
  return b;
}

TrainedFramework train_framework(const TrainingBundle& bundle,
                                 const RunScale& scale) {
  M3DFL_OBS_SPAN(fw_span, "train.framework");
  TrainedFramework fw;
  const auto t0 = std::chrono::steady_clock::now();

  // Tags RunScale's model-agnostic hook with which model is training.
  auto tagged = [&scale](const char* model) {
    std::function<void(const gnn::EpochStats&)> fn;
    if (scale.on_epoch) {
      fn = [&scale, model](const gnn::EpochStats& es) {
        scale.on_epoch(model, es);
      };
    }
    return fn;
  };

  // --- Tier-predictor -------------------------------------------------------
  const std::vector<gnn::LabeledGraph> tier_data = bundle.tier_training();
  gnn::TrainOptions topts;
  topts.epochs = scale.tier_epochs;
  topts.lr = 5e-3;
  topts.seed = derive_seed(scale.seed, 7001);
  topts.num_threads = scale.num_threads;
  topts.on_epoch = tagged("tier");
  {
    M3DFL_OBS_SPAN(span, "train.tier");
    fw.tier.train(tier_data, topts);
  }
  fw.train_tier_accuracy = fw.tier.accuracy(tier_data);

  // --- T_p from the training PR curve (precision >= 99%) -------------------
  std::vector<std::pair<double, bool>> pr_samples;
  pr_samples.reserve(tier_data.size());
  for (const gnn::LabeledGraph& ex : tier_data) {
    const auto pred = fw.tier.predict(*ex.graph);
    pr_samples.push_back({pred.confidence(),
                          static_cast<int>(pred.tier()) == ex.label});
  }
  const core::PrCurve curve = core::PrCurve::from_samples(pr_samples);
  fw.policy.t_p = curve.threshold_for_precision(scale.tp_precision_target);

  // --- MIV-pinpointer -------------------------------------------------------
  const std::vector<const graphx::SubGraph*> miv_data = bundle.miv_training();
  gnn::TrainOptions mopts;
  mopts.epochs = scale.miv_epochs;
  mopts.lr = 5e-3;
  mopts.pos_weight = 12.0;  // Faulty MIVs are rare among MIV nodes.
  mopts.seed = derive_seed(scale.seed, 7002);
  mopts.num_threads = scale.num_threads;
  mopts.on_epoch = tagged("miv");
  {
    M3DFL_OBS_SPAN(span, "train.miv");
    fw.miv.train(miv_data, mopts);
  }

  // --- Prune/reorder Classifier (network-based transfer) -------------------
  fw.classifier = core::PruneClassifier::transfer_from(
      fw.tier, derive_seed(scale.seed, 7003));
  std::vector<const graphx::SubGraph*> cls_graphs;
  std::vector<int> cls_labels;
  for (const gnn::LabeledGraph& ex : tier_data) {
    const auto pred = fw.tier.predict(*ex.graph);
    if (pred.confidence() < fw.policy.t_p) continue;  // Predicted Negative.
    cls_graphs.push_back(ex.graph);
    cls_labels.push_back(static_cast<int>(pred.tier()) == ex.label
                             ? core::PruneClassifier::kPrune
                             : core::PruneClassifier::kReorder);
  }
  gnn::TrainOptions copts;
  copts.epochs = scale.cls_epochs;
  copts.lr = 5e-3;
  copts.seed = derive_seed(scale.seed, 7004);
  copts.num_threads = scale.num_threads;
  copts.on_epoch = tagged("classifier");
  {
    M3DFL_OBS_SPAN(span, "train.classifier");
    fw.classifier.train_balanced(cls_graphs, cls_labels, copts,
                                 derive_seed(scale.seed, 7005));
  }

  const auto t1 = std::chrono::steady_clock::now();
  fw.gnn_train_seconds = std::chrono::duration<double>(t1 - t0).count();
  return fw;
}

namespace {

Cell cell_from(const QualityAccumulator& q,
               const TierLocalizationCounter* loc) {
  const core::QualityStats s = q.stats();
  Cell c;
  c.accuracy = s.accuracy;
  c.mean_res = s.mean_resolution;
  c.std_res = s.std_resolution;
  c.mean_fhi = s.mean_fhi;
  c.std_fhi = s.std_fhi;
  if (loc) c.tier_loc = loc->rate();
  return c;
}

/// Trains the [11] first-level classifier on diagnosed Syn-1 samples.
diag::BaselineModel train_baseline_on(const Design& design,
                                      const Dataset& train_ds,
                                      std::size_t max_reports) {
  diag::Diagnoser diagnoser = design.make_diagnoser();
  std::vector<DiagnosisReport> reports;
  std::vector<diag::BaselineTrainingSample> samples;
  const std::size_t n = std::min(max_reports, train_ds.samples.size());
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reports.push_back(diagnoser.diagnose(train_ds.samples[i].log));
  }
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back({&reports[i], train_ds.samples[i].truth_sites});
  }
  return diag::train_baseline(samples, design.nl, design.sites);
}

}  // namespace

std::vector<AtpgQualityRow> run_atpg_quality(const BenchmarkSpec& spec,
                                             bool compacted,
                                             const RunScale& scale) {
  std::vector<AtpgQualityRow> rows;
  for (Config config : eval_configs()) {
    const Design* design = &cached_design(spec, config);
    DatagenOptions o;
    o.compacted = compacted;
    o.num_samples = scale.test_samples;
    o.seed = derive_seed(spec.seed, 2001 + static_cast<std::uint64_t>(config));
    const Dataset test = generate_dataset(*design, o);
    diag::Diagnoser diagnoser = design->make_diagnoser();
    QualityAccumulator acc;
    for (const Sample& s : test.samples) {
      acc.add(diagnoser.diagnose(s.log), s.truth_sites);
    }
    rows.push_back({spec.name, config_name(config), cell_from(acc, nullptr)});
  }
  return rows;
}

std::vector<EffectivenessRow> run_effectiveness(const BenchmarkSpec& spec,
                                                bool compacted,
                                                const RunScale& scale) {
  const TrainingBundle bundle = build_training_bundle(spec, compacted, scale);
  const TrainedFramework fw = train_framework(bundle, scale);
  const diag::BaselineModel bmodel =
      train_baseline_on(*bundle.syn1, bundle.ds_syn1, scale.baseline_train);

  std::vector<EffectivenessRow> rows;
  for (Config config : eval_configs()) {
    const Design* design = &cached_design(spec, config);

    DatagenOptions o;
    o.compacted = compacted;
    o.num_samples = scale.test_samples;
    o.seed = derive_seed(spec.seed, 2001 + static_cast<std::uint64_t>(config));
    const Dataset test = generate_dataset(*design, o);

    diag::Diagnoser diagnoser = design->make_diagnoser();
    QualityAccumulator acc_atpg, acc_base, acc_gnn, acc_plus;
    TierLocalizationCounter loc_base, loc_gnn;

    for (const Sample& s : test.samples) {
      const DiagnosisReport report = diagnoser.diagnose(s.log);
      const bool atpg_single = report.single_tier();
      const auto fault_tier = static_cast<Tier>(s.fault_tier);

      acc_atpg.add(report, s.truth_sites);

      const DiagnosisReport brep =
          diag::apply_baseline(report, bmodel, design->nl, design->sites);
      acc_base.add(brep, s.truth_sites);
      Tier btier = Tier::kBottom;
      loc_base.add(atpg_single,
                   brep.single_tier(&btier) && btier == fault_tier);

      const PolicyOutcome outcome =
          core::apply_policy(report, s.sub, fw.models(), fw.policy);
      acc_gnn.add(outcome.report, s.truth_sites);
      loc_gnn.add(atpg_single, outcome.predicted_tier == fault_tier);

      const DiagnosisReport prep = diag::apply_baseline(
          outcome.report, bmodel, design->nl, design->sites);
      acc_plus.add(prep, s.truth_sites);
    }

    EffectivenessRow row;
    row.design = spec.name;
    row.config = config_name(config);
    row.atpg = cell_from(acc_atpg, nullptr);
    row.baseline = cell_from(acc_base, &loc_base);
    row.gnn = cell_from(acc_gnn, &loc_gnn);
    row.gnn_plus = cell_from(acc_plus, &loc_gnn);
    rows.push_back(row);
  }
  return rows;
}

std::vector<Fig6Row> run_fig6(const BenchmarkSpec& spec,
                              const RunScale& scale) {
  const TrainingBundle bundle = build_training_bundle(spec, false, scale);
  const TrainedFramework transferred = train_framework(bundle, scale);

  std::vector<Fig6Row> rows;
  for (Config config : eval_configs()) {
    const Design* design = &cached_design(spec, config);

    // Dedicated models: trained on this configuration's own samples.
    DatagenOptions o;
    o.num_samples = scale.train_single;
    o.seed = derive_seed(spec.seed, 3001 + static_cast<std::uint64_t>(config));
    const Dataset ded_train = generate_dataset(*design, o);
    o.mode = FaultMode::kSingleMiv;
    o.num_samples = scale.train_miv;
    o.seed = derive_seed(spec.seed, 3002 + static_cast<std::uint64_t>(config));
    const Dataset ded_miv = generate_dataset(*design, o);

    core::TierPredictor ded_tier(derive_seed(spec.seed, 3100));
    gnn::TrainOptions topts;
    topts.epochs = scale.tier_epochs;
    topts.lr = 5e-3;
    topts.seed = derive_seed(spec.seed, 3101);
    const auto ded_tier_data = tier_labeled(ded_train);
    ded_tier.train(ded_tier_data, topts);

    core::MivPinpointer ded_pin(derive_seed(spec.seed, 3200));
    std::vector<const graphx::SubGraph*> ded_miv_data;
    for (const Dataset* ds : {&ded_miv, &ded_train}) {
      for (const Sample& s : ds->samples) {
        if (s.sub.num_nodes() > 0 && !s.sub.miv_local.empty()) {
          ded_miv_data.push_back(&s.sub);
        }
      }
    }
    gnn::TrainOptions mopts;
    mopts.epochs = scale.miv_epochs;
    mopts.lr = 5e-3;
    mopts.pos_weight = 12.0;
    mopts.seed = derive_seed(spec.seed, 3201);
    ded_pin.train(ded_miv_data, mopts);

    // Test sets for this configuration (fresh seeds).
    o.mode = FaultMode::kSingleSite;
    o.num_samples = scale.test_samples;
    o.seed = derive_seed(spec.seed, 3003 + static_cast<std::uint64_t>(config));
    const Dataset test = generate_dataset(*design, o);
    o.mode = FaultMode::kSingleMiv;
    o.num_samples = std::max<std::size_t>(10, scale.test_samples / 2);
    o.seed = derive_seed(spec.seed, 3004 + static_cast<std::uint64_t>(config));
    const Dataset miv_test = generate_dataset(*design, o);

    const auto tier_test = tier_labeled(test);
    const auto miv_graphs = graphs_of(miv_test);

    Fig6Row row;
    row.config = config_name(config);
    row.dedicated_tier = ded_tier.accuracy(tier_test);
    row.transferred_tier = transferred.tier.accuracy(tier_test);
    row.dedicated_miv = ded_pin.top1_accuracy(miv_graphs);
    row.transferred_miv = transferred.miv.top1_accuracy(miv_graphs);
    rows.push_back(row);
  }
  return rows;
}

Fig5Result run_fig5(const BenchmarkSpec& spec, const RunScale& scale) {
  struct Tagged {
    std::string config;
    std::vector<double> vec;
  };
  std::vector<Tagged> tagged;
  for (Config config : eval_configs()) {
    const Design* design = &cached_design(spec, config);
    DatagenOptions o;
    o.num_samples = scale.test_samples;
    o.seed = derive_seed(spec.seed, 4001 + static_cast<std::uint64_t>(config));
    const Dataset ds = generate_dataset(*design, o);
    for (const Sample& s : ds.samples) {
      if (s.sub.num_nodes() == 0) continue;
      tagged.push_back({config_name(config), s.sub.feature_mean()});
    }
  }

  std::vector<std::vector<double>> vectors;
  vectors.reserve(tagged.size());
  for (const Tagged& t : tagged) vectors.push_back(t.vec);
  const gnn::PcaResult pca = gnn::fit_pca(vectors, 2);

  Fig5Result result;
  result.explained_variance = pca.explained_variance_ratio();
  for (const Tagged& t : tagged) {
    const auto p = pca.project2(t.vec);
    result.points.push_back({t.config, p[0], p[1]});
  }

  // Separation ratio: centroid scatter vs intra-config spread.
  struct Acc {
    double sx = 0, sy = 0, n = 0;
  };
  std::vector<std::string> names;
  std::vector<Acc> accs;
  auto idx_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    names.push_back(name);
    accs.push_back({});
    return names.size() - 1;
  };
  for (const Fig5Point& p : result.points) {
    Acc& a = accs[idx_of(p.config)];
    a.sx += p.x;
    a.sy += p.y;
    a.n += 1;
  }
  std::vector<std::pair<double, double>> centroids(accs.size());
  for (std::size_t i = 0; i < accs.size(); ++i) {
    centroids[i] = {accs[i].sx / accs[i].n, accs[i].sy / accs[i].n};
  }
  std::vector<double> spread(accs.size(), 0.0);
  for (const Fig5Point& p : result.points) {
    const std::size_t i = idx_of(p.config);
    const double dx = p.x - centroids[i].first;
    const double dy = p.y - centroids[i].second;
    spread[i] += dx * dx + dy * dy;
  }
  double mean_spread = 0.0;
  for (std::size_t i = 0; i < accs.size(); ++i) {
    mean_spread += std::sqrt(spread[i] / accs[i].n);
  }
  mean_spread /= static_cast<double>(accs.size());
  double centroid_dist = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    for (std::size_t j = i + 1; j < centroids.size(); ++j) {
      const double dx = centroids[i].first - centroids[j].first;
      const double dy = centroids[i].second - centroids[j].second;
      centroid_dist += std::sqrt(dx * dx + dy * dy);
      ++pairs;
    }
  }
  if (pairs) centroid_dist /= static_cast<double>(pairs);
  result.separation_ratio =
      mean_spread > 0 ? centroid_dist / mean_spread : 0.0;
  return result;
}

FeatureSignificanceResult run_feature_significance(const BenchmarkSpec& spec,
                                                   const RunScale& scale) {
  const TrainingBundle bundle = build_training_bundle(spec, false, scale);
  TrainedFramework fw = train_framework(bundle, scale);
  const std::vector<gnn::LabeledGraph> data = bundle.tier_training();
  FeatureSignificanceResult r;
  r.significance = gnn::explain_feature_significance(fw.tier.model(), data);
  r.perm_importance = gnn::permutation_importance(fw.tier.model(), data);
  return r;
}

std::vector<DesignMatrixRow> run_design_matrix() {
  std::vector<DesignMatrixRow> rows;
  for (const BenchmarkSpec& spec : all_benchmark_specs()) {
    const Design* d = &cached_design(spec, Config::kSyn1);
    DesignMatrixRow row;
    row.design = spec.name;
    row.gates = d->nl.num_logic_gates();
    row.mivs = d->nl.num_mivs();
    row.scan_chains = d->scan.num_chains;
    row.channels = d->scan.num_channels;
    row.chain_length = d->scan.chain_length;
    row.patterns = d->patterns.num_patterns();
    row.fault_sites = d->sites.size();
    row.fault_coverage = d->atpg_coverage;
    row.test_coverage = d->test_coverage;
    rows.push_back(row);
  }
  return rows;
}

std::vector<RuntimeRow> run_runtime(const RunScale& scale) {
  std::vector<RuntimeRow> rows;
  for (const BenchmarkSpec& spec : all_benchmark_specs()) {
    const TrainingBundle bundle = build_training_bundle(spec, false, scale);
    const TrainedFramework fw = train_framework(bundle, scale);

    const Design* design = &cached_design(spec, Config::kSyn2);
    DatagenOptions o;
    o.num_samples = scale.test_samples;
    o.seed = derive_seed(spec.seed, 6001);
    const Dataset test = generate_dataset(*design, o);
    diag::Diagnoser diagnoser = design->make_diagnoser();

    RuntimeRow row;
    row.design = spec.name;
    row.feature_seconds = design->graph_build_seconds +
                          bundle.syn1->graph_build_seconds +
                          bundle.rand1->graph_build_seconds +
                          bundle.rand2->graph_build_seconds;
    row.train_seconds = fw.gnn_train_seconds;

    QualityAccumulator acc_atpg, acc_updated;
    for (const Sample& s : test.samples) {
      const DiagnosisReport report = diagnoser.diagnose(s.log);
      row.t_atpg += report.seconds;
      acc_atpg.add(report, s.truth_sites);

      // T_GNN: back-trace + all three model inferences.
      const auto g0 = std::chrono::steady_clock::now();
      const graphx::SubGraph sub =
          graphx::backtrace_subgraph(*design->graph, s.log, design->scan);
      (void)fw.tier.predict(sub);
      (void)fw.miv.scores(sub);
      (void)fw.classifier.prune_probability(sub);
      const auto g1 = std::chrono::steady_clock::now();
      row.t_gnn += std::chrono::duration<double>(g1 - g0).count();

      const PolicyOutcome outcome =
          core::apply_policy(report, s.sub, fw.models(), fw.policy);
      row.t_update += outcome.seconds;
      acc_updated.add(outcome.report, s.truth_sites);
    }
    row.fhi_atpg = acc_atpg.stats().mean_fhi;
    row.fhi_updated = acc_updated.stats().mean_fhi;
    rows.push_back(row);
  }
  return rows;
}

std::vector<MultiFaultRow> run_multifault(const BenchmarkSpec& spec,
                                          const RunScale& scale) {
  // Training: Syn-1 multi-fault samples (paper Sec. VII-A).
  const Design* syn1p = &cached_design(spec, Config::kSyn1);
  DatagenOptions o;
  o.mode = FaultMode::kMultiSameTier;
  o.num_samples = scale.train_single;
  o.seed = derive_seed(spec.seed, 8001);
  const Dataset train = generate_dataset(*syn1p, o);
  o.mode = FaultMode::kSingleMiv;
  o.num_samples = scale.train_miv;
  o.seed = derive_seed(spec.seed, 8002);
  const Dataset miv_train = generate_dataset(*syn1p, o);

  TrainedFramework fw;
  {
    gnn::TrainOptions topts;
    topts.epochs = scale.tier_epochs;
    topts.lr = 5e-3;
    topts.seed = derive_seed(spec.seed, 8101);
    const auto tier_data = tier_labeled(train);
    fw.tier.train(tier_data, topts);
    std::vector<std::pair<double, bool>> pr;
    for (const gnn::LabeledGraph& ex : tier_data) {
      const auto p = fw.tier.predict(*ex.graph);
      pr.push_back({p.confidence(), static_cast<int>(p.tier()) == ex.label});
    }
    fw.policy.t_p =
        core::PrCurve::from_samples(pr).threshold_for_precision(0.99);

    std::vector<const graphx::SubGraph*> miv_data;
    for (const Dataset* ds : {&miv_train, &train}) {
      for (const Sample& s : ds->samples) {
        if (s.sub.num_nodes() > 0 && !s.sub.miv_local.empty()) {
          miv_data.push_back(&s.sub);
        }
      }
    }
    gnn::TrainOptions mopts;
    mopts.epochs = scale.miv_epochs;
    mopts.pos_weight = 12.0;
    mopts.seed = derive_seed(spec.seed, 8102);
    fw.miv.train(miv_data, mopts);

    fw.classifier = core::PruneClassifier::transfer_from(
        fw.tier, derive_seed(spec.seed, 8103));
    std::vector<const graphx::SubGraph*> cls_graphs;
    std::vector<int> cls_labels;
    for (const gnn::LabeledGraph& ex : tier_data) {
      const auto p = fw.tier.predict(*ex.graph);
      if (p.confidence() < fw.policy.t_p) continue;
      cls_graphs.push_back(ex.graph);
      cls_labels.push_back(static_cast<int>(p.tier()) == ex.label
                               ? core::PruneClassifier::kPrune
                               : core::PruneClassifier::kReorder);
    }
    gnn::TrainOptions copts;
    copts.epochs = scale.cls_epochs;
    copts.seed = derive_seed(spec.seed, 8104);
    fw.classifier.train_balanced(cls_graphs, cls_labels, copts,
                                 derive_seed(spec.seed, 8105));
  }

  // Test: Syn-2 multi-fault samples, multi-fault diagnosis.
  const Design* syn2 = &cached_design(spec, Config::kSyn2);
  o.mode = FaultMode::kMultiSameTier;
  o.num_samples = scale.test_samples;
  o.seed = derive_seed(spec.seed, 8003);
  const Dataset test = generate_dataset(*syn2, o);
  diag::Diagnoser diagnoser = syn2->make_diagnoser(/*multifault=*/true);

  QualityAccumulator acc_atpg(/*multifault=*/true);
  QualityAccumulator acc_fw(/*multifault=*/true);
  std::size_t tier_hits = 0;
  for (const Sample& s : test.samples) {
    const DiagnosisReport report = diagnoser.diagnose(s.log);
    acc_atpg.add(report, s.truth_sites);
    const PolicyOutcome outcome =
        core::apply_policy(report, s.sub, fw.models(), fw.policy);
    acc_fw.add(outcome.report, s.truth_sites);
    if (static_cast<int>(outcome.predicted_tier) == s.fault_tier) {
      ++tier_hits;
    }
  }
  MultiFaultRow row;
  row.design = spec.name;
  row.atpg = cell_from(acc_atpg, nullptr);
  row.framework = cell_from(acc_fw, nullptr);
  row.framework.tier_loc =
      test.samples.empty()
          ? 0.0
          : static_cast<double>(tier_hits) / test.samples.size();
  return {row};
}

std::vector<AblationRow> run_ablation(const BenchmarkSpec& spec,
                                      const RunScale& scale) {
  const TrainingBundle bundle = build_training_bundle(spec, false, scale);
  const TrainedFramework fw = train_framework(bundle, scale);
  const Design& design = *bundle.syn1;

  // Test set: single-site faults + 10% MIV-only faults (paper Sec. VII-B).
  DatagenOptions o;
  o.num_samples = scale.test_samples;
  o.seed = derive_seed(spec.seed, 9001);
  Dataset test = generate_dataset(design, o);
  o.mode = FaultMode::kSingleMiv;
  o.num_samples = std::max<std::size_t>(2, scale.test_samples / 10);
  o.seed = derive_seed(spec.seed, 9002);
  const Dataset miv_extra = generate_dataset(design, o);
  for (const Sample& s : miv_extra.samples) test.samples.push_back(s);

  diag::Diagnoser diagnoser = design.make_diagnoser();

  struct Mode {
    const char* name;
    bool use_tier;
    bool use_miv;
  };
  const Mode modes[] = {
      {"ATPG only", false, false},
      {"Tier-predictor", true, false},
      {"MIV-pinpointer", false, true},
      {"Tier-predictor + MIV-pinpointer", true, true},
  };

  // Pre-diagnose once; policies reuse the reports.
  std::vector<DiagnosisReport> reports;
  reports.reserve(test.samples.size());
  for (const Sample& s : test.samples) {
    reports.push_back(diagnoser.diagnose(s.log));
  }

  std::vector<AblationRow> rows;
  for (const Mode& mode : modes) {
    QualityAccumulator acc;
    for (std::size_t i = 0; i < test.samples.size(); ++i) {
      const Sample& s = test.samples[i];
      if (!mode.use_tier && !mode.use_miv) {
        acc.add(reports[i], s.truth_sites);
        continue;
      }
      core::PolicyConfig cfg = fw.policy;
      cfg.use_tier_predictor = mode.use_tier;
      cfg.use_miv_pinpointer = mode.use_miv;
      const PolicyOutcome outcome =
          core::apply_policy(reports[i], s.sub, fw.models(), cfg);
      acc.add(outcome.report, s.truth_sites);
    }
    rows.push_back({mode.name, cell_from(acc, nullptr)});
  }
  return rows;
}

}  // namespace m3dfl::eval
