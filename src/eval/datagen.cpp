#include "eval/datagen.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>

#include "common/executor.h"
#include "common/rng.h"
#include "compress/compactor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/sim_pool.h"

namespace m3dfl::eval {

using netlist::SiteId;
using netlist::Tier;
using sim::FaultPolarity;
using sim::InjectedFault;

namespace {

FaultPolarity random_polarity(Rng& rng) {
  return rng.bernoulli(0.5) ? FaultPolarity::kSlowToRise
                            : FaultPolarity::kSlowToFall;
}

/// Draws the fault set for one sample according to the mode.
std::vector<InjectedFault> draw_faults(const Design& d, FaultMode mode,
                                       Rng& rng) {
  std::vector<InjectedFault> faults;
  switch (mode) {
    case FaultMode::kSingleSite: {
      const auto site =
          static_cast<SiteId>(rng.next_below(d.sites.size()));
      faults.push_back({site, random_polarity(rng)});
      break;
    }
    case FaultMode::kSingleMiv: {
      const std::vector<SiteId> mivs = d.sites.miv_sites(d.nl);
      if (mivs.empty()) break;
      faults.push_back({mivs[rng.pick_index(mivs)], random_polarity(rng)});
      break;
    }
    case FaultMode::kMultiSameTier: {
      const Tier tier = rng.bernoulli(0.5) ? Tier::kTop : Tier::kBottom;
      const int k = static_cast<int>(rng.uniform_int(2, 5));
      // Rejection-sample sites from the chosen tier (non-MIV, so the
      // defects are unambiguously tier-resident).
      int guard = 0;
      while (static_cast<int>(faults.size()) < k && guard < 2000) {
        ++guard;
        const auto site =
            static_cast<SiteId>(rng.next_below(d.sites.size()));
        if (d.sites.tier_of(site, d.nl) != tier) continue;
        if (d.sites.is_miv_site(site, d.nl)) continue;
        const bool dup = std::any_of(
            faults.begin(), faults.end(),
            [site](const InjectedFault& f) { return f.site == site; });
        if (dup) continue;
        faults.push_back({site, random_polarity(rng)});
      }
      break;
    }
  }
  return faults;
}

/// Runs the Fig.-4 flow for sample `index` on its own RNG stream
/// (derive_seed(opts.seed, index)), making the result a pure function of
/// (design, opts, index) — the property every parallel shard and the
/// sequential loop share. Undetected draws and fully aliased compacted
/// responses both charge opts.max_retries; returns false when the budget
/// is exhausted (or the mode has nothing to draw).
bool generate_sample(const Design& design, const DatagenOptions& opts,
                     sim::FaultSimulator& fsim,
                     const compress::ResponseCompactor& compactor,
                     std::vector<sim::Word>& diff, std::size_t index,
                     Sample& sample) {
  Rng rng(derive_seed(opts.seed, index));
  bool ok = false;
  for (int attempt = 0; attempt < opts.max_retries && !ok; ++attempt) {
    sample.faults = draw_faults(design, opts.mode, rng);
    if (sample.faults.empty()) return false;  // Nothing to draw (no MIVs).
    if (!fsim.observed_diff(sample.faults, diff)) continue;  // Undetected.
    if (opts.compacted) {
      sample.log = compactor.failure_log_from_diff(diff, fsim.num_words(),
                                                   fsim.num_patterns());
      // XOR aliasing can cancel every miscompare; such a chip would pass
      // the compacted test. Retry within the same budget — a
      // pathologically aliasing design must not hang datagen.
      if (sample.log.empty()) continue;
    } else {
      sample.log = sim::failure_log_from_diff(diff, design.nl.num_outputs(),
                                              fsim.num_patterns());
    }
    ok = true;
  }
  if (!ok) return false;  // Retry budget exhausted; skip the sample.

  sample.truth_sites.clear();
  for (const InjectedFault& f : sample.faults) {
    sample.truth_sites.push_back(f.site);
  }
  sample.fault_tier = static_cast<int>(
      design.sites.tier_of(sample.faults.front().site, design.nl));
  sample.truth_is_miv =
      design.sites.is_miv_site(sample.faults.front().site, design.nl);

  // Back-trace and label the sub-graph.
  sample.sub =
      graphx::backtrace_subgraph(*design.graph, sample.log, design.scan);
  sample.sub.label_tier = sample.fault_tier;
  sample.sub.truth_in_nodes = std::any_of(
      sample.truth_sites.begin(), sample.truth_sites.end(),
      [&sample](SiteId s) { return sample.sub.local_of(s) >= 0; });
  for (std::size_t k = 0; k < sample.sub.miv_local.size(); ++k) {
    const SiteId site = sample.sub.nodes[sample.sub.miv_local[k]];
    const bool faulty = std::find(sample.truth_sites.begin(),
                                  sample.truth_sites.end(),
                                  site) != sample.truth_sites.end();
    sample.sub.miv_label[k] = faulty ? 1.0f : 0.0f;
  }
  return true;
}

}  // namespace

Dataset generate_dataset(const Design& design, const DatagenOptions& opts) {
  M3DFL_OBS_SPAN(gen_span, "datagen.generate");
  const std::size_t n = opts.num_samples;
  const compress::ResponseCompactor compactor(design.scan);

  // Samples land in index-order slots; skipped indices are compacted out
  // at the end, so the merge is identical no matter which shard ran what.
  std::vector<Sample> slots(n);
  std::vector<std::uint8_t> present(n, 0);

  // Registry entries are process-lifetime stable, so hot loops may cache
  // references once instead of paying a map lookup per sample.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::LatencyHistogram& sample_hist = reg.histogram("datagen.sample");
  static obs::Counter& samples_ctr = reg.counter("datagen.samples");
  static obs::Counter& skipped_ctr = reg.counter("datagen.skipped");
  static obs::Counter& sim_calls_ctr = reg.counter("sim.observed_diff_calls");
  static obs::Counter& sim_det_ctr = reg.counter("sim.detected");
  static obs::Counter& sim_events_ctr = reg.counter("sim.events_processed");
  static obs::Counter& sim_words_ctr = reg.counter("sim.words_evaluated");
  static obs::Counter& sim_cone_ctr = reg.counter("sim.cone_skips");
  static obs::Counter& sim_early_ctr = reg.counter("sim.early_exits");

  auto run_range = [&](sim::FaultSimulator& fsim, std::size_t lo,
                       std::size_t hi) {
    M3DFL_OBS_SPAN(shard_span, "datagen.shard");
    // Clones inherit the source simulator's counters, so flush the delta.
    const sim::FaultSimulator::SimStats before = fsim.sim_stats();
    std::vector<sim::Word> diff;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      present[i] = generate_sample(design, opts, fsim, compactor, diff, i,
                                   slots[i]);
      sample_hist.record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
      (present[i] ? samples_ctr : skipped_ctr).add(1);
    }
    const sim::FaultSimulator::SimStats after = fsim.sim_stats();
    sim_calls_ctr.add(after.observed_diff_calls - before.observed_diff_calls);
    sim_det_ctr.add(after.detected - before.detected);
    sim_events_ctr.add(after.events_processed - before.events_processed);
    sim_words_ctr.add(after.words_evaluated - before.words_evaluated);
    sim_cone_ctr.add(after.cone_skips - before.cone_skips);
    sim_early_ctr.add(after.early_exits - before.early_exits);
  };

  std::size_t threads = resolve_num_threads(opts.num_threads);
  threads = std::min(threads, std::max<std::size_t>(n, 1));
  if (threads <= 1) {
    run_range(*design.fsim, 0, n);
  } else {
    // Contiguous index shards over pooled simulator clones. The design's
    // shared simulator is never touched concurrently. The netlist's lazy
    // topo/level caches are unsynchronized, so warm them before fan-out
    // (same move as serve::DiagnosisService::register_design).
    design.nl.topo_order();
    design.nl.levels();
    design.nl.depth();
    sim::SimulatorPool pool(*design.fsim);
    Executor exec(threads, "datagen");
    const std::size_t num_chunks = std::min(n, threads * 4);
    const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
    std::vector<std::future<void>> done;
    done.reserve(num_chunks);
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      const std::size_t hi = std::min(n, lo + chunk);
      done.push_back(exec.submit([&run_range, &pool, lo, hi] {
        auto sim = pool.lease();
        run_range(*sim, lo, hi);
      }));
    }
    for (auto& f : done) f.get();  // Propagates shard exceptions.
  }

  Dataset ds;
  ds.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (present[i]) ds.samples.push_back(std::move(slots[i]));
  }
  return ds;
}

std::vector<gnn::LabeledGraph> tier_labeled(const Dataset& ds) {
  std::vector<gnn::LabeledGraph> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back({&s.sub, s.fault_tier});
  }
  return out;
}

std::vector<const graphx::SubGraph*> graphs_of(const Dataset& ds) {
  std::vector<const graphx::SubGraph*> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back(&s.sub);
  }
  return out;
}

}  // namespace m3dfl::eval
