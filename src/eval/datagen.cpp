#include "eval/datagen.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"
#include "compress/compactor.h"

namespace m3dfl::eval {

using netlist::SiteId;
using netlist::Tier;
using sim::FaultPolarity;
using sim::InjectedFault;

namespace {

FaultPolarity random_polarity(Rng& rng) {
  return rng.bernoulli(0.5) ? FaultPolarity::kSlowToRise
                            : FaultPolarity::kSlowToFall;
}

/// Draws the fault set for one sample according to the mode.
std::vector<InjectedFault> draw_faults(const Design& d, FaultMode mode,
                                       Rng& rng) {
  std::vector<InjectedFault> faults;
  switch (mode) {
    case FaultMode::kSingleSite: {
      const auto site =
          static_cast<SiteId>(rng.next_below(d.sites.size()));
      faults.push_back({site, random_polarity(rng)});
      break;
    }
    case FaultMode::kSingleMiv: {
      const std::vector<SiteId> mivs = d.sites.miv_sites(d.nl);
      if (mivs.empty()) break;
      faults.push_back({mivs[rng.pick_index(mivs)], random_polarity(rng)});
      break;
    }
    case FaultMode::kMultiSameTier: {
      const Tier tier = rng.bernoulli(0.5) ? Tier::kTop : Tier::kBottom;
      const int k = static_cast<int>(rng.uniform_int(2, 5));
      // Rejection-sample sites from the chosen tier (non-MIV, so the
      // defects are unambiguously tier-resident).
      int guard = 0;
      while (static_cast<int>(faults.size()) < k && guard < 2000) {
        ++guard;
        const auto site =
            static_cast<SiteId>(rng.next_below(d.sites.size()));
        if (d.sites.tier_of(site, d.nl) != tier) continue;
        if (d.sites.is_miv_site(site, d.nl)) continue;
        const bool dup = std::any_of(
            faults.begin(), faults.end(),
            [site](const InjectedFault& f) { return f.site == site; });
        if (dup) continue;
        faults.push_back({site, random_polarity(rng)});
      }
      break;
    }
  }
  return faults;
}

}  // namespace

Dataset generate_dataset(const Design& design, const DatagenOptions& opts) {
  Dataset ds;
  ds.samples.reserve(opts.num_samples);
  Rng rng(opts.seed);
  sim::FaultSimulator& fsim = *design.fsim;
  const compress::ResponseCompactor compactor(design.scan);

  std::vector<sim::Word> diff;
  for (std::size_t i = 0; i < opts.num_samples; ++i) {
    Sample sample;
    bool ok = false;
    for (int attempt = 0; attempt < opts.max_retries && !ok; ++attempt) {
      sample.faults = draw_faults(design, opts.mode, rng);
      if (sample.faults.empty()) break;
      ok = fsim.observed_diff(sample.faults, diff);
    }
    if (!ok) continue;  // Pattern set cannot detect anything here; skip.

    if (opts.compacted) {
      sample.log = compactor.failure_log_from_diff(diff, fsim.num_words(),
                                                   fsim.num_patterns());
      // XOR aliasing can cancel every miscompare; such a chip would pass
      // the compacted test. Regenerate in that rare case.
      if (sample.log.empty()) {
        --i;
        continue;
      }
    } else {
      sample.log = sim::failure_log_from_diff(diff, design.nl.num_outputs(),
                                              fsim.num_patterns());
    }

    sample.truth_sites.clear();
    for (const InjectedFault& f : sample.faults) {
      sample.truth_sites.push_back(f.site);
    }
    sample.fault_tier = static_cast<int>(
        design.sites.tier_of(sample.faults.front().site, design.nl));
    sample.truth_is_miv =
        design.sites.is_miv_site(sample.faults.front().site, design.nl);

    // Back-trace and label the sub-graph.
    sample.sub =
        graphx::backtrace_subgraph(*design.graph, sample.log, design.scan);
    sample.sub.label_tier = sample.fault_tier;
    sample.sub.truth_in_nodes = std::any_of(
        sample.truth_sites.begin(), sample.truth_sites.end(),
        [&sample](SiteId s) { return sample.sub.local_of(s) >= 0; });
    for (std::size_t k = 0; k < sample.sub.miv_local.size(); ++k) {
      const SiteId site = sample.sub.nodes[sample.sub.miv_local[k]];
      const bool faulty = std::find(sample.truth_sites.begin(),
                                    sample.truth_sites.end(),
                                    site) != sample.truth_sites.end();
      sample.sub.miv_label[k] = faulty ? 1.0f : 0.0f;
    }

    ds.samples.push_back(std::move(sample));
  }
  return ds;
}

std::vector<gnn::LabeledGraph> tier_labeled(const Dataset& ds) {
  std::vector<gnn::LabeledGraph> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back({&s.sub, s.fault_tier});
  }
  return out;
}

std::vector<const graphx::SubGraph*> graphs_of(const Dataset& ds) {
  std::vector<const graphx::SubGraph*> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back(&s.sub);
  }
  return out;
}

}  // namespace m3dfl::eval
