#include "eval/datagen.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>
#include <optional>
#include <span>

#include "common/executor.h"
#include "common/rng.h"
#include "compress/compactor.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/trace.h"
#include "sim/bitpar/bitpar_sim.h"
#include "sim/sim_pool.h"

namespace m3dfl::eval {

using netlist::SiteId;
using netlist::Tier;
using sim::FaultPolarity;
using sim::InjectedFault;

namespace {

FaultPolarity random_polarity(Rng& rng) {
  return rng.bernoulli(0.5) ? FaultPolarity::kSlowToRise
                            : FaultPolarity::kSlowToFall;
}

/// Draws the fault set for one sample according to the mode.
std::vector<InjectedFault> draw_faults(const Design& d, FaultMode mode,
                                       Rng& rng) {
  std::vector<InjectedFault> faults;
  switch (mode) {
    case FaultMode::kSingleSite: {
      const auto site =
          static_cast<SiteId>(rng.next_below(d.sites.size()));
      faults.push_back({site, random_polarity(rng)});
      break;
    }
    case FaultMode::kSingleMiv: {
      const std::vector<SiteId> mivs = d.sites.miv_sites(d.nl);
      if (mivs.empty()) break;
      faults.push_back({mivs[rng.pick_index(mivs)], random_polarity(rng)});
      break;
    }
    case FaultMode::kMultiSameTier: {
      const Tier tier = rng.bernoulli(0.5) ? Tier::kTop : Tier::kBottom;
      const int k = static_cast<int>(rng.uniform_int(2, 5));
      // Rejection-sample sites from the chosen tier (non-MIV, so the
      // defects are unambiguously tier-resident).
      int guard = 0;
      while (static_cast<int>(faults.size()) < k && guard < 2000) {
        ++guard;
        const auto site =
            static_cast<SiteId>(rng.next_below(d.sites.size()));
        if (d.sites.tier_of(site, d.nl) != tier) continue;
        if (d.sites.is_miv_site(site, d.nl)) continue;
        const bool dup = std::any_of(
            faults.begin(), faults.end(),
            [site](const InjectedFault& f) { return f.site == site; });
        if (dup) continue;
        faults.push_back({site, random_polarity(rng)});
      }
      break;
    }
  }
  return faults;
}

/// Post-acceptance labeling shared by both backends: truth sites, tier
/// label, MIV flag, and the back-traced sub-graph with labels filled.
void finalize_sample(const Design& design, Sample& sample) {
  sample.truth_sites.clear();
  for (const InjectedFault& f : sample.faults) {
    sample.truth_sites.push_back(f.site);
  }
  sample.fault_tier = static_cast<int>(
      design.sites.tier_of(sample.faults.front().site, design.nl));
  sample.truth_is_miv =
      design.sites.is_miv_site(sample.faults.front().site, design.nl);

  // Back-trace and label the sub-graph.
  sample.sub =
      graphx::backtrace_subgraph(*design.graph, sample.log, design.scan);
  sample.sub.label_tier = sample.fault_tier;
  sample.sub.truth_in_nodes = std::any_of(
      sample.truth_sites.begin(), sample.truth_sites.end(),
      [&sample](SiteId s) { return sample.sub.local_of(s) >= 0; });
  for (std::size_t k = 0; k < sample.sub.miv_local.size(); ++k) {
    const SiteId site = sample.sub.nodes[sample.sub.miv_local[k]];
    const bool faulty = std::find(sample.truth_sites.begin(),
                                  sample.truth_sites.end(),
                                  site) != sample.truth_sites.end();
    sample.sub.miv_label[k] = faulty ? 1.0f : 0.0f;
  }
}

/// Runs the Fig.-4 flow for sample `index` on its own RNG stream
/// (derive_seed(opts.seed, index)), making the result a pure function of
/// (design, opts, index) — the property every parallel shard and the
/// sequential loop share. Undetected draws and fully aliased compacted
/// responses both charge opts.max_retries; returns false when the budget
/// is exhausted (or the mode has nothing to draw).
bool generate_sample(const Design& design, const DatagenOptions& opts,
                     sim::FaultSimulator& fsim,
                     const compress::ResponseCompactor& compactor,
                     std::vector<sim::Word>& diff, std::size_t index,
                     Sample& sample) {
  Rng rng(derive_seed(opts.seed, index));
  bool ok = false;
  for (int attempt = 0; attempt < opts.max_retries && !ok; ++attempt) {
    sample.faults = draw_faults(design, opts.mode, rng);
    if (sample.faults.empty()) return false;  // Nothing to draw (no MIVs).
    if (!fsim.observed_diff(sample.faults, diff)) continue;  // Undetected.
    if (opts.compacted) {
      sample.log = compactor.failure_log_from_diff(diff, fsim.num_words(),
                                                   fsim.num_patterns());
      // XOR aliasing can cancel every miscompare; such a chip would pass
      // the compacted test. Retry within the same budget — a
      // pathologically aliasing design must not hang datagen.
      if (sample.log.empty()) continue;
    } else {
      sample.log = sim::failure_log_from_diff(diff, design.nl.num_outputs(),
                                              fsim.num_patterns());
    }
    ok = true;
  }
  if (!ok) return false;  // Retry budget exhausted; skip the sample.
  finalize_sample(design, sample);
  return true;
}

}  // namespace

Dataset generate_dataset(const Design& design, const DatagenOptions& opts) {
  M3DFL_OBS_SPAN(gen_span, "datagen.generate");
  const std::size_t n = opts.num_samples;
  const compress::ResponseCompactor compactor(design.scan);

  // Samples land in index-order slots; skipped indices are compacted out
  // at the end, so the merge is identical no matter which shard ran what.
  std::vector<Sample> slots(n);
  std::vector<std::uint8_t> present(n, 0);

  // Registry entries are process-lifetime stable, so hot loops may cache
  // references once instead of paying a map lookup per sample.
  auto& reg = obs::MetricsRegistry::instance();
  static obs::LatencyHistogram& sample_hist = reg.histogram("datagen.sample");
  static obs::Counter& samples_ctr = reg.counter("datagen.samples");
  static obs::Counter& skipped_ctr = reg.counter("datagen.skipped");
  static obs::Counter& sim_calls_ctr = reg.counter("sim.observed_diff_calls");
  static obs::Counter& sim_det_ctr = reg.counter("sim.detected");
  static obs::Counter& sim_events_ctr = reg.counter("sim.events_processed");
  static obs::Counter& sim_words_ctr = reg.counter("sim.words_evaluated");
  static obs::Counter& sim_cone_ctr = reg.counter("sim.cone_skips");
  static obs::Counter& sim_early_ctr = reg.counter("sim.early_exits");

  reg.gauge("sim.backend").set(static_cast<double>(opts.backend));

  auto run_range = [&](sim::FaultSimulator& fsim, std::size_t lo,
                       std::size_t hi) {
    M3DFL_OBS_SPAN(shard_span, "datagen.shard");
    M3DFL_OBS_COUNTERS(shard_ctrs, "datagen.shard");
    std::vector<sim::Word> diff;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      present[i] = generate_sample(design, opts, fsim, compactor, diff, i,
                                   slots[i]);
      sample_hist.record(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
      (present[i] ? samples_ctr : skipped_ctr).add(1);
    }
    // take_stats() snapshots-and-resets, so pooled clones re-leased by a
    // later shard never re-flush counts a previous shard already reported.
    const sim::FaultSimulator::SimStats d = fsim.take_stats();
    sim_calls_ctr.add(d.observed_diff_calls);
    sim_det_ctr.add(d.detected);
    sim_events_ctr.add(d.events_processed);
    sim_words_ctr.add(d.words_evaluated);
    sim_cone_ctr.add(d.cone_skips);
    sim_early_ctr.add(d.early_exits);
  };

  // Bit-parallel shard: windows of up to kMaxLanes sample indices run as
  // simulation waves. Each round draws one attempt for every still-active
  // sample in the window, sweeps them as one multi-fault batch (one lane
  // per sample), and judges each lane exactly as generate_sample judges
  // one observed_diff call. Per-sample RNG streams and retry budgets pass
  // through untouched, so the Dataset is bit-identical to the event
  // backend.
  const bool bitpar = opts.backend == sim::SimBackend::kBitParallel;
  std::optional<sim::bitpar::NetlistArena> arena;
  std::optional<sim::bitpar::BitParallelSimulator> bp;
  if (bitpar) {
    arena.emplace(design.nl, design.sites);
    bp.emplace(*arena, design.sites);
    bp->bind(design.fsim->good());
    reg.gauge("sim.simd_tier").set(static_cast<double>(bp->tier()));
  }
  auto run_range_bp = [&](sim::bitpar::BitParallelSimulator::Workspace& ws,
                          std::size_t lo, std::size_t hi) {
    M3DFL_OBS_SPAN(shard_span, "datagen.shard");
    M3DFL_OBS_COUNTERS(shard_ctrs, "datagen.shard");
    sim::bitpar::BitParallelSimulator::BatchResult res;
    std::vector<sim::Word> diff;
    struct Active {
      std::size_t index;
      Rng rng;
      int attempt = 0;
    };
    std::vector<Active> active;
    std::vector<std::span<const InjectedFault>> machines;
    for (std::size_t w0 = lo; w0 < hi; w0 += sim::bitpar::kMaxLanes) {
      const std::size_t w1 = std::min(hi, w0 + sim::bitpar::kMaxLanes);
      const auto t0 = std::chrono::steady_clock::now();
      active.clear();
      for (std::size_t i = w0; i < w1; ++i) {
        active.push_back({i, Rng(derive_seed(opts.seed, i))});
      }
      while (!active.empty()) {
        machines.clear();
        std::size_t keep = 0;
        for (std::size_t a = 0; a < active.size(); ++a) {
          Active st = std::move(active[a]);
          Sample& sample = slots[st.index];
          sample.faults = draw_faults(design, opts.mode, st.rng);
          if (sample.faults.empty()) {
            // Nothing to draw (no MIVs) — generate_sample fails such a
            // sample immediately, outside the retry budget.
            skipped_ctr.add(1);
            continue;
          }
          machines.push_back(
              {sample.faults.data(), sample.faults.size()});
          active[keep++] = std::move(st);
        }
        active.resize(keep);
        if (active.empty()) break;
        bp->run_machines(machines, ws, res);
        keep = 0;
        for (std::size_t j = 0; j < active.size(); ++j) {
          Active st = std::move(active[j]);
          Sample& sample = slots[st.index];
          ++st.attempt;
          bool ok = false;
          if (res.detected_lane(j)) {
            if (opts.compacted) {
              res.diff_of(j, diff);
              sample.log = compactor.failure_log_from_diff(
                  diff, design.fsim->num_words(),
                  design.fsim->num_patterns());
              // XOR aliasing can cancel every miscompare; retry within
              // the same budget (mirrors generate_sample).
              ok = !sample.log.empty();
            } else {
              sample.log = res.failure_log_of(j);
              ok = true;
            }
          }
          if (ok) {
            finalize_sample(design, sample);
            present[st.index] = 1;
            samples_ctr.add(1);
          } else if (st.attempt >= opts.max_retries) {
            skipped_ctr.add(1);
          } else {
            active[keep++] = std::move(st);
          }
        }
        active.resize(keep);
      }
      // The wave sweeps every lane at once, so individual sample timings
      // don't exist — record the window's wall time amortized per sample.
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      for (std::size_t i = w0; i < w1; ++i) {
        sample_hist.record(elapsed / static_cast<double>(w1 - w0));
      }
    }
    sim::bitpar::flush_bitpar_metrics(ws.stats);
  };

  std::size_t threads = resolve_num_threads(opts.num_threads);
  threads = std::min(threads, std::max<std::size_t>(n, 1));
  if (threads <= 1) {
    if (bitpar) {
      sim::bitpar::BitParallelSimulator::Workspace ws;
      run_range_bp(ws, 0, n);
    } else {
      run_range(*design.fsim, 0, n);
    }
  } else {
    // Contiguous index shards. Event shards lease pooled simulator clones;
    // bit-parallel shards share the one immutable simulator and own a
    // private Workspace each. The design's shared simulator is never
    // touched concurrently. The netlist's lazy topo/level caches are
    // unsynchronized, so warm them before fan-out (same move as
    // serve::DiagnosisService::register_design).
    design.nl.topo_order();
    design.nl.levels();
    design.nl.depth();
    std::optional<sim::SimulatorPool> pool;
    if (!bitpar) pool.emplace(*design.fsim);
    Executor exec(threads, "datagen");
    const std::size_t num_chunks = std::min(n, threads * 4);
    const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
    std::vector<std::future<void>> done;
    done.reserve(num_chunks);
    for (std::size_t lo = 0; lo < n; lo += chunk) {
      const std::size_t hi = std::min(n, lo + chunk);
      if (bitpar) {
        done.push_back(exec.submit([&run_range_bp, lo, hi] {
          sim::bitpar::BitParallelSimulator::Workspace ws;
          run_range_bp(ws, lo, hi);
        }));
      } else {
        done.push_back(exec.submit([&run_range, &pool, lo, hi] {
          auto sim = pool->lease();
          run_range(*sim, lo, hi);
        }));
      }
    }
    for (auto& f : done) f.get();  // Propagates shard exceptions.
  }

  Dataset ds;
  ds.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (present[i]) ds.samples.push_back(std::move(slots[i]));
  }
  return ds;
}

std::vector<gnn::LabeledGraph> tier_labeled(const Dataset& ds) {
  std::vector<gnn::LabeledGraph> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back({&s.sub, s.fault_tier});
  }
  return out;
}

std::vector<const graphx::SubGraph*> graphs_of(const Dataset& ds) {
  std::vector<const graphx::SubGraph*> out;
  out.reserve(ds.samples.size());
  for (const Sample& s : ds.samples) {
    if (s.sub.num_nodes() == 0) continue;
    out.push_back(&s.sub);
  }
  return out;
}

}  // namespace m3dfl::eval
