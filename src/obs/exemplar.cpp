#include "obs/exemplar.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace m3dfl::obs {

namespace {

void json_number(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os << buf;
}

void json_exemplar(std::ostream& os, const RequestExemplar& e) {
  os << "{\"request_id\":" << e.request_id << ",\"total_ms\":";
  json_number(os, e.total_ms);
  os << ",\"queue_ms\":";
  json_number(os, e.queue_ms);
  os << ",\"service_ms\":";
  json_number(os, e.service_ms);
  os << ",\"ok\":" << (e.ok ? "true" : "false")
     << ",\"cache_hit\":" << (e.cache_hit ? "true" : "false")
     << ",\"model_version\":" << e.model_version << ",\"stages\":[";
  for (std::size_t i = 0; i < e.stages.size(); ++i) {
    const ExemplarStage& s = e.stages[i];
    os << (i ? "," : "") << "{\"name\":\"" << (s.name ? s.name : "?")
       << "\",\"start_ms\":";
    json_number(os, s.start_ms);
    os << ",\"dur_ms\":";
    json_number(os, s.dur_ms);
    os << "}";
  }
  os << "]}";
}

}  // namespace

ExemplarStore& ExemplarStore::instance() {
  static ExemplarStore store;
  return store;
}

void ExemplarStore::rotate_if_due_locked(
    std::chrono::steady_clock::time_point now) {
  if (!window_started_) {
    window_start_ = now;
    window_started_ = true;
    return;
  }
  const double elapsed =
      std::chrono::duration<double>(now - window_start_).count();
  if (elapsed < opts_.window_seconds) return;
  if (elapsed >= 2.0 * opts_.window_seconds) {
    // Idle for a whole window: nothing recent enough to keep as "previous".
    previous_.clear();
  } else {
    previous_ = std::move(current_);
  }
  current_.clear();
  window_start_ = now;
}

void ExemplarStore::offer(RequestExemplar exemplar) {
  if (!enabled()) return;
  offered_.fetch_add(1, std::memory_order_relaxed);
  if (exemplar.stages.size() > opts_.max_stages) {
    exemplar.stages.resize(opts_.max_stages);
  }
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  rotate_if_due_locked(now);
  if (current_.size() >= opts_.capacity &&
      exemplar.total_ms <= current_.back().total_ms) {
    return;  // Faster than everything retained: not an exemplar.
  }
  const auto pos = std::upper_bound(
      current_.begin(), current_.end(), exemplar,
      [](const RequestExemplar& a, const RequestExemplar& b) {
        return a.total_ms > b.total_ms;
      });
  current_.insert(pos, std::move(exemplar));
  if (current_.size() > opts_.capacity) current_.pop_back();
}

std::vector<RequestExemplar> ExemplarStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestExemplar> out = current_;
  out.insert(out.end(), previous_.begin(), previous_.end());
  return out;
}

std::string ExemplarStore::to_json() const {
  const std::vector<RequestExemplar> snap = snapshot();
  std::ostringstream os;
  os << "{\"window_seconds\":";
  json_number(os, opts_.window_seconds);
  os << ",\"capacity\":" << opts_.capacity << ",\"offered\":" << offered()
     << ",\"exemplars\":[";
  for (std::size_t i = 0; i < snap.size(); ++i) {
    if (i) os << ",";
    json_exemplar(os, snap[i]);
  }
  os << "]}";
  return os.str();
}

void ExemplarStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  current_.clear();
  previous_.clear();
  window_started_ = false;
  offered_.store(0, std::memory_order_relaxed);
}

}  // namespace m3dfl::obs
