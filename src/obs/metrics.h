#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m3dfl::obs {

/// Lock-free latency histogram with geometrically spaced buckets
/// (1 us * 1.5^i, 48 buckets spanning 1 us .. ~4 minutes). record() is a
/// handful of relaxed fetch_adds, so hot paths never serialize on the
/// metrics layer; percentiles are computed from a snapshot with linear
/// interpolation inside the winning bucket.
///
/// Buckets are half-open on the left: bucket i holds values v with
/// bucket_upper_seconds(i-1) < v <= bucket_upper_seconds(i). A value
/// exactly on a bucket's upper bound lands in that bucket — exactly, not
/// modulo log() rounding (see bucket_index()).
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 48;

  void record(double seconds);

  std::uint64_t count() const;
  double mean_seconds() const;
  /// Sum of recorded values (nanosecond granularity) — the Prometheus
  /// `_sum` series.
  double total_seconds() const;
  /// pct in [0, 100]. Returns 0 when empty.
  double percentile_seconds(double pct) const;

  /// Upper bound of bucket i, in seconds. The exact double the bucketing
  /// comparisons use, so `record(bucket_upper_seconds(i))` lands in bucket
  /// i for every i.
  static double bucket_upper_seconds(std::size_t i);

  /// The bucket a value maps to (test hook; record() uses this). Uses a
  /// log() guess corrected against the exact bound table, so boundary
  /// values never jitter one bucket high or low.
  static std::size_t bucket_index(double seconds);

  std::uint64_t bucket_count(std::size_t i) const;

  /// Zeroes every bucket and the count/total (relaxed stores; call while
  /// quiescent for an exact reset).
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
};

/// Deterministic 1-in-16 tick for sub-microsecond hot paths. Per-layer
/// inference forwards run in the low microseconds, where two steady_clock
/// reads plus a histogram record are a measurable fraction of the work —
/// sampling keeps the histogram populated while charging the hot loop
/// ~1/16th of the instrumentation cost. Thread-local counter: no atomics,
/// and the fixed stride keeps sampling deterministic per thread.
inline bool hot_path_sample() {
  static thread_local std::uint32_t tick = 0;
  return (++tick & 0xFu) == 0;
}

/// Monotonic counter (relaxed atomic).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (relaxed atomic double).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Process-wide registry of named counters / gauges / histograms. Lookup
/// takes a mutex, so instrumentation sites on hot paths should resolve
/// their metric once (function-local static reference) and then mutate it
/// wait-free. Returned references stay valid for the process lifetime —
/// reset() zeroes values but never removes entries.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  /// Zeroes every registered metric (entries and references survive).
  void reset();

  /// Machine-readable snapshot:
  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,mean_ms,
  ///  p50_ms,p95_ms,p99_ms}}}
  std::string to_json() const;

  /// Prometheus text exposition (format 0.0.4) of every registered metric:
  /// counters as `<name>_total`, gauges as-is, histograms as cumulative
  /// `_bucket{le="..."}` series plus `_sum`/`_count`. The 48 `le` bounds
  /// are the exact LatencyHistogram::bucket_upper_seconds doubles, printed
  /// with %.17g so strtod() round-trips them bit-exactly. Registry names
  /// are sanitized via prometheus_metric_name().
  std::string to_prometheus() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Maps a registry metric name onto the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_' and the
/// result gains an "m3dfl_" namespace prefix ("serve.queue_seconds" ->
/// "m3dfl_serve_queue_seconds").
std::string prometheus_metric_name(const std::string& name);

/// Escapes a label value for the exposition format (backslash, double
/// quote, newline).
std::string prometheus_escape_label(const std::string& value);

/// Peak resident-set size of this process so far, in bytes (getrusage
/// ru_maxrss). Returns 0 on platforms without the facility. The paper-scale
/// campaigns publish it as the `process.peak_rss_bytes` gauge so the
/// out-of-core dictionary's memory claim is checkable from metrics.
std::size_t peak_rss_bytes();

/// Point-in-time process resource usage (getrusage + /proc/self/fd).
struct ProcessStats {
  double user_cpu_seconds = 0.0;
  double sys_cpu_seconds = 0.0;
  std::uint64_t voluntary_ctx_switches = 0;
  std::uint64_t involuntary_ctx_switches = 0;
  /// Open file descriptors right now (0 where /proc is unavailable). The
  /// descriptor used to do the counting is excluded.
  std::uint64_t open_fds = 0;
  std::size_t peak_rss_bytes = 0;
};
ProcessStats process_stats();

/// Publishes process_stats() as `process.*` gauges (user_cpu_seconds,
/// sys_cpu_seconds, voluntary_ctx_switches, involuntary_ctx_switches,
/// open_fds, peak_rss_bytes). Scrape handlers call this before rendering so
/// /metrics and /metrics.json always carry fresh values; gauges are
/// last-write-wins, so refreshing is idempotent.
void publish_process_metrics();

/// Structural conformance lint of an exposition page: every sample needs a
/// preceding # TYPE (with a # HELP), TYPE values must be known, histogram
/// bucket series must be cumulative/monotone and end in le="+Inf" matching
/// `_count`, and sample values must parse as numbers. Returns one message
/// per violation (empty == conformant). Used by the tests and the
/// `prom_lint` CI tool against a live /metrics page.
std::vector<std::string> prometheus_lint(const std::string& exposition);

}  // namespace m3dfl::obs
