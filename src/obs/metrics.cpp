#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#if !defined(_WIN32)
#include <sys/resource.h>

#if !defined(_WIN32)
#include <dirent.h>
#endif
#endif
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace m3dfl::obs {

namespace {

constexpr double kBase_us = 1.0;  ///< Upper bound of bucket 0.
constexpr double kGrowth = 1.5;

/// The exact per-bucket upper bounds, in seconds. Built once; every
/// comparison in bucket_index() uses these doubles, so boundaries are exact
/// by construction (comparing in microseconds instead would round-trip
/// through * 1e6 and disagree by an ulp on some buckets).
const std::array<double, LatencyHistogram::kNumBuckets>& bucket_bounds() {
  static const auto table = [] {
    std::array<double, LatencyHistogram::kNumBuckets> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = kBase_us * std::pow(kGrowth, static_cast<double>(i)) * 1e-6;
    }
    return b;
  }();
  return table;
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return bucket_bounds()[std::min(i, kNumBuckets - 1)];
}

std::size_t LatencyHistogram::bucket_index(double seconds) {
  const auto& ub = bucket_bounds();
  if (!(seconds > ub[0])) return 0;  // Includes NaN-sanitized zeros.
  // ceil(log ratio) is the right bucket up to an ulp of rounding either
  // way; the correction loops compare against the exact bound table and
  // move at most one step in practice.
  const double us = seconds * 1e6;
  const double guess = std::ceil(std::log(us / kBase_us) / std::log(kGrowth));
  std::size_t i =
      guess < 1.0 ? 1
                  : std::min(static_cast<std::size_t>(guess), kNumBuckets - 1);
  while (i > 0 && seconds <= ub[i - 1]) --i;
  while (i + 1 < kNumBuckets && seconds > ub[i]) ++i;
  return i;
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t i) const {
  return buckets_[std::min(i, kNumBuckets - 1)].load(
      std::memory_order_relaxed);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::total_seconds() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         1e9;
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         (1e9 * static_cast<double>(n));
}

double LatencyHistogram::percentile_seconds(double pct) const {
  std::array<std::uint64_t, kNumBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (snap[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
    const double hi = bucket_upper_seconds(i);
    if (static_cast<double>(cum + snap[i]) >= target) {
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(snap[i]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cum += snap[i];
  }
  return bucket_upper_seconds(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":";
    json_number(os, g->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"mean_ms\":";
    json_number(os, 1e3 * h->mean_seconds());
    os << ",\"p50_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(50.0));
    os << ",\"p95_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(95.0));
    os << ",\"p99_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(99.0));
    os << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "m3dfl_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  char buf[48];
  for (const auto& [name, c] : counters_) {
    const std::string n = prometheus_metric_name(name) + "_total";
    os << "# HELP " << n << " m3dfl counter " << name << "\n"
       << "# TYPE " << n << " counter\n"
       << n << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prometheus_metric_name(name);
    double v = g->value();
    if (!std::isfinite(v)) v = 0.0;
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << "# HELP " << n << " m3dfl gauge " << name << "\n"
       << "# TYPE " << n << " gauge\n"
       << n << " " << buf << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prometheus_metric_name(name);
    os << "# HELP " << n << " m3dfl latency histogram " << name
       << " (seconds)\n"
       << "# TYPE " << n << " histogram\n";
    // One snapshot per bucket, accumulated low-to-high: bucket i of the
    // half-open-left histogram holds exactly the values <= its upper bound
    // and > the previous one, so the running sum IS the Prometheus
    // cumulative le-count.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      cum += h->bucket_count(i);
      // %.17g: shortest form that still round-trips any double bit-exactly
      // through strtod — scrape-side bounds compare equal to
      // bucket_upper_seconds(i).
      std::snprintf(buf, sizeof(buf), "%.17g",
                    LatencyHistogram::bucket_upper_seconds(i));
      os << n << "_bucket{le=\"" << buf << "\"} " << cum << "\n";
    }
    const std::uint64_t count = h->count();
    os << n << "_bucket{le=\"+Inf\"} " << count << "\n";
    std::snprintf(buf, sizeof(buf), "%.17g", h->total_seconds());
    os << n << "_sum " << buf << "\n" << n << "_count " << count << "\n";
  }
  return os.str();
}

namespace {

/// Splits "name{labels} value" into its parts; returns false on syntax
/// errors. Label parsing only has to be exact enough for the lint: it
/// honors \" escapes inside label values.
struct SampleLine {
  std::string metric;
  std::string labels;  ///< Raw text between { and }, empty if none.
  double value = 0.0;
};

bool parse_sample_line(const std::string& line, SampleLine* out) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (i == 0 || i == line.size()) return false;
  out->metric = line.substr(0, i);
  for (char c : out->metric) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  out->labels.clear();
  if (line[i] == '{') {
    const std::size_t start = ++i;
    bool in_string = false;
    for (; i < line.size(); ++i) {
      if (in_string) {
        if (line[i] == '\\') {
          ++i;  // Skip the escaped character.
        } else if (line[i] == '"') {
          in_string = false;
        }
      } else if (line[i] == '"') {
        in_string = true;
      } else if (line[i] == '}') {
        break;
      }
    }
    if (i >= line.size()) return false;  // Unterminated label set.
    out->labels = line.substr(start, i - start);
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  const std::string value_text = line.substr(i + 1);
  if (value_text.empty()) return false;
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Escape-sequence validation over the raw label text of a sample line:
/// within quoted label values only \\, \" and \n are legal escapes (the
/// three prometheus_escape_label produces). parse_sample_line skips
/// escaped characters blindly, so this is where `a\qb` gets caught.
std::vector<std::string> label_escape_errors(const std::string& labels) {
  std::vector<std::string> errors;
  bool in_string = false;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const char c = labels[i];
    if (!in_string) {
      if (c == '"') in_string = true;
      continue;
    }
    if (c == '"') {
      in_string = false;
    } else if (c == '\\') {
      if (i + 1 >= labels.size()) {
        errors.push_back("label value ends mid-escape");
        break;
      }
      const char next = labels[i + 1];
      if (next != '\\' && next != '"' && next != 'n') {
        errors.push_back(std::string("invalid label escape '\\") + next +
                         "'");
      }
      ++i;
    }
  }
  return errors;
}

/// The histogram base name of a sample ("x_bucket" -> "x"), or the metric
/// itself for _sum/_count.
std::string strip_suffix(const std::string& metric, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  if (metric.size() > n &&
      metric.compare(metric.size() - n, n, suffix) == 0) {
    return metric.substr(0, metric.size() - n);
  }
  return {};
}

}  // namespace

std::vector<std::string> prometheus_lint(const std::string& exposition) {
  std::vector<std::string> errors;
  std::map<std::string, std::string> type_of;   ///< base name -> TYPE.
  std::map<std::string, bool> has_help;
  struct HistState {
    std::uint64_t last_cum = 0;
    bool saw_inf = false;
    double last_le = -1.0;
    std::uint64_t inf_value = 0;
    bool has_count = false;
    std::uint64_t count_value = 0;
  };
  std::map<std::string, HistState> hists;

  std::istringstream is(exposition);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto err = [&](const std::string& msg) {
      errors.push_back("line " + std::to_string(lineno) + ": " + msg);
    };
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, rest;
      ls >> hash >> kind >> name;
      if (kind == "TYPE") {
        ls >> rest;
        if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
            rest != "summary" && rest != "untyped") {
          err("unknown TYPE '" + rest + "' for " + name);
        }
        if (!has_help.count(name)) {
          err("# TYPE " + name + " has no preceding # HELP");
        }
        if (type_of.count(name)) err("duplicate # TYPE for " + name);
        type_of[name] = rest;
      } else if (kind == "HELP") {
        has_help[name] = true;
      }
      continue;
    }
    SampleLine s;
    if (!parse_sample_line(line, &s)) {
      err("unparsable sample line '" + line + "'");
      continue;
    }
    for (const std::string& e : label_escape_errors(s.labels)) {
      err(s.metric + ": " + e);
    }
    // Resolve the declared family: the metric itself (counter/gauge) or
    // its histogram base via the _bucket/_sum/_count suffix.
    std::string base = s.metric;
    std::string series;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string stripped = strip_suffix(s.metric, suffix);
      if (!stripped.empty() && type_of.count(stripped) &&
          type_of[stripped] == "histogram") {
        base = stripped;
        series = suffix;
        break;
      }
    }
    if (!type_of.count(base)) {
      err("sample " + s.metric + " has no preceding # TYPE");
      continue;
    }
    if (type_of[base] == "histogram") {
      HistState& h = hists[base];
      if (series == "_bucket") {
        // Extract the le label.
        const std::string key = "le=\"";
        const std::size_t at = s.labels.find(key);
        if (at == std::string::npos) {
          err(s.metric + " bucket sample without le label");
          continue;
        }
        const std::size_t end = s.labels.find('"', at + key.size());
        const std::string le = s.labels.substr(at + key.size(),
                                               end - at - key.size());
        const auto cum = static_cast<std::uint64_t>(s.value);
        if (cum < h.last_cum) {
          err(base + " bucket counts not cumulative at le=" + le);
        }
        h.last_cum = cum;
        if (le == "+Inf") {
          h.saw_inf = true;
          h.inf_value = cum;
        } else {
          char* lend = nullptr;
          const double bound = std::strtod(le.c_str(), &lend);
          if (lend == nullptr || *lend != '\0') {
            err(base + " has unparsable le value '" + le + "'");
          } else if (bound <= h.last_le) {
            err(base + " le bounds not increasing at " + le);
          } else {
            h.last_le = bound;
          }
          if (h.saw_inf) err(base + " has buckets after le=\"+Inf\"");
        }
      } else if (series == "_count") {
        h.has_count = true;
        h.count_value = static_cast<std::uint64_t>(s.value);
      }
      // _sum: any finite number is fine (parse already checked).
    }
  }
  for (const auto& [base, h] : hists) {
    if (!h.saw_inf) {
      errors.push_back("histogram " + base + " missing le=\"+Inf\" bucket");
    } else if (h.has_count && h.inf_value != h.count_value) {
      errors.push_back("histogram " + base + " +Inf bucket (" +
                       std::to_string(h.inf_value) + ") != _count (" +
                       std::to_string(h.count_value) + ")");
    }
    if (!h.has_count) {
      errors.push_back("histogram " + base + " missing _count series");
    }
  }
  return errors;
}

std::size_t peak_rss_bytes() {
#if defined(_WIN32)
  return 0;
#else
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
#endif
#endif
}

namespace {

std::uint64_t count_open_fds() {
#if defined(_WIN32)
  return 0;
#else
#if defined(__APPLE__)
  const char* fd_dir = "/dev/fd";
#else
  const char* fd_dir = "/proc/self/fd";
#endif
  DIR* dir = opendir(fd_dir);
  if (dir == nullptr) return 0;
  std::uint64_t n = 0;
  while (const dirent* e = readdir(dir)) {
    if (e->d_name[0] == '.') continue;
    ++n;
  }
  closedir(dir);
  // The directory stream itself holds one fd; report the caller's view.
  return n > 0 ? n - 1 : 0;
#endif
}

}  // namespace

ProcessStats process_stats() {
  ProcessStats ps;
#if !defined(_WIN32)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    ps.user_cpu_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                          static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
    ps.sys_cpu_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                         static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
    ps.voluntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    ps.involuntary_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }
#endif
  ps.open_fds = count_open_fds();
  ps.peak_rss_bytes = peak_rss_bytes();
  return ps;
}

void publish_process_metrics() {
  // Resolve-once refs: scrape handlers call this on every render.
  static Gauge& user = MetricsRegistry::instance().gauge(
      "process.user_cpu_seconds");
  static Gauge& sys = MetricsRegistry::instance().gauge(
      "process.sys_cpu_seconds");
  static Gauge& nvcsw = MetricsRegistry::instance().gauge(
      "process.voluntary_ctx_switches");
  static Gauge& nivcsw = MetricsRegistry::instance().gauge(
      "process.involuntary_ctx_switches");
  static Gauge& fds = MetricsRegistry::instance().gauge("process.open_fds");
  static Gauge& rss = MetricsRegistry::instance().gauge(
      "process.peak_rss_bytes");
  const ProcessStats ps = process_stats();
  user.set(ps.user_cpu_seconds);
  sys.set(ps.sys_cpu_seconds);
  nvcsw.set(static_cast<double>(ps.voluntary_ctx_switches));
  nivcsw.set(static_cast<double>(ps.involuntary_ctx_switches));
  fds.set(static_cast<double>(ps.open_fds));
  rss.set(static_cast<double>(ps.peak_rss_bytes));
}

}  // namespace m3dfl::obs
