#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace m3dfl::obs {

namespace {

constexpr double kBase_us = 1.0;  ///< Upper bound of bucket 0.
constexpr double kGrowth = 1.5;

/// The exact per-bucket upper bounds, in seconds. Built once; every
/// comparison in bucket_index() uses these doubles, so boundaries are exact
/// by construction (comparing in microseconds instead would round-trip
/// through * 1e6 and disagree by an ulp on some buckets).
const std::array<double, LatencyHistogram::kNumBuckets>& bucket_bounds() {
  static const auto table = [] {
    std::array<double, LatencyHistogram::kNumBuckets> b{};
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = kBase_us * std::pow(kGrowth, static_cast<double>(i)) * 1e-6;
    }
    return b;
  }();
  return table;
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return bucket_bounds()[std::min(i, kNumBuckets - 1)];
}

std::size_t LatencyHistogram::bucket_index(double seconds) {
  const auto& ub = bucket_bounds();
  if (!(seconds > ub[0])) return 0;  // Includes NaN-sanitized zeros.
  // ceil(log ratio) is the right bucket up to an ulp of rounding either
  // way; the correction loops compare against the exact bound table and
  // move at most one step in practice.
  const double us = seconds * 1e6;
  const double guess = std::ceil(std::log(us / kBase_us) / std::log(kGrowth));
  std::size_t i =
      guess < 1.0 ? 1
                  : std::min(static_cast<std::size_t>(guess), kNumBuckets - 1);
  while (i > 0 && seconds <= ub[i - 1]) --i;
  while (i + 1 < kNumBuckets && seconds > ub[i]) ++i;
  return i;
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::bucket_count(std::size_t i) const {
  return buckets_[std::min(i, kNumBuckets - 1)].load(
      std::memory_order_relaxed);
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         (1e9 * static_cast<double>(n));
}

double LatencyHistogram::percentile_seconds(double pct) const {
  std::array<std::uint64_t, kNumBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (snap[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
    const double hi = bucket_upper_seconds(i);
    if (static_cast<double>(cum + snap[i]) >= target) {
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(snap[i]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cum += snap[i];
  }
  return bucket_upper_seconds(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << "\"" << name << "\":";
    json_number(os, g->value());
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << "\"" << name << "\":{\"count\":" << h->count()
       << ",\"mean_ms\":";
    json_number(os, 1e3 * h->mean_seconds());
    os << ",\"p50_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(50.0));
    os << ",\"p95_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(95.0));
    os << ",\"p99_ms\":";
    json_number(os, 1e3 * h->percentile_seconds(99.0));
    os << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace m3dfl::obs
