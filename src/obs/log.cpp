#include "obs/log.h"

#include <cstdarg>
#include <chrono>
#include <sstream>

namespace m3dfl::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

LogField LogField::str(std::string key, std::string value) {
  return {std::move(key), std::move(value), true};
}

LogField LogField::num(std::string key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return {std::move(key), buf, false};
}

LogField LogField::num(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value), false};
}

LogField LogField::boolean(std::string key, bool value) {
  return {std::move(key), value ? "true" : "false", false};
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_stream(std::FILE* stream) {
  std::lock_guard<std::mutex> lock(mu_);
  stream_ = stream;
}

void Logger::log(LogLevel level, const char* component,
                 std::string_view message,
                 const std::vector<LogField>& fields) {
  if (!enabled(level)) return;
  std::string line;
  if (json()) {
    const auto ts_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::ostringstream os;
    os << "{\"ts_ms\":" << ts_ms << ",\"level\":\"" << log_level_name(level)
       << "\",\"component\":\"" << json_escape(component) << "\",\"msg\":\""
       << json_escape(message) << "\"";
    if (!fields.empty()) {
      os << ",\"fields\":{";
      bool first = true;
      for (const LogField& f : fields) {
        os << (first ? "" : ",") << "\"" << json_escape(f.key) << "\":";
        if (f.quoted) {
          os << "\"" << json_escape(f.value) << "\"";
        } else {
          os << f.value;
        }
        first = false;
      }
      os << "}";
    }
    os << "}\n";
    line = os.str();
  } else {
    line.append(message);
    for (const LogField& f : fields) {
      line += "  ";
      line += f.key;
      line += '=';
      line += f.value;
    }
    line += '\n';
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE* out = stream_ ? stream_ : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::logf(LogLevel level, const char* component, const char* fmt,
                  ...) {
  if (!enabled(level)) return;
  char stack_buf[512];
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof(stack_buf)) {
    va_end(args_copy);
    log(level, component, std::string_view(stack_buf,
                                           static_cast<std::size_t>(n)));
    return;
  }
  std::string big(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(big.data(), big.size() + 1, fmt, args_copy);
  va_end(args_copy);
  log(level, component, big);
}

}  // namespace m3dfl::obs
