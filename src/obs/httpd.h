#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace m3dfl::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal dependency-free HTTP/1.1 admin server over POSIX sockets — the
/// live-introspection plane of a long-running `m3dfl serve` process.
///
/// Design constraints, in order:
///  * zero coupling to the serving hot path: handlers are plain callables
///    that read registry/tracer/exemplar snapshots; the server never holds
///    a lock a worker thread could want;
///  * bounded resources: one accept thread, a fixed handler pool, a bounded
///    connection queue (overflow answers 503 immediately), and an 8 KiB
///    request cap — a misbehaving scraper cannot balloon memory;
///  * honest HTTP: GET/HEAD only (405 + Allow otherwise), 404 for unknown
///    paths, 400 for garbage, Connection: close on every response — every
///    request is one short-lived connection, which keeps the state machine
///    trivially correct under concurrent curls.
///
/// The server binds loopback by default: it is an operator plane, not a
/// public listener. Start with port 0 for an ephemeral port (tests);
/// port() reports the bound one.
class AdminHttpServer {
 public:
  /// Handlers run on a pool thread per request and must be thread-safe
  /// (the built-in endpoints only read snapshots).
  using Handler = std::function<HttpResponse()>;
  /// Query-aware variant: receives the raw query string (text after '?',
  /// empty if none) — /profilez?seconds=3 parses its own parameters.
  using QueryHandler = std::function<HttpResponse(const std::string&)>;

  struct Options {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;                 ///< 0 = ephemeral.
    std::size_t handler_threads = 2;        ///< Bounded handler pool.
    std::size_t max_queued_connections = 16;
    int io_timeout_ms = 2000;               ///< Per-connection recv/send cap.
  };

  AdminHttpServer() = default;
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Registers a GET/HEAD route (exact path match, query string ignored).
  /// Call before start().
  void handle(std::string path, Handler handler);

  /// Registers a query-aware route (exact path match, query string passed
  /// through). Call before start().
  void handle_query(std::string path, QueryHandler handler);

  /// Binds, listens, and spins up the accept thread + handler pool.
  /// Returns false (and fills *error) on socket failures. Idempotent-safe:
  /// starting a started server fails.
  bool start(const Options& opts, std::string* error = nullptr);

  /// Stops accepting, drains queued connections, joins every thread.
  /// Safe to call twice; the destructor calls it.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Bound port (valid after a successful start()).
  std::uint16_t port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handler_loop();
  void serve_connection(int fd);

  Options opts_;
  std::map<std::string, Handler> routes_;
  std::map<std::string, QueryHandler> query_routes_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;  ///< Accepted fds awaiting a handler thread.
};

}  // namespace m3dfl::obs
