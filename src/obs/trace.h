#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace m3dfl::obs {

/// One completed span, as read back from the ring buffers. `name` and
/// `category` are the static string literals the instrumentation site passed
/// in — the tracer never copies or owns strings, which is what keeps
/// recording allocation-free.
struct SpanEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< Since the process-wide trace epoch.
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< Tracer-assigned thread id (1, 2, ...).
  std::uint32_t depth = 0;  ///< Nesting depth on its thread at open time.
};

/// Process-wide span tracer.
///
/// Recording model: each thread owns a fixed-capacity ring of seqlock-
/// protected slots. A span close is a handful of relaxed atomic stores into
/// the owner's ring — no locks, no allocation, no cross-thread contention —
/// and when the ring is full the oldest spans are silently overwritten
/// (drop-oldest; see dropped()). snapshot() reads every ring from any
/// thread, using the per-slot sequence numbers to discard slots that a
/// writer is mid-update on, so a torn span can never be observed.
///
/// Tracing is off by default; set_enabled(true) turns recording on with one
/// relaxed flag. Disabled spans cost a single relaxed load. When the
/// library is built with -DM3DFL_OBS=OFF the M3DFL_OBS_SPAN macros expand
/// to nothing and instrumented code carries no tracing at all; the Tracer
/// itself stays linkable so tooling compiles in both modes.
///
/// Spans observe timing only — they never feed back into computation — so
/// enabling tracing cannot perturb the pipeline's bit-identity guarantees.
class Tracer {
 public:
  /// Per-thread ring capacity (spans). Must be a power of two.
  static constexpr std::size_t kRingCapacity = 4096;

  /// Opaque per-thread ring; defined in trace.cpp (public so the TLS
  /// holder there can hold a pointer, not part of the API).
  struct ThreadLog;

  static Tracer& instance();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the process-wide trace epoch (first use).
  static std::uint64_t now_ns();

  /// Records one completed span into the calling thread's ring. No-op when
  /// disabled. Called by ~ObsSpan; rarely useful directly.
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint32_t depth);

  /// Every readable span across all threads, in per-thread ring order.
  /// Safe to call while other threads record (mid-write slots are skipped).
  std::vector<SpanEvent> snapshot() const;

  /// Spans lost to ring overflow since the last clear().
  std::uint64_t dropped() const;

  /// Resets every ring. Call only while no thread is recording.
  void clear();

  /// Writes the snapshot as Chrome trace-event JSON ("X" complete events,
  /// microsecond timestamps) — loadable in chrome://tracing and Perfetto.
  /// `extra_sections`, when non-empty, is spliced verbatim as additional
  /// top-level members (no surrounding braces/commas) — the profiler's
  /// `"stackFrames":{...},"samples":[...]` ride along this way so sampled
  /// stacks and spans land in one file.
  void write_chrome_trace(std::ostream& os,
                          const std::string& extra_sections =
                              std::string()) const;

 private:
  friend struct TlsHolder;

  Tracer() = default;
  ThreadLog* acquire_log();
  void retire_log(ThreadLog* log);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< Guards logs_ / free_ registration only.
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::vector<ThreadLog*> free_;  ///< Retired logs, reused by new threads.
  std::uint32_t next_tid_ = 1;
};

/// RAII span guard: opens on construction, records on destruction. The
/// name/category must be string literals (or otherwise outlive the tracer's
/// rings). Use through M3DFL_OBS_SPAN so disabled builds compile it out.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* category = "m3dfl");
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Aggregate view of a snapshot: per span name, how many spans, total time,
/// and how many distinct threads recorded one. Sorted by total time
/// descending (the CLI --progress summary).
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  std::uint32_t threads = 0;
};
std::vector<SpanSummary> summarize_spans(const std::vector<SpanEvent>& events);

}  // namespace m3dfl::obs

// Instrumentation macros. `var` names the guard (must be unique in scope);
// the span closes when `var` goes out of scope. With M3DFL_OBS=OFF both
// expand to nothing, so instrumented hot paths carry zero tracing code.
#if M3DFL_OBS_ENABLED
#define M3DFL_OBS_SPAN(var, name) ::m3dfl::obs::ObsSpan var((name))
#define M3DFL_OBS_SPAN_CAT(var, name, cat) \
  ::m3dfl::obs::ObsSpan var((name), (cat))
#else
#define M3DFL_OBS_SPAN(var, name) ((void)0)
#define M3DFL_OBS_SPAN_CAT(var, name, cat) ((void)0)
#endif
