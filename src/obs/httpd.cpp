#include "obs/httpd.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"

namespace m3dfl::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Writes the whole buffer, tolerating short sends; gives up on error.
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string render_response(const HttpResponse& r, bool head_only,
                            const char* extra_header) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    status_reason(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  if (extra_header != nullptr) {
    out += extra_header;
    out += "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += r.body;
  return out;
}

/// Admin threads are infrastructure, not workload: the sampling profiler
/// (src/obs/prof/) targets registered threads via per-thread timers, but a
/// handler could still inherit SIGPROF from a pre-existing process-wide
/// interval timer. Masking here keeps admin threads out of profiles and
/// keeps blocking poll/recv calls from taking profiling interruptions.
void block_sigprof_on_this_thread() {
#if !defined(_WIN32)
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
#endif
}

void set_io_timeout(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

AdminHttpServer::~AdminHttpServer() { stop(); }

void AdminHttpServer::handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void AdminHttpServer::handle_query(std::string path, QueryHandler handler) {
  query_routes_[std::move(path)] = std::move(handler);
}

bool AdminHttpServer::start(const Options& opts, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "admin server already running";
    return false;
  }
  opts_ = opts;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return fail("inet_pton(" + opts_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind(" + opts_.bind_address + ":" +
                std::to_string(opts_.port) + ")");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  const std::size_t pool = opts_.handler_threads ? opts_.handler_threads : 1;
  handlers_.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void AdminHttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : queue_) ::close(fd);
    queue_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminHttpServer::accept_loop() {
  block_sigprof_on_this_thread();
  // poll() with a short timeout instead of a blocking accept(): stop() only
  // has to set the flag, never races a close() against a blocked accept.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_io_timeout(fd, opts_.io_timeout_ms);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < opts_.max_queued_connections) {
        queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Back-pressure: a full queue answers 503 from the accept thread
      // (tiny write) rather than queueing unboundedly.
      HttpResponse r;
      r.status = 503;
      r.body = "admin handler queue full\n";
      send_all(fd, render_response(r, false, "Retry-After: 1"));
      ::close(fd);
    }
  }
}

void AdminHttpServer::handler_loop() {
  block_sigprof_on_this_thread();
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) return;  // Stopping and drained.
      fd = queue_.front();
      queue_.pop_front();
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void AdminHttpServer::serve_connection(int fd) {
  static Counter& requests_total =
      MetricsRegistry::instance().counter("admin.http_requests");
  static LatencyHistogram& handler_seconds =
      MetricsRegistry::instance().histogram("admin.http_handler_seconds");

  std::string request;
  request.reserve(512);
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // Timeout, reset, or EOF.
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  requests_total.add();

  const std::size_t line_end = request.find("\r\n");
  std::string method, target, version;
  if (line_end != std::string::npos) {
    const std::string line = request.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 != std::string::npos && sp2 != std::string::npos) {
      method = line.substr(0, sp1);
      target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      version = line.substr(sp2 + 1);
    }
  }
  if (method.empty() || target.empty() ||
      version.rfind("HTTP/1.", 0) != 0) {
    HttpResponse r;
    r.status = 400;
    r.body = "malformed request\n";
    send_all(fd, render_response(r, false, nullptr));
    return;
  }
  if (method != "GET" && method != "HEAD") {
    HttpResponse r;
    r.status = 405;
    r.body = "only GET and HEAD are supported\n";
    send_all(fd, render_response(r, false, "Allow: GET, HEAD"));
    return;
  }
  const std::size_t query = target.find('?');
  const std::string path =
      query == std::string::npos ? target : target.substr(0, query);
  const std::string query_string =
      query == std::string::npos ? std::string() : target.substr(query + 1);
  const auto it = routes_.find(path);
  const auto qit = query_routes_.find(path);
  if (it == routes_.end() && qit == query_routes_.end()) {
    HttpResponse r;
    r.status = 404;
    r.body = "no such endpoint: " + path + "\n";
    send_all(fd, render_response(r, method == "HEAD", nullptr));
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  HttpResponse r =
      it != routes_.end() ? it->second() : qit->second(query_string);
  handler_seconds.record(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count());
  send_all(fd, render_response(r, method == "HEAD", nullptr));
}

}  // namespace m3dfl::obs
