#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace m3dfl::obs {

/// One stage of a request's span tree, with times relative to the request's
/// submit instant. `name` must be a static string literal (the serve stage
/// names), mirroring the tracer's no-copy contract.
struct ExemplarStage {
  const char* name = nullptr;
  double start_ms = 0.0;
  double dur_ms = 0.0;
};

/// The full trace of one served request: identity, the queue-wait vs.
/// service-time split of its end-to-end latency, outcome flags, and its
/// per-stage span tree.
struct RequestExemplar {
  std::uint64_t request_id = 0;
  double total_ms = 0.0;
  double queue_ms = 0.0;    ///< submit → worker pickup (batcher + executor).
  double service_ms = 0.0;  ///< worker pickup → response ready.
  bool ok = false;
  bool cache_hit = false;
  std::uint64_t model_version = 0;
  std::vector<ExemplarStage> stages;
};

/// Bounded store of slow-request exemplars: retains the `capacity` slowest
/// requests (by total latency) of the current time window, plus the
/// completed previous window, so /tracez always shows both "slowest right
/// now" and "slowest a moment ago". Memory is hard-bounded by construction:
/// at most 2 * capacity exemplars ever exist, each carrying at most
/// max_stages stages — offering a million requests cannot grow it.
///
/// Disabled by default; offer() is a single relaxed load until the admin
/// plane enables it, so serving without an admin endpoint pays nothing.
class ExemplarStore {
 public:
  struct Options {
    std::size_t capacity = 8;      ///< Slowest-N kept per window.
    double window_seconds = 60.0;  ///< Window length before rotation.
    std::size_t max_stages = 16;   ///< Stage cap per exemplar.
  };

  ExemplarStore() = default;
  explicit ExemplarStore(Options opts) : opts_(opts) {}

  static ExemplarStore& instance();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Considers one completed request. Kept only if it ranks among the
  /// window's slowest; stages beyond max_stages are dropped. No-op while
  /// disabled.
  void offer(RequestExemplar exemplar);

  /// Retained exemplars, slowest-first: current window then previous.
  std::vector<RequestExemplar> snapshot() const;

  /// {"window_seconds":..,"capacity":..,"offered":..,"exemplars":[..]}
  std::string to_json() const;

  void clear();

  /// Requests offered while enabled (kept or not).
  std::uint64_t offered() const {
    return offered_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return opts_; }

 private:
  void rotate_if_due_locked(std::chrono::steady_clock::time_point now);

  Options opts_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> offered_{0};
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point window_start_{};
  bool window_started_ = false;
  std::vector<RequestExemplar> current_;   ///< Sorted slowest-first.
  std::vector<RequestExemplar> previous_;  ///< Last completed window.
};

}  // namespace m3dfl::obs
