#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

// Sampling CPU profiler. Each registered thread gets a POSIX per-thread
// CPU-time timer (timer_create on the thread's cpu clock, SIGEV_THREAD_ID
// delivery) firing SIGPROF at the sampling rate; the handler captures a
// frame-pointer backtrace from the interrupted context into a per-thread
// seqlock-protected sample ring — the same drop-oldest ring idiom as
// Tracer's span rings — using only async-signal-safe operations (relaxed
// atomic stores, no locks, no allocation). Because the timers tick CPU
// time, idle threads are never interrupted and sample counts are directly
// proportional to cycles burned.
//
// Export is offline: collect() symbolizes program counters via dladdr
// (works on the statically linked binary because the build exports dynamic
// symbols under M3DFL_OBS) and folds identical stacks into collapsed-stack
// lines ("root;caller;leaf count") — the input format of
// flamegraph.pl / speedscope / inferno.
//
// With -DM3DFL_OBS=OFF this header only defines the no-op macro; the
// implementation file compiles to nothing and no prof symbols exist in
// the binary (CI asserts this with nm).
#if M3DFL_OBS_ENABLED

namespace m3dfl::obs::prof {

struct ProfilerOptions {
  /// Samples per second of *CPU time* per thread. 99 (not 100) so the
  /// sampling beat does not alias with 10 ms scheduler ticks.
  int sample_hz = 99;
};

/// One folded (collapsed) stack: frames root→leaf joined by ';'.
struct FoldedStack {
  std::string stack;
  std::uint64_t count = 0;
};

class CpuProfiler {
 public:
  /// Deepest stack recorded per sample; frames beyond this are dropped
  /// (leaf-most kept — the walk starts at the interrupted PC).
  static constexpr std::size_t kMaxFrames = 32;
  /// Per-thread sample ring capacity. Power of two. 4096 samples at 99 Hz
  /// is ~41 s of saturated CPU per thread before drop-oldest kicks in.
  static constexpr std::size_t kRingCapacity = 4096;

  /// Opaque per-thread state; defined in profiler.cpp.
  struct ThreadState;

  static CpuProfiler& instance();

  /// Arms per-thread timers on every registered thread (registering the
  /// calling thread first) and starts recording. Fails if already running
  /// or the platform lacks per-thread CPU timers. Clears previous samples.
  bool start(const ProfilerOptions& opts = ProfilerOptions{},
             std::string* error = nullptr);

  /// Disarms all timers and stops recording. Samples remain readable.
  void stop();

  bool running() const;
  int sample_hz() const;

  /// Samples recorded since the last start(). Relaxed read; exact once
  /// stopped.
  std::uint64_t samples() const;
  /// Samples lost: ring overflow (drop-oldest) plus signals that landed on
  /// threads without a ring.
  std::uint64_t dropped() const;

  /// Symbolized, deduplicated stacks, heaviest first.
  std::vector<FoldedStack> collect() const;

  /// Collapsed-stack text: one "frame;frame;frame count" line per unique
  /// stack. Empty output means no samples (e.g. the profiled window was
  /// idle).
  void write_folded(std::ostream& os) const;

  /// Chrome trace-event extra sections (`"stackFrames":{...},"samples":
  /// [...]`) for merging sampled stacks into Tracer::write_chrome_trace
  /// output; Perfetto renders them alongside the spans.
  std::string chrome_sample_sections() const;

  /// Registers the calling thread for sampling (idempotent). Threads that
  /// never register are simply not sampled. Prefer the ProfiledThread RAII
  /// guard / M3DFL_PROF_THREAD macro.
  void register_current_thread();
  /// Disarms and unlinks the calling thread. Must be called before the
  /// thread exits if register_current_thread was called on it (its CPU
  /// clock dies with it).
  void unregister_current_thread();

 private:
  CpuProfiler() = default;
  bool arm_locked(ThreadState* ts, std::string* error);
  void disarm_locked(ThreadState* ts);
};

/// RAII registration of the calling thread with the profiler — used by
/// Executor worker threads so pool workers are always sampleable.
class ProfiledThread {
 public:
  ProfiledThread() { CpuProfiler::instance().register_current_thread(); }
  ~ProfiledThread() { CpuProfiler::instance().unregister_current_thread(); }
  ProfiledThread(const ProfiledThread&) = delete;
  ProfiledThread& operator=(const ProfiledThread&) = delete;
};

/// Symbol name for a program counter ("m3dfl::sim::FaultSimulator::run" or
/// "0x40fe12" when unresolvable). Test hook; collect() caches these.
std::string symbolize_pc(std::uint64_t pc);

}  // namespace m3dfl::obs::prof

#define M3DFL_PROF_THREAD(var) ::m3dfl::obs::prof::ProfiledThread var

#else  // !M3DFL_OBS_ENABLED

#define M3DFL_PROF_THREAD(var) ((void)0)

#endif  // M3DFL_OBS_ENABLED
