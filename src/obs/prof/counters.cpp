#include "obs/prof/counters.h"

#if M3DFL_OBS_ENABLED

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#if defined(__linux__)
#define M3DFL_PERF_SUPPORTED 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define M3DFL_PERF_SUPPORTED 0
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#endif

namespace m3dfl::obs::prof {

namespace {

/// Event set for each hardware rung, in open order (leader first). The
/// read() buffer returns values in this same order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

#if M3DFL_PERF_SUPPORTED

constexpr EventSpec kFullEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};
constexpr EventSpec kBasicEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
};

int perf_open(const EventSpec& ev, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = ev.type;
  attr.config = ev.config;
  attr.disabled = 0;  // Count from open; scopes diff two readings.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = 0;  // Per-thread: each worker counts its own cycles.
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/// Tries to open a whole group on the calling thread; returns the number
/// of events opened (0 on failure) and the fds via `fds`.
int open_group(const EventSpec* events, int n, int* fds, int* err) {
  for (int i = 0; i < n; ++i) fds[i] = -1;
  for (int i = 0; i < n; ++i) {
    fds[i] = perf_open(events[i], i == 0 ? -1 : fds[0]);
    if (fds[i] < 0) {
      if (err != nullptr) *err = errno;
      for (int j = 0; j < i; ++j) {
        ::close(fds[j]);
        fds[j] = -1;
      }
      return 0;
    }
  }
  return n;
}

#endif  // M3DFL_PERF_SUPPORTED

bool force_no_perf_event_env() {
  const char* v = std::getenv("M3DFL_NO_PERF_EVENT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

double thread_cpu_seconds() {
#if defined(RUSAGE_THREAD)
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return 0.0;
#elif defined(RUSAGE_SELF)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#else
  return 0.0;
#endif
#if defined(RUSAGE_THREAD) || defined(RUSAGE_SELF)
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) / 1e6;
#endif
}

CounterAvailability do_probe(bool force_no_perf_event) {
  CounterAvailability av;
#if !defined(RUSAGE_SELF)
  av.mode = CounterMode::kUnavailable;
  av.detail = "no getrusage on this platform";
  return av;
#else
  av.mode = CounterMode::kRusage;
#endif
  if (force_no_perf_event) {
    av.detail = "forced off via M3DFL_NO_PERF_EVENT";
    return av;
  }
#if M3DFL_PERF_SUPPORTED
  int fds[4];
  int err = 0;
  if (open_group(kFullEvents, 4, fds, &err) == 4) {
    for (int fd : fds) ::close(fd);
    av.mode = CounterMode::kFull;
    av.detail = "ok";
    return av;
  }
  const int full_err = err;
  if (open_group(kBasicEvents, 2, fds, &err) == 2) {
    for (int i = 0; i < 2; ++i) ::close(fds[i]);
    av.mode = CounterMode::kBasic;
    av.detail = std::string("cache/branch events unavailable: ") +
                std::strerror(full_err);
    return av;
  }
  av.detail = std::string("perf_event_open: ") + std::strerror(err);
#else
  av.detail = "perf_event_open requires Linux";
#endif
  return av;
}

#if M3DFL_PERF_SUPPORTED

/// Per-thread perf group, opened lazily on the first read and closed when
/// the thread exits.
struct ThreadGroup {
  int fds[4] = {-1, -1, -1, -1};
  int n_events = 0;
  bool attempted = false;
  ~ThreadGroup() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
};

thread_local ThreadGroup tls_group;

bool read_group(CounterValues* out) {
  const CounterAvailability& av = counter_availability();
  if (av.mode != CounterMode::kFull && av.mode != CounterMode::kBasic) {
    return false;
  }
  ThreadGroup& g = tls_group;
  if (!g.attempted) {
    g.attempted = true;
    if (av.mode == CounterMode::kFull) {
      g.n_events = open_group(kFullEvents, 4, g.fds, nullptr);
    } else {
      g.n_events = open_group(kBasicEvents, 2, g.fds, nullptr);
    }
  }
  if (g.n_events == 0) return false;
  // {nr, time_enabled, time_running, values[nr]}
  std::uint64_t buf[3 + 4] = {};
  const ssize_t want =
      static_cast<ssize_t>((3 + g.n_events) * sizeof(std::uint64_t));
  if (::read(g.fds[0], buf, static_cast<std::size_t>(want)) != want) {
    return false;
  }
  const std::uint64_t te = buf[1];
  const std::uint64_t tr = buf[2];
  // Multiplex correction: scale counts up by enabled/running time. tr == 0
  // means the group never ran (no data yet) — report raw zeros.
  const double scale =
      tr > 0 ? static_cast<double>(te) / static_cast<double>(tr) : 1.0;
  auto scaled = [&](int i) {
    return static_cast<std::uint64_t>(static_cast<double>(buf[3 + i]) *
                                      scale);
  };
  out->cycles = scaled(0);
  out->instructions = scaled(1);
  if (g.n_events >= 4) {
    out->llc_misses = scaled(2);
    out->branch_misses = scaled(3);
  }
  out->hw_valid = true;
  return true;
}

#endif  // M3DFL_PERF_SUPPORTED

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return std::string(buf);
}

}  // namespace

const char* counter_mode_name(CounterMode mode) {
  switch (mode) {
    case CounterMode::kFull: return "full";
    case CounterMode::kBasic: return "basic";
    case CounterMode::kRusage: return "rusage";
    case CounterMode::kUnavailable: return "unavailable";
  }
  return "unavailable";
}

CounterAvailability probe_counters(bool force_no_perf_event) {
  return do_probe(force_no_perf_event);
}

const CounterAvailability& counter_availability() {
  static const CounterAvailability av = do_probe(force_no_perf_event_env());
  return av;
}

bool read_thread_counters(CounterValues* out) {
  *out = CounterValues{};
  const CounterAvailability& av = counter_availability();
  if (av.mode == CounterMode::kUnavailable) return false;
  out->cpu_seconds = thread_cpu_seconds();
#if M3DFL_PERF_SUPPORTED
  read_group(out);
#endif
  return true;
}

double ScopeTotals::ipc() const {
  return cycles > 0
             ? static_cast<double>(instructions) / static_cast<double>(cycles)
             : 0.0;
}

double ScopeTotals::llc_misses_per_kinstr() const {
  return instructions > 0 ? static_cast<double>(llc_misses) * 1000.0 /
                                static_cast<double>(instructions)
                          : 0.0;
}

double ScopeTotals::branch_misses_per_kinstr() const {
  return instructions > 0 ? static_cast<double>(branch_misses) * 1000.0 /
                                static_cast<double>(instructions)
                          : 0.0;
}

struct CounterRegistry::Scope {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> cycles{0};
  std::atomic<std::uint64_t> instructions{0};
  std::atomic<std::uint64_t> llc_misses{0};
  std::atomic<std::uint64_t> branch_misses{0};
  std::atomic<std::uint64_t> cpu_nanos{0};
};

namespace {

struct RegistryState {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<CounterRegistry::Scope>> scopes;
};

RegistryState& state() {
  static RegistryState* s = new RegistryState();  // Never destroyed: scope
  return *s;  // references outlive static destruction order.
}

}  // namespace

CounterRegistry& CounterRegistry::instance() {
  static CounterRegistry reg;
  return reg;
}

void CounterRegistry::set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

bool CounterRegistry::enabled() const {
  return state().enabled.load(std::memory_order_relaxed);
}

CounterRegistry::Scope& CounterRegistry::scope(const std::string& name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.scopes.find(name);
  if (it == s.scopes.end()) {
    it = s.scopes.emplace(name, std::make_unique<Scope>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, ScopeTotals>> CounterRegistry::snapshot()
    const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<std::pair<std::string, ScopeTotals>> out;
  out.reserve(s.scopes.size());
  for (const auto& [name, sc] : s.scopes) {
    ScopeTotals t;
    t.count = sc->count.load(std::memory_order_relaxed);
    t.cycles = sc->cycles.load(std::memory_order_relaxed);
    t.instructions = sc->instructions.load(std::memory_order_relaxed);
    t.llc_misses = sc->llc_misses.load(std::memory_order_relaxed);
    t.branch_misses = sc->branch_misses.load(std::memory_order_relaxed);
    t.cpu_seconds =
        static_cast<double>(sc->cpu_nanos.load(std::memory_order_relaxed)) /
        1e9;
    out.emplace_back(name, t);
  }
  return out;
}

std::string CounterRegistry::to_json() const {
  const CounterAvailability& av = counter_availability();
  const bool hw = av.mode == CounterMode::kFull ||
                  av.mode == CounterMode::kBasic;
  std::ostringstream os;
  os << "{\"availability\":{\"mode\":\"" << counter_mode_name(av.mode)
     << "\",\"detail\":\"";
  for (char c : av.detail) {  // detail is strerror text: escape minimally.
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << "\"},\"enabled\":" << (enabled() ? "true" : "false")
     << ",\"scopes\":{";
  bool first = true;
  for (const auto& [name, t] : snapshot()) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":{\"count\":" << t.count
       << ",\"cpu_seconds\":" << num(t.cpu_seconds);
    if (hw) {
      os << ",\"cycles\":" << t.cycles
         << ",\"instructions\":" << t.instructions
         << ",\"ipc\":" << num(t.ipc());
      if (av.mode == CounterMode::kFull) {
        os << ",\"llc_misses\":" << t.llc_misses
           << ",\"llc_misses_per_kinstr\":" << num(t.llc_misses_per_kinstr())
           << ",\"branch_misses\":" << t.branch_misses
           << ",\"branch_misses_per_kinstr\":"
           << num(t.branch_misses_per_kinstr());
      }
    }
    os << '}';
  }
  os << "}}";
  return os.str();
}

void CounterRegistry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& [name, sc] : s.scopes) {
    sc->count.store(0, std::memory_order_relaxed);
    sc->cycles.store(0, std::memory_order_relaxed);
    sc->instructions.store(0, std::memory_order_relaxed);
    sc->llc_misses.store(0, std::memory_order_relaxed);
    sc->branch_misses.store(0, std::memory_order_relaxed);
    sc->cpu_nanos.store(0, std::memory_order_relaxed);
  }
}

CounterScope::CounterScope(CounterRegistry::Scope& scope) {
  if (!CounterRegistry::instance().enabled()) return;
  if (!read_thread_counters(&start_)) return;
  scope_ = &scope;
}

CounterScope::~CounterScope() {
  if (scope_ == nullptr) return;
  CounterValues end;
  if (!read_thread_counters(&end)) return;
  scope_->count.fetch_add(1, std::memory_order_relaxed);
  const double dt = end.cpu_seconds - start_.cpu_seconds;
  if (dt > 0) {
    scope_->cpu_nanos.fetch_add(static_cast<std::uint64_t>(dt * 1e9),
                                std::memory_order_relaxed);
  }
  if (end.hw_valid && start_.hw_valid) {
    auto add = [](std::atomic<std::uint64_t>& dst, std::uint64_t a,
                  std::uint64_t b) {
      if (a > b) dst.fetch_add(a - b, std::memory_order_relaxed);
    };
    add(scope_->cycles, end.cycles, start_.cycles);
    add(scope_->instructions, end.instructions, start_.instructions);
    add(scope_->llc_misses, end.llc_misses, start_.llc_misses);
    add(scope_->branch_misses, end.branch_misses, start_.branch_misses);
  }
}

}  // namespace m3dfl::obs::prof

#endif  // M3DFL_OBS_ENABLED
