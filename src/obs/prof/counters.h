#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

// Hardware performance counters via perf_event_open, with a graceful
// degradation ladder probed once per process:
//
//   full   — grouped cycles / instructions / LLC misses / branch misses
//   basic  — grouped cycles / instructions (PMUs with too few generic
//            counters, or cache events unsupported)
//   rusage — no perf_event access at all (containers, seccomp,
//            perf_event_paranoid >= 2): per-thread CPU seconds from
//            getrusage(RUSAGE_THREAD) only
//
// M3DFL_NO_PERF_EVENT=1 in the environment forces the rusage rung — CI
// uses it to exercise the fallback deterministically. Availability is
// reported on /statusz and /countersz; nothing in this subsystem ever
// fails hard when counters are missing.
//
// Attachment model: a CounterScope snapshots the calling thread's counter
// group on entry and exit and accumulates the delta into a named
// per-process aggregate (CounterRegistry), mirroring how M3DFL_OBS_SPAN
// attaches wall time to a stage name. Counter fds are per-thread
// (inherit=0) and lazily opened, so Executor workers each count their own
// cycles with no cross-thread multiplexing.
//
// Under -DM3DFL_OBS=OFF the M3DFL_OBS_COUNTERS macro expands to nothing
// and counters.cpp compiles to an empty TU.
#if M3DFL_OBS_ENABLED

namespace m3dfl::obs::prof {

enum class CounterMode {
  kUnavailable = 0,  ///< Not even rusage (non-POSIX platform).
  kRusage,
  kBasic,
  kFull,
};

const char* counter_mode_name(CounterMode mode);

struct CounterAvailability {
  CounterMode mode = CounterMode::kUnavailable;
  /// Human-readable reason for the rung ("ok", "perf_event_open: No such
  /// file or directory", "forced off via M3DFL_NO_PERF_EVENT", ...).
  std::string detail;
};

/// Process-wide availability, probed on first call and cached (honors
/// M3DFL_NO_PERF_EVENT at probe time).
const CounterAvailability& counter_availability();

/// Fresh probe, bypassing the cache (test hook).
CounterAvailability probe_counters(bool force_no_perf_event);

/// One thread-local counter reading. hw fields are valid only when
/// hw_valid (mode >= basic and this thread's group opened); llc/branch
/// fields are additionally zero under basic mode. cpu_seconds is always
/// valid on POSIX.
struct CounterValues {
  bool hw_valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  double cpu_seconds = 0.0;
};

/// Reads the calling thread's counters (opening its perf group lazily on
/// first use). Returns false only when not even CPU time is readable.
/// Values are monotonic totals since the group opened; callers diff two
/// readings. Multiplexing is corrected via time_enabled/time_running
/// scaling on read.
bool read_thread_counters(CounterValues* out);

/// Aggregated deltas for one named scope.
struct ScopeTotals {
  std::uint64_t count = 0;  ///< Completed CounterScope passes.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t branch_misses = 0;
  double cpu_seconds = 0.0;

  double ipc() const;
  double llc_misses_per_kinstr() const;
  double branch_misses_per_kinstr() const;
};

/// Process-wide named aggregates, same resolve-once-then-wait-free usage
/// pattern as MetricsRegistry: instrumentation sites hold a static
/// reference to their Scope and CounterScope mutates it with relaxed
/// fetch_adds. Disabled (the default) a CounterScope costs one relaxed
/// load; enable with --counters or set_enabled(true).
class CounterRegistry {
 public:
  struct Scope;  ///< Opaque aggregate; defined in counters.cpp.

  static CounterRegistry& instance();

  void set_enabled(bool on);
  bool enabled() const;

  /// Named aggregate; the reference stays valid for the process lifetime.
  Scope& scope(const std::string& name);

  std::vector<std::pair<std::string, ScopeTotals>> snapshot() const;

  /// {"availability":{"mode":...,"detail":...},"enabled":...,
  ///  "scopes":{name:{count,cpu_seconds,cycles,instructions,ipc,...}}}
  /// Derived rates are omitted per-scope when hardware counters are
  /// unavailable rather than reported as zero.
  std::string to_json() const;

  /// Zeroes every scope (entries and references survive).
  void reset();

 private:
  CounterRegistry() = default;
};

/// RAII: accumulates the calling thread's counter deltas over its lifetime
/// into `scope`. Near-free when the registry is disabled.
class CounterScope {
 public:
  explicit CounterScope(CounterRegistry::Scope& scope);
  ~CounterScope();
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

 private:
  CounterRegistry::Scope* scope_ = nullptr;  ///< Null when disabled.
  CounterValues start_;
};

}  // namespace m3dfl::obs::prof

/// Attaches counters to a stage, resolving the scope once per site:
///   M3DFL_OBS_COUNTERS(ctr, "serve.process");
#define M3DFL_OBS_COUNTERS(var, name)                            \
  static ::m3dfl::obs::prof::CounterRegistry::Scope& var##_ref = \
      ::m3dfl::obs::prof::CounterRegistry::instance().scope((name)); \
  ::m3dfl::obs::prof::CounterScope var(var##_ref)

#else  // !M3DFL_OBS_ENABLED

#define M3DFL_OBS_COUNTERS(var, name) ((void)0)

#endif  // M3DFL_OBS_ENABLED
