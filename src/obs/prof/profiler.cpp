#include "obs/prof/profiler.h"

#if M3DFL_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#if defined(__linux__)
#define M3DFL_PROF_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#else
#define M3DFL_PROF_SUPPORTED 0
#endif

#include "obs/trace.h"

// The SIGPROF handler and the frame-pointer walk read raw stack memory
// through computed pointers. The loads are bounds-checked against the
// thread's real stack extent, but sanitizers cannot see that, so keep
// their instrumentation out of the signal path.
#if defined(__clang__)
#define M3DFL_PROF_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#elif defined(__GNUC__)
#define M3DFL_PROF_NO_SANITIZE \
  __attribute__((no_sanitize_address)) __attribute__((no_sanitize_undefined))
#else
#define M3DFL_PROF_NO_SANITIZE
#endif

namespace m3dfl::obs::prof {

#if M3DFL_PROF_SUPPORTED

// glibc spells the SIGEV_THREAD_ID field through a union; older headers
// do not provide the POSIX-next convenience name.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace {

/// One sample slot, seqlock-protected exactly like Tracer's span slots:
/// writer flips seq odd, release fence, relaxed payload stores, seq even
/// (release); readers skip odd/changed sequences. The writer here runs in
/// signal context, which is fine — every store is a relaxed atomic.
struct SampleSlot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<std::uint32_t> nframes{0};
  std::atomic<std::uint64_t> ts_ns{0};
  std::array<std::atomic<std::uint64_t>, CpuProfiler::kMaxFrames> pcs{};
};

struct Ring {
  std::array<SampleSlot, CpuProfiler::kRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};  ///< Total samples ever written.
  std::uint32_t tid = 0;               ///< Profiler-assigned thread id.
};

/// Samples that arrived with no ring to land in (signal raced thread
/// registration/teardown).
std::atomic<std::uint64_t> g_unplaced{0};

/// Global recording gate the handler checks; flipping it off is how stop()
/// quiesces writers without having to synchronize with in-flight signals.
std::atomic<bool> g_sampling{false};

}  // namespace

struct CpuProfiler::ThreadState {
  std::atomic<Ring*> ring{nullptr};
  std::unique_ptr<Ring> owned;
  pthread_t pthread{};
  pid_t os_tid = 0;
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  timer_t timer{};
  bool timer_armed = false;
  bool alive = true;  ///< Thread still running (its CPU clock is valid).
};

namespace {

/// Handler-visible pointer to the calling thread's state. initial-exec TLS
/// so the access in signal context is a direct %fs load, never lazy
/// allocation.
__attribute__((tls_model("initial-exec"))) thread_local
    CpuProfiler::ThreadState* tls_state = nullptr;

struct ProfilerGlobals {
  std::mutex mu;
  std::vector<std::unique_ptr<CpuProfiler::ThreadState>> threads;
  std::vector<std::unique_ptr<Ring>> free_rings;
  std::uint32_t next_tid = 1;
  bool running = false;
  int hz = 0;
  bool sigaction_installed = false;
  // Symbolization cache: PC -> display name. Grows only in collect().
  std::mutex sym_mu;
  std::map<std::uint64_t, std::string> sym_cache;
};

ProfilerGlobals& globals() {
  static ProfilerGlobals* g = new ProfilerGlobals();  // Never destroyed:
  return *g;  // signal handlers and late-exiting threads may outlive main.
}

/// Frame-pointer walk from an interrupted context. pcs[0] is the exact
/// interrupted PC; subsequent entries are return addresses. Every frame
/// pointer is validated (alignment, strictly increasing, within the
/// thread's stack) before dereferencing, so a build without frame pointers
/// in some object just yields a short stack instead of a fault.
M3DFL_PROF_NO_SANITIZE
std::uint32_t capture_stack(void* ucv, std::uintptr_t stack_lo,
                            std::uintptr_t stack_hi, std::uint64_t* pcs,
                            std::uint32_t max_frames) {
#if defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
  std::uintptr_t pc =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  std::uintptr_t fp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  std::uintptr_t sp =
      static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucv);
  std::uintptr_t pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  std::uintptr_t fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  std::uintptr_t sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)ucv;
  (void)stack_lo;
  (void)stack_hi;
  (void)pcs;
  (void)max_frames;
  return 0;
#endif
#if defined(__x86_64__) || defined(__aarch64__)
  if (stack_hi == 0) return 0;  // Unknown stack extent: do not walk.
  std::uint32_t n = 0;
  pcs[n++] = static_cast<std::uint64_t>(pc);
  // The frame chain must stay inside [max(sp, stack_lo), stack_hi) and
  // strictly grow toward the stack base; a saved-fp slot needs fp+16 <=
  // stack_hi readable.
  std::uintptr_t lo = sp > stack_lo ? sp : stack_lo;
  while (n < max_frames) {
    if (fp < lo || fp + 2 * sizeof(void*) > stack_hi || (fp & 0x7) != 0) {
      break;
    }
    const std::uintptr_t next_fp = *reinterpret_cast<std::uintptr_t*>(fp);
    const std::uintptr_t ret =
        *reinterpret_cast<std::uintptr_t*>(fp + sizeof(void*));
    if (ret < 0x1000) break;  // Not a code address.
    pcs[n++] = static_cast<std::uint64_t>(ret);
    if (next_fp <= fp) break;  // Chain must be monotonic.
    lo = fp + 2 * sizeof(void*);
    fp = next_fp;
  }
  return n;
#endif
}

M3DFL_PROF_NO_SANITIZE
void sigprof_handler(int, siginfo_t*, void* ucv) {
  const int saved_errno = errno;
  CpuProfiler::ThreadState* ts = tls_state;
  if (ts == nullptr) {
    g_unplaced.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  Ring* ring = ts->ring.load(std::memory_order_relaxed);
  if (ring == nullptr || !g_sampling.load(std::memory_order_relaxed)) {
    errno = saved_errno;
    return;
  }
  std::uint64_t pcs[CpuProfiler::kMaxFrames];
  const std::uint32_t n = capture_stack(ucv, ts->stack_lo, ts->stack_hi, pcs,
                                        CpuProfiler::kMaxFrames);
  if (n == 0) {
    errno = saved_errno;
    return;
  }
  const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
  SampleSlot& s = ring->slots[h & (CpuProfiler::kRingCapacity - 1)];
  const std::uint32_t sq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(sq + 1, std::memory_order_relaxed);  // Odd: write in progress.
  std::atomic_thread_fence(std::memory_order_release);
  s.ts_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  s.nframes.store(n, std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.pcs[i].store(pcs[i], std::memory_order_relaxed);
  }
  s.seq.store(sq + 2, std::memory_order_release);  // Even: committed.
  ring->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

void reset_ring(Ring* ring) {
  for (SampleSlot& s : ring->slots) {
    s.seq.store(0, std::memory_order_relaxed);
    s.nframes.store(0, std::memory_order_relaxed);
  }
  ring->head.store(0, std::memory_order_relaxed);
}

}  // namespace

CpuProfiler& CpuProfiler::instance() {
  static CpuProfiler prof;
  return prof;
}

void CpuProfiler::register_current_thread() {
  if (tls_state != nullptr) return;
  auto ts = std::make_unique<ThreadState>();
  ts->pthread = pthread_self();
  ts->os_tid = static_cast<pid_t>(::syscall(SYS_gettid));
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    std::size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      ts->stack_lo = reinterpret_cast<std::uintptr_t>(addr);
      ts->stack_hi = ts->stack_lo + size;
    }
    pthread_attr_destroy(&attr);
  }
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  ThreadState* raw = ts.get();
  g.threads.push_back(std::move(ts));
  if (g.running) arm_locked(raw, nullptr);
  // Publish to the handler only after the state is fully built.
  tls_state = raw;
}

void CpuProfiler::unregister_current_thread() {
  ThreadState* ts = tls_state;
  if (ts == nullptr) return;
  tls_state = nullptr;  // Handler sees null from here on (counts unplaced).
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  disarm_locked(ts);
  ts->alive = false;  // Ring and samples stay readable until next start().
}

bool CpuProfiler::arm_locked(ThreadState* ts, std::string* error) {
  ProfilerGlobals& g = globals();
  if (ts->owned == nullptr) {
    if (!g.free_rings.empty()) {
      ts->owned = std::move(g.free_rings.back());
      g.free_rings.pop_back();
      reset_ring(ts->owned.get());
    } else {
      ts->owned = std::make_unique<Ring>();
    }
    ts->owned->tid = g.next_tid++;
    ts->ring.store(ts->owned.get(), std::memory_order_release);
  }
  clockid_t clock;
  if (pthread_getcpuclockid(ts->pthread, &clock) != 0) {
    if (error != nullptr) *error = "pthread_getcpuclockid failed";
    return false;
  }
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ts->os_tid;
  if (timer_create(clock, &sev, &ts->timer) != 0) {
    if (error != nullptr) {
      *error = std::string("timer_create: ") + std::strerror(errno);
    }
    return false;
  }
  const long interval_ns = 1000000000L / g.hz;
  itimerspec its{};
  its.it_interval.tv_sec = interval_ns / 1000000000L;
  its.it_interval.tv_nsec = interval_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(ts->timer, 0, &its, nullptr) != 0) {
    if (error != nullptr) {
      *error = std::string("timer_settime: ") + std::strerror(errno);
    }
    timer_delete(ts->timer);
    return false;
  }
  ts->timer_armed = true;
  return true;
}

void CpuProfiler::disarm_locked(ThreadState* ts) {
  if (!ts->timer_armed) return;
  timer_delete(ts->timer);
  ts->timer_armed = false;
}

bool CpuProfiler::start(const ProfilerOptions& opts, std::string* error) {
  // Make sure the caller is sampleable, and prime the trace epoch (and the
  // magic statics behind it) outside signal context.
  Tracer::now_ns();
  register_current_thread();
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.running) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  if (!g.sigaction_installed) {
    struct sigaction sa{};
    sa.sa_sigaction = sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      if (error != nullptr) {
        *error = std::string("sigaction(SIGPROF): ") + std::strerror(errno);
      }
      return false;
    }
    g.sigaction_installed = true;
  }
  // Reclaim rings from threads that exited since the last run; their old
  // samples are discarded (a new run starts clean anyway).
  for (auto it = g.threads.begin(); it != g.threads.end();) {
    if (!(*it)->alive) {
      if ((*it)->owned != nullptr) {
        g.free_rings.push_back(std::move((*it)->owned));
      }
      it = g.threads.erase(it);
    } else {
      ++it;
    }
  }
  g.hz = std::clamp(opts.sample_hz, 1, 1000);
  g_unplaced.store(0, std::memory_order_relaxed);
  std::size_t armed = 0;
  for (const auto& ts : g.threads) {
    if (ts->owned != nullptr) reset_ring(ts->owned.get());
    if (arm_locked(ts.get(), error)) ++armed;
  }
  if (armed == 0) {
    if (error != nullptr && error->empty()) {
      *error = "no threads could be armed for sampling";
    }
    return false;
  }
  g.running = true;
  g_sampling.store(true, std::memory_order_release);
  return true;
}

void CpuProfiler::stop() {
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  if (!g.running) return;
  g_sampling.store(false, std::memory_order_release);
  for (const auto& ts : g.threads) disarm_locked(ts.get());
  g.running = false;
}

bool CpuProfiler::running() const {
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.running;
}

int CpuProfiler::sample_hz() const {
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.hz;
}

std::uint64_t CpuProfiler::samples() const {
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = 0;
  for (const auto& ts : g.threads) {
    if (ts->owned == nullptr) continue;
    const std::uint64_t head =
        ts->owned->head.load(std::memory_order_relaxed);
    total += std::min<std::uint64_t>(head, kRingCapacity);
  }
  return total;
}

std::uint64_t CpuProfiler::dropped() const {
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.mu);
  std::uint64_t total = g_unplaced.load(std::memory_order_relaxed);
  for (const auto& ts : g.threads) {
    if (ts->owned == nullptr) continue;
    const std::uint64_t head =
        ts->owned->head.load(std::memory_order_relaxed);
    if (head > kRingCapacity) total += head - kRingCapacity;
  }
  return total;
}

std::string symbolize_pc(std::uint64_t pc) {
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(static_cast<std::uintptr_t>(pc)),
             &info) != 0 &&
      info.dli_sname != nullptr) {
    std::string name;
    int status = -1;
    char* dem = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && dem != nullptr) {
      name = dem;
    } else {
      name = info.dli_sname;
    }
    std::free(dem);
    // Trim the parameter list for readable flamegraphs — but never the
    // parens of operator(), whose name would otherwise vanish.
    const std::size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0 &&
        !(paren >= 8 && name.compare(paren - 8, 8, "operator") == 0)) {
      name.erase(paren);
    }
    // Folded-format delimiters must not appear inside a frame name.
    for (char& c : name) {
      if (c == ';') c = ':';
      if (c == ' ' || c == '\n' || c == '\t') c = '_';
    }
    if (name.size() > 200) name.resize(200);
    if (!name.empty()) return name;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

namespace {

struct RawSample {
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t nframes = 0;
  std::array<std::uint64_t, CpuProfiler::kMaxFrames> pcs{};
};

std::vector<RawSample> snapshot_samples() {
  ProfilerGlobals& g = globals();
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    for (const auto& ts : g.threads) {
      if (ts->owned != nullptr) rings.push_back(ts->owned.get());
    }
  }
  std::vector<RawSample> out;
  for (Ring* ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count =
        std::min<std::uint64_t>(head, CpuProfiler::kRingCapacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      const SampleSlot& s =
          ring->slots[i & (CpuProfiler::kRingCapacity - 1)];
      const std::uint32_t sq1 = s.seq.load(std::memory_order_acquire);
      if (sq1 & 1) continue;  // Writer mid-update.
      RawSample r;
      r.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
      r.nframes = std::min<std::uint32_t>(
          s.nframes.load(std::memory_order_relaxed), CpuProfiler::kMaxFrames);
      for (std::uint32_t f = 0; f < r.nframes; ++f) {
        r.pcs[f] = s.pcs[f].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != sq1) continue;  // Torn.
      if (r.nframes == 0) continue;
      r.tid = ring->tid;
      out.push_back(r);
    }
  }
  return out;
}

/// Cached symbolization. Return addresses point *after* their call site, so
/// every non-leaf frame resolves at pc-1 to land inside the calling
/// function rather than whatever follows it.
std::string frame_name(std::uint64_t pc, bool leaf) {
  const std::uint64_t key = leaf ? pc : pc - 1;
  ProfilerGlobals& g = globals();
  std::lock_guard<std::mutex> lock(g.sym_mu);
  auto it = g.sym_cache.find(key);
  if (it != g.sym_cache.end()) return it->second;
  std::string name = symbolize_pc(key);
  g.sym_cache.emplace(key, name);
  return name;
}

}  // namespace

std::vector<FoldedStack> CpuProfiler::collect() const {
  const std::vector<RawSample> samples = snapshot_samples();
  std::map<std::string, std::uint64_t> folded;
  std::string stack;
  for (const RawSample& r : samples) {
    stack.clear();
    // Frames were captured leaf-first; folded format wants root-first.
    for (std::uint32_t f = r.nframes; f > 0; --f) {
      if (!stack.empty()) stack += ';';
      stack += frame_name(r.pcs[f - 1], /*leaf=*/f == 1);
    }
    ++folded[stack];
  }
  std::vector<FoldedStack> out;
  out.reserve(folded.size());
  for (auto& [s, count] : folded) out.push_back({s, count});
  std::sort(out.begin(), out.end(),
            [](const FoldedStack& a, const FoldedStack& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.stack < b.stack;
            });
  return out;
}

void CpuProfiler::write_folded(std::ostream& os) const {
  for (const FoldedStack& f : collect()) {
    os << f.stack << ' ' << f.count << '\n';
  }
}

std::string CpuProfiler::chrome_sample_sections() const {
  const std::vector<RawSample> samples = snapshot_samples();
  // Build the stackFrames tree: each (parent, name) pair gets one node.
  std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> nodes;
  std::ostringstream frames_os;
  std::ostringstream samples_os;
  std::uint64_t next_id = 1;
  bool first_frame = true;
  bool first_sample = true;
  for (const RawSample& r : samples) {
    std::uint64_t parent = 0;
    for (std::uint32_t f = r.nframes; f > 0; --f) {
      const std::string name = frame_name(r.pcs[f - 1], /*leaf=*/f == 1);
      const auto key = std::make_pair(parent, name);
      auto it = nodes.find(key);
      if (it == nodes.end()) {
        const std::uint64_t id = next_id++;
        it = nodes.emplace(key, id).first;
        if (!first_frame) frames_os << ',';
        first_frame = false;
        frames_os << '"' << id << "\":{\"name\":\"" << name << '"';
        if (parent != 0) frames_os << ",\"parent\":\"" << parent << '"';
        frames_os << '}';
      }
      parent = it->second;
    }
    if (parent == 0) continue;
    if (!first_sample) samples_os << ',';
    first_sample = false;
    char ts[40];
    std::snprintf(ts, sizeof(ts), "%.3f",
                  static_cast<double>(r.ts_ns) / 1e3);
    samples_os << "{\"cpu\":0,\"name\":\"cpu_sample\",\"ts\":" << ts
               << ",\"pid\":1,\"tid\":" << r.tid << ",\"weight\":1,\"sf\":\""
               << parent << "\"}";
  }
  return "\"stackFrames\":{" + frames_os.str() + "},\"samples\":[" +
         samples_os.str() + "]";
}

#else  // !M3DFL_PROF_SUPPORTED

struct CpuProfiler::ThreadState {};

CpuProfiler& CpuProfiler::instance() {
  static CpuProfiler prof;
  return prof;
}
void CpuProfiler::register_current_thread() {}
void CpuProfiler::unregister_current_thread() {}
bool CpuProfiler::arm_locked(ThreadState*, std::string*) { return false; }
void CpuProfiler::disarm_locked(ThreadState*) {}
bool CpuProfiler::start(const ProfilerOptions&, std::string* error) {
  if (error != nullptr) {
    *error = "sampling profiler requires Linux per-thread CPU timers";
  }
  return false;
}
void CpuProfiler::stop() {}
bool CpuProfiler::running() const { return false; }
int CpuProfiler::sample_hz() const { return 0; }
std::uint64_t CpuProfiler::samples() const { return 0; }
std::uint64_t CpuProfiler::dropped() const { return 0; }
std::vector<FoldedStack> CpuProfiler::collect() const { return {}; }
void CpuProfiler::write_folded(std::ostream&) const {}
std::string CpuProfiler::chrome_sample_sections() const {
  return "\"stackFrames\":{},\"samples\":[]";
}
std::string symbolize_pc(std::uint64_t pc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

#endif  // M3DFL_PROF_SUPPORTED

}  // namespace m3dfl::obs::prof

#endif  // M3DFL_OBS_ENABLED
