#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace m3dfl::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);

/// One structured key/value attached to a log record. In the JSON-lines
/// sink, `quoted == false` emits the value raw (numbers, booleans); the
/// text sink always renders `key=value`.
struct LogField {
  std::string key;
  std::string value;
  bool quoted = true;

  static LogField str(std::string key, std::string value);
  static LogField num(std::string key, double value);
  static LogField num(std::string key, std::uint64_t value);
  static LogField boolean(std::string key, bool value);
};

/// Process-wide leveled structured logger with two sinks:
///
///  * text (default): the bare message, then any fields as
///    `  key=value` suffixes, one record per line. A record with no fields
///    is byte-identical to the `std::fprintf(stderr, ...)` site it
///    replaced — which is what keeps the CLI's error text (and the tests
///    that match it) stable across the migration.
///  * JSON-lines (set_json(true)): one object per record —
///    {"ts_ms":...,"level":"error","component":"cli","msg":"...",
///     "fields":{...}} — for log shippers.
///
/// Mutators are cheap: level/format checks are relaxed atomic loads, and
/// only the final write takes a mutex (records interleave line-atomically
/// across threads). Like the M3DFL_OBS_SPAN macros, the M3DFL_LOG_DEBUG
/// macro compiles to nothing under -DM3DFL_OBS=OFF, so debug-level call
/// sites on hot paths carry zero logging code; info/warn/error always
/// compile in, because CLI error reporting must survive obs-off builds.
class Logger {
 public:
  static Logger& instance();

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_json(bool on) { json_.store(on, std::memory_order_relaxed); }
  bool json() const { return json_.load(std::memory_order_relaxed); }

  /// Redirects the sink (default stderr). The stream must outlive the
  /// logger's use of it; tests point this at tmpfile()s.
  void set_stream(std::FILE* stream);

  void log(LogLevel level, const char* component, std::string_view message,
           const std::vector<LogField>& fields = {});

  /// printf-style convenience; the formatted text becomes the record's
  /// message (no fields).
  void logf(LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  /// Records actually written (after level filtering).
  std::uint64_t records_written() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  Logger() = default;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::atomic<std::uint64_t> records_{0};
  std::mutex mu_;  ///< Serializes writes to stream_.
  std::FILE* stream_ = nullptr;  ///< nullptr means stderr.
};

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the logger's JSON sink and
/// the admin endpoints.
std::string json_escape(std::string_view s);

}  // namespace m3dfl::obs

// Logging macros. Debug compiles out with the obs layer (hot-path
// chattiness must cost nothing in production builds); info and above always
// emit — they carry user-facing CLI errors.
#define M3DFL_LOG_INFO(component, ...)                              \
  ::m3dfl::obs::Logger::instance().logf(::m3dfl::obs::LogLevel::kInfo, \
                                        (component), __VA_ARGS__)
#define M3DFL_LOG_WARN(component, ...)                              \
  ::m3dfl::obs::Logger::instance().logf(::m3dfl::obs::LogLevel::kWarn, \
                                        (component), __VA_ARGS__)
#define M3DFL_LOG_ERROR(component, ...)                              \
  ::m3dfl::obs::Logger::instance().logf(::m3dfl::obs::LogLevel::kError, \
                                        (component), __VA_ARGS__)
#if M3DFL_OBS_ENABLED
#define M3DFL_LOG_DEBUG(component, ...)                               \
  ::m3dfl::obs::Logger::instance().logf(::m3dfl::obs::LogLevel::kDebug, \
                                        (component), __VA_ARGS__)
#else
#define M3DFL_LOG_DEBUG(component, ...) ((void)0)
#endif
