#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <ostream>

namespace m3dfl::obs {

namespace {

/// Nesting depth of the calling thread's open spans.
thread_local std::uint32_t tls_depth = 0;

}  // namespace

/// One seqlock-protected ring slot. Every field is an atomic so concurrent
/// snapshot() reads are race-free under TSan; the sequence number filters
/// out torn cross-field combinations:
///   writer: seq -> odd (relaxed), release fence, payload (relaxed),
///           seq -> even (release);
///   reader: seq (acquire; skip if odd), payload (relaxed), acquire fence,
///           re-read seq (skip if changed).
/// Only the owning thread ever writes a slot, so writers never contend.
struct Slot {
  std::atomic<std::uint32_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint32_t> tid{0};
  std::atomic<std::uint32_t> depth{0};
};

struct Tracer::ThreadLog {
  std::array<Slot, Tracer::kRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};  ///< Total spans ever written.
  std::uint32_t tid = 0;
};

namespace {

/// Owns the thread-local log pointer; returns the log to the tracer's free
/// list on thread exit so short-lived worker threads (the Executor spawns a
/// fresh set per pipeline call) recycle rings instead of growing the set.
struct TlsHolderImpl {
  Tracer::ThreadLog* log = nullptr;
  ~TlsHolderImpl();
};

thread_local TlsHolderImpl tls_log;

}  // namespace

// Defined after Tracer's members are visible.
struct TlsHolder {
  static void retire(Tracer::ThreadLog* log) {
    Tracer::instance().retire_log(log);
  }
  static Tracer::ThreadLog* acquire() {
    return Tracer::instance().acquire_log();
  }
};

namespace {
TlsHolderImpl::~TlsHolderImpl() {
  if (log != nullptr) TlsHolder::retire(log);
}
}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Tracer::ThreadLog* Tracer::acquire_log() {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadLog* log;
  if (!free_.empty()) {
    log = free_.back();
    free_.pop_back();
  } else {
    logs_.push_back(std::make_unique<ThreadLog>());
    log = logs_.back().get();
  }
  // A recycled ring keeps its old events (each slot carries its tid, so
  // they stay attributed correctly); the new owner overwrites them as it
  // records. Fresh tid either way: one tid never spans two OS threads.
  log->tid = next_tid_++;
  return log;
}

void Tracer::retire_log(ThreadLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(log);
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    std::uint32_t depth) {
  if (!enabled()) return;
  ThreadLog* log = tls_log.log;
  if (log == nullptr) {
    log = TlsHolder::acquire();
    tls_log.log = log;
  }
  const std::uint64_t h = log->head.load(std::memory_order_relaxed);
  Slot& s = log->slots[h & (kRingCapacity - 1)];
  const std::uint32_t sq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(sq + 1, std::memory_order_relaxed);  // Odd: write in progress.
  std::atomic_thread_fence(std::memory_order_release);
  s.name.store(name, std::memory_order_relaxed);
  s.category.store(category, std::memory_order_relaxed);
  s.start_ns.store(start_ns, std::memory_order_relaxed);
  s.dur_ns.store(dur_ns, std::memory_order_relaxed);
  s.tid.store(log->tid, std::memory_order_relaxed);
  s.depth.store(depth, std::memory_order_relaxed);
  s.seq.store(sq + 2, std::memory_order_release);  // Even: committed.
  log->head.store(h + 1, std::memory_order_release);
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::vector<const ThreadLog*> logs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs.reserve(logs_.size());
    for (const auto& l : logs_) logs.push_back(l.get());
  }
  std::vector<SpanEvent> out;
  for (const ThreadLog* log : logs) {
    const std::uint64_t head = log->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = head - count; i < head; ++i) {
      const Slot& s = log->slots[i & (kRingCapacity - 1)];
      const std::uint32_t sq1 = s.seq.load(std::memory_order_acquire);
      if (sq1 & 1) continue;  // Writer mid-update.
      SpanEvent e;
      e.name = s.name.load(std::memory_order_relaxed);
      e.category = s.category.load(std::memory_order_relaxed);
      e.start_ns = s.start_ns.load(std::memory_order_relaxed);
      e.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      e.tid = s.tid.load(std::memory_order_relaxed);
      e.depth = s.depth.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != sq1) continue;  // Torn.
      if (e.name == nullptr) continue;  // Slot overwritten by clear().
      out.push_back(e);
    }
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& log : logs_) {
    const std::uint64_t head = log->head.load(std::memory_order_relaxed);
    if (head > kRingCapacity) total += head - kRingCapacity;
  }
  return total;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    for (Slot& s : log->slots) {
      s.seq.store(0, std::memory_order_relaxed);
      s.name.store(nullptr, std::memory_order_relaxed);
    }
    log->head.store(0, std::memory_order_relaxed);
  }
}

void Tracer::write_chrome_trace(std::ostream& os,
                                const std::string& extra_sections) const {
  std::vector<SpanEvent> events = snapshot();
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.start_ns < b.start_ns;
            });
  // Span names are static identifiers ("datagen.shard") by construction, so
  // no JSON string escaping is required.
  os << "{\"traceEvents\":[\n"
     << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"m3dfl\"}}";
  char buf[64];
  for (const SpanEvent& e : events) {
    os << ",\n{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    os << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    os << ",\"dur\":" << buf << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"";
  if (!extra_sections.empty()) os << ',' << extra_sections;
  os << "}\n";
}

ObsSpan::ObsSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!Tracer::instance().enabled()) return;
  active_ = true;
  depth_ = tls_depth++;
  start_ns_ = Tracer::now_ns();
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  --tls_depth;
  Tracer::instance().record(name_, category_, start_ns_,
                            Tracer::now_ns() - start_ns_, depth_);
}

std::vector<SpanSummary> summarize_spans(
    const std::vector<SpanEvent>& events) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::uint32_t> tids;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanEvent& e : events) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_ns += e.dur_ns;
    if (std::find(a.tids.begin(), a.tids.end(), e.tid) == a.tids.end()) {
      a.tids.push_back(e.tid);
    }
  }
  std::vector<SpanSummary> out;
  out.reserve(by_name.size());
  for (const auto& [name, a] : by_name) {
    out.push_back({name, a.count, static_cast<double>(a.total_ns) / 1e6,
                   static_cast<std::uint32_t>(a.tids.size())});
  }
  std::sort(out.begin(), out.end(),
            [](const SpanSummary& a, const SpanSummary& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  return out;
}

}  // namespace m3dfl::obs
