#include "obs/build_info.h"

#include <sstream>

namespace m3dfl::obs {

const BuildInfo& build_info() {
  static const BuildInfo info{
      M3DFL_BUILD_GIT_HASH,
      M3DFL_BUILD_COMPILER,
      M3DFL_BUILD_TYPE,
      M3DFL_OBS_ENABLED != 0,
  };
  return info;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  std::ostringstream os;
  os << "{\"git_hash\":\"" << b.git_hash << "\",\"compiler\":\""
     << b.compiler << "\",\"build_type\":\"" << b.build_type
     << "\",\"obs_enabled\":" << (b.obs_enabled ? "true" : "false") << "}";
  return os.str();
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  std::ostringstream os;
  os << "m3dfl " << b.git_hash << " (" << b.compiler << ", " << b.build_type
     << ", obs " << (b.obs_enabled ? "on" : "off") << ")";
  return os.str();
}

}  // namespace m3dfl::obs
