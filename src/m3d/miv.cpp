#include "m3d/miv.h"

#include <cassert>

namespace m3dfl::part {

using netlist::Gate;
using netlist::GateType;
using netlist::kNoGate;

MivInsertionResult insert_mivs(const Netlist& src,
                               const PartitionResult& part) {
  assert(part.tier_of_gate.size() == src.num_gates());
  MivInsertionResult result;
  Netlist& out = result.netlist;
  result.gate_map.assign(src.num_gates(), kNoGate);
  // miv_of[g]: the MIV gate (new id) carrying g's signal to the other tier,
  // created lazily on first cross-tier consumer.
  std::vector<GateId> miv_of(src.num_gates(), kNoGate);

  for (GateId g : src.inputs()) {
    const GateId ng = out.add_input();
    out.gate(ng).tier = part.tier_of_gate[g];
    out.gate(ng).pos = src.gate(g).pos;
    result.gate_map[g] = ng;
  }

  std::vector<GateId> fanin;
  for (GateId g : src.topo_order()) {
    const Gate& gate = src.gate(g);
    if (gate.type == GateType::kInput) continue;
    const Tier my_tier = part.tier_of_gate[g];
    fanin.clear();
    for (GateId d : gate.fanin) {
      const GateId nd = result.gate_map[d];
      assert(nd != kNoGate);
      if (part.tier_of_gate[d] == my_tier) {
        fanin.push_back(nd);
      } else {
        // Cross-tier connection: route through this driver's MIV.
        if (miv_of[d] == kNoGate) {
          const GateId miv = out.add_gate(GateType::kMiv, {nd});
          out.gate(miv).tier = my_tier;  // Lands in the consumer tier.
          out.gate(miv).pos = src.gate(d).pos;
          miv_of[d] = miv;
          ++result.num_mivs;
        }
        fanin.push_back(miv_of[d]);
      }
    }
    const GateId ng = out.add_gate(gate.type, fanin);
    out.gate(ng).tier = my_tier;
    out.gate(ng).pos = gate.pos;
    result.gate_map[g] = ng;
  }

  for (GateId o : src.outputs()) out.add_output(result.gate_map[o]);
  out.set_num_scan_cells(src.num_scan_cells());
  assert(out.validate().empty());
  return result;
}

}  // namespace m3dfl::part
