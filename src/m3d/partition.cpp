#include "m3d/partition.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace m3dfl::part {
namespace {

using netlist::Gate;

/// Gain of moving gate g to the other tier: (cross edges) - (same edges)
/// over all incident connections. Positive gain reduces the cut.
int move_gain(const Netlist& nl, const std::vector<Tier>& tier, GateId g) {
  int gain = 0;
  const Gate& gate = nl.gate(g);
  for (GateId d : gate.fanin) gain += tier[d] != tier[g] ? 1 : -1;
  for (GateId f : gate.fanout) gain += tier[f] != tier[g] ? 1 : -1;
  return gain;
}

/// Greedy improvement passes: visit gates in random order, apply any
/// positive-gain move that keeps the partition balanced. This is the
/// classic KL/FM move loop restricted to non-negative prefixes, which is
/// sufficient at library scale and fully deterministic under the seed.
void refine(const Netlist& nl, std::vector<Tier>& tier, double tolerance,
            int passes, Rng& rng) {
  const std::size_t n = nl.num_gates();
  std::ptrdiff_t top_count = std::count(tier.begin(), tier.end(), Tier::kTop);
  const auto lo = static_cast<std::ptrdiff_t>((0.5 - tolerance) * n);
  const auto hi = static_cast<std::ptrdiff_t>((0.5 + tolerance) * n);

  std::vector<GateId> order(n);
  for (GateId g = 0; g < n; ++g) order[g] = g;

  for (int pass = 0; pass < passes; ++pass) {
    rng.shuffle(order);
    bool moved = false;
    for (GateId g : order) {
      if (move_gain(nl, tier, g) <= 0) continue;
      const bool to_top = tier[g] == Tier::kBottom;
      const std::ptrdiff_t new_top = top_count + (to_top ? 1 : -1);
      if (new_top < lo || new_top > hi) continue;
      tier[g] = netlist::other_tier(tier[g]);
      top_count = new_top;
      moved = true;
    }
    if (!moved) break;
  }
}

std::vector<Tier> random_assignment(const Netlist& nl, Rng& rng) {
  std::vector<Tier> tier(nl.num_gates(), Tier::kBottom);
  // Exactly balanced random bisection.
  std::vector<GateId> order(nl.num_gates());
  for (GateId g = 0; g < order.size(); ++g) order[g] = g;
  rng.shuffle(order);
  for (std::size_t i = 0; i < order.size() / 2; ++i) {
    tier[order[i]] = Tier::kTop;
  }
  return tier;
}

std::vector<Tier> placement_assignment(const Netlist& nl, int stripes) {
  // Alternating placement stripes: the 1-D analogue of the placement-driven
  // tier partitioning of [34]. stripes == 2 is a pure median split; more
  // stripes raise the MIV density while keeping each stripe tier-coherent.
  std::vector<Tier> tier(nl.num_gates(), Tier::kBottom);
  const int n = std::max(2, stripes);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const float x = std::clamp(nl.gate(g).pos, 0.0f, 0.9999f);
    const int stripe = static_cast<int>(x * static_cast<float>(n));
    tier[g] = (stripe % 2 == 0) ? Tier::kBottom : Tier::kTop;
  }
  return tier;
}

std::vector<Tier> level_assignment(const Netlist& nl) {
  const auto& levels = nl.levels();
  // Median level split gives a roughly balanced fold with few cut nets.
  std::vector<std::uint32_t> sorted(levels);
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const std::uint32_t median = sorted[sorted.size() / 2];
  std::vector<Tier> tier(nl.num_gates(), Tier::kBottom);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    tier[g] = levels[g] > median ? Tier::kTop : Tier::kBottom;
  }
  return tier;
}

}  // namespace

const char* partition_algo_name(PartitionAlgo a) {
  switch (a) {
    case PartitionAlgo::kMinCut: return "min-cut";
    case PartitionAlgo::kGreedyGain: return "greedy-gain";
    case PartitionAlgo::kLevelDriven: return "level-driven";
    case PartitionAlgo::kRandom: return "random";
  }
  return "?";
}

PartitionResult partition_netlist(const Netlist& nl,
                                  const PartitionOptions& opts) {
  Rng rng(opts.seed);
  PartitionResult result;
  switch (opts.algo) {
    case PartitionAlgo::kRandom:
      result.tier_of_gate = random_assignment(nl, rng);
      break;
    case PartitionAlgo::kLevelDriven:
      result.tier_of_gate = level_assignment(nl);
      break;
    case PartitionAlgo::kMinCut:
      result.tier_of_gate = placement_assignment(nl, opts.placement_stripes);
      refine(nl, result.tier_of_gate, opts.balance_tolerance, opts.passes,
             rng);
      break;
    case PartitionAlgo::kGreedyGain:
      result.tier_of_gate = level_assignment(nl);
      refine(nl, result.tier_of_gate, opts.balance_tolerance,
             std::max(1, opts.passes / 2), rng);
      break;
  }
  update_cut_stats(nl, result);
  return result;
}

void update_cut_stats(const Netlist& nl, PartitionResult& result) {
  assert(result.tier_of_gate.size() == nl.num_gates());
  const auto& tier = result.tier_of_gate;
  std::size_t cut_nets = 0;
  std::size_t cut_conns = 0;
  std::size_t top = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    if (tier[g] == Tier::kTop) ++top;
    bool crosses = false;
    for (GateId f : nl.gate(g).fanout) {
      if (tier[f] != tier[g]) {
        crosses = true;
        ++cut_conns;
      }
    }
    if (crosses) ++cut_nets;
  }
  result.cut_nets = cut_nets;
  result.cut_connections = cut_conns;
  result.top_fraction =
      nl.num_gates() ? static_cast<double>(top) / nl.num_gates() : 0.0;
}

}  // namespace m3dfl::part
