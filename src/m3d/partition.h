#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl::part {

using netlist::GateId;
using netlist::Netlist;
using netlist::Tier;

/// Tier-partitioning heuristics. The paper's flow partitions synthesized 2D
/// netlists into two tiers with the algorithms of [34] (Panth et al.,
/// placement-driven) and [35] (TP-GNN); as open-source stand-ins with the
/// same role — producing balanced two-tier assignments with differing MIV
/// distributions — we provide:
///  * kMinCut     — placement-seeded min-cut: median split of the gates'
///                  placement coordinates refined by KL/FM-style moves
///                  (default flow; stand-in for the placement-driven
///                  partitioner of [34]);
///  * kGreedyGain — level-seeded greedy gain refinement (stand-in for [35];
///                  converges to a structurally different cut);
///  * kLevelDriven— pure topological-level fold (low-cut reference);
///  * kRandom     — uniform random tiers (the paper's data-augmentation
///                  partitioning, Sec. IV).
enum class PartitionAlgo : std::uint8_t {
  kMinCut,
  kGreedyGain,
  kLevelDriven,
  kRandom,
};

const char* partition_algo_name(PartitionAlgo a);

struct PartitionOptions {
  PartitionAlgo algo = PartitionAlgo::kMinCut;
  /// Allowed deviation of the top-tier gate share from 0.5.
  double balance_tolerance = 0.08;
  /// Improvement passes for the iterative algorithms.
  int passes = 6;
  /// Placement stripes of the kMinCut seed: the die is divided into this
  /// many placement stripes with alternating tiers. 2 = a single median
  /// split (minimum cut); higher values emulate the high-MIV-density
  /// partitioning styles of real M3D flows (the paper's benchmarks carry
  /// ~0.7 MIVs per gate) at a modest cost in cone tier-purity.
  int placement_stripes = 4;
  std::uint64_t seed = 1;
};

struct PartitionResult {
  std::vector<Tier> tier_of_gate;   ///< One entry per gate (inputs included).
  std::size_t cut_nets = 0;         ///< Drivers with cross-tier fanout; each
                                    ///< becomes one MIV at insertion.
  std::size_t cut_connections = 0;  ///< Driver->receiver pairs crossing.
  double top_fraction = 0.0;        ///< Share of gates in the top tier.
};

/// Partitions every gate (including inputs/scan cells) into two tiers.
PartitionResult partition_netlist(const Netlist& nl,
                                  const PartitionOptions& opts);

/// Recomputes cut statistics for an arbitrary tier assignment.
void update_cut_stats(const Netlist& nl, PartitionResult& result);

}  // namespace m3dfl::part
