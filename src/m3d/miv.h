#pragma once

#include <vector>

#include "m3d/partition.h"
#include "netlist/netlist.h"

namespace m3dfl::part {

/// Result of stitching a partitioned 2D netlist into an M3D netlist.
struct MivInsertionResult {
  Netlist netlist;                 ///< M3D netlist with kMiv gates inserted.
  std::vector<GateId> gate_map;    ///< Old gate id -> new gate id.
  std::size_t num_mivs = 0;        ///< MIVs inserted (== cut nets).
};

/// Inserts one monolithic inter-tier via per cut net: every driver whose
/// fanout crosses to the other tier is routed through a dedicated kMiv gate
/// placed in the destination tier; all cross-tier consumers of that driver
/// read the MIV output instead. Gate tiers are taken from `part`.
///
/// The MIV is electrically a buffer but is a first-class fault site: delay
/// defects in MIVs (voids from inter-tier-dielectric roughness, paper
/// Sec. I) are modeled as TDFs at the MIV stem site, and the heterogeneous
/// graph exposes each MIV as its own node.
MivInsertionResult insert_mivs(const Netlist& src, const PartitionResult& part);

}  // namespace m3dfl::part
