#include "gnn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace m3dfl::gnn {

namespace {

bool should_stop(const TrainOptions& opts, const std::vector<double>& losses) {
  if (opts.patience <= 0 ||
      losses.size() <= static_cast<std::size_t>(opts.patience)) {
    return false;
  }
  // Stop when none of the last `patience` epochs improved the best loss
  // seen before them by at least min_improvement.
  double best_before = losses.front();
  for (std::size_t i = 1; i + opts.patience < losses.size(); ++i) {
    best_before = std::min(best_before, losses[i]);
  }
  double best_recent = losses.back();
  for (std::size_t i = losses.size() - opts.patience; i < losses.size(); ++i) {
    best_recent = std::min(best_recent, losses[i]);
  }
  return best_before - best_recent < opts.min_improvement;
}

}  // namespace

TrainStats train_graph_classifier(GraphClassifier& model,
                                  std::span<const LabeledGraph> data,
                                  const TrainOptions& opts) {
  TrainStats stats;
  if (data.empty()) return stats;
  const auto start = std::chrono::steady_clock::now();

  Adam adam(model.params(),
            {.lr = opts.lr, .weight_decay = opts.weight_decay});
  Rng rng(opts.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t i : order) {
      const LabeledGraph& ex = data[i];
      const double w = ex.label == 1 ? opts.pos_weight : 1.0;
      epoch_loss += model.train_graph(*ex.graph, ex.label, w);
      if (++in_batch >= opts.batch_size) {
        adam.step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step();
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(data.size()));
    stats.epochs_run = epoch + 1;
    if (should_stop(opts, stats.epoch_loss)) break;
  }
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

TrainStats train_node_scorer(NodeScorer& model,
                             std::span<const SubGraph* const> data,
                             const TrainOptions& opts) {
  TrainStats stats;
  if (data.empty()) return stats;
  const auto start = std::chrono::steady_clock::now();

  Adam adam(model.params(),
            {.lr = opts.lr, .weight_decay = opts.weight_decay});
  Rng rng(opts.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t i : order) {
      epoch_loss += model.train_graph(*data[i], opts.pos_weight);
      if (++in_batch >= opts.batch_size) {
        adam.step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step();
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(data.size()));
    stats.epochs_run = epoch + 1;
    if (should_stop(opts, stats.epoch_loss)) break;
  }
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

double classifier_accuracy(const GraphClassifier& model,
                           std::span<const LabeledGraph> data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const LabeledGraph& ex : data) {
    const std::vector<double> p = model.predict(*ex.graph);
    const auto pred =
        std::max_element(p.begin(), p.end()) - p.begin();
    if (static_cast<int>(pred) == ex.label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace m3dfl::gnn
