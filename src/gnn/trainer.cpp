#include "gnn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <numeric>

#include "common/executor.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/trace.h"

namespace m3dfl::gnn {

namespace {

obs::LatencyHistogram& epoch_histogram() {
  static obs::LatencyHistogram& h =
      obs::MetricsRegistry::instance().histogram("train.epoch");
  return h;
}

bool should_stop(const TrainOptions& opts, const std::vector<double>& losses) {
  if (opts.patience <= 0 ||
      losses.size() <= static_cast<std::size_t>(opts.patience)) {
    return false;
  }
  // Stop when none of the last `patience` epochs improved the best loss
  // seen before them by at least min_improvement.
  double best_before = losses.front();
  for (std::size_t i = 1; i + opts.patience < losses.size(); ++i) {
    best_before = std::min(best_before, losses[i]);
  }
  double best_recent = losses.back();
  for (std::size_t i = losses.size() - opts.patience; i < losses.size(); ++i) {
    best_recent = std::min(best_recent, losses[i]);
  }
  return best_before - best_recent < opts.min_improvement;
}

}  // namespace

TrainStats train_graph_classifier(GraphClassifier& model,
                                  std::span<const LabeledGraph> data,
                                  const TrainOptions& opts) {
  TrainStats stats;
  if (data.empty()) return stats;
  const auto start = std::chrono::steady_clock::now();

  model.zero_grad();
  Adam adam(model.params(),
            {.lr = opts.lr, .weight_decay = opts.weight_decay});
  Rng rng(opts.seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Intra-batch parallelism with bit-exact results: in-place gradient
  // accumulation is order-sensitive under float addition, so each batch
  // slot instead computes its example's gradients from zero in a private
  // model clone (weights pulled from the master at batch start). The
  // clones are merged into the master in slot order — a fixed reduction
  // order no matter which thread computed what — and only then does Adam
  // step. The single-threaded path runs the exact same staged code, so
  // every thread count produces identical weights.
  const std::size_t batch = std::max<std::size_t>(1, opts.batch_size);
  const std::size_t slots = std::min(batch, data.size());
  std::vector<GraphClassifier> shard(slots, model);
  std::vector<ParamRef> master = model.params();
  std::vector<std::vector<ParamRef>> shard_params;
  shard_params.reserve(slots);
  for (GraphClassifier& s : shard) shard_params.push_back(s.params());

  const std::size_t threads =
      std::min(resolve_num_threads(opts.num_threads), slots);
  std::unique_ptr<Executor> exec;
  if (threads > 1) exec = std::make_unique<Executor>(threads, "train");

  std::vector<double> slot_loss(slots, 0.0);
  auto run_slot = [&](std::size_t k, std::size_t data_idx) {
    for (std::size_t p = 0; p < master.size(); ++p) {
      std::copy_n(master[p].value, master[p].size, shard_params[k][p].value);
    }
    shard[k].zero_grad();
    const LabeledGraph& ex = data[data_idx];
    const double w = ex.label == 1 ? opts.pos_weight : 1.0;
    slot_loss[k] = shard[k].train_graph(*ex.graph, ex.label, w);
  };

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    M3DFL_OBS_SPAN(epoch_span, "train.epoch");
    M3DFL_OBS_COUNTERS(epoch_ctrs, "train.epoch");
    const auto epoch_t0 = std::chrono::steady_clock::now();
    double merge_seconds = 0.0;
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t b = 0; b < order.size(); b += slots) {
      const std::size_t m = std::min(slots, order.size() - b);
      if (exec) {
        std::vector<std::future<void>> done;
        done.reserve(m);
        for (std::size_t k = 0; k < m; ++k) {
          done.push_back(exec->submit(
              [&run_slot, k, idx = order[b + k]] { run_slot(k, idx); }));
        }
        for (auto& f : done) f.get();  // Propagates slot exceptions.
      } else {
        for (std::size_t k = 0; k < m; ++k) run_slot(k, order[b + k]);
      }
      const auto merge_t0 = std::chrono::steady_clock::now();
      for (std::size_t k = 0; k < m; ++k) {
        for (std::size_t p = 0; p < master.size(); ++p) {
          const ParamRef& src = shard_params[k][p];
          float* dst = master[p].grad;
          for (std::size_t j = 0; j < src.size; ++j) dst[j] += src.grad[j];
        }
        epoch_loss += slot_loss[k];
      }
      merge_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - merge_t0)
                           .count();
      adam.step();
    }
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(data.size()));
    stats.epochs_run = epoch + 1;
    const double epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_t0)
            .count();
    epoch_histogram().record(epoch_seconds);
    if (opts.on_epoch) {
      opts.on_epoch({epoch, stats.epoch_loss.back(), epoch_seconds,
                     merge_seconds, data.size()});
    }
    if (should_stop(opts, stats.epoch_loss)) break;
  }
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

TrainStats train_node_scorer(NodeScorer& model,
                             std::span<const SubGraph* const> data,
                             const TrainOptions& opts) {
  TrainStats stats;
  if (data.empty()) return stats;
  const auto start = std::chrono::steady_clock::now();

  Adam adam(model.params(),
            {.lr = opts.lr, .weight_decay = opts.weight_decay});
  Rng rng(opts.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    M3DFL_OBS_SPAN(epoch_span, "train.epoch");
    M3DFL_OBS_COUNTERS(epoch_ctrs, "train.epoch");
    const auto epoch_t0 = std::chrono::steady_clock::now();
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;
    for (std::size_t i : order) {
      epoch_loss += model.train_graph(*data[i], opts.pos_weight);
      if (++in_batch >= opts.batch_size) {
        adam.step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) adam.step();
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(data.size()));
    stats.epochs_run = epoch + 1;
    const double epoch_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      epoch_t0)
            .count();
    epoch_histogram().record(epoch_seconds);
    if (opts.on_epoch) {
      opts.on_epoch(
          {epoch, stats.epoch_loss.back(), epoch_seconds, 0.0, data.size()});
    }
    if (should_stop(opts, stats.epoch_loss)) break;
  }
  const auto end = std::chrono::steady_clock::now();
  stats.seconds = std::chrono::duration<double>(end - start).count();
  return stats;
}

double classifier_accuracy(const GraphClassifier& model,
                           std::span<const LabeledGraph> data) {
  if (data.empty()) return 0.0;
  std::size_t hits = 0;
  for (const LabeledGraph& ex : data) {
    const std::vector<double> p = model.predict(*ex.graph);
    const auto pred =
        std::max_element(p.begin(), p.end()) - p.begin();
    if (static_cast<int>(pred) == ex.label) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace m3dfl::gnn
