#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/adam.h"
#include "gnn/model.h"

namespace m3dfl::gnn {

/// One graph-classification training example.
struct LabeledGraph {
  const SubGraph* graph = nullptr;
  int label = 0;
};

struct TrainOptions {
  int epochs = 40;
  std::size_t batch_size = 16;
  double lr = 5e-3;
  double weight_decay = 1e-5;
  /// Extra weight applied to positive / minority-class examples
  /// (graph classifier: label 1; node scorer: label-1 nodes).
  double pos_weight = 1.0;
  std::uint64_t seed = 11;
  /// Stop early when the epoch loss improves by less than this for
  /// `patience` consecutive epochs (0 disables).
  double min_improvement = 0.0;
  int patience = 0;
  /// Worker threads for intra-batch example parallelism in
  /// train_graph_classifier (0 = hardware concurrency). Each batch slot
  /// computes its example's gradients in a private model clone; the clones
  /// are merged into the master in slot order before the Adam step, so the
  /// trained weights are bit-identical at every thread count.
  std::size_t num_threads = 0;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double seconds = 0.0;
  int epochs_run = 0;
};

/// Mini-batch training of a GraphClassifier with Adam and seeded shuffles.
/// Per-class weights are applied so imbalanced graph-level datasets do not
/// collapse onto the majority class.
TrainStats train_graph_classifier(GraphClassifier& model,
                                  std::span<const LabeledGraph> data,
                                  const TrainOptions& opts = {});

/// Mini-batch training of a NodeScorer; node labels ride inside each
/// SubGraph (miv_label).
TrainStats train_node_scorer(NodeScorer& model,
                             std::span<const SubGraph* const> data,
                             const TrainOptions& opts = {});

/// Fraction of examples whose argmax prediction matches the label.
double classifier_accuracy(const GraphClassifier& model,
                           std::span<const LabeledGraph> data);

}  // namespace m3dfl::gnn
