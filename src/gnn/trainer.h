#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gnn/adam.h"
#include "gnn/model.h"

namespace m3dfl::gnn {

/// One graph-classification training example.
struct LabeledGraph {
  const SubGraph* graph = nullptr;
  int label = 0;
};

/// Per-epoch progress report handed to TrainOptions::on_epoch right after
/// the epoch's Adam steps finish (and before early stopping is evaluated).
struct EpochStats {
  int epoch = 0;                   ///< 0-based epoch index.
  double loss = 0.0;               ///< Mean per-example loss this epoch.
  double seconds = 0.0;            ///< Wall time of this epoch.
  double grad_merge_seconds = 0.0; ///< Slot-ordered gradient merge share
                                   ///< (graph classifier only; 0 otherwise).
  std::size_t examples = 0;        ///< Examples visited this epoch.
};

struct TrainOptions {
  int epochs = 40;
  std::size_t batch_size = 16;
  double lr = 5e-3;
  double weight_decay = 1e-5;
  /// Extra weight applied to positive / minority-class examples
  /// (graph classifier: label 1; node scorer: label-1 nodes).
  double pos_weight = 1.0;
  std::uint64_t seed = 11;
  /// Stop early when the epoch loss improves by less than this for
  /// `patience` consecutive epochs (0 disables).
  double min_improvement = 0.0;
  int patience = 0;
  /// Worker threads for intra-batch example parallelism in
  /// train_graph_classifier (0 = hardware concurrency). Each batch slot
  /// computes its example's gradients in a private model clone; the clones
  /// are merged into the master in slot order before the Adam step, so the
  /// trained weights are bit-identical at every thread count.
  std::size_t num_threads = 0;
  /// Invoked after every epoch with that epoch's stats. Purely
  /// observational — it cannot influence the optimization — so wiring it
  /// (progress bars, tracing) never perturbs the trained weights. Runs on
  /// the training thread; keep it cheap.
  std::function<void(const EpochStats&)> on_epoch;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double seconds = 0.0;
  int epochs_run = 0;
};

/// Mini-batch training of a GraphClassifier with Adam and seeded shuffles.
/// Per-class weights are applied so imbalanced graph-level datasets do not
/// collapse onto the majority class.
TrainStats train_graph_classifier(GraphClassifier& model,
                                  std::span<const LabeledGraph> data,
                                  const TrainOptions& opts = {});

/// Mini-batch training of a NodeScorer; node labels ride inside each
/// SubGraph (miv_label).
TrainStats train_node_scorer(NodeScorer& model,
                             std::span<const SubGraph* const> data,
                             const TrainOptions& opts = {});

/// Fraction of examples whose argmax prediction matches the label.
double classifier_accuracy(const GraphClassifier& model,
                           std::span<const LabeledGraph> data);

}  // namespace m3dfl::gnn
