// SSE2 int8 GEMM tier. SSE2 has no int8 multiply, so each 16-byte load is
// sign-extended to two int16 vectors with the unpack-with-self + arithmetic
//-shift trick, then _mm_madd_epi16 produces exact pairwise int32 sums.
// int16*int16 products fit int32 with no saturation, so the result is the
// same int32 the scalar loop computes, in any summation order.

#include "gnn/qkernels.h"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(__clang__))
#include <emmintrin.h>

namespace m3dfl::gnn {

namespace {

/// Horizontal sum of the four int32 lanes.
inline std::int32_t hsum_epi32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(v);
}

/// Sign-extends the low 8 bytes of `v` to int16: interleaving a byte with
/// itself puts it in the high half of a 16-bit lane, and the arithmetic
/// shift replicates its sign bit down.
inline __m128i sext_lo(__m128i v) {
  return _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8);
}
inline __m128i sext_hi(__m128i v) {
  return _mm_srai_epi16(_mm_unpackhi_epi8(v, v), 8);
}

void qgemm_sse2_impl(const std::int8_t* a, const std::int8_t* bt,
                     std::int32_t* c, std::size_t m, std::size_t n,
                     std::size_t stride) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * stride;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* bj = bt + j * stride;
      __m128i acc = _mm_setzero_si128();
      for (std::size_t k = 0; k < stride; k += 16) {
        const __m128i av =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + k));
        const __m128i bv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bj + k));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(sext_lo(av), sext_lo(bv)));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(sext_hi(av), sext_hi(bv)));
      }
      c[i * n + j] = hsum_epi32(acc);
    }
  }
}

}  // namespace

QGemmFn qgemm_sse2() { return &qgemm_sse2_impl; }

}  // namespace m3dfl::gnn

#else  // !__SSE2__

namespace m3dfl::gnn {
QGemmFn qgemm_sse2() { return nullptr; }
}  // namespace m3dfl::gnn

#endif
