// AVX2 int8 GEMM tier, compiled with -mavx2 (see src/CMakeLists.txt) and
// only entered after the cpuid check in sim/bitpar/dispatch.cpp passes.
//
// _mm256_cvtepi8_epi16 + _mm256_madd_epi16 is chosen deliberately over the
// classic _mm256_maddubs_epi16: maddubs saturates its pairwise u8*s8 sums
// at int16 (255*127*2 > 32767), which would make the AVX2 tier diverge
// from scalar/SSE2 on large activations. Sign-extend + madd is exact int32
// with no saturation point, so cross-tier bit-identity holds by
// construction instead of by argument about value ranges.

#include "gnn/qkernels.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace m3dfl::gnn {

namespace {

inline std::int32_t hsum_epi32(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(1, 0, 3, 2)));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(lo);
}

/// acc += one 32-byte block of bj (sign-extended) madd'ed against the
/// pre-extended activation halves.
inline __m256i fma_block(__m256i acc, __m256i a_lo, __m256i a_hi,
                         const std::int8_t* bj) {
  const __m256i bv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bj));
  const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
  const __m256i b_hi =
      _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
}

void qgemm_avx2_impl(const std::int8_t* a, const std::int8_t* bt,
                     std::int32_t* c, std::size_t m, std::size_t n,
                     std::size_t stride) {
  if (stride == 32) {
    // Single-block fast path: every row is exactly one kQGemmPad block, so
    // the activation row is loaded and sign-extended once per output row —
    // no k loop at all. This is the shape of every layer the serve hot
    // loop runs (feature widths <= 32 pad to one block). Same adds in the
    // same order as the general loop below, so still bit-identical.
    for (std::size_t i = 0; i < m; ++i) {
      const __m256i av = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + i * stride));
      const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
      const __m256i a_hi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const std::int8_t* bj = bt + j * stride;
        const __m256i acc0 =
            fma_block(_mm256_setzero_si256(), a_lo, a_hi, bj);
        const __m256i acc1 =
            fma_block(_mm256_setzero_si256(), a_lo, a_hi, bj + stride);
        const __m256i acc2 =
            fma_block(_mm256_setzero_si256(), a_lo, a_hi, bj + 2 * stride);
        const __m256i acc3 =
            fma_block(_mm256_setzero_si256(), a_lo, a_hi, bj + 3 * stride);
        const __m256i t0 = _mm256_hadd_epi32(acc0, acc1);
        const __m256i t1 = _mm256_hadd_epi32(acc2, acc3);
        const __m256i t2 = _mm256_hadd_epi32(t0, t1);
        const __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(t2),
                                          _mm256_extracti128_si256(t2, 1));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * n + j), sum);
      }
      for (; j < n; ++j) {
        c[i * n + j] = hsum_epi32(
            fma_block(_mm256_setzero_si256(), a_lo, a_hi, bt + j * stride));
      }
    }
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * stride;
    // Four outputs per pass: the activation block is loaded and
    // sign-extended once per k step instead of once per (j, k), and the
    // four accumulators reduce together with three hadds instead of four
    // full horizontal sums. Every add is exact int32, so this blocking is
    // bit-identical to the one-output loop below (and to scalar/SSE2).
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = bt + (j + 0) * stride;
      const std::int8_t* b1 = bt + (j + 1) * stride;
      const std::int8_t* b2 = bt + (j + 2) * stride;
      const std::int8_t* b3 = bt + (j + 3) * stride;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (std::size_t k = 0; k < stride; k += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + k));
        const __m256i a_lo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
        const __m256i a_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
        acc0 = fma_block(acc0, a_lo, a_hi, b0 + k);
        acc1 = fma_block(acc1, a_lo, a_hi, b1 + k);
        acc2 = fma_block(acc2, a_lo, a_hi, b2 + k);
        acc3 = fma_block(acc3, a_lo, a_hi, b3 + k);
      }
      // hadd tree: t2's low half holds [sum(acc0) sum(acc1) sum(acc2)
      // sum(acc3)] partials over lanes 0-3, the high half the same over
      // lanes 4-7; one 128-bit add finishes all four sums.
      const __m256i t0 = _mm256_hadd_epi32(acc0, acc1);
      const __m256i t1 = _mm256_hadd_epi32(acc2, acc3);
      const __m256i t2 = _mm256_hadd_epi32(t0, t1);
      const __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(t2),
                                        _mm256_extracti128_si256(t2, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i * n + j), sum);
    }
    for (; j < n; ++j) {
      const std::int8_t* bj = bt + j * stride;
      __m256i acc = _mm256_setzero_si256();
      // One kQGemmPad (32-byte) block per iteration: two 16-byte halves,
      // each sign-extended to 16 int16 lanes and madd'ed to 8 int32 sums.
      for (std::size_t k = 0; k < stride; k += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + k));
        const __m256i a_lo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
        const __m256i a_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
        acc = fma_block(acc, a_lo, a_hi, bj + k);
      }
      c[i * n + j] = hsum_epi32(acc);
    }
  }
}

}  // namespace

QGemmFn qgemm_avx2() { return &qgemm_avx2_impl; }

}  // namespace m3dfl::gnn

#else  // !__AVX2__

namespace m3dfl::gnn {
QGemmFn qgemm_avx2() { return nullptr; }
}  // namespace m3dfl::gnn

#endif
