#pragma once

#include <iosfwd>
#include <string>

#include "gnn/model.h"
#include "gnn/quant.h"

namespace m3dfl::gnn {

/// Text serialization of trained models ("train once, deploy everywhere" —
/// the transferability workflow of the paper assumes pre-trained models are
/// shipped to new designs without retraining, which requires an on-disk
/// format).
///
/// The format is a line-oriented tagged text:
///
/// ```
/// m3dfl-model v1 graph-classifier
/// stack 2
/// layer 13 32
/// W <13*32 floats...>
/// b <32 floats...>
/// ...
/// head hidden 16          # or: head none
/// Wo <floats...> ...
/// ```
///
/// Floats are printed with max_digits10, so save/load round-trips are
/// bit-exact and a reloaded model produces identical predictions.
///
/// The loaders are safe on hostile input: truncated, mutated, or
/// size-inflated files produce `false` plus an error message — never a
/// crash, an unbounded allocation, a non-finite weight, or a partially
/// overwritten model (the output object is only assigned after a fully
/// successful parse). tests/io_test.cpp fuzzes this contract.

void save_graph_classifier(const GraphClassifier& model, std::ostream& os);
bool load_graph_classifier(GraphClassifier& model, std::istream& is,
                           std::string* error = nullptr);

void save_node_scorer(const NodeScorer& model, std::ostream& os);
bool load_node_scorer(NodeScorer& model, std::istream& is,
                      std::string* error = nullptr);

/// Quantized twins use the same tagged-text scheme with kinds
/// `quant-graph-classifier` / `quant-node-scorer`: a `calib` provenance
/// line, then `qlinear <out> <in>` blocks carrying the two scales
/// (max_digits10 floats — bit-exact round-trip), the int8 weights as
/// decimal integers, and the float bias. Loaders enforce the same hostile-
/// input contract as the fp32 loaders, plus that every quantized weight is
/// in [-127, 127] and every scale is finite and positive. Save/load is
/// byte-stable: re-saving a loaded model reproduces the input bytes.

void save_quantized_graph_classifier(const QuantizedGraphClassifier& model,
                                     std::ostream& os);
bool load_quantized_graph_classifier(QuantizedGraphClassifier& model,
                                     std::istream& is,
                                     std::string* error = nullptr);

void save_quantized_node_scorer(const QuantizedNodeScorer& model,
                                std::ostream& os);
bool load_quantized_node_scorer(QuantizedNodeScorer& model, std::istream& is,
                                std::string* error = nullptr);

// String conveniences.
std::string graph_classifier_to_string(const GraphClassifier& model);
bool graph_classifier_from_string(GraphClassifier& model,
                                  const std::string& text,
                                  std::string* error = nullptr);
std::string node_scorer_to_string(const NodeScorer& model);
bool node_scorer_from_string(NodeScorer& model, const std::string& text,
                             std::string* error = nullptr);
std::string quantized_graph_classifier_to_string(
    const QuantizedGraphClassifier& model);
bool quantized_graph_classifier_from_string(QuantizedGraphClassifier& model,
                                            const std::string& text,
                                            std::string* error = nullptr);
std::string quantized_node_scorer_to_string(const QuantizedNodeScorer& model);
bool quantized_node_scorer_from_string(QuantizedNodeScorer& model,
                                       const std::string& text,
                                       std::string* error = nullptr);

}  // namespace m3dfl::gnn
