#pragma once

#include <vector>

#include "gnn/matrix.h"
#include "graphx/subgraph.h"

namespace m3dfl::gnn {

using graphx::SubGraph;

/// Forward-pass cache of one GCN layer on one graph, kept for backprop.
struct GcnCache {
  Matrix agg;  ///< A_norm * H_in (aggregated inputs).
  Matrix out;  ///< relu(agg * W + b); the ReLU mask is out > 0.
};

/// One graph-convolution layer implementing the paper's Eq. (1):
///
///   h_v^{l+1} = sigma( b^l + sum_{u in N(v)} h_u^l W^l / |N(v)| )
///
/// with N(v) taken as neighbors(v) + v itself (self-connection), the usual
/// added-self-loop convention for GCNs on sub-graphs that may contain
/// isolated nodes. sigma is ReLU.
class GcnLayer {
 public:
  GcnLayer() = default;
  GcnLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const { return W.rows(); }
  std::size_t out_dim() const { return W.cols(); }

  /// Mean-aggregates h_in over the graph's (undirected) adjacency with a
  /// self-loop: agg[v] = (h[v] + sum_{u in N(v)} h[u]) / (1 + |N(v)|).
  static Matrix aggregate(const SubGraph& g, const Matrix& h_in);

  /// aggregate() into a caller-owned matrix (reshaped to fit) — lets hot
  /// inference loops reuse scratch instead of allocating per layer.
  static void aggregate_into(const SubGraph& g, const Matrix& h_in,
                             Matrix& agg);

  /// The transpose operation of aggregate() (A_norm is not symmetric after
  /// row normalization, so backprop needs A_norm^T explicitly).
  static Matrix aggregate_transpose(const SubGraph& g, const Matrix& d_agg);

  /// Forward pass; fills `cache` for backward.
  Matrix forward(const SubGraph& g, const Matrix& h_in, GcnCache* cache) const;

  /// Backward pass: consumes dL/d(out), accumulates gW / gb, and returns
  /// dL/d(h_in). `h_in` must be the same matrix passed to forward.
  Matrix backward(const SubGraph& g, const Matrix& h_in, const GcnCache& cache,
                  const Matrix& d_out);

  void zero_grad();

  Matrix W;               ///< in_dim x out_dim.
  std::vector<float> b;   ///< out_dim.
  Matrix gW;              ///< Gradient accumulator for W.
  std::vector<float> gb;  ///< Gradient accumulator for b.
};

/// A stack of GCN layers (the shared representation trunk of all three
/// models in the paper: Tier-predictor, MIV-pinpointer, Classifier).
class GcnStack {
 public:
  GcnStack() = default;
  GcnStack(std::size_t in_dim, const std::vector<std::size_t>& hidden,
           Rng& rng);

  std::size_t out_dim() const { return layers.empty() ? 0 : layers.back().out_dim(); }

  /// Forward through all layers; caches one entry per layer.
  Matrix forward(const SubGraph& g, const Matrix& x,
                 std::vector<GcnCache>* caches) const;

  /// Backward through all layers; accumulates gradients (unless frozen) and
  /// returns dL/dX — the input-feature gradient used by the explainer.
  Matrix backward(const SubGraph& g, const Matrix& x,
                  const std::vector<GcnCache>& caches, const Matrix& d_out,
                  bool accumulate_grads = true);

  void zero_grad();

  std::vector<GcnLayer> layers;
};

}  // namespace m3dfl::gnn
