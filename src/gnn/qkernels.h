#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/bitpar/dispatch.h"

namespace m3dfl::gnn {

/// int8 GEMM with exact int32 accumulation:
///
///   c[i*n + j] = sum_k a[i*stride + k] * bt[j*stride + k]
///
/// `a` is the quantized activation block (m rows), `bt` the pre-transposed
/// quantized weight block (n rows — one row per output channel), both with
/// the same row stride. Rows are padded to kQGemmPad with zero bytes, so
/// kernels consume whole vectors with no tail loop; zero pads contribute
/// nothing to the products.
///
/// The accumulation is exact, not saturating: |q| <= 127 everywhere, so a
/// row of kMaxDim (65536) products is bounded by 127*127*65536 < 2^31 and
/// an int32 accumulator cannot overflow for any loadable model. Integer
/// addition is associative, so every tier — whatever its lane count or
/// summation order — produces the same int32, which is what makes the
/// quantized forward bit-identical across scalar/SSE2/AVX2 (saturation
/// happens only at the scalar requantization clamp, shared by all tiers).
///
/// Each tier lives in its own translation unit (the AVX2 one is compiled
/// with -mavx2); the function-pointer boundary keeps wide instructions out
/// of code that runs before the cpuid check, exactly like the bit-parallel
/// simulator's kernel family. Accessors return nullptr when the tier is not
/// compiled in on this architecture.
using QGemmFn = void (*)(const std::int8_t* a, const std::int8_t* bt,
                         std::int32_t* c, std::size_t m, std::size_t n,
                         std::size_t stride);

/// Row padding unit of quantized buffers: one AVX2 vector of int8 lanes.
/// SSE2 consumes it as two vectors, scalar as 32 MACs.
inline constexpr std::size_t kQGemmPad = 32;

QGemmFn qgemm_scalar();
QGemmFn qgemm_sse2();
QGemmFn qgemm_avx2();

/// Kernel for the active tier under the bit-parallel simulator's resolution
/// order (force_tier() > M3DFL_SIMD > best_tier()) — the GNN path honors
/// the same `--simd` forcing as the simulator.
QGemmFn active_qgemm();

/// The tier active_qgemm() resolved to (for /statusz and tests).
sim::bitpar::SimdTier active_qgemm_tier();

}  // namespace m3dfl::gnn
