#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace m3dfl::gnn {

/// Dense row-major float matrix. The GNN work here is on sub-graphs of
/// tens-to-hundreds of nodes with feature widths <= 64, so a simple dense
/// kernel set is both sufficient and cache-friendly; no external BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float init = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  /// Glorot/Xavier-uniform initialization (the standard GCN init).
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Reshapes to rows x cols of zeros, reusing capacity. For thread-local
  /// scratch matrices on inference hot paths, where a fresh Matrix per
  /// call would mean a malloc/free pair per layer.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// out = a^T * b. Shapes: (k x m)^T * (k x n) -> (m x n). Used for weight
/// gradients (inputs^T * upstream).
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// out = a * b^T. Shapes: (m x k) * (n x k)^T -> (m x n). Used to push
/// gradients through a linear layer (upstream * W^T).
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// Adds a bias row vector to every row of m.
void add_bias_rows(Matrix& m, std::span<const float> bias);

/// In-place ReLU.
void relu_inplace(Matrix& m);

/// dst += src (same shape).
void accumulate(Matrix& dst, const Matrix& src);

/// Column-wise sum of m, accumulated into out (size m.cols()).
void add_colsum(std::span<float> out, const Matrix& m);

/// Row-wise mean of m: returns a 1 x cols matrix.
Matrix row_mean(const Matrix& m);

/// row_mean() into a caller-owned 1 x cols matrix (reshaped to fit).
void row_mean_into(const Matrix& m, Matrix& out);

/// Numerically stable softmax over a single row vector. The double variant
/// is the training-path softmax (gradients want the extra precision); the
/// float variant is the inference-path softmax — float end to end, so the
/// serve hot loop never round-trips through double.
std::vector<double> softmax(std::span<const float> logits);
std::vector<float> softmax_float(std::span<const float> logits);

}  // namespace m3dfl::gnn
