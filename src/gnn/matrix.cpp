#include "gnn/matrix.h"

#include <algorithm>
#include <cmath>

namespace m3dfl::gnn {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return m;
}

// The elementwise kernels below restrict-qualify their row pointers and
// hoist loop bounds into locals so the compiler can prove no aliasing /
// loop-invariance and auto-vectorize the inner loops. The accumulation
// order of every kernel is deliberately unchanged (gnn_test pins the
// outputs bit-identically against scalar reference kernels).

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  const std::size_t M = a.rows(), K = a.cols(), N = b.cols();
  for (std::size_t i = 0; i < M; ++i) {
    float* __restrict orow = out.row(i);
    const float* __restrict arow = a.row(i);
    for (std::size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      const float* __restrict brow = b.row(k);
      for (std::size_t j = 0; j < N; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  const std::size_t K = a.rows(), M = a.cols(), N = b.cols();
  for (std::size_t k = 0; k < K; ++k) {
    const float* __restrict arow = a.row(k);
    const float* __restrict brow = b.row(k);
    for (std::size_t i = 0; i < M; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* __restrict orow = out.row(i);
      for (std::size_t j = 0; j < N; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  const std::size_t M = a.rows(), N = b.rows(), K = a.cols();
  for (std::size_t i = 0; i < M; ++i) {
    const float* __restrict arow = a.row(i);
    float* __restrict orow = out.row(i);
    for (std::size_t j = 0; j < N; ++j) {
      const float* __restrict brow = b.row(j);
      float s = 0.0f;
      for (std::size_t k = 0; k < K; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
  return out;
}

void add_bias_rows(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  const std::size_t R = m.rows(), C = m.cols();
  const float* __restrict brow = bias.data();
  for (std::size_t i = 0; i < R; ++i) {
    float* __restrict row = m.row(i);
    for (std::size_t j = 0; j < C; ++j) row[j] += brow[j];
  }
}

void relu_inplace(Matrix& m) {
  const std::size_t n = m.size();
  float* __restrict p = m.data();
  for (std::size_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

void accumulate(Matrix& dst, const Matrix& src) {
  assert(dst.rows() == src.rows() && dst.cols() == src.cols());
  const std::size_t n = dst.size();
  float* __restrict d = dst.data();
  const float* __restrict s = src.data();
  for (std::size_t i = 0; i < n; ++i) d[i] += s[i];
}

void add_colsum(std::span<float> out, const Matrix& m) {
  assert(out.size() == m.cols());
  const std::size_t R = m.rows(), C = m.cols();
  float* __restrict o = out.data();
  for (std::size_t i = 0; i < R; ++i) {
    const float* __restrict row = m.row(i);
    for (std::size_t j = 0; j < C; ++j) o[j] += row[j];
  }
}

Matrix row_mean(const Matrix& m) {
  Matrix out;
  row_mean_into(m, out);
  return out;
}

void row_mean_into(const Matrix& m, Matrix& out) {
  out.resize(1, m.cols());
  if (m.rows() == 0) return;
  const std::size_t R = m.rows(), C = m.cols();
  float* __restrict o = out.row(0);
  for (std::size_t i = 0; i < R; ++i) {
    const float* __restrict row = m.row(i);
    for (std::size_t j = 0; j < C; ++j) o[j] += row[j];
  }
  const auto inv = 1.0f / static_cast<float>(R);
  for (std::size_t j = 0; j < C; ++j) o[j] *= inv;
}

std::vector<float> softmax_float(std::span<const float> logits) {
  std::vector<float> p(logits.size());
  float mx = -1e30f;
  for (float v : logits) mx = std::max(mx, v);
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  for (float& v : p) v /= sum;
  return p;
}

std::vector<double> softmax(std::span<const float> logits) {
  std::vector<double> p(logits.size());
  double mx = -1e30;
  for (float v : logits) mx = std::max(mx, static_cast<double>(v));
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(static_cast<double>(logits[i]) - mx);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace m3dfl::gnn
