#include "gnn/matrix.h"

#include <algorithm>
#include <cmath>

namespace m3dfl::gnn {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    float* orow = out.row(i);
    const float* arow = a.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = arow[k];
      if (av == 0.0f) continue;
      const float* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* arow = a.row(k);
    const float* brow = b.row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const float* brow = b.row(j);
      float s = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
  return out;
}

void add_bias_rows(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] += bias[j];
  }
}

void relu_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = std::max(0.0f, m.data()[i]);
  }
}

void accumulate(Matrix& dst, const Matrix& src) {
  assert(dst.rows() == src.rows() && dst.cols() == src.cols());
  for (std::size_t i = 0; i < dst.size(); ++i) dst.data()[i] += src.data()[i];
}

void add_colsum(std::span<float> out, const Matrix& m) {
  assert(out.size() == m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += row[j];
  }
}

Matrix row_mean(const Matrix& m) {
  Matrix out(1, m.cols());
  if (m.rows() == 0) return out;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.row(i);
    for (std::size_t j = 0; j < m.cols(); ++j) out.at(0, j) += row[j];
  }
  const auto inv = 1.0f / static_cast<float>(m.rows());
  for (std::size_t j = 0; j < m.cols(); ++j) out.at(0, j) *= inv;
  return out;
}

std::vector<double> softmax(std::span<const float> logits) {
  std::vector<double> p(logits.size());
  double mx = -1e30;
  for (float v : logits) mx = std::max(mx, static_cast<double>(v));
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(static_cast<double>(logits[i]) - mx);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

}  // namespace m3dfl::gnn
