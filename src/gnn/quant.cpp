#include "gnn/quant.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <vector>

#include "common/executor.h"
#include "obs/metrics.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace m3dfl::gnn {

namespace {

/// Quantizes one row of floats into int8 with round-to-nearest-even — the
/// activation-side hot loop of every quantized GEMM. The SSE2 body is not
/// part of the dispatched kernel family: it is baseline x86-64 and runs
/// identically under every forced GEMM tier, and cvtps2dq rounds exactly
/// like lrintf in the default rounding mode, so the scalar fallback (and
/// quantize_value itself) produce the same bytes.
void quantize_row(const float* src, std::int8_t* dst, std::size_t n,
                  float inv) {
  std::size_t c = 0;
#if defined(__SSE2__)
  const __m128 vinv = _mm_set1_ps(inv);
  const __m128i lo = _mm_set1_epi16(-127);
  const __m128i hi = _mm_set1_epi16(127);
  for (; c + 8 <= n; c += 8) {
    const __m128i a =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + c), vinv));
    const __m128i b =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(src + c + 4), vinv));
    __m128i w = _mm_packs_epi32(a, b);  // Saturate to int16 lanes.
    w = _mm_min_epi16(_mm_max_epi16(w, lo), hi);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + c),
                     _mm_packs_epi16(w, w));
  }
#endif
  for (; c < n; ++c) {
    const long q = std::lrintf(src[c] * inv);
    dst[c] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
  }
}

/// FNV-1a over raw bytes, for the calibration fingerprint. (serve/ has its
/// own copy for cache keys; gnn cannot depend on serve, and 8 lines beat a
/// new shared header.)
std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

std::uint64_t hash_scales(std::uint64_t h, const QuantizedLinear& lin) {
  h = fnv1a64(&lin.in_scale, sizeof(lin.in_scale), h);
  h = fnv1a64(&lin.w_scale, sizeof(lin.w_scale), h);
  return h;
}

float absmax_of(const Matrix& m) {
  float mx = 0.0f;
  const float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) mx = std::max(mx, std::abs(p[i]));
  return mx;
}

/// absmax / 127 with the degenerate all-zero tensor mapped to scale 1.0
/// (every quantized value is then exactly 0; no division by zero anywhere).
float scale_from_absmax(float absmax) {
  return absmax > 0.0f ? absmax / 127.0f : 1.0f;
}

void record_layer_latency(std::chrono::steady_clock::time_point t0) {
  static obs::LatencyHistogram& hist = obs::MetricsRegistry::instance()
      .histogram("gnn.inference.layer_forward_seconds");
  hist.record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
}

/// Per-tensor absmax statistics of a GraphClassifier forward pass — the
/// inputs of every GEMM the quantized twin will run in int8.
struct ClassifierAbsmax {
  std::vector<float> layer_in;  ///< Aggregated features entering layer l.
  float pooled = 0.0f;          ///< Mean-pool readout.
  float hidden = 0.0f;          ///< Hidden-head activation (if any).

  void merge(const ClassifierAbsmax& o) {
    if (layer_in.size() < o.layer_in.size()) layer_in.resize(o.layer_in.size());
    for (std::size_t i = 0; i < o.layer_in.size(); ++i) {
      layer_in[i] = std::max(layer_in[i], o.layer_in[i]);
    }
    pooled = std::max(pooled, o.pooled);
    hidden = std::max(hidden, o.hidden);
  }
};

/// Runs the fp32 forward on one calibration graph, recording the absmax of
/// every quantized-GEMM input.
void observe_classifier(const GraphClassifier& m, const SubGraph& g,
                        ClassifierAbsmax& st) {
  if (g.num_nodes() == 0) return;
  st.layer_in.resize(m.stack.layers.size(), 0.0f);
  Matrix h = features_matrix(g);
  for (std::size_t l = 0; l < m.stack.layers.size(); ++l) {
    const GcnLayer& layer = m.stack.layers[l];
    Matrix agg = GcnLayer::aggregate(g, h);
    st.layer_in[l] = std::max(st.layer_in[l], absmax_of(agg));
    Matrix z = matmul(agg, layer.W);
    add_bias_rows(z, layer.b);
    relu_inplace(z);
    h = std::move(z);
  }
  Matrix pooled = row_mean(h);
  st.pooled = std::max(st.pooled, absmax_of(pooled));
  if (m.has_hidden_head) {
    Matrix hid = matmul(pooled, m.Wh);
    add_bias_rows(hid, m.bh);
    relu_inplace(hid);
    st.hidden = std::max(st.hidden, absmax_of(hid));
  }
}

/// Same sweep for a NodeScorer — only the stack runs in int8 there.
void observe_scorer(const NodeScorer& m, const SubGraph& g,
                    ClassifierAbsmax& st) {
  if (g.num_nodes() == 0) return;
  st.layer_in.resize(m.stack.layers.size(), 0.0f);
  Matrix h = features_matrix(g);
  for (std::size_t l = 0; l < m.stack.layers.size(); ++l) {
    const GcnLayer& layer = m.stack.layers[l];
    Matrix agg = GcnLayer::aggregate(g, h);
    st.layer_in[l] = std::max(st.layer_in[l], absmax_of(agg));
    Matrix z = matmul(agg, layer.W);
    add_bias_rows(z, layer.b);
    relu_inplace(z);
    h = std::move(z);
  }
}

/// Shards the calibration set over an Executor and max-merges the per-shard
/// statistics. absmax is order-independent under max, so the merged scales
/// are bit-identical at every thread count.
template <typename Observe>
ClassifierAbsmax sweep_calibration(std::span<const SubGraph* const> calib,
                                   std::size_t num_threads, Observe observe) {
  ClassifierAbsmax total;
  const std::size_t n = calib.size();
  const std::size_t workers = std::max<std::size_t>(1, num_threads);
  if (workers <= 1 || n <= 1) {
    for (const SubGraph* g : calib) observe(*g, total);
    return total;
  }
  Executor pool(workers, "quant_calib");
  const std::size_t shards = std::min(workers * 4, n);
  std::vector<std::future<ClassifierAbsmax>> futs;
  futs.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t lo = n * s / shards;
    const std::size_t hi = n * (s + 1) / shards;
    futs.push_back(pool.submit([&, lo, hi] {
      ClassifierAbsmax local;
      for (std::size_t i = lo; i < hi; ++i) observe(*calib[i], local);
      return local;
    }));
  }
  for (auto& f : futs) total.merge(f.get());
  return total;
}

QuantizedGcnStack quantize_stack(const GcnStack& stack,
                                 std::span<const float> layer_absmax) {
  QuantizedGcnStack q;
  q.layers.reserve(stack.layers.size());
  for (std::size_t l = 0; l < stack.layers.size(); ++l) {
    const float in_absmax = l < layer_absmax.size() ? layer_absmax[l] : 0.0f;
    q.layers.push_back(
        {quantize_linear(stack.layers[l].W, stack.layers[l].b, in_absmax)});
  }
  return q;
}

}  // namespace

std::int8_t quantize_value(float v, float scale) {
  // Reciprocal multiply, not division: this runs per element on the
  // inference hot path, and the rounding choice must match the hoisted
  // loop in QuantizedLinear::forward bit for bit.
  const long q = std::lrintf(v * (1.0f / scale));
  return static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
}

QuantizedLinear quantize_linear(const Matrix& w, std::span<const float> bias,
                                float in_absmax) {
  QuantizedLinear lin;
  lin.w_scale = scale_from_absmax(absmax_of(w));
  lin.in_scale = scale_from_absmax(in_absmax);
  lin.wt = QMatrix(w.cols(), w.rows());  // Transposed: out_dim x in_dim.
  for (std::size_t i = 0; i < w.rows(); ++i) {
    for (std::size_t o = 0; o < w.cols(); ++o) {
      lin.wt.at(o, i) = quantize_value(w.at(i, o), lin.w_scale);
    }
  }
  lin.bias.assign(bias.begin(), bias.end());
  return lin;
}

Matrix QuantizedLinear::forward(const Matrix& in) const {
  Matrix result;
  forward_into(in, result);
  return result;
}

void QuantizedLinear::forward_into(const Matrix& in, Matrix& result) const {
  assert(in.cols() == in_dim());
  const std::size_t rows = in.rows();
  const std::size_t out = out_dim();
  result.resize(rows, out);
  if (rows == 0 || out == 0) return;

  // Thread-local scratch for the quantized activations and the int32
  // accumulators: at sub-graph sizes (tens of rows) the malloc/free pair
  // per layer costs as much as the GEMM itself. assign() re-zeroes the
  // activation buffer, so row padding past in_dim stays zero (the kernel
  // contract); the accumulator is fully overwritten and only resized.
  static thread_local std::vector<std::int8_t> qa;
  static thread_local std::vector<std::int32_t> acc;
  const std::size_t stride = wt.stride();
  qa.assign(rows * stride, 0);
  if (acc.size() < rows * out) acc.resize(rows * out);

  const float inv = 1.0f / in_scale;  // One division per call, not per value.
  for (std::size_t r = 0; r < rows; ++r) {
    quantize_row(in.row(r), qa.data() + r * stride, in_dim(), inv);
  }

  active_qgemm()(qa.data(), wt.data(), acc.data(), rows, out, stride);

  const float dq = in_scale * w_scale;
  for (std::size_t r = 0; r < rows; ++r) {
    float* dst = result.row(r);
    const std::int32_t* arow = acc.data() + r * out;
    for (std::size_t o = 0; o < out; ++o) {
      dst[o] = static_cast<float>(arow[o]) * dq + bias[o];
    }
  }
}

Matrix QuantizedGcnLayer::forward(const SubGraph& g, const Matrix& h_in) const {
  Matrix agg = GcnLayer::aggregate(g, h_in);
  Matrix out = lin.forward(agg);
  relu_inplace(out);
  return out;
}

Matrix QuantizedGcnStack::forward(const SubGraph& g, const Matrix& x) const {
  Matrix out;
  forward_into(g, x, out);
  return out;
}

void QuantizedGcnStack::forward_into(const SubGraph& g, const Matrix& x,
                                     Matrix& out) const {
  if (layers.empty()) {
    out = x;
    return;
  }
  // One aggregation buffer and one hidden buffer cover the whole stack:
  // each step reads the previous activation into `agg` first, after which
  // the previous buffer is dead and can absorb the layer output (the
  // linear only forbids aliasing its own input, which is `agg`). The last
  // layer writes straight into `out`. Zero steady-state allocations; the
  // math and its order are identical to the layer-at-a-time form.
  static thread_local Matrix agg, hidden;
  const Matrix* h = &x;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    Matrix& dst = l + 1 == layers.size() ? out : hidden;
    if (obs::hot_path_sample()) {
      const auto t0 = std::chrono::steady_clock::now();
      GcnLayer::aggregate_into(g, *h, agg);
      layers[l].lin.forward_into(agg, dst);
      relu_inplace(dst);
      record_layer_latency(t0);
    } else {
      GcnLayer::aggregate_into(g, *h, agg);
      layers[l].lin.forward_into(agg, dst);
      relu_inplace(dst);
    }
    h = &dst;
  }
}

std::vector<float> QuantizedGraphClassifier::predict_probs(
    const SubGraph& g) const {
  static obs::Counter& forwards =
      obs::MetricsRegistry::instance().counter("gnn.inference.int8_forwards");
  forwards.add();
  const std::size_t c = num_classes();
  if (g.num_nodes() == 0) {
    return std::vector<float>(c, 1.0f / static_cast<float>(c));
  }
  // Thread-local scratch end to end: at serve sub-graph sizes (tens of
  // nodes) the fp32 path's per-forward allocations cost as much as its
  // GEMMs, and the int8 path must not inherit that floor.
  static thread_local Matrix feats, h, pooled, hid, logits;
  features_matrix_into(g, feats);
  stack.forward_into(g, feats, h);
  row_mean_into(h, pooled);
  const Matrix* readout = &pooled;
  if (has_hidden_head) {
    head_hidden.forward_into(pooled, hid);
    relu_inplace(hid);
    readout = &hid;
  }
  head_out.forward_into(*readout, logits);
  return softmax_float({logits.data(), logits.size()});
}

std::vector<double> QuantizedGraphClassifier::predict(const SubGraph& g) const {
  const std::vector<float> p = predict_probs(g);
  return std::vector<double>(p.begin(), p.end());
}

std::vector<double> QuantizedNodeScorer::predict_miv(const SubGraph& g) const {
  static obs::Counter& forwards =
      obs::MetricsRegistry::instance().counter("gnn.inference.int8_forwards");
  forwards.add();
  std::vector<double> scores(g.miv_local.size(), 0.0);
  if (g.num_nodes() == 0 || g.miv_local.empty()) return scores;
  static thread_local Matrix feats, h;
  features_matrix_into(g, feats);
  stack.forward_into(g, feats, h);
  const std::size_t d = stack.out_dim();
  for (std::size_t k = 0; k < g.miv_local.size(); ++k) {
    const float* row = h.row(g.miv_local[k]);
    double z = bo[0];
    for (std::size_t j = 0; j < d; ++j) {
      z += static_cast<double>(row[j]) * Wo.at(j, 0);
    }
    scores[k] = 1.0 / (1.0 + std::exp(-z));
  }
  return scores;
}

QuantizedGraphClassifier quantize_graph_classifier(
    const GraphClassifier& model, std::span<const SubGraph* const> calib,
    const QuantCalibrationOptions& opts) {
  const ClassifierAbsmax st = sweep_calibration(
      calib, opts.num_threads, [&](const SubGraph& g, ClassifierAbsmax& s) {
        observe_classifier(model, g, s);
      });

  QuantizedGraphClassifier q;
  q.stack = quantize_stack(model.stack, st.layer_in);
  q.has_hidden_head = model.has_hidden_head;
  if (model.has_hidden_head) {
    q.head_hidden = quantize_linear(model.Wh, model.bh, st.pooled);
    q.head_out = quantize_linear(model.Wo, model.bo, st.hidden);
  } else {
    q.head_out = quantize_linear(model.Wo, model.bo, st.pooled);
  }

  q.provenance.calib_graphs = calib.size();
  std::uint64_t h = kFnvBasis;
  for (const QuantizedGcnLayer& l : q.stack.layers) h = hash_scales(h, l.lin);
  if (q.has_hidden_head) h = hash_scales(h, q.head_hidden);
  h = hash_scales(h, q.head_out);
  q.provenance.scale_fingerprint = h;
  return q;
}

QuantizedNodeScorer quantize_node_scorer(const NodeScorer& model,
                                         std::span<const SubGraph* const> calib,
                                         const QuantCalibrationOptions& opts) {
  const ClassifierAbsmax st = sweep_calibration(
      calib, opts.num_threads, [&](const SubGraph& g, ClassifierAbsmax& s) {
        observe_scorer(model, g, s);
      });

  QuantizedNodeScorer q;
  q.stack = quantize_stack(model.stack, st.layer_in);
  q.Wo = model.Wo;
  q.bo = model.bo;
  q.provenance.calib_graphs = calib.size();
  std::uint64_t h = kFnvBasis;
  for (const QuantizedGcnLayer& l : q.stack.layers) h = hash_scales(h, l.lin);
  q.provenance.scale_fingerprint = h;
  return q;
}

}  // namespace m3dfl::gnn
