#include "gnn/pca.h"

#include <cassert>
#include <cmath>

namespace m3dfl::gnn {

std::array<double, 2> PcaResult::project2(std::span<const double> x) const {
  const std::vector<double> p = project(x);
  return {p.size() > 0 ? p[0] : 0.0, p.size() > 1 ? p[1] : 0.0};
}

std::vector<double> PcaResult::project(std::span<const double> x) const {
  assert(x.size() == dim);
  std::vector<double> out(components.size(), 0.0);
  for (std::size_t k = 0; k < components.size(); ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      s += (x[i] - mean[i]) * components[k][i];
    }
    out[k] = s;
  }
  return out;
}

double PcaResult::explained_variance_ratio() const {
  if (total_variance <= 0.0) return 0.0;
  double captured = 0.0;
  for (double e : eigenvalues) captured += e;
  return captured / total_variance;
}

PcaResult fit_pca(std::span<const std::vector<double>> samples, int k) {
  PcaResult r;
  if (samples.empty()) return r;
  const std::size_t d = samples[0].size();
  r.dim = d;
  r.mean.assign(d, 0.0);
  for (const auto& s : samples) {
    assert(s.size() == d);
    for (std::size_t i = 0; i < d; ++i) r.mean[i] += s[i];
  }
  for (double& m : r.mean) m /= static_cast<double>(samples.size());

  // Covariance matrix (d x d, d is small — 13 for Table-II features).
  std::vector<double> cov(d * d, 0.0);
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = s[i] - r.mean[i];
      for (std::size_t j = i; j < d; ++j) {
        cov[i * d + j] += xi * (s[j] - r.mean[j]);
      }
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov[i * d + j] /= static_cast<double>(samples.size());
      cov[j * d + i] = cov[i * d + j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) r.total_variance += cov[i * d + i];

  // Power iteration with deflation.
  std::vector<double> work(cov);
  for (int comp = 0; comp < k && static_cast<std::size_t>(comp) < d; ++comp) {
    std::vector<double> v(d, 0.0);
    v[static_cast<std::size_t>(comp) % d] = 1.0;
    double eig = 0.0;
    for (int it = 0; it < 500; ++it) {
      std::vector<double> nv(d, 0.0);
      for (std::size_t i = 0; i < d; ++i) {
        double s = 0.0;
        for (std::size_t j = 0; j < d; ++j) s += work[i * d + j] * v[j];
        nv[i] = s;
      }
      double norm = 0.0;
      for (double x : nv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-14) break;
      for (double& x : nv) x /= norm;
      double delta = 0.0;
      for (std::size_t i = 0; i < d; ++i) delta += std::abs(nv[i] - v[i]);
      v = std::move(nv);
      eig = norm;
      if (delta < 1e-12) break;
    }
    r.components.push_back(v);
    r.eigenvalues.push_back(eig);
    // Deflate: work -= eig * v v^T.
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        work[i * d + j] -= eig * v[i] * v[j];
      }
    }
  }
  return r;
}

}  // namespace m3dfl::gnn
