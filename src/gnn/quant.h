#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/model.h"
#include "gnn/qkernels.h"

namespace m3dfl::gnn {

/// Dense row-major int8 matrix with rows padded to kQGemmPad bytes. Pad
/// bytes are always zero, so the padded row can be fed to the int8 GEMM
/// kernels whole (zero products change nothing) and no kernel needs a
/// tail loop.
class QMatrix {
 public:
  QMatrix() = default;
  QMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        stride_((cols + kQGemmPad - 1) / kQGemmPad * kQGemmPad),
        data_(rows * stride_, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }

  std::int8_t& at(std::size_t r, std::size_t c) {
    return data_[r * stride_ + c];
  }
  std::int8_t at(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }

  std::int8_t* row(std::size_t r) { return data_.data() + r * stride_; }
  const std::int8_t* row(std::size_t r) const {
    return data_.data() + r * stride_;
  }

  const std::int8_t* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::int8_t> data_;
};

/// Symmetric int8 quantization of one value: round-to-nearest, clamped to
/// [-127, 127] (the saturation point of the whole pipeline — accumulation
/// itself is exact, see qkernels.h).
std::int8_t quantize_value(float v, float scale);

/// Calibration provenance carried with every quantized model: how many
/// sub-graphs fed the activation-scale collection and a fingerprint over
/// all chosen scales (FNV-1a of their bytes) — enough for /statusz to
/// prove which calibration a serving process runs.
struct QuantProvenance {
  std::size_t calib_graphs = 0;
  std::uint64_t scale_fingerprint = 0;
};

/// One quantized affine layer: y = dequant(q_x . q_w) + b, with the weight
/// matrix stored pre-transposed (out_dim rows of in_dim int8 values) so
/// the GEMM inner loop walks two contiguous rows.
///
/// Scales are symmetric per-layer for weights (absmax(W)/127) and
/// per-tensor for activations (absmax over the calibration set / 127);
/// the dequantization factor is their product.
struct QuantizedLinear {
  QMatrix wt;               ///< out_dim x in_dim (transposed weights).
  std::vector<float> bias;  ///< out_dim.
  float w_scale = 1.0f;     ///< w  ~= q_w * w_scale.
  float in_scale = 1.0f;    ///< x  ~= q_x * in_scale (calibrated).

  std::size_t in_dim() const { return wt.cols(); }
  std::size_t out_dim() const { return wt.rows(); }

  /// Quantizes `in` (rows x in_dim) with in_scale, runs the dispatched
  /// int8 GEMM, and dequantizes + adds bias into the returned float
  /// matrix (rows x out_dim). Thread-safe: scratch is thread-local.
  Matrix forward(const Matrix& in) const;

  /// forward() into a caller-owned matrix (reshaped to fit) — the serve
  /// hot loop's form; at sub-graph sizes the per-layer malloc/free pair
  /// costs as much as the GEMM. `result` must not alias `in`.
  void forward_into(const Matrix& in, Matrix& result) const;
};

/// Builds a QuantizedLinear from float weights W (in_dim x out_dim, the
/// library's forward layout) and bias, with the given calibrated
/// activation absmax.
QuantizedLinear quantize_linear(const Matrix& w, std::span<const float> bias,
                                float in_absmax);

/// Quantized GCN layer: float mean-aggregation (shared scalar code with
/// the fp32 path), int8 GEMM, scalar dequant + bias + ReLU. Only the pure
/// integer GEMM is SIMD-dispatched, so cross-tier bit-identity of the
/// whole forward is structural.
struct QuantizedGcnLayer {
  QuantizedLinear lin;
  Matrix forward(const SubGraph& g, const Matrix& h_in) const;
};

struct QuantizedGcnStack {
  std::vector<QuantizedGcnLayer> layers;
  std::size_t out_dim() const {
    return layers.empty() ? 0 : layers.back().lin.out_dim();
  }
  /// Forward through all layers; feeds the
  /// gnn.inference.layer_forward_seconds histogram (1-in-16 sampled — see
  /// obs::hot_path_sample).
  Matrix forward(const SubGraph& g, const Matrix& x) const;

  /// forward() into a caller-owned matrix (reshaped to fit). Intermediate
  /// layers run through thread-local scratch, so the whole stack performs
  /// zero steady-state allocations. `out` must not alias `x`.
  void forward_into(const SubGraph& g, const Matrix& x, Matrix& out) const;
};

struct QuantCalibrationOptions {
  /// Worker threads for the calibration sweep. The collected statistic is
  /// a per-tensor absmax — order-independent — so scales are bit-identical
  /// at every thread count.
  std::size_t num_threads = 1;
};

/// int8 twin of GraphClassifier: quantized GCN stack + mean-pool readout +
/// quantized classification head(s) + float softmax.
class QuantizedGraphClassifier {
 public:
  std::size_t num_classes() const { return head_out.out_dim(); }

  /// Class probabilities (float path). Empty graphs yield uniform output,
  /// matching GraphClassifier::predict.
  std::vector<float> predict_probs(const SubGraph& g) const;

  /// Double-widening shim over predict_probs (float->double widening is
  /// exact, so threshold comparisons agree with the float path bit-wise).
  std::vector<double> predict(const SubGraph& g) const;

  QuantizedGcnStack stack;
  bool has_hidden_head = false;
  QuantizedLinear head_hidden;  ///< pooled -> hidden (ReLU).
  QuantizedLinear head_out;     ///< -> logits.
  QuantProvenance provenance;
};

/// int8 twin of NodeScorer: quantized GCN stack + the original float
/// scoring head (a single dot product per MIV node — negligible work, and
/// scalar either way so it cannot break cross-tier bit-identity).
class QuantizedNodeScorer {
 public:
  /// Sigmoid scores for the sub-graph's MIV nodes (parallel to
  /// g.miv_local), like NodeScorer::predict_miv.
  std::vector<double> predict_miv(const SubGraph& g) const;

  QuantizedGcnStack stack;
  Matrix Wo;               ///< stack.out_dim() x 1 (float head).
  std::vector<float> bo;   ///< Single bias.
  QuantProvenance provenance;
};

/// Post-training calibration + weight quantization. The calibration set
/// supplies per-tensor activation absmax for every quantized GEMM input
/// (per-layer aggregated features; pooled readout; hidden activation).
QuantizedGraphClassifier quantize_graph_classifier(
    const GraphClassifier& model, std::span<const SubGraph* const> calib,
    const QuantCalibrationOptions& opts = {});

QuantizedNodeScorer quantize_node_scorer(
    const NodeScorer& model, std::span<const SubGraph* const> calib,
    const QuantCalibrationOptions& opts = {});

}  // namespace m3dfl::gnn
