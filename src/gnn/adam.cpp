#include "gnn/adam.h"

#include <cmath>

namespace m3dfl::gnn {

Adam::Adam(std::vector<ParamRef> params, AdamOptions opts)
    : params_(std::move(params)), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(opts_.beta1, t_);
  const double bc2 = 1.0 - std::pow(opts_.beta2, t_);
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    ParamRef& p = params_[pi];
    auto& m = m_[pi];
    auto& v = v_[pi];
    for (std::size_t i = 0; i < p.size; ++i) {
      double g = p.grad[i];
      if (opts_.weight_decay > 0.0) g += opts_.weight_decay * p.value[i];
      m[i] = static_cast<float>(opts_.beta1 * m[i] + (1.0 - opts_.beta1) * g);
      v[i] = static_cast<float>(opts_.beta2 * v[i] +
                                (1.0 - opts_.beta2) * g * g);
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p.value[i] -= static_cast<float>(opts_.lr * mhat /
                                       (std::sqrt(vhat) + opts_.eps));
      p.grad[i] = 0.0f;
    }
  }
}

void Adam::zero_grad() {
  for (ParamRef& p : params_) {
    for (std::size_t i = 0; i < p.size; ++i) p.grad[i] = 0.0f;
  }
}

}  // namespace m3dfl::gnn
