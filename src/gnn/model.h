#pragma once

#include <cstdint>
#include <vector>

#include "gnn/gcn.h"

namespace m3dfl::gnn {

/// A view of one learnable tensor, consumed by the Adam optimizer.
struct ParamRef {
  float* value = nullptr;
  float* grad = nullptr;
  std::size_t size = 0;
};

/// Copies a sub-graph's features into a Matrix (N x kNumSubgraphFeatures).
Matrix features_matrix(const SubGraph& g);

/// features_matrix() into a caller-owned matrix (reshaped to fit) — lets
/// hot inference loops reuse scratch instead of allocating per forward.
void features_matrix_into(const SubGraph& g, Matrix& x);

/// Graph-classification model: GCN stack -> mean-pool readout -> (optional
/// hidden linear) -> linear -> softmax. This is the architecture of both
/// the Tier-predictor (2 outputs, [p_top, p_bottom]) and the transfer-
/// learned prune/reorder Classifier (pre-trained frozen stack + trainable
/// classification layers, paper Sec. V-C).
class GraphClassifier {
 public:
  GraphClassifier() = default;

  /// Fresh model: stack over `hidden` widths, then a linear readout head.
  GraphClassifier(std::size_t in_dim, const std::vector<std::size_t>& hidden,
                  std::size_t num_classes, std::uint64_t seed);

  /// Network-based transfer (paper Sec. V-C): copies a pre-trained GCN
  /// stack, freezes it, and attaches freshly initialized classification
  /// layers (hidden width `head_hidden`, 0 = direct linear head).
  static GraphClassifier transfer_from(const GcnStack& pretrained,
                                       std::size_t num_classes,
                                       std::size_t head_hidden,
                                       std::uint64_t seed);

  std::size_t num_classes() const { return Wo.cols(); }

  /// Class probabilities for one graph, float end to end (the inference
  /// hot path — the readout/softmax never widen to double). Empty graphs
  /// yield uniform output.
  std::vector<float> predict_probs(const SubGraph& g) const;

  /// Double-widening shim over predict_probs. float->double widening is
  /// exact, so threshold comparisons against the double vector agree
  /// bit-wise with the float path (regression-tested in gnn_test).
  std::vector<double> predict(const SubGraph& g) const;

  /// Probabilities with explicit features (used by the explainer's masked
  /// evaluation).
  std::vector<double> predict_with_features(const SubGraph& g,
                                            const Matrix& x) const;

  /// Forward + backward for one labeled graph; accumulates parameter
  /// gradients (stack grads skipped when frozen) and returns the
  /// cross-entropy loss. `weight` scales the example (class weighting).
  double train_graph(const SubGraph& g, int label, double weight = 1.0);

  /// dL/dX for one labeled graph under explicit features. Parameter
  /// gradients are not touched. Used by the GNNExplainer-style mask
  /// optimizer.
  Matrix input_gradient(const SubGraph& g, int label, const Matrix& x);

  std::vector<ParamRef> params();
  void zero_grad();

  GcnStack stack;
  bool freeze_stack = false;

  // Optional hidden classification layer (transfer-learned Classifier).
  bool has_hidden_head = false;
  Matrix Wh, gWh;
  std::vector<float> bh, gbh;

  // Output layer.
  Matrix Wo, gWo;
  std::vector<float> bo, gbo;
};

/// Node-classification model: GCN stack -> per-node linear -> sigmoid.
/// This is the MIV-pinpointer: it scores each MIV node of the sub-graph
/// with the probability that this MIV is defective (paper Sec. III-C:
/// "node classification is used to pinpoint the set of defective MIVs").
class NodeScorer {
 public:
  NodeScorer() = default;
  NodeScorer(std::size_t in_dim, const std::vector<std::size_t>& hidden,
             std::uint64_t seed);

  /// Scores the sub-graph's MIV nodes (parallel to g.miv_local).
  std::vector<double> predict_miv(const SubGraph& g) const;

  /// Forward + backward with BCE over the graph's labeled MIV nodes;
  /// positives weighted by pos_weight. Returns the mean loss (0 when the
  /// graph has no MIV nodes).
  double train_graph(const SubGraph& g, double pos_weight = 1.0);

  std::vector<ParamRef> params();
  void zero_grad();

  GcnStack stack;
  Matrix Wo, gWo;              ///< stack.out_dim() x 1.
  std::vector<float> bo, gbo;  ///< Single bias.
};

}  // namespace m3dfl::gnn
