#include "gnn/serialize.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace m3dfl::gnn {
namespace {

// Hard ceilings on declared shapes. A corrupted or malicious size field
// must produce a clean load failure, never a multi-gigabyte allocation:
// load_* is fed with files shipped to tester floors and with bytes handed
// to the serving layer, so a flipped digit in "layer 13 32" cannot be
// allowed to take the process down. The real models are ~10^4 parameters;
// these bounds leave two orders of magnitude of headroom.
constexpr std::size_t kMaxLayers = 64;
constexpr std::size_t kMaxDim = 1u << 16;
constexpr std::size_t kMaxTensorElems = 1u << 24;

bool check_dims(std::size_t rows, std::size_t cols, const char* what,
                std::string* error) {
  if (rows == 0 || cols == 0 || rows > kMaxDim || cols > kMaxDim ||
      rows * cols > kMaxTensorElems) {
    if (error) {
      *error = "implausible " + std::string(what) + " shape " +
               std::to_string(rows) + "x" + std::to_string(cols);
    }
    return false;
  }
  return true;
}

void write_floats(std::ostream& os, const char* tag, const float* data,
                  std::size_t n) {
  os << tag;
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<float>::max_digits10);
  for (std::size_t i = 0; i < n; ++i) os << ' ' << data[i];
  os.precision(old_precision);
  os << '\n';
}

bool read_floats(std::istream& is, const char* tag, float* data,
                 std::size_t n, std::string* error) {
  std::string word;
  if (!(is >> word) || word != tag) {
    if (error) *error = "expected '" + std::string(tag) + "' tag";
    return false;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> data[i])) {
      if (error) *error = "short float payload for '" + std::string(tag) + "'";
      return false;
    }
    if (!std::isfinite(data[i])) {
      if (error) {
        *error = "non-finite weight in '" + std::string(tag) + "' payload";
      }
      return false;
    }
  }
  return true;
}

bool write_stack(std::ostream& os, const GcnStack& stack) {
  os << "stack " << stack.layers.size() << '\n';
  for (const GcnLayer& l : stack.layers) {
    os << "layer " << l.in_dim() << ' ' << l.out_dim() << '\n';
    write_floats(os, "W", l.W.data(), l.W.size());
    write_floats(os, "b", l.b.data(), l.b.size());
  }
  return true;
}

bool read_stack(std::istream& is, GcnStack& stack, std::string* error) {
  std::string word;
  std::size_t layers = 0;
  if (!(is >> word >> layers) || word != "stack") {
    if (error) *error = "expected 'stack <n>'";
    return false;
  }
  if (layers == 0 || layers > kMaxLayers) {
    if (error) {
      *error = "implausible stack depth " + std::to_string(layers);
    }
    return false;
  }
  stack.layers.clear();
  for (std::size_t i = 0; i < layers; ++i) {
    std::size_t in_dim = 0, out_dim = 0;
    if (!(is >> word >> in_dim >> out_dim) || word != "layer") {
      if (error) *error = "expected 'layer <in> <out>'";
      return false;
    }
    if (!check_dims(in_dim, out_dim, "layer", error)) return false;
    Rng dummy(1);
    GcnLayer layer(in_dim, out_dim, dummy);
    if (!read_floats(is, "W", layer.W.data(), layer.W.size(), error) ||
        !read_floats(is, "b", layer.b.data(), layer.b.size(), error)) {
      return false;
    }
    layer.zero_grad();
    stack.layers.push_back(std::move(layer));
  }
  return true;
}

void write_qlinear(std::ostream& os, const QuantizedLinear& lin) {
  os << "qlinear " << lin.out_dim() << ' ' << lin.in_dim() << '\n';
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<float>::max_digits10);
  os << "scales " << lin.in_scale << ' ' << lin.w_scale << '\n';
  os.precision(old_precision);
  os << "Wq";
  for (std::size_t o = 0; o < lin.out_dim(); ++o) {
    for (std::size_t i = 0; i < lin.in_dim(); ++i) {
      os << ' ' << static_cast<int>(lin.wt.at(o, i));
    }
  }
  os << '\n';
  write_floats(os, "b", lin.bias.data(), lin.bias.size());
}

bool read_qlinear(std::istream& is, QuantizedLinear& lin, std::string* error) {
  std::string word;
  std::size_t out_dim = 0, in_dim = 0;
  if (!(is >> word >> out_dim >> in_dim) || word != "qlinear") {
    if (error) *error = "expected 'qlinear <out> <in>'";
    return false;
  }
  if (!check_dims(out_dim, in_dim, "qlinear", error)) return false;
  float in_scale = 0.0f, w_scale = 0.0f;
  if (!(is >> word >> in_scale >> w_scale) || word != "scales") {
    if (error) *error = "expected 'scales <in> <w>'";
    return false;
  }
  if (!std::isfinite(in_scale) || in_scale <= 0.0f ||
      !std::isfinite(w_scale) || w_scale <= 0.0f) {
    if (error) *error = "non-finite or non-positive quantization scale";
    return false;
  }
  lin.in_scale = in_scale;
  lin.w_scale = w_scale;
  lin.wt = QMatrix(out_dim, in_dim);
  if (!(is >> word) || word != "Wq") {
    if (error) *error = "expected 'Wq' tag";
    return false;
  }
  for (std::size_t o = 0; o < out_dim; ++o) {
    for (std::size_t i = 0; i < in_dim; ++i) {
      int q = 0;
      if (!(is >> q)) {
        if (error) *error = "short int8 payload for 'Wq'";
        return false;
      }
      if (q < -127 || q > 127) {
        if (error) {
          *error = "quantized weight " + std::to_string(q) +
                   " outside [-127, 127]";
        }
        return false;
      }
      lin.wt.at(o, i) = static_cast<std::int8_t>(q);
    }
  }
  lin.bias.assign(out_dim, 0.0f);
  return read_floats(is, "b", lin.bias.data(), lin.bias.size(), error);
}

void write_provenance(std::ostream& os, const QuantProvenance& p) {
  os << "calib " << p.calib_graphs << ' ' << p.scale_fingerprint << '\n';
}

bool read_provenance(std::istream& is, QuantProvenance& p,
                     std::string* error) {
  std::string word;
  if (!(is >> word >> p.calib_graphs >> p.scale_fingerprint) ||
      word != "calib") {
    if (error) *error = "expected 'calib <graphs> <fingerprint>'";
    return false;
  }
  return true;
}

bool write_qstack(std::ostream& os, const QuantizedGcnStack& stack) {
  os << "qstack " << stack.layers.size() << '\n';
  for (const QuantizedGcnLayer& l : stack.layers) write_qlinear(os, l.lin);
  return true;
}

bool read_qstack(std::istream& is, QuantizedGcnStack& stack,
                 std::string* error) {
  std::string word;
  std::size_t layers = 0;
  if (!(is >> word >> layers) || word != "qstack") {
    if (error) *error = "expected 'qstack <n>'";
    return false;
  }
  if (layers == 0 || layers > kMaxLayers) {
    if (error) *error = "implausible qstack depth " + std::to_string(layers);
    return false;
  }
  stack.layers.clear();
  for (std::size_t i = 0; i < layers; ++i) {
    QuantizedGcnLayer layer;
    if (!read_qlinear(is, layer.lin, error)) return false;
    stack.layers.push_back(std::move(layer));
  }
  return true;
}

bool check_header(std::istream& is, const char* kind, std::string* error) {
  std::string magic, version, k;
  if (!(is >> magic >> version >> k) || magic != "m3dfl-model" ||
      version != "v1" || k != kind) {
    if (error) {
      *error = "bad header (expected 'm3dfl-model v1 " + std::string(kind) +
               "')";
    }
    return false;
  }
  return true;
}

}  // namespace

void save_graph_classifier(const GraphClassifier& model, std::ostream& os) {
  os << "m3dfl-model v1 graph-classifier\n";
  write_stack(os, model.stack);
  os << "frozen " << (model.freeze_stack ? 1 : 0) << '\n';
  if (model.has_hidden_head) {
    os << "head hidden " << model.Wh.cols() << '\n';
    write_floats(os, "Wh", model.Wh.data(), model.Wh.size());
    write_floats(os, "bh", model.bh.data(), model.bh.size());
  } else {
    os << "head none\n";
  }
  os << "out " << model.Wo.rows() << ' ' << model.Wo.cols() << '\n';
  write_floats(os, "Wo", model.Wo.data(), model.Wo.size());
  write_floats(os, "bo", model.bo.data(), model.bo.size());
}

bool load_graph_classifier(GraphClassifier& model, std::istream& is,
                           std::string* error) {
  if (!check_header(is, "graph-classifier", error)) return false;
  GraphClassifier m;
  if (!read_stack(is, m.stack, error)) return false;
  std::string word;
  int frozen = 0;
  if (!(is >> word >> frozen) || word != "frozen") {
    if (error) *error = "expected 'frozen <0|1>'";
    return false;
  }
  m.freeze_stack = frozen != 0;
  std::string head_kind;
  if (!(is >> word >> head_kind) || word != "head") {
    if (error) *error = "expected 'head <none|hidden>'";
    return false;
  }
  if (head_kind == "hidden") {
    std::size_t width = 0;
    if (!(is >> width)) {
      if (error) *error = "expected hidden-head width";
      return false;
    }
    if (!check_dims(m.stack.out_dim(), width, "hidden head", error)) {
      return false;
    }
    m.has_hidden_head = true;
    m.Wh = Matrix(m.stack.out_dim(), width);
    m.gWh = Matrix(m.stack.out_dim(), width);
    m.bh.assign(width, 0.0f);
    m.gbh.assign(width, 0.0f);
    if (!read_floats(is, "Wh", m.Wh.data(), m.Wh.size(), error) ||
        !read_floats(is, "bh", m.bh.data(), m.bh.size(), error)) {
      return false;
    }
  } else if (head_kind != "none") {
    if (error) *error = "unknown head kind '" + head_kind + "'";
    return false;
  }
  std::size_t rows = 0, cols = 0;
  if (!(is >> word >> rows >> cols) || word != "out") {
    if (error) *error = "expected 'out <rows> <cols>'";
    return false;
  }
  if (!check_dims(rows, cols, "output head", error)) return false;
  m.Wo = Matrix(rows, cols);
  m.gWo = Matrix(rows, cols);
  m.bo.assign(cols, 0.0f);
  m.gbo.assign(cols, 0.0f);
  if (!read_floats(is, "Wo", m.Wo.data(), m.Wo.size(), error) ||
      !read_floats(is, "bo", m.bo.data(), m.bo.size(), error)) {
    return false;
  }
  model = std::move(m);
  return true;
}

void save_node_scorer(const NodeScorer& model, std::ostream& os) {
  os << "m3dfl-model v1 node-scorer\n";
  write_stack(os, model.stack);
  os << "out " << model.Wo.rows() << ' ' << model.Wo.cols() << '\n';
  write_floats(os, "Wo", model.Wo.data(), model.Wo.size());
  write_floats(os, "bo", model.bo.data(), model.bo.size());
}

bool load_node_scorer(NodeScorer& model, std::istream& is,
                      std::string* error) {
  if (!check_header(is, "node-scorer", error)) return false;
  NodeScorer m;
  if (!read_stack(is, m.stack, error)) return false;
  std::string word;
  std::size_t rows = 0, cols = 0;
  if (!(is >> word >> rows >> cols) || word != "out") {
    if (error) *error = "expected 'out <rows> <cols>'";
    return false;
  }
  if (!check_dims(rows, cols, "output head", error)) return false;
  m.Wo = Matrix(rows, cols);
  m.gWo = Matrix(rows, cols);
  m.bo.assign(cols, 0.0f);
  m.gbo.assign(cols, 0.0f);
  if (!read_floats(is, "Wo", m.Wo.data(), m.Wo.size(), error) ||
      !read_floats(is, "bo", m.bo.data(), m.bo.size(), error)) {
    return false;
  }
  model = std::move(m);
  return true;
}

void save_quantized_graph_classifier(const QuantizedGraphClassifier& model,
                                     std::ostream& os) {
  os << "m3dfl-model v1 quant-graph-classifier\n";
  write_provenance(os, model.provenance);
  write_qstack(os, model.stack);
  if (model.has_hidden_head) {
    os << "head hidden\n";
    write_qlinear(os, model.head_hidden);
  } else {
    os << "head none\n";
  }
  os << "out\n";
  write_qlinear(os, model.head_out);
}

bool load_quantized_graph_classifier(QuantizedGraphClassifier& model,
                                     std::istream& is, std::string* error) {
  if (!check_header(is, "quant-graph-classifier", error)) return false;
  QuantizedGraphClassifier m;
  if (!read_provenance(is, m.provenance, error)) return false;
  if (!read_qstack(is, m.stack, error)) return false;
  std::string word, head_kind;
  if (!(is >> word >> head_kind) || word != "head") {
    if (error) *error = "expected 'head <none|hidden>'";
    return false;
  }
  if (head_kind == "hidden") {
    m.has_hidden_head = true;
    if (!read_qlinear(is, m.head_hidden, error)) return false;
  } else if (head_kind != "none") {
    if (error) *error = "unknown head kind '" + head_kind + "'";
    return false;
  }
  if (!(is >> word) || word != "out") {
    if (error) *error = "expected 'out'";
    return false;
  }
  if (!read_qlinear(is, m.head_out, error)) return false;
  model = std::move(m);
  return true;
}

void save_quantized_node_scorer(const QuantizedNodeScorer& model,
                                std::ostream& os) {
  os << "m3dfl-model v1 quant-node-scorer\n";
  write_provenance(os, model.provenance);
  write_qstack(os, model.stack);
  os << "out " << model.Wo.rows() << ' ' << model.Wo.cols() << '\n';
  write_floats(os, "Wo", model.Wo.data(), model.Wo.size());
  write_floats(os, "bo", model.bo.data(), model.bo.size());
}

bool load_quantized_node_scorer(QuantizedNodeScorer& model, std::istream& is,
                                std::string* error) {
  if (!check_header(is, "quant-node-scorer", error)) return false;
  QuantizedNodeScorer m;
  if (!read_provenance(is, m.provenance, error)) return false;
  if (!read_qstack(is, m.stack, error)) return false;
  std::string word;
  std::size_t rows = 0, cols = 0;
  if (!(is >> word >> rows >> cols) || word != "out") {
    if (error) *error = "expected 'out <rows> <cols>'";
    return false;
  }
  if (!check_dims(rows, cols, "output head", error)) return false;
  m.Wo = Matrix(rows, cols);
  m.bo.assign(cols, 0.0f);
  if (!read_floats(is, "Wo", m.Wo.data(), m.Wo.size(), error) ||
      !read_floats(is, "bo", m.bo.data(), m.bo.size(), error)) {
    return false;
  }
  model = std::move(m);
  return true;
}

std::string graph_classifier_to_string(const GraphClassifier& model) {
  std::ostringstream os;
  save_graph_classifier(model, os);
  return os.str();
}

bool graph_classifier_from_string(GraphClassifier& model,
                                  const std::string& text,
                                  std::string* error) {
  std::istringstream is(text);
  return load_graph_classifier(model, is, error);
}

std::string node_scorer_to_string(const NodeScorer& model) {
  std::ostringstream os;
  save_node_scorer(model, os);
  return os.str();
}

bool node_scorer_from_string(NodeScorer& model, const std::string& text,
                             std::string* error) {
  std::istringstream is(text);
  return load_node_scorer(model, is, error);
}

std::string quantized_graph_classifier_to_string(
    const QuantizedGraphClassifier& model) {
  std::ostringstream os;
  save_quantized_graph_classifier(model, os);
  return os.str();
}

bool quantized_graph_classifier_from_string(QuantizedGraphClassifier& model,
                                            const std::string& text,
                                            std::string* error) {
  std::istringstream is(text);
  return load_quantized_graph_classifier(model, is, error);
}

std::string quantized_node_scorer_to_string(const QuantizedNodeScorer& model) {
  std::ostringstream os;
  save_quantized_node_scorer(model, os);
  return os.str();
}

bool quantized_node_scorer_from_string(QuantizedNodeScorer& model,
                                       const std::string& text,
                                       std::string* error) {
  std::istringstream is(text);
  return load_quantized_node_scorer(model, is, error);
}

}  // namespace m3dfl::gnn
