#include "gnn/gcn.h"

#include <cassert>
#include <chrono>

#include "obs/metrics.h"

namespace m3dfl::gnn {

GcnLayer::GcnLayer(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : W(Matrix::xavier(in_dim, out_dim, rng)),
      b(out_dim, 0.0f),
      gW(in_dim, out_dim),
      gb(out_dim, 0.0f) {}

Matrix GcnLayer::aggregate(const SubGraph& g, const Matrix& h_in) {
  Matrix agg;
  aggregate_into(g, h_in, agg);
  return agg;
}

void GcnLayer::aggregate_into(const SubGraph& g, const Matrix& h_in,
                              Matrix& agg) {
  const std::size_t n = g.num_nodes();
  assert(h_in.rows() == n);
  agg.resize(n, h_in.cols());
  // Restrict-qualified rows + hoisted bounds (agg never aliases h_in) so
  // the per-channel loops vectorize; accumulation order is unchanged.
  const std::size_t C = h_in.cols();
  for (std::size_t v = 0; v < n; ++v) {
    float* __restrict out = agg.row(v);
    const float* __restrict self = h_in.row(v);
    const std::uint32_t lo = g.row_ptr[v], hi = g.row_ptr[v + 1];
    for (std::size_t c = 0; c < C; ++c) out[c] = self[c];
    for (std::uint32_t e = lo; e < hi; ++e) {
      const float* __restrict nb = h_in.row(g.col_idx[e]);
      for (std::size_t c = 0; c < C; ++c) out[c] += nb[c];
    }
    const float inv = 1.0f / static_cast<float>(1 + hi - lo);
    for (std::size_t c = 0; c < C; ++c) out[c] *= inv;
  }
}

Matrix GcnLayer::aggregate_transpose(const SubGraph& g, const Matrix& d_agg) {
  const std::size_t n = g.num_nodes();
  assert(d_agg.rows() == n);
  Matrix out(n, d_agg.cols());
  const std::size_t C = d_agg.cols();
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t lo = g.row_ptr[v], hi = g.row_ptr[v + 1];
    const float inv = 1.0f / static_cast<float>(1 + hi - lo);
    const float* __restrict src = d_agg.row(v);
    // Row v of A_norm contributes inv * src to column targets {v} + N(v);
    // transposing, those targets accumulate the contribution. (`src` never
    // aliases `out`; the scatter targets may repeat, so they are not
    // restrict-qualified.)
    float* self = out.row(v);
    for (std::size_t c = 0; c < C; ++c) self[c] += inv * src[c];
    for (std::uint32_t e = lo; e < hi; ++e) {
      float* dst = out.row(g.col_idx[e]);
      for (std::size_t c = 0; c < C; ++c) dst[c] += inv * src[c];
    }
  }
  return out;
}

Matrix GcnLayer::forward(const SubGraph& g, const Matrix& h_in,
                         GcnCache* cache) const {
  Matrix agg = aggregate(g, h_in);
  Matrix out = matmul(agg, W);
  add_bias_rows(out, b);
  relu_inplace(out);
  if (cache) {
    cache->agg = std::move(agg);
    cache->out = out;
  }
  return out;
}

Matrix GcnLayer::backward(const SubGraph& g, const Matrix& h_in,
                          const GcnCache& cache, const Matrix& d_out) {
  (void)h_in;
  // ReLU mask.
  Matrix d_pre = d_out;
  for (std::size_t i = 0; i < d_pre.size(); ++i) {
    if (cache.out.data()[i] <= 0.0f) d_pre.data()[i] = 0.0f;
  }
  // Parameter grads.
  accumulate(gW, matmul_at_b(cache.agg, d_pre));
  add_colsum(gb, d_pre);
  // Through the linear map and the aggregation.
  const Matrix d_agg = matmul_a_bt(d_pre, W);
  return aggregate_transpose(g, d_agg);
}

void GcnLayer::zero_grad() {
  gW.zero();
  std::fill(gb.begin(), gb.end(), 0.0f);
}

GcnStack::GcnStack(std::size_t in_dim, const std::vector<std::size_t>& hidden,
                   Rng& rng) {
  std::size_t d = in_dim;
  layers.reserve(hidden.size());
  for (std::size_t h : hidden) {
    layers.emplace_back(d, h, rng);
    d = h;
  }
}

Matrix GcnStack::forward(const SubGraph& g, const Matrix& x,
                         std::vector<GcnCache>* caches) const {
  if (caches) {
    // Training forward (caches requested): no instrumentation — backprop
    // dominates and the histogram is meant to profile inference.
    caches->resize(layers.size());
    Matrix h = x;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      h = layers[l].forward(g, h, &(*caches)[l]);
    }
    return h;
  }
  static obs::LatencyHistogram& hist = obs::MetricsRegistry::instance()
      .histogram("gnn.inference.layer_forward_seconds");
  Matrix h = x;
  for (const GcnLayer& layer : layers) {
    if (obs::hot_path_sample()) {
      const auto t0 = std::chrono::steady_clock::now();
      h = layer.forward(g, h, nullptr);
      hist.record(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count());
    } else {
      h = layer.forward(g, h, nullptr);
    }
  }
  return h;
}

Matrix GcnStack::backward(const SubGraph& g, const Matrix& x,
                          const std::vector<GcnCache>& caches,
                          const Matrix& d_out, bool accumulate_grads) {
  assert(caches.size() == layers.size());
  Matrix d = d_out;
  for (std::size_t l = layers.size(); l-- > 0;) {
    const Matrix& h_in = l == 0 ? x : caches[l - 1].out;
    if (accumulate_grads) {
      d = layers[l].backward(g, h_in, caches[l], d);
    } else {
      // Same math without touching the gradient accumulators.
      Matrix d_pre = d;
      for (std::size_t i = 0; i < d_pre.size(); ++i) {
        if (caches[l].out.data()[i] <= 0.0f) d_pre.data()[i] = 0.0f;
      }
      const Matrix d_agg = matmul_a_bt(d_pre, layers[l].W);
      d = GcnLayer::aggregate_transpose(g, d_agg);
    }
  }
  return d;
}

void GcnStack::zero_grad() {
  for (GcnLayer& l : layers) l.zero_grad();
}

}  // namespace m3dfl::gnn
