// Scalar int8 GEMM — the portable reference every SIMD tier must match
// bit-for-bit (tests/quant_test.cpp and tests/gnn_test.cpp force each tier
// and compare). Also the dispatch fallback and the resolver.

#include "gnn/qkernels.h"

namespace m3dfl::gnn {

namespace {

void qgemm_scalar_impl(const std::int8_t* a, const std::int8_t* bt,
                       std::int32_t* c, std::size_t m, std::size_t n,
                       std::size_t stride) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* __restrict ai = a + i * stride;
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* __restrict bj = bt + j * stride;
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < stride; ++k) {
        acc += static_cast<std::int32_t>(ai[k]) *
               static_cast<std::int32_t>(bj[k]);
      }
      c[i * n + j] = acc;
    }
  }
}

}  // namespace

QGemmFn qgemm_scalar() { return &qgemm_scalar_impl; }

QGemmFn active_qgemm() {
  switch (active_qgemm_tier()) {
    case sim::bitpar::SimdTier::kAvx2:
      if (QGemmFn fn = qgemm_avx2()) return fn;
      break;
    case sim::bitpar::SimdTier::kSse2:
      if (QGemmFn fn = qgemm_sse2()) return fn;
      break;
    case sim::bitpar::SimdTier::kScalar:
      break;
  }
  return qgemm_scalar();
}

sim::bitpar::SimdTier active_qgemm_tier() {
  return sim::bitpar::resolve_tier();
}

}  // namespace m3dfl::gnn
