#pragma once

#include <vector>

#include "gnn/model.h"

namespace m3dfl::gnn {

/// Hyper-parameters of the Adam optimizer.
struct AdamOptions {
  double lr = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;
};

/// Adam optimizer over a flat list of parameter views.
class Adam {
 public:
  Adam(std::vector<ParamRef> params, AdamOptions opts = {});

  /// Applies one update from the accumulated gradients, then clears them.
  void step();

  /// Clears gradients without stepping.
  void zero_grad();

  const AdamOptions& options() const { return opts_; }
  void set_lr(double lr) { opts_.lr = lr; }

 private:
  std::vector<ParamRef> params_;
  AdamOptions opts_;
  std::vector<std::vector<float>> m_, v_;
  long t_ = 0;
};

}  // namespace m3dfl::gnn
