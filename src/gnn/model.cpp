#include "gnn/model.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace m3dfl::gnn {

Matrix features_matrix(const SubGraph& g) {
  Matrix x;
  features_matrix_into(g, x);
  return x;
}

void features_matrix_into(const SubGraph& g, Matrix& x) {
  x.resize(g.num_nodes(), graphx::kNumSubgraphFeatures);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t f = 0; f < graphx::kNumSubgraphFeatures; ++f) {
      x.at(i, f) = g.feature(i, f);
    }
  }
}

GraphClassifier::GraphClassifier(std::size_t in_dim,
                                 const std::vector<std::size_t>& hidden,
                                 std::size_t num_classes, std::uint64_t seed) {
  Rng rng(seed);
  stack = GcnStack(in_dim, hidden, rng);
  Wo = Matrix::xavier(stack.out_dim(), num_classes, rng);
  gWo = Matrix(stack.out_dim(), num_classes);
  bo.assign(num_classes, 0.0f);
  gbo.assign(num_classes, 0.0f);
}

GraphClassifier GraphClassifier::transfer_from(const GcnStack& pretrained,
                                               std::size_t num_classes,
                                               std::size_t head_hidden,
                                               std::uint64_t seed) {
  Rng rng(seed);
  GraphClassifier m;
  m.stack = pretrained;  // Deep copy of the pre-trained representation.
  m.stack.zero_grad();
  m.freeze_stack = true;
  std::size_t d = m.stack.out_dim();
  if (head_hidden > 0) {
    m.has_hidden_head = true;
    m.Wh = Matrix::xavier(d, head_hidden, rng);
    m.gWh = Matrix(d, head_hidden);
    m.bh.assign(head_hidden, 0.0f);
    m.gbh.assign(head_hidden, 0.0f);
    d = head_hidden;
  }
  m.Wo = Matrix::xavier(d, num_classes, rng);
  m.gWo = Matrix(d, num_classes);
  m.bo.assign(num_classes, 0.0f);
  m.gbo.assign(num_classes, 0.0f);
  return m;
}

std::vector<float> GraphClassifier::predict_probs(const SubGraph& g) const {
  static obs::Counter& forwards =
      obs::MetricsRegistry::instance().counter("gnn.inference.fp32_forwards");
  forwards.add();
  const std::size_t c = num_classes();
  if (g.num_nodes() == 0) {
    return std::vector<float>(c, 1.0f / static_cast<float>(c));
  }
  const Matrix h = stack.forward(g, features_matrix(g), nullptr);
  Matrix pooled = row_mean(h);
  if (has_hidden_head) {
    Matrix z = matmul(pooled, Wh);
    add_bias_rows(z, bh);
    relu_inplace(z);
    pooled = std::move(z);
  }
  Matrix logits = matmul(pooled, Wo);
  add_bias_rows(logits, bo);
  return softmax_float({logits.data(), logits.size()});
}

std::vector<double> GraphClassifier::predict(const SubGraph& g) const {
  const std::vector<float> p = predict_probs(g);
  return std::vector<double>(p.begin(), p.end());
}

std::vector<double> GraphClassifier::predict_with_features(
    const SubGraph& g, const Matrix& x) const {
  const std::size_t c = num_classes();
  if (g.num_nodes() == 0) {
    return std::vector<double>(c, 1.0 / static_cast<double>(c));
  }
  const Matrix h = stack.forward(g, x, nullptr);
  Matrix pooled = row_mean(h);
  if (has_hidden_head) {
    Matrix z = matmul(pooled, Wh);
    add_bias_rows(z, bh);
    relu_inplace(z);
    pooled = std::move(z);
  }
  Matrix logits = matmul(pooled, Wo);
  add_bias_rows(logits, bo);
  return softmax({logits.data(), logits.size()});
}

namespace {

/// Shared forward/backward core for train_graph and input_gradient.
struct ClassifierPass {
  std::vector<GcnCache> caches;
  Matrix h;        // Stack output.
  Matrix pooled;   // Mean pool (1 x d).
  Matrix hidden;   // Optional head activation (1 x dh).
  Matrix logits;   // 1 x C.
  std::vector<double> probs;
};

void forward_pass(const GraphClassifier& m, const SubGraph& g, const Matrix& x,
                  ClassifierPass& p) {
  p.h = m.stack.forward(g, x, &p.caches);
  p.pooled = row_mean(p.h);
  if (m.has_hidden_head) {
    p.hidden = matmul(p.pooled, m.Wh);
    add_bias_rows(p.hidden, m.bh);
    relu_inplace(p.hidden);
    p.logits = matmul(p.hidden, m.Wo);
  } else {
    p.logits = matmul(p.pooled, m.Wo);
  }
  add_bias_rows(p.logits, m.bo);
  p.probs = softmax({p.logits.data(), p.logits.size()});
}

}  // namespace

double GraphClassifier::train_graph(const SubGraph& g, int label,
                                    double weight) {
  assert(label >= 0 && static_cast<std::size_t>(label) < num_classes());
  if (g.num_nodes() == 0) return 0.0;
  const Matrix x = features_matrix(g);
  ClassifierPass p;
  forward_pass(*this, g, x, p);
  const double loss =
      -weight * std::log(std::max(1e-12, p.probs[static_cast<std::size_t>(label)]));

  // d(loss)/d(logits) = probs - onehot.
  Matrix d_logits(1, num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c) {
    d_logits.at(0, c) = static_cast<float>(
        weight * (p.probs[c] - (static_cast<int>(c) == label ? 1.0 : 0.0)));
  }

  Matrix d_pooled;
  if (has_hidden_head) {
    accumulate(gWo, matmul_at_b(p.hidden, d_logits));
    add_colsum(gbo, d_logits);
    Matrix d_hidden = matmul_a_bt(d_logits, Wo);
    for (std::size_t i = 0; i < d_hidden.size(); ++i) {
      if (p.hidden.data()[i] <= 0.0f) d_hidden.data()[i] = 0.0f;
    }
    accumulate(gWh, matmul_at_b(p.pooled, d_hidden));
    add_colsum(gbh, d_hidden);
    d_pooled = matmul_a_bt(d_hidden, Wh);
  } else {
    accumulate(gWo, matmul_at_b(p.pooled, d_logits));
    add_colsum(gbo, d_logits);
    d_pooled = matmul_a_bt(d_logits, Wo);
  }

  // Mean-pool backward: every node row receives d_pooled / N.
  Matrix d_h(g.num_nodes(), stack.out_dim());
  const float inv = 1.0f / static_cast<float>(g.num_nodes());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = 0; j < stack.out_dim(); ++j) {
      d_h.at(i, j) = d_pooled.at(0, j) * inv;
    }
  }
  stack.backward(g, x, p.caches, d_h, /*accumulate_grads=*/!freeze_stack);
  return loss;
}

Matrix GraphClassifier::input_gradient(const SubGraph& g, int label,
                                       const Matrix& x) {
  assert(g.num_nodes() > 0);
  ClassifierPass p;
  forward_pass(*this, g, x, p);
  Matrix d_logits(1, num_classes());
  for (std::size_t c = 0; c < num_classes(); ++c) {
    d_logits.at(0, c) = static_cast<float>(
        p.probs[c] - (static_cast<int>(c) == label ? 1.0 : 0.0));
  }
  Matrix d_pooled;
  if (has_hidden_head) {
    Matrix d_hidden = matmul_a_bt(d_logits, Wo);
    for (std::size_t i = 0; i < d_hidden.size(); ++i) {
      if (p.hidden.data()[i] <= 0.0f) d_hidden.data()[i] = 0.0f;
    }
    d_pooled = matmul_a_bt(d_hidden, Wh);
  } else {
    d_pooled = matmul_a_bt(d_logits, Wo);
  }
  Matrix d_h(g.num_nodes(), stack.out_dim());
  const float inv = 1.0f / static_cast<float>(g.num_nodes());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    for (std::size_t j = 0; j < stack.out_dim(); ++j) {
      d_h.at(i, j) = d_pooled.at(0, j) * inv;
    }
  }
  return stack.backward(g, x, p.caches, d_h, /*accumulate_grads=*/false);
}

std::vector<ParamRef> GraphClassifier::params() {
  std::vector<ParamRef> out;
  if (!freeze_stack) {
    for (GcnLayer& l : stack.layers) {
      out.push_back({l.W.data(), l.gW.data(), l.W.size()});
      out.push_back({l.b.data(), l.gb.data(), l.b.size()});
    }
  }
  if (has_hidden_head) {
    out.push_back({Wh.data(), gWh.data(), Wh.size()});
    out.push_back({bh.data(), gbh.data(), bh.size()});
  }
  out.push_back({Wo.data(), gWo.data(), Wo.size()});
  out.push_back({bo.data(), gbo.data(), bo.size()});
  return out;
}

void GraphClassifier::zero_grad() {
  stack.zero_grad();
  if (has_hidden_head) {
    gWh.zero();
    std::fill(gbh.begin(), gbh.end(), 0.0f);
  }
  gWo.zero();
  std::fill(gbo.begin(), gbo.end(), 0.0f);
}

NodeScorer::NodeScorer(std::size_t in_dim,
                       const std::vector<std::size_t>& hidden,
                       std::uint64_t seed) {
  Rng rng(seed);
  stack = GcnStack(in_dim, hidden, rng);
  Wo = Matrix::xavier(stack.out_dim(), 1, rng);
  gWo = Matrix(stack.out_dim(), 1);
  bo.assign(1, 0.0f);
  gbo.assign(1, 0.0f);
}

std::vector<double> NodeScorer::predict_miv(const SubGraph& g) const {
  static obs::Counter& forwards =
      obs::MetricsRegistry::instance().counter("gnn.inference.fp32_forwards");
  forwards.add();
  std::vector<double> scores(g.miv_local.size(), 0.0);
  if (g.num_nodes() == 0 || g.miv_local.empty()) return scores;
  const Matrix x = features_matrix(g);
  const Matrix h = stack.forward(g, x, nullptr);
  for (std::size_t k = 0; k < g.miv_local.size(); ++k) {
    const float* row = h.row(g.miv_local[k]);
    double z = bo[0];
    for (std::size_t j = 0; j < stack.out_dim(); ++j) {
      z += static_cast<double>(row[j]) * Wo.at(j, 0);
    }
    scores[k] = 1.0 / (1.0 + std::exp(-z));
  }
  return scores;
}

double NodeScorer::train_graph(const SubGraph& g, double pos_weight) {
  if (g.num_nodes() == 0 || g.miv_local.empty()) return 0.0;
  assert(g.miv_label.size() == g.miv_local.size());
  const Matrix x = features_matrix(g);
  std::vector<GcnCache> caches;
  const Matrix h = stack.forward(g, x, &caches);

  Matrix d_h(g.num_nodes(), stack.out_dim());
  double loss = 0.0;
  const double inv_n = 1.0 / static_cast<double>(g.miv_local.size());
  for (std::size_t k = 0; k < g.miv_local.size(); ++k) {
    const std::uint32_t node = g.miv_local[k];
    const float* row = h.row(node);
    double z = bo[0];
    for (std::size_t j = 0; j < stack.out_dim(); ++j) {
      z += static_cast<double>(row[j]) * Wo.at(j, 0);
    }
    const double p = 1.0 / (1.0 + std::exp(-z));
    const double y = g.miv_label[k];
    const double w = y > 0.5 ? pos_weight : 1.0;
    loss -= w * (y * std::log(std::max(1e-12, p)) +
                 (1.0 - y) * std::log(std::max(1e-12, 1.0 - p)));
    const auto dz = static_cast<float>(w * (p - y) * inv_n);
    // d(z)/d(Wo_j) = h_j; d(z)/d(h_j) = Wo_j.
    for (std::size_t j = 0; j < stack.out_dim(); ++j) {
      gWo.at(j, 0) += dz * row[j];
      d_h.at(node, j) += dz * Wo.at(j, 0);
    }
    gbo[0] += dz;
  }
  loss *= inv_n;
  stack.backward(g, x, caches, d_h, /*accumulate_grads=*/true);
  return loss;
}

std::vector<ParamRef> NodeScorer::params() {
  std::vector<ParamRef> out;
  for (GcnLayer& l : stack.layers) {
    out.push_back({l.W.data(), l.gW.data(), l.W.size()});
    out.push_back({l.b.data(), l.gb.data(), l.b.size()});
  }
  out.push_back({Wo.data(), gWo.data(), Wo.size()});
  out.push_back({bo.data(), gbo.data(), bo.size()});
  return out;
}

void NodeScorer::zero_grad() {
  stack.zero_grad();
  gWo.zero();
  std::fill(gbo.begin(), gbo.end(), 0.0f);
}

}  // namespace m3dfl::gnn
