#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphx/subgraph.h"

namespace m3dfl::gnn {

using graphx::SubGraph;

/// Appends a dummy buffer node after the given local node: the new node
/// copies the host's tier / Topedge statistics, takes buffer-like degrees,
/// and is connected to the host in the undirected adjacency. This is the
/// paper's graph-oversampling primitive (Sec. V-C): "we develop a novel
/// oversampling algorithm by inserting dummy buffers into samples in the
/// minority class ... without affecting the functionality".
SubGraph append_dummy_buffer(const SubGraph& g, std::uint32_t local_node);

/// Balances a minority class by synthesizing variants of its graphs with
/// 1..k consecutive dummy buffers at randomly chosen nodes, until `target`
/// synthetic + original samples exist. Labels/metadata are copied from the
/// source graph. Deterministic under the seed.
std::vector<SubGraph> oversample_with_buffers(
    std::span<const SubGraph* const> minority, std::size_t target,
    std::uint64_t seed);

}  // namespace m3dfl::gnn
