#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace m3dfl::gnn {

/// Principal component analysis by power iteration with deflation — used
/// for the paper's Fig.-5 transferability visualization (graph-level
/// feature vectors of sub-graphs from different design configurations
/// projected onto the top two components).
struct PcaResult {
  std::size_t dim = 0;
  std::vector<double> mean;                   ///< dim.
  std::vector<std::vector<double>> components;///< k vectors of length dim.
  std::vector<double> eigenvalues;            ///< k, descending.
  double total_variance = 0.0;                ///< Trace of the covariance.

  /// Projects a sample onto the first two components.
  std::array<double, 2> project2(std::span<const double> x) const;

  /// Projects onto all k components.
  std::vector<double> project(std::span<const double> x) const;

  /// Fraction of total variance captured by the first k components.
  double explained_variance_ratio() const;
};

/// Fits PCA on row samples (all of length dim). k <= dim.
PcaResult fit_pca(std::span<const std::vector<double>> samples, int k = 2);

}  // namespace m3dfl::gnn
