#include "gnn/explain.h"

#include <algorithm>
#include <cmath>

namespace m3dfl::gnn {

std::vector<double> explain_feature_significance(
    GraphClassifier& model, std::span<const LabeledGraph> data,
    const ExplainOptions& opts) {
  const std::size_t F = graphx::kNumSubgraphFeatures;
  std::vector<double> mask_logit(F, 0.0);  // sigma(0) = 0.5.
  if (data.empty()) {
    return std::vector<double>(F, 0.5);
  }

  Rng rng(opts.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<double> grad(F);
  for (int it = 0; it < opts.iterations; ++it) {
    rng.shuffle(order);
    std::fill(grad.begin(), grad.end(), 0.0);
    // A small stochastic batch per iteration keeps this fast.
    const std::size_t batch = std::min<std::size_t>(8, order.size());
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const LabeledGraph& ex = data[order[bi]];
      if (ex.graph->num_nodes() == 0) continue;
      Matrix x = features_matrix(*ex.graph);
      // Apply the mask.
      std::vector<double> sig(F);
      for (std::size_t f = 0; f < F; ++f) {
        sig[f] = 1.0 / (1.0 + std::exp(-mask_logit[f]));
      }
      Matrix xm = x;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        for (std::size_t f = 0; f < F; ++f) {
          xm.at(i, f) = static_cast<float>(x.at(i, f) * sig[f]);
        }
      }
      const Matrix dx = model.input_gradient(*ex.graph, ex.label, xm);
      // dL/dm_f = sum_i dL/dxm[i,f] * x[i,f] * sig'(m_f).
      for (std::size_t f = 0; f < F; ++f) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.rows(); ++i) {
          s += static_cast<double>(dx.at(i, f)) * x.at(i, f);
        }
        grad[f] += s * sig[f] * (1.0 - sig[f]);
      }
    }
    for (std::size_t f = 0; f < F; ++f) {
      const double sig = 1.0 / (1.0 + std::exp(-mask_logit[f]));
      const double l1_grad = opts.l1 * sig * (1.0 - sig);
      mask_logit[f] -=
          opts.lr * (grad[f] / static_cast<double>(batch) + l1_grad);
    }
  }

  std::vector<double> significance(F);
  for (std::size_t f = 0; f < F; ++f) {
    significance[f] = 1.0 / (1.0 + std::exp(-mask_logit[f]));
  }
  return significance;
}

std::vector<double> permutation_importance(const GraphClassifier& model,
                                           std::span<const LabeledGraph> data,
                                           std::uint64_t seed) {
  const std::size_t F = graphx::kNumSubgraphFeatures;
  std::vector<double> importance(F, 0.0);
  if (data.empty()) return importance;
  const double base = classifier_accuracy(model, data);

  for (std::size_t f = 0; f < F; ++f) {
    Rng rng(seed + f);
    // Pool the column across the whole dataset and shuffle globally —
    // within-graph shuffling would leave graph-constant features (e.g. a
    // uniform tier) untouched and report zero importance for them.
    std::vector<float> pool;
    for (const LabeledGraph& ex : data) {
      for (std::size_t i = 0; i < ex.graph->num_nodes(); ++i) {
        pool.push_back(ex.graph->feature(i, f));
      }
    }
    rng.shuffle(pool);
    std::size_t cursor = 0;
    std::size_t hits = 0;
    for (const LabeledGraph& ex : data) {
      if (ex.graph->num_nodes() == 0) continue;
      SubGraph shuffled = *ex.graph;
      for (std::size_t i = 0; i < shuffled.num_nodes(); ++i) {
        shuffled.feature(i, f) = pool[cursor++];
      }
      const std::vector<double> p = model.predict(shuffled);
      const auto pred = std::max_element(p.begin(), p.end()) - p.begin();
      if (static_cast<int>(pred) == ex.label) ++hits;
    }
    const double acc = static_cast<double>(hits) / data.size();
    importance[f] = base - acc;
  }
  return importance;
}

}  // namespace m3dfl::gnn
