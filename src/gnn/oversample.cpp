#include "gnn/oversample.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace m3dfl::gnn {

SubGraph append_dummy_buffer(const SubGraph& g, std::uint32_t local_node) {
  assert(local_node < g.num_nodes());
  SubGraph out = g;
  const std::size_t n = g.num_nodes();
  const auto new_idx = static_cast<std::uint32_t>(n);

  // The synthetic node id must stay unique and larger than existing ids so
  // `nodes` stays sorted; it does not correspond to a physical site.
  out.nodes.push_back(g.nodes.empty() ? 0 : g.nodes.back() + 1 +
                                                static_cast<graphx::SiteId>(n));

  // Rebuild CSR with the extra undirected edge (local_node <-> new node).
  std::vector<std::vector<std::uint32_t>> adj(n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    adj[v].assign(g.col_idx.begin() + g.row_ptr[v],
                  g.col_idx.begin() + g.row_ptr[v + 1]);
  }
  adj[local_node].push_back(new_idx);
  adj[new_idx].push_back(local_node);
  out.row_ptr.assign(n + 2, 0);
  out.col_idx.clear();
  for (std::size_t v = 0; v <= n; ++v) {
    out.row_ptr[v + 1] = out.row_ptr[v] + adj[v].size();
    out.col_idx.insert(out.col_idx.end(), adj[v].begin(), adj[v].end());
  }

  // Buffer-like features: degree 1 in/out, host's tier and Topedge stats,
  // slightly deeper level, not a MIV, is a gate output.
  out.features.resize((n + 1) * graphx::kNumSubgraphFeatures);
  const float deg1 =
      static_cast<float>(std::log1p(1.0) / std::log1p(8.0));
  float* f = out.features.data() + n * graphx::kNumSubgraphFeatures;
  const float* host = g.features.data() +
                      static_cast<std::size_t>(local_node) *
                          graphx::kNumSubgraphFeatures;
  f[0] = deg1;            // circuit fan-in
  f[1] = deg1;            // circuit fan-out
  f[2] = host[2];         // Topedges connected (inherits the host's cone)
  f[3] = host[3];         // tier
  f[4] = std::min(1.0f, host[4] + 0.01f);  // one level deeper
  f[5] = 1.0f;            // buffer output pin
  f[6] = host[6];         // connects-to-MIV
  f[7] = deg1;            // sub-graph fan-in
  f[8] = deg1;            // sub-graph fan-out
  f[9] = host[9];
  f[10] = host[10];
  f[11] = host[11];
  f[12] = host[12];

  // miv_local / miv_label indices are unaffected (new node is not a MIV).
  return out;
}

std::vector<SubGraph> oversample_with_buffers(
    std::span<const SubGraph* const> minority, std::size_t target,
    std::uint64_t seed) {
  std::vector<SubGraph> out;
  if (minority.empty()) return out;
  Rng rng(seed);
  out.reserve(target);
  // Originals first.
  for (const SubGraph* g : minority) {
    if (out.size() >= target) break;
    out.push_back(*g);
  }
  // Then synthetic variants with 1..k consecutive buffers. Empty graphs
  // cannot host a buffer, so if the minority class consists solely of
  // empty graphs no variant can ever be synthesized — return what exists
  // rather than spinning on an unreachable target.
  const bool any_nonempty =
      std::any_of(minority.begin(), minority.end(),
                  [](const SubGraph* g) { return g->num_nodes() > 0; });
  if (!any_nonempty) return out;
  std::size_t k = 1;
  while (out.size() < target) {
    for (const SubGraph* g : minority) {
      if (out.size() >= target) break;
      if (g->num_nodes() == 0) continue;
      SubGraph synth = *g;
      for (std::size_t b = 0; b < k; ++b) {
        const auto node = static_cast<std::uint32_t>(
            rng.next_below(synth.num_nodes()));
        synth = append_dummy_buffer(synth, node);
      }
      out.push_back(std::move(synth));
    }
    ++k;
  }
  return out;
}

}  // namespace m3dfl::gnn
