#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/trainer.h"

namespace m3dfl::gnn {

struct ExplainOptions {
  int iterations = 120;
  double lr = 0.05;
  /// L1 pressure on the mask (pushes useless features below 0.5).
  double l1 = 0.02;
  std::uint64_t seed = 23;
};

/// GNNExplainer-style feature-significance scores (paper Table II).
///
/// A multiplicative feature mask sigma(m) in (0,1)^F, initialized at 0.5,
/// is optimized to keep the model's predictions (cross-entropy on the given
/// labeled graphs) while an L1 term shrinks it: features the model relies
/// on are pulled above 0.5 by the task gradient, unused ones are pushed
/// below by the regularizer. The returned sigma(m) values are directly
/// comparable to the paper's significance scores, which cluster tightly
/// around 0.49 because every Table-II feature carries signal.
std::vector<double> explain_feature_significance(
    GraphClassifier& model, std::span<const LabeledGraph> data,
    const ExplainOptions& opts = {});

/// Cross-check metric: permutation importance — the accuracy drop when one
/// feature column is shuffled across nodes within each graph.
std::vector<double> permutation_importance(const GraphClassifier& model,
                                           std::span<const LabeledGraph> data,
                                           std::uint64_t seed = 29);

}  // namespace m3dfl::gnn
