#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/stats.h"
#include "diagnosis/report.h"

namespace m3dfl::core {

using diag::DiagnosisReport;
using netlist::SiteId;
using netlist::Tier;

/// Aggregate report-quality statistics in the paper's terms: accuracy,
/// mean/std diagnostic resolution, mean/std first-hit index.
struct QualityStats {
  std::size_t num_reports = 0;
  double accuracy = 0.0;
  double mean_resolution = 0.0;
  double std_resolution = 0.0;
  double mean_fhi = 0.0;
  double std_fhi = 0.0;
};

/// Accumulates per-sample evaluations into QualityStats.
///
/// Conventions (matching the paper):
///  * accuracy: single-fault — some candidate names a ground-truth site;
///    multi-fault — every injected site appears in the list;
///  * resolution: candidate count, averaged over all reports;
///  * FHI: 1-based rank of the first ground-truth candidate, averaged over
///    the reports that contain one (a miss has no first hit).
class QualityAccumulator {
 public:
  explicit QualityAccumulator(bool multifault = false)
      : multifault_(multifault) {}

  void add(const DiagnosisReport& report, std::span<const SiteId> truth);

  QualityStats stats() const;

 private:
  bool multifault_;
  std::size_t n_ = 0;
  std::size_t accurate_ = 0;
  RunningStats resolution_;
  RunningStats fhi_;
};

/// Tier-localization rate (paper Sec. VI-A): the fraction of reports
/// localized to the faulty tier, counted only over reports the plain ATPG
/// diagnosis had NOT already confined to a single tier.
class TierLocalizationCounter {
 public:
  /// atpg_single_tier: the original ATPG report was single-tier already
  /// (excluded from the calculation). localized: the method under
  /// evaluation pinned the faulty tier correctly.
  void add(bool atpg_single_tier, bool localized);

  double rate() const;
  std::size_t considered() const { return considered_; }

 private:
  std::size_t considered_ = 0;
  std::size_t localized_ = 0;
};

/// PFA time model of paper Fig. 10. Total time to reach the ground truth:
/// T_atpg + FHI * x for the ATPG flow, and
/// max(T_atpg, T_gnn) + T_update + FHI_updated * x for the framework.
struct PfaTimeModel {
  double t_atpg = 0.0;
  double t_gnn = 0.0;
  double t_update = 0.0;
  double fhi_atpg = 0.0;
  double fhi_updated = 0.0;

  double total_atpg(double x_seconds_per_candidate) const {
    return t_atpg + fhi_atpg * x_seconds_per_candidate;
  }
  double total_framework(double x_seconds_per_candidate) const {
    return std::max(t_atpg, t_gnn) + t_update +
           fhi_updated * x_seconds_per_candidate;
  }
  /// T_diff: positive means the framework saves PFA time.
  double t_diff(double x_seconds_per_candidate) const {
    return total_atpg(x_seconds_per_candidate) -
           total_framework(x_seconds_per_candidate);
  }
};

}  // namespace m3dfl::core
