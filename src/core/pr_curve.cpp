#include "core/pr_curve.h"

#include <algorithm>

namespace m3dfl::core {

PrCurve PrCurve::from_samples(std::vector<std::pair<double, bool>> samples) {
  PrCurve curve;
  std::sort(samples.begin(), samples.end());
  curve.samples_ = std::move(samples);
  const auto& xs = curve.samples_;
  if (xs.empty()) return curve;

  const std::size_t total_pos = static_cast<std::size_t>(
      std::count_if(xs.begin(), xs.end(),
                    [](const auto& s) { return s.second; }));

  // Sweep thresholds at each distinct confidence. Samples with confidence
  // >= threshold are Predicted Positive.
  std::size_t pos_below = 0;  // Actual positives below the threshold (FN).
  std::size_t below = 0;
  for (std::size_t i = 0; i <= xs.size(); ++i) {
    const double thr = i < xs.size() ? xs[i].first : 1.0 + 1e-9;
    if (i == 0 || i == xs.size() || xs[i].first != xs[i - 1].first) {
      const std::size_t predicted_pos = xs.size() - below;
      const std::size_t tp = total_pos - pos_below;
      PrPoint p;
      p.threshold = thr;
      p.precision = predicted_pos > 0
                        ? static_cast<double>(tp) / predicted_pos
                        : 1.0;
      p.recall =
          total_pos > 0 ? static_cast<double>(tp) / total_pos : 1.0;
      curve.points_.push_back(p);
    }
    if (i < xs.size()) {
      ++below;
      if (xs[i].second) ++pos_below;
    }
  }
  return curve;
}

double PrCurve::threshold_for_precision(double target) const {
  double best_thr = points_.empty() ? 1.0 : points_.back().threshold;
  double best_prec = -1.0;
  for (const PrPoint& p : points_) {
    if (p.precision >= target) return p.threshold;
    if (p.precision > best_prec) {
      best_prec = p.precision;
      best_thr = p.threshold;
    }
  }
  return best_thr;
}

double PrCurve::precision_at(double threshold) const {
  std::size_t tp = 0, pp = 0;
  for (const auto& [conf, positive] : samples_) {
    if (conf >= threshold) {
      ++pp;
      if (positive) ++tp;
    }
  }
  return pp > 0 ? static_cast<double>(tp) / pp : 1.0;
}

double PrCurve::recall_at(double threshold) const {
  std::size_t tp = 0, pos = 0;
  for (const auto& [conf, positive] : samples_) {
    if (positive) {
      ++pos;
      if (conf >= threshold) ++tp;
    }
  }
  return pos > 0 ? static_cast<double>(tp) / pos : 1.0;
}

double PrCurve::auprc() const {
  // points_ holds ascending thresholds, so reversed iteration walks the
  // curve in ascending recall; each step contributes its precision over
  // the recall it adds (average precision).
  double ap = 0.0;
  double r_prev = 0.0;
  for (auto it = points_.rbegin(); it != points_.rend(); ++it) {
    if (it->recall > r_prev) {
      ap += (it->recall - r_prev) * it->precision;
      r_prev = it->recall;
    }
  }
  return ap;
}

}  // namespace m3dfl::core
