#pragma once

#include <cstdint>

#include "gnn/trainer.h"
#include "netlist/netlist.h"

namespace m3dfl::core {

using gnn::LabeledGraph;
using gnn::TrainOptions;
using gnn::TrainStats;
using graphx::SubGraph;
using netlist::Tier;

/// GNN Model-1 of the paper: graph classification producing the vector
/// [p_top, p_bottom] — the probabilities that the defect lies in the top or
/// bottom device tier. Architecture: GCN stack + graph mean-pool readout +
/// linear softmax (paper Sec. III-C). Extending to >2 tiers only requires
/// widening the output vector.
class TierPredictor {
 public:
  /// Label convention everywhere in the library: class index ==
  /// static_cast<int>(Tier), i.e. 0 = bottom, 1 = top.
  static int label_of(Tier t) { return static_cast<int>(t); }

  explicit TierPredictor(std::uint64_t seed = 101,
                         std::vector<std::size_t> hidden = {32, 32});

  struct Prediction {
    double p_top = 0.5;
    double p_bottom = 0.5;
    Tier tier() const {
      return p_top >= p_bottom ? Tier::kTop : Tier::kBottom;
    }
    /// max(p_top, p_bottom): the confidence score compared against T_p.
    double confidence() const { return p_top > p_bottom ? p_top : p_bottom; }
  };

  Prediction predict(const SubGraph& g) const;

  /// Trains on labeled sub-graphs (label = SubGraph::label_tier).
  TrainStats train(std::span<const LabeledGraph> data,
                   const TrainOptions& opts = {});

  /// Fraction of graphs whose predicted tier matches the label.
  double accuracy(std::span<const LabeledGraph> data) const;

  /// Pre-trained representation trunk, shared with the prune/reorder
  /// Classifier via network-based transfer.
  const gnn::GcnStack& stack() const { return model_.stack; }

  gnn::GraphClassifier& model() { return model_; }
  const gnn::GraphClassifier& model() const { return model_; }

 private:
  gnn::GraphClassifier model_;
};

}  // namespace m3dfl::core
