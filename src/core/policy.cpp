#include "core/policy.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace m3dfl::core {

using netlist::Tier;

PolicyOutcome apply_policy(const DiagnosisReport& report, const SubGraph& sub,
                           const PolicyModels& models,
                           const PolicyConfig& config) {
  const auto start = std::chrono::steady_clock::now();
  PolicyOutcome out;
  out.report.seconds = report.seconds;

  // Step 1: MIV prioritization. Candidates matching a predicted-faulty MIV
  // go to the top of the list and can never be pruned afterwards.
  if (config.use_miv_pinpointer && models.miv_q != nullptr) {
    out.predicted_mivs = select_faulty_mivs(
        sub, models.miv_q->predict_miv(sub), config.miv_threshold, 3);
  } else if (config.use_miv_pinpointer && models.miv != nullptr) {
    out.predicted_mivs =
        models.miv->predict_faulty_mivs(sub, config.miv_threshold);
  }
  auto is_predicted_miv = [&out](const Candidate& c) {
    return std::find(out.predicted_mivs.begin(), out.predicted_mivs.end(),
                     c.site) != out.predicted_mivs.end();
  };

  std::vector<Candidate> miv_first;
  std::vector<Candidate> rest;
  for (const Candidate& c : report.candidates) {
    (is_predicted_miv(c) ? miv_first : rest).push_back(c);
  }

  if (!config.use_tier_predictor ||
      (models.tier == nullptr && models.tier_q == nullptr)) {
    // MIV-pinpointer standalone (Table XI): only the prioritization step.
    out.report.candidates = std::move(miv_first);
    out.report.candidates.insert(out.report.candidates.end(), rest.begin(),
                                 rest.end());
    const auto end = std::chrono::steady_clock::now();
    out.seconds = std::chrono::duration<double>(end - start).count();
    return out;
  }

  // Step 2: tier prediction and confidence.
  TierPredictor::Prediction pred;
  if (models.tier_q != nullptr) {
    const std::vector<double> p = models.tier_q->predict(sub);
    pred.p_bottom = p[TierPredictor::label_of(Tier::kBottom)];
    pred.p_top = p[TierPredictor::label_of(Tier::kTop)];
  } else {
    pred = models.tier->predict(sub);
  }
  out.predicted_tier = pred.tier();
  out.confidence = pred.confidence();
  out.high_confidence = out.confidence >= config.t_p;

  bool do_prune = false;
  if (out.high_confidence) {
    if (config.use_classifier && models.classifier_q != nullptr) {
      do_prune =
          models.classifier_q->predict(sub)[PruneClassifier::kPrune] >=
          config.classifier_threshold;
    } else if (config.use_classifier && models.classifier != nullptr) {
      do_prune = models.classifier->should_prune(
          sub, config.classifier_threshold);
    } else {
      do_prune = true;
    }
  }

  // Step 3: prune or reorder `rest` by the predicted faulty tier. A
  // near-chance tier call (confidence below the reordering floor) leaves
  // the ATPG ranking untouched.
  if (!do_prune && out.confidence < config.reorder_floor) {
    out.report.candidates = std::move(miv_first);
    out.report.candidates.insert(out.report.candidates.end(), rest.begin(),
                                 rest.end());
    const auto end_early = std::chrono::steady_clock::now();
    out.seconds =
        std::chrono::duration<double>(end_early - start).count();
    return out;
  }
  std::vector<Candidate> faulty_tier, other_tier;
  for (const Candidate& c : rest) {
    (c.tier == out.predicted_tier ? faulty_tier : other_tier).push_back(c);
  }

  out.report.candidates = std::move(miv_first);
  out.report.candidates.insert(out.report.candidates.end(),
                               faulty_tier.begin(), faulty_tier.end());
  if (do_prune && !(out.report.candidates.empty() && other_tier.empty())) {
    if (out.report.candidates.empty()) {
      // Pruning would empty the report; degrade to reordering.
      out.report.candidates.insert(out.report.candidates.end(),
                                   other_tier.begin(), other_tier.end());
    } else {
      out.pruned = true;
      out.backup = std::move(other_tier);
    }
  } else {
    out.report.candidates.insert(out.report.candidates.end(),
                                 other_tier.begin(), other_tier.end());
  }

  const auto end = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(end - start).count();
  return out;
}

}  // namespace m3dfl::core
