#pragma once

#include <vector>

#include "core/miv_pinpointer.h"
#include "core/prune_classifier.h"
#include "core/tier_predictor.h"
#include "diagnosis/report.h"
#include "gnn/quant.h"

namespace m3dfl::core {

using diag::Candidate;
using diag::DiagnosisReport;

/// Which models participate — the Table-XI ablation switches.
struct PolicyConfig {
  /// T_p, derived from the training PR curve at >= 99% precision.
  double t_p = 0.9;
  bool use_tier_predictor = true;
  bool use_miv_pinpointer = true;
  /// When false and confidence is high, prune unconditionally
  /// (Tier-predictor-standalone behaviour of Table XI).
  bool use_classifier = true;
  double miv_threshold = 0.8;
  double classifier_threshold = 0.5;
  /// Reordering floor: when the Tier-predictor's confidence is below this
  /// value its tier call is near-chance, and moving candidates around on a
  /// coin flip only degrades FHI; such reports pass through unchanged.
  double reorder_floor = 0.60;
};

struct PolicyModels {
  const TierPredictor* tier = nullptr;
  const MivPinpointer* miv = nullptr;
  const PruneClassifier* classifier = nullptr;

  // Optional int8 twins. When set, apply_policy routes that model's
  // forward through the quantized path instead of the fp32 one; the
  // decision logic (thresholds, ordering, pruning) is shared, so the two
  // paths differ only in how scores are produced. The fp32 pointers above
  // stay authoritative for everything else (training, explanations).
  const gnn::QuantizedGraphClassifier* tier_q = nullptr;
  const gnn::QuantizedNodeScorer* miv_q = nullptr;
  const gnn::QuantizedGraphClassifier* classifier_q = nullptr;
};

/// Result of the candidate pruning & reordering process for one report.
struct PolicyOutcome {
  DiagnosisReport report;          ///< The final (updated) report.
  std::vector<Candidate> backup;   ///< Pruned candidates — the backup
                                   ///< dictionary entry for this chip
                                   ///< (paper Sec. VI-A).
  bool pruned = false;             ///< Pruning (vs reordering) was applied.
  bool high_confidence = false;    ///< confidence >= T_p.
  netlist::Tier predicted_tier = netlist::Tier::kBottom;
  double confidence = 0.0;
  std::vector<SiteId> predicted_mivs;
  double seconds = 0.0;            ///< T_update: time spent updating.
};

/// The candidate pruning and reordering policy of paper Fig. 7 / Fig. 8:
///  1. candidates equivalent to MIVs the MIV-pinpointer flags as faulty are
///     moved to the top (and protected from pruning);
///  2. the Tier-predictor's confidence p = max(p_top, p_bottom) is compared
///     against T_p: low confidence => reorder (faulty-tier candidates
///     first); high confidence => the Classifier chooses prune or reorder;
///  3. pruning removes fault-free-tier candidates into the backup
///     dictionary; if pruning would empty the report it degrades to
///     reordering.
PolicyOutcome apply_policy(const DiagnosisReport& report, const SubGraph& sub,
                           const PolicyModels& models,
                           const PolicyConfig& config);

}  // namespace m3dfl::core
