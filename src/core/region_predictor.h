#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/trainer.h"
#include "netlist/fault_site.h"

namespace m3dfl::core {

/// K-way generalization of the Tier-predictor — the paper's Sec. III-C
/// extension: "the proposed Tier-predictor can perform diagnosis on M3D
/// designs with more than two tiers by extending the dimension of the
/// graph representation vector to be the number of tiers in the CUDs."
///
/// A K-region design assigns every gate a region id in [0, K). The only
/// feature-level change is that the binary Table-II tier feature becomes
/// the normalized region index region / (K - 1); the readout widens from 2
/// to K softmax outputs. Everything else — back-tracing, the remaining 12
/// features, the GCN trunk — is reused unchanged.
class RegionPredictor {
 public:
  explicit RegionPredictor(int num_regions, std::uint64_t seed = 505,
                           std::vector<std::size_t> hidden = {32, 32});

  int num_regions() const { return num_regions_; }

  /// Rewrites a 2-tier sub-graph's tier feature with normalized K-region
  /// ids (per node, looked up through the site table) and sets label_tier
  /// to the region of `fault_site` (or leaves -1 when kNoSite).
  graphx::SubGraph relabel(const graphx::SubGraph& sub,
                           std::span<const int> region_of_gate,
                           const netlist::SiteTable& sites,
                           netlist::SiteId fault_site) const;

  /// Per-region probabilities for one (relabeled) sub-graph.
  std::vector<double> predict(const graphx::SubGraph& g) const;

  /// Most likely region and its probability.
  struct Prediction {
    int region = 0;
    double probability = 0.0;
  };
  Prediction predict_region(const graphx::SubGraph& g) const;

  /// Trains on relabeled sub-graphs (label = SubGraph::label_tier, which
  /// relabel() fills with the fault's region id).
  gnn::TrainStats train(std::span<const gnn::LabeledGraph> data,
                        const gnn::TrainOptions& opts = {});

  double accuracy(std::span<const gnn::LabeledGraph> data) const;

 private:
  int num_regions_;
  gnn::GraphClassifier model_;
};

/// Assigns every gate of a netlist to one of `num_regions` placement
/// stripes (the K-region analogue of the striped tier partition). Region
/// ids are contiguous in placement, so logic cones stay region-coherent.
std::vector<int> assign_regions(const netlist::Netlist& nl, int num_regions);

}  // namespace m3dfl::core
