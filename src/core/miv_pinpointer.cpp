#include "core/miv_pinpointer.h"

#include <algorithm>

namespace m3dfl::core {

MivPinpointer::MivPinpointer(std::uint64_t seed,
                             std::vector<std::size_t> hidden)
    : model_(graphx::kNumSubgraphFeatures, hidden, seed) {}

std::vector<double> MivPinpointer::scores(const SubGraph& g) const {
  return model_.predict_miv(g);
}

std::vector<SiteId> select_faulty_mivs(const SubGraph& g,
                                       std::span<const double> scores,
                                       double threshold,
                                       std::size_t max_count) {
  std::vector<std::size_t> order;
  for (std::size_t k = 0; k < scores.size(); ++k) {
    if (scores[k] >= threshold) order.push_back(k);
  }
  std::sort(order.begin(), order.end(), [&scores](std::size_t a,
                                                  std::size_t b) {
    return scores[a] > scores[b];
  });
  if (order.size() > max_count) order.resize(max_count);
  std::vector<SiteId> out;
  out.reserve(order.size());
  for (std::size_t k : order) out.push_back(g.nodes[g.miv_local[k]]);
  return out;
}

std::vector<SiteId> MivPinpointer::predict_faulty_mivs(
    const SubGraph& g, double threshold, std::size_t max_count) const {
  return select_faulty_mivs(g, scores(g), threshold, max_count);
}

gnn::TrainStats MivPinpointer::train(std::span<const SubGraph* const> data,
                                     const gnn::TrainOptions& opts) {
  return gnn::train_node_scorer(model_, data, opts);
}

double MivPinpointer::top1_accuracy(
    std::span<const SubGraph* const> data) const {
  std::size_t considered = 0;
  std::size_t hits = 0;
  for (const SubGraph* g : data) {
    // Only samples with a labeled faulty MIV count.
    const auto truth =
        std::find_if(g->miv_label.begin(), g->miv_label.end(),
                     [](float v) { return v > 0.5f; });
    if (truth == g->miv_label.end()) continue;
    ++considered;
    const std::vector<double> s = scores(*g);
    if (s.empty()) continue;
    const auto top = std::max_element(s.begin(), s.end()) - s.begin();
    if (g->miv_label[static_cast<std::size_t>(top)] > 0.5f) ++hits;
  }
  return considered ? static_cast<double>(hits) / considered : 0.0;
}

}  // namespace m3dfl::core
