#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gnn/trainer.h"
#include "netlist/fault_site.h"

namespace m3dfl::core {

using graphx::SubGraph;
using netlist::SiteId;

/// Score-to-site selection shared by the fp32 and int8 MIV paths: global
/// site ids of the MIVs with score >= threshold, strongest first, at most
/// max_count. `scores` is parallel to g.miv_local.
std::vector<SiteId> select_faulty_mivs(const SubGraph& g,
                                       std::span<const double> scores,
                                       double threshold,
                                       std::size_t max_count);

/// GNN Model-2 of the paper: node classification over the sub-graph's MIV
/// nodes, scoring each with the probability that this MIV carries the delay
/// defect (paper Sec. III-C: "the learned node features are directly used
/// to calculate the probability that an MIV has a defect").
class MivPinpointer {
 public:
  explicit MivPinpointer(std::uint64_t seed = 202,
                         std::vector<std::size_t> hidden = {32, 32});

  /// Per-MIV probabilities, parallel to g.miv_local.
  std::vector<double> scores(const SubGraph& g) const;

  /// Global site ids of the MIVs predicted faulty: score >= threshold,
  /// strongest first, at most max_count (a defective chip has one or a
  /// few defective MIVs; flagging more would push junk to the top of the
  /// reordered reports and hurt FHI).
  std::vector<SiteId> predict_faulty_mivs(const SubGraph& g,
                                          double threshold = 0.5,
                                          std::size_t max_count = 3) const;

  /// Trains on sub-graphs whose miv_label vectors are filled.
  gnn::TrainStats train(std::span<const SubGraph* const> data,
                        const gnn::TrainOptions& opts = {});

  /// Hit rate on MIV-fault samples: fraction where the top-scoring MIV is
  /// the injected one (the Fig.-6 MIV-pinpointer accuracy metric).
  double top1_accuracy(std::span<const SubGraph* const> data) const;

  gnn::NodeScorer& model() { return model_; }
  const gnn::NodeScorer& model() const { return model_; }

 private:
  gnn::NodeScorer model_;
};

}  // namespace m3dfl::core
