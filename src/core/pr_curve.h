#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace m3dfl::core {

/// One operating point of a precision-recall curve.
struct PrPoint {
  double threshold = 0.0;
  double precision = 0.0;
  double recall = 0.0;
};

/// Precision-recall curve over (confidence, actual-positive) samples,
/// following the paper's Table-IV confusion matrix: a sample is Actual
/// Positive when the Tier-predictor named the correct tier, and Predicted
/// Positive when its confidence max(p_top, p_bottom) exceeds the
/// classification threshold. The curve is used to derive T_p — the minimum
/// threshold whose precision meets the target (99% in the paper), i.e. the
/// confidence above which pruning is allowed to cost at most 1% accuracy.
class PrCurve {
 public:
  /// Builds the curve from samples of (confidence, correct-prediction).
  static PrCurve from_samples(std::vector<std::pair<double, bool>> samples);

  std::span<const PrPoint> points() const { return points_; }

  /// Minimum threshold with precision >= target; falls back to the
  /// highest-precision threshold when the target is unattainable.
  double threshold_for_precision(double target) const;

  /// Precision at a given threshold (fraction of correct predictions among
  /// those with confidence >= threshold).
  double precision_at(double threshold) const;

  /// Recall at a given threshold.
  double recall_at(double threshold) const;

  /// Area under the precision-recall curve (average precision via step
  /// integration over the curve's operating points). Used to compare the
  /// fp32 and int8 inference paths on the same evaluation samples.
  double auprc() const;

 private:
  std::vector<PrPoint> points_;                    ///< Ascending thresholds.
  std::vector<std::pair<double, bool>> samples_;   ///< Sorted by confidence.
};

}  // namespace m3dfl::core
