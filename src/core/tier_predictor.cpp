#include "core/tier_predictor.h"

namespace m3dfl::core {

TierPredictor::TierPredictor(std::uint64_t seed,
                             std::vector<std::size_t> hidden)
    : model_(graphx::kNumSubgraphFeatures, hidden, 2, seed) {}

TierPredictor::Prediction TierPredictor::predict(const SubGraph& g) const {
  const std::vector<double> p = model_.predict(g);
  Prediction out;
  out.p_bottom = p[label_of(Tier::kBottom)];
  out.p_top = p[label_of(Tier::kTop)];
  return out;
}

TrainStats TierPredictor::train(std::span<const LabeledGraph> data,
                                const TrainOptions& opts) {
  return gnn::train_graph_classifier(model_, data, opts);
}

double TierPredictor::accuracy(std::span<const LabeledGraph> data) const {
  return gnn::classifier_accuracy(model_, data);
}

}  // namespace m3dfl::core
