#include "core/metrics.h"

namespace m3dfl::core {

void QualityAccumulator::add(const DiagnosisReport& report,
                             std::span<const SiteId> truth) {
  ++n_;
  const bool accurate =
      multifault_ ? report.hits_all(truth) : report.hits_any(truth);
  if (accurate) ++accurate_;
  resolution_.add(static_cast<double>(report.resolution()));
  const std::size_t fhi = report.first_hit_index(truth);
  if (fhi > 0) fhi_.add(static_cast<double>(fhi));
}

QualityStats QualityAccumulator::stats() const {
  QualityStats s;
  s.num_reports = n_;
  s.accuracy = n_ ? static_cast<double>(accurate_) / n_ : 0.0;
  s.mean_resolution = resolution_.mean();
  s.std_resolution = resolution_.stddev();
  s.mean_fhi = fhi_.mean();
  s.std_fhi = fhi_.stddev();
  return s;
}

void TierLocalizationCounter::add(bool atpg_single_tier, bool localized) {
  if (atpg_single_tier) return;
  ++considered_;
  if (localized) ++localized_;
}

double TierLocalizationCounter::rate() const {
  return considered_ ? static_cast<double>(localized_) / considered_ : 0.0;
}

}  // namespace m3dfl::core
