#include "core/region_predictor.h"

#include <algorithm>
#include <cassert>

namespace m3dfl::core {

RegionPredictor::RegionPredictor(int num_regions, std::uint64_t seed,
                                 std::vector<std::size_t> hidden)
    : num_regions_(num_regions),
      model_(graphx::kNumSubgraphFeatures, hidden,
             static_cast<std::size_t>(num_regions), seed) {
  assert(num_regions >= 2);
}

graphx::SubGraph RegionPredictor::relabel(
    const graphx::SubGraph& sub, std::span<const int> region_of_gate,
    const netlist::SiteTable& sites, netlist::SiteId fault_site) const {
  graphx::SubGraph out = sub;
  const float denom = static_cast<float>(num_regions_ - 1);
  for (std::size_t i = 0; i < out.num_nodes(); ++i) {
    const netlist::GateId gate = sites.site(out.nodes[i]).gate;
    out.feature(i, 3) =
        static_cast<float>(region_of_gate[gate]) / denom;
  }
  if (fault_site != netlist::kNoSite) {
    out.label_tier = region_of_gate[sites.site(fault_site).gate];
  } else {
    out.label_tier = -1;
  }
  return out;
}

std::vector<double> RegionPredictor::predict(const graphx::SubGraph& g) const {
  return model_.predict(g);
}

RegionPredictor::Prediction RegionPredictor::predict_region(
    const graphx::SubGraph& g) const {
  const std::vector<double> p = predict(g);
  const auto top = std::max_element(p.begin(), p.end()) - p.begin();
  return {static_cast<int>(top), p[static_cast<std::size_t>(top)]};
}

gnn::TrainStats RegionPredictor::train(
    std::span<const gnn::LabeledGraph> data, const gnn::TrainOptions& opts) {
  return gnn::train_graph_classifier(model_, data, opts);
}

double RegionPredictor::accuracy(
    std::span<const gnn::LabeledGraph> data) const {
  return gnn::classifier_accuracy(model_, data);
}

std::vector<int> assign_regions(const netlist::Netlist& nl,
                                int num_regions) {
  assert(num_regions >= 1);
  std::vector<int> region(nl.num_gates(), 0);
  for (netlist::GateId g = 0; g < nl.num_gates(); ++g) {
    const float x = std::clamp(nl.gate(g).pos, 0.0f, 0.9999f);
    region[g] = static_cast<int>(x * static_cast<float>(num_regions));
  }
  return region;
}

}  // namespace m3dfl::core
