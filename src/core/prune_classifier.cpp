#include "core/prune_classifier.h"

#include <algorithm>

namespace m3dfl::core {

PruneClassifier PruneClassifier::transfer_from(const TierPredictor& tier,
                                               std::uint64_t seed,
                                               std::size_t head_hidden) {
  PruneClassifier c;
  c.model_ = gnn::GraphClassifier::transfer_from(tier.stack(), 2, head_hidden,
                                                 seed);
  return c;
}

double PruneClassifier::prune_probability(const SubGraph& g) const {
  return model_.predict(g)[kPrune];
}

gnn::TrainStats PruneClassifier::train_balanced(
    std::span<const SubGraph* const> graphs, std::span<const int> labels,
    const gnn::TrainOptions& opts, std::uint64_t oversample_seed) {
  assert(graphs.size() == labels.size());
  std::vector<const SubGraph*> majority, minority;
  int minority_label = kReorder;
  {
    std::size_t pos = 0;
    for (int l : labels) pos += l == kPrune;
    minority_label = 2 * pos >= labels.size() ? kReorder : kPrune;
  }
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    (labels[i] == minority_label ? minority : majority).push_back(graphs[i]);
  }

  // Oversample the minority up to the majority size with dummy buffers.
  std::vector<SubGraph> synthetic;
  if (!minority.empty() && minority.size() < majority.size()) {
    synthetic = gnn::oversample_with_buffers(minority, majority.size(),
                                             oversample_seed);
  }

  std::vector<gnn::LabeledGraph> data;
  data.reserve(majority.size() + minority.size() + synthetic.size());
  const int majority_label = minority_label == kPrune ? kReorder : kPrune;
  for (const SubGraph* g : majority) data.push_back({g, majority_label});
  if (synthetic.empty()) {
    for (const SubGraph* g : minority) data.push_back({g, minority_label});
  } else {
    for (const SubGraph& g : synthetic) data.push_back({&g, minority_label});
  }
  return gnn::train_graph_classifier(model_, data, opts);
}

}  // namespace m3dfl::core
