#pragma once

#include <cstdint>

#include "core/tier_predictor.h"
#include "gnn/oversample.h"

namespace m3dfl::core {

/// GNN Model-3 of the paper: the transfer-learned Classifier that decides,
/// for a high-confidence Tier-predictor sample (Predicted Positive), whether
/// to *prune* the fault-free tier's candidates or merely *reorder* them
/// (paper Sec. V-C). It distinguishes True Positives (tier prediction
/// correct — safe to prune) from False Positives (pruning would delete the
/// ground truth).
///
/// Construction follows network-based deep transfer learning: the
/// pre-trained GCN stack of the Tier-predictor is copied and frozen;
/// freshly initialized classification layers (hidden + softmax) are trained
/// on the Predicted-Positive sub-graphs. The severely imbalanced TP:FP
/// dataset (~90:1 in the paper) is balanced with the dummy-buffer graph
/// oversampling of gnn/oversample.h.
class PruneClassifier {
 public:
  /// Label convention: 1 = True Positive (prune), 0 = False Positive
  /// (reorder).
  static constexpr int kPrune = 1;
  static constexpr int kReorder = 0;

  PruneClassifier() = default;

  /// Builds the classifier on top of a trained Tier-predictor's stack.
  static PruneClassifier transfer_from(const TierPredictor& tier,
                                       std::uint64_t seed = 303,
                                       std::size_t head_hidden = 16);

  /// Probability that pruning is safe for this sub-graph.
  double prune_probability(const SubGraph& g) const;

  bool should_prune(const SubGraph& g, double threshold = 0.5) const {
    return prune_probability(g) >= threshold;
  }

  /// Balances the minority class with dummy-buffer oversampling, then
  /// trains the classification head. `labels` parallel `graphs`.
  gnn::TrainStats train_balanced(std::span<const SubGraph* const> graphs,
                                 std::span<const int> labels,
                                 const gnn::TrainOptions& opts = {},
                                 std::uint64_t oversample_seed = 404);

  gnn::GraphClassifier& model() { return model_; }
  const gnn::GraphClassifier& model() const { return model_; }

 private:
  gnn::GraphClassifier model_;
};

}  // namespace m3dfl::core
