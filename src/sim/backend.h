#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace m3dfl::sim {

/// Selectable fault-simulation engines for the offline campaigns
/// (dictionary build, dataset generation). Both produce bit-identical
/// detect sets; they differ only in how the work is batched:
///  * kEvent — the event-driven FaultSimulator: one fault set per call,
///    64 patterns per machine word, cone-pruned propagation.
///  * kBitParallel — the bitpar::BitParallelSimulator: up to 512 faults
///    per pass, one fault per bit lane, SIMD-dispatched pattern sweep.
enum class SimBackend : std::uint8_t { kEvent = 0, kBitParallel = 1 };

inline const char* backend_name(SimBackend b) {
  switch (b) {
    case SimBackend::kEvent: return "event";
    case SimBackend::kBitParallel: return "bitpar";
  }
  return "?";
}

inline std::optional<SimBackend> parse_backend(std::string_view s) {
  if (s == "event") return SimBackend::kEvent;
  if (s == "bitpar" || s == "bit-parallel") return SimBackend::kBitParallel;
  return std::nullopt;
}

}  // namespace m3dfl::sim
