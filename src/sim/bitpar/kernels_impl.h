#pragma once

// Shared body of the sweep kernels, instantiated per SIMD tier. Only the
// kernel translation units include this header; everything else goes
// through the SweepFn pointers in kernels.h.
//
// The sweep works in delta space: every delta row holds faulty XOR good
// for one 64-lane block, one word per pattern. The compiled schedule is
// evaluated bottom-up with vector ops streaming across pattern words
// (fully overwriting every slot, so no clearing is needed between
// blocks), and the output taps record (pattern, lanes) words whose delta
// is nonzero. AND/OR gates re-enter value space via V::bitmask, which
// expands bit-packed good values to broadcast lane masks in-register:
// faulty_k = delta_k ^ G_k, and the output good value is the same op over
// the good bits, so delta_out = op_k(delta_k ^ G_k) ^ op_k(G_k) — one
// formula for AND and NAND (the complement cancels in the XOR), and
// dually for OR/NOR. Injection vectors expand the same way from the
// packed activation rows, so nothing pattern-expanded is ever stored.

#include "sim/bitpar/kernels.h"

namespace m3dfl::sim::bitpar {

/// Injection vector of `point` for the V::kWords patterns starting at p:
/// lane j's bit is set in word p+k when j's activation fires there.
template <class V>
inline typename V::Reg inject_at(const SweepContext& c, std::uint32_t point,
                                 std::size_t p) {
  const InjectPoint& pt = c.points[point];
  const std::size_t pw = p >> 6;
  const std::uint32_t t = static_cast<std::uint32_t>(p & 63);
  const LaneInject& x0 = c.lane_injects[pt.begin];
  auto acc = V::and_(
      V::bitmask(c.act_rows[static_cast<std::size_t>(x0.act_row) * c.W + pw],
                 t),
      V::splat(Word{1} << (x0.lane & 63)));
  for (std::uint32_t li = pt.begin + 1; li < pt.begin + pt.count; ++li) {
    const LaneInject& x = c.lane_injects[li];
    acc = V::or_(
        acc,
        V::and_(V::bitmask(
                    c.act_rows[static_cast<std::size_t>(x.act_row) * c.W + pw],
                    t),
                V::splat(Word{1} << (x.lane & 63))));
  }
  return acc;
}

template <class V>
void sweep_impl(SweepContext& c) {
  const std::size_t RW = c.row_words;
  const std::size_t W = c.W;
  std::uint64_t fail_records = 0;

  for (std::uint32_t i = 0; i < c.sched_size; ++i) {
    const CompiledGate& g = c.sched[i];
    Word* out = c.delta + static_cast<std::size_t>(i + 1) * RW;
    const Word* in[4] = {nullptr, nullptr, nullptr, nullptr};
    const Word* gv[4] = {nullptr, nullptr, nullptr, nullptr};
    for (std::uint32_t k = 0; k < g.nfanin; ++k) {
      const Word* row =
          c.delta + static_cast<std::size_t>(g.fanin_slot[k]) * RW;
      if (g.ov_point[k] != kNoPoint) {
        // Branch override: the faulty value of this pin is derived from
        // the good machine, so it masks out any upstream delta on the
        // overriding lanes and contributes the activation bits instead.
        const auto m = V::splat(c.point_masks[g.ov_point[k]]);
        Word* e = c.eff + static_cast<std::size_t>(k) * RW;
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          V::store(e + w, V::or_(V::andnot(m, V::load(row + w)),
                                 inject_at<V>(c, g.ov_point[k], w)));
        }
        row = e;
      }
      in[k] = row;
      gv[k] = c.v2 + static_cast<std::size_t>(g.fanin_gate[k]) * W;
    }
    switch (g.op) {
      case OpKind::kInput:
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          V::store(out + w, V::zero());
        }
        break;
      case OpKind::kPass:
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          V::store(out + w, V::load(in[0] + w));
        }
        break;
      case OpKind::kXor2:
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          V::store(out + w, V::xor_(V::load(in[0] + w), V::load(in[1] + w)));
        }
        break;
      case OpKind::kAnd:
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          const std::size_t pw = w >> 6;
          const std::uint32_t t = static_cast<std::uint32_t>(w & 63);
          auto g0 = V::bitmask(gv[0][pw], t);
          auto acc = V::xor_(V::load(in[0] + w), g0);
          auto gacc = g0;
          for (std::uint32_t k = 1; k < g.nfanin; ++k) {
            const auto gk = V::bitmask(gv[k][pw], t);
            acc = V::and_(acc, V::xor_(V::load(in[k] + w), gk));
            gacc = V::and_(gacc, gk);
          }
          V::store(out + w, V::xor_(acc, gacc));
        }
        break;
      case OpKind::kOr:
        for (std::size_t w = 0; w < RW; w += V::kWords) {
          const std::size_t pw = w >> 6;
          const std::uint32_t t = static_cast<std::uint32_t>(w & 63);
          auto g0 = V::bitmask(gv[0][pw], t);
          auto acc = V::xor_(V::load(in[0] + w), g0);
          auto gacc = g0;
          for (std::uint32_t k = 1; k < g.nfanin; ++k) {
            const auto gk = V::bitmask(gv[k][pw], t);
            acc = V::or_(acc, V::xor_(V::load(in[k] + w), gk));
            gacc = V::or_(gacc, gk);
          }
          V::store(out + w, V::xor_(acc, gacc));
        }
        break;
    }
    if (g.pin_point != kNoPoint) {
      // Stem pin: the event engine forces the whole row of a pinned gate,
      // masking out effects arriving from upstream on that lane.
      const auto m = V::splat(c.point_masks[g.pin_point]);
      for (std::size_t w = 0; w < RW; w += V::kWords) {
        V::store(out + w, V::or_(V::andnot(m, V::load(out + w)),
                                 inject_at<V>(c, g.pin_point, w)));
      }
    }
  }

  // Tap the observation points: any nonzero word means some lanes of this
  // block fail that (output, pattern). Vector any-test first — most rows
  // are clean — then a scalar refinement over the hit group.
  for (std::uint32_t t = 0; t < c.num_taps; ++t) {
    const Word* row = c.delta + static_cast<std::size_t>(c.taps[t].slot) * RW;
    for (std::size_t w = 0; w < RW; w += V::kWords) {
      if (!V::any(V::load(row + w))) continue;
      const std::size_t e = std::size_t{w} + V::kWords;
      for (std::size_t p = w; p < e; ++p) {
        if (row[p] == 0) continue;
        c.fails->push_back({c.taps[t].output, static_cast<std::uint32_t>(p),
                            c.block, row[p]});
        *c.detected |= row[p];
        ++fail_records;
      }
    }
  }

  c.stats->patterns_swept += c.num_patterns;
  c.stats->gate_evals += c.sched_size;
  c.stats->lane_words_evaluated += std::uint64_t{c.sched_size} * RW;
  c.stats->fail_records += fail_records;
}

}  // namespace m3dfl::sim::bitpar
