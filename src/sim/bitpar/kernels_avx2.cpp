// Compiled with -mavx2 on x86 (see src/CMakeLists.txt); the function-
// pointer boundary in kernels.h keeps AVX2 instructions out of every other
// translation unit, so they only execute after the cpuid check passes.
#include "sim/bitpar/kernels_impl.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace m3dfl::sim::bitpar {

namespace {

struct VecAvx2 {
  static constexpr std::size_t kWords = 4;
  using Reg = __m256i;
  static Reg load(const Word* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(Word* p, Reg r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), r);
  }
  static Reg splat(Word w) {
    return _mm256_set1_epi64x(static_cast<long long>(w));
  }
  static Reg zero() { return _mm256_setzero_si256(); }
  static Reg xor_(Reg a, Reg b) { return _mm256_xor_si256(a, b); }
  static Reg and_(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static Reg andnot(Reg a, Reg b) { return _mm256_andnot_si256(a, b); }
  static bool any(Reg r) { return !_mm256_testz_si256(r, r); }
  /// Expands bits t..t+3 of the packed word into per-lane masks: shift
  /// each target bit to the sign position, then sign-test.
  static Reg bitmask(Word bits, std::uint32_t t) {
    const Reg sh = _mm256_sub_epi64(_mm256_set_epi64x(60, 61, 62, 63),
                                    _mm256_set1_epi64x(t));
    const Reg up = _mm256_sllv_epi64(
        _mm256_set1_epi64x(static_cast<long long>(bits)), sh);
    return _mm256_cmpgt_epi64(_mm256_setzero_si256(), up);
  }
};

}  // namespace

SweepFn avx2_sweep() { return &sweep_impl<VecAvx2>; }

}  // namespace m3dfl::sim::bitpar

#else  // !__AVX2__

namespace m3dfl::sim::bitpar {
SweepFn avx2_sweep() { return nullptr; }
}  // namespace m3dfl::sim::bitpar

#endif
