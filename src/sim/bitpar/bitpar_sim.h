#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/bitpar/arena.h"
#include "sim/bitpar/dispatch.h"
#include "sim/bitpar/kernels.h"
#include "sim/bitpar/sweep.h"
#include "sim/failure_log.h"
#include "sim/fault_sim.h"

namespace m3dfl::sim::bitpar {

/// Bit-parallel fault simulator: up to kMaxLanes (512) fault machines per
/// pass, one machine per bit lane. Where the event-driven FaultSimulator
/// walks one fault's cone per call, this engine packs 64 faults per word
/// (a *block*), clusters cone-similar machines into the same block, and
/// compiles each block's union forward cone into a flat, branch-light
/// schedule. Delta rows hold one word per pattern, so the SIMD kernels
/// (see dispatch.h) stream across pattern words — the batch amortizes the
/// schedule while keeping the event engine's pattern parallelism.
///
/// Equivalence contract: for every lane, the miscompare set (output,
/// pattern) is bit-identical to FaultSimulator::observed_diff on the same
/// fault machine — all five polarities, stem and branch sites, multi-fault
/// machines, partial tail words. The golden tests in tests/bitpar_test.cpp
/// enforce this against every available SIMD tier.
///
/// Threading: the simulator is immutable after bind() and shared across
/// shards; all per-batch scratch lives in a caller-owned Workspace, so
/// there is no clone()/pool dance — N shards = N workspaces, one simulator.
class BitParallelSimulator {
 public:
  /// `arena` and `sites` must outlive the simulator.
  BitParallelSimulator(const NetlistArena& arena,
                       const netlist::SiteTable& sites,
                       SimdTier tier = resolve_tier());

  /// Binds the good-machine two-vector result (typically a bound
  /// FaultSimulator's good()), re-laying the rows arena-major. Tail bits
  /// of the final word are masked here, so binding from a raw
  /// simulate_*_vector result is equivalent to binding from good().
  void bind(const TwoVectorResult& good);

  bool bound() const { return num_patterns_ > 0; }
  SimdTier tier() const { return tier_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_words() const { return W_; }
  const NetlistArena& arena() const { return *arena_; }

  /// Result of one batch. Fail records are sparse (only miscompares are
  /// stored); the per-lane extraction helpers reproduce the event engine's
  /// outputs exactly.
  struct BatchResult {
    std::size_t num_machines = 0;
    std::size_t num_outputs = 0;
    std::size_t num_words = 0;
    std::size_t num_patterns = 0;
    std::vector<FailRecord> fails;
    Word detected[kLaneWords] = {};
    /// Internal lane of caller machine j (machines are permuted to
    /// cluster cone-similar faults into the same 64-lane block).
    std::vector<std::uint32_t> lane_of;

    /// True iff machine j fails at least one (output, pattern).
    bool detected_lane(std::size_t j) const {
      const std::uint32_t l = lane_of[j];
      return (detected[l >> 6] >> (l & 63)) & 1;
    }
    /// Sorted (output << 32 | pattern) keys of machine j — the dictionary
    /// signature format (identical to keys_from_diff on the event diff).
    void keys_of(std::size_t j, std::vector<std::uint64_t>& keys) const;
    /// Dense diff buffer of machine j, identical to observed_diff's
    /// output (num_outputs * num_words, tail-masked). Returns detected.
    bool diff_of(std::size_t j, std::vector<Word>& diff) const;
    /// Uncompacted failure log of machine j, identical to
    /// failure_log_from_diff over the dense diff.
    FailureLog failure_log_of(std::size_t j) const;
  };

  /// Reusable per-shard scratch: batch schedules, delta rows, activation
  /// rows and workload counters. Shards flush `stats` into the
  /// sim.bitpar.* metrics (plain struct — read and reset at will).
  struct Workspace {
    BitParStats stats;

   private:
    friend class BitParallelSimulator;
    struct Pending {
      std::uint32_t gate;
      std::int16_t pin;
      std::uint16_t lane;
      std::uint16_t act_row;
    };
    struct Group {
      std::uint32_t gate;
      std::int16_t pin;
      std::uint16_t point;
    };
    std::vector<Word> act;
    std::vector<Word> union_act;
    std::vector<std::uint32_t> order;
    std::vector<Pending> pending;
    std::vector<Group> groups;
    std::vector<InjectPoint> points;
    std::vector<LaneInject> lane_injects;
    std::vector<Word> point_masks;
    std::vector<std::uint8_t> marked;
    std::vector<std::uint32_t> bfs;
    std::vector<std::uint32_t> sched_ids;
    std::vector<std::uint32_t> slot_of;
    std::vector<CompiledGate> sched;
    std::vector<OutputTap> taps;
    std::vector<Word> delta;
    std::vector<Word> eff;
    std::vector<std::span<const InjectedFault>> single_spans;
  };

  /// Simulates up to kMaxLanes single-fault machines: lane j carries
  /// faults[j] alone (the dictionary-campaign shape).
  void run(std::span<const InjectedFault> faults, Workspace& ws,
           BatchResult& out) const;

  /// Simulates up to kMaxLanes multi-fault machines: lane j carries every
  /// fault of machines[j] (the datagen shape). Empty machines are inert.
  void run_machines(std::span<const std::span<const InjectedFault>> machines,
                    Workspace& ws, BatchResult& out) const;

 private:
  void compute_activation(const InjectedFault& fault, Word* act) const;
  void run_block(std::span<const std::span<const InjectedFault>> machines,
                 std::size_t lane_lo, std::size_t lane_hi, Workspace& ws,
                 BatchResult& out) const;

  const NetlistArena* arena_;
  const netlist::SiteTable* sites_;
  SimdTier tier_;
  SweepFn sweep_;
  std::size_t num_patterns_ = 0;
  std::size_t W_ = 0;
  std::size_t row_words_ = 0;  ///< num_patterns_ padded to kRowStride.
  Word tail_ = 0;
  std::vector<Word> v1_, v2_, tr_;  ///< Arena-major packed good rows.
};

/// Adds the counters to the sim.bitpar.* registry metrics and resets them
/// (take-semantics, mirroring FaultSimulator::take_stats) — the shard
/// flush used by the dictionary and datagen campaigns.
void flush_bitpar_metrics(BitParStats& stats);

}  // namespace m3dfl::sim::bitpar
