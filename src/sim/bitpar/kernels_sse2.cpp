#include "sim/bitpar/kernels_impl.h"

#if defined(__SSE2__)
#include <emmintrin.h>

namespace m3dfl::sim::bitpar {

namespace {

struct VecSse2 {
  static constexpr std::size_t kWords = 2;
  using Reg = __m128i;
  static Reg load(const Word* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void store(Word* p, Reg r) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), r);
  }
  static Reg splat(Word w) {
    return _mm_set1_epi64x(static_cast<long long>(w));
  }
  static Reg zero() { return _mm_setzero_si128(); }
  static Reg xor_(Reg a, Reg b) { return _mm_xor_si128(a, b); }
  static Reg and_(Reg a, Reg b) { return _mm_and_si128(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm_or_si128(a, b); }
  static Reg andnot(Reg a, Reg b) { return _mm_andnot_si128(a, b); }
  static bool any(Reg r) {
    return _mm_movemask_epi8(_mm_cmpeq_epi8(r, _mm_setzero_si128())) != 0xffff;
  }
  /// Expands bits t and t+1 of the packed word into per-lane masks.
  static Reg bitmask(Word bits, std::uint32_t t) {
    return _mm_set_epi64x(-static_cast<long long>((bits >> (t + 1)) & 1),
                          -static_cast<long long>((bits >> t) & 1));
  }
};

}  // namespace

SweepFn sse2_sweep() { return &sweep_impl<VecSse2>; }

}  // namespace m3dfl::sim::bitpar

#else  // !__SSE2__

namespace m3dfl::sim::bitpar {
SweepFn sse2_sweep() { return nullptr; }
}  // namespace m3dfl::sim::bitpar

#endif
