#pragma once

#include "sim/bitpar/sweep.h"

namespace m3dfl::sim::bitpar {

/// One pattern sweep over a compiled batch schedule. Each tier lives in
/// its own translation unit (the AVX2 one is compiled with -mavx2); the
/// function-pointer boundary keeps wide instructions from leaking into
/// code that runs before the cpuid check. Accessors return nullptr when
/// the tier is not compiled in on this architecture.
using SweepFn = void (*)(SweepContext&);

SweepFn scalar_sweep();
SweepFn sse2_sweep();
SweepFn avx2_sweep();

}  // namespace m3dfl::sim::bitpar
