#include "sim/bitpar/bitpar_sim.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/metrics.h"
#include "obs/prof/counters.h"

namespace m3dfl::sim::bitpar {

BitParallelSimulator::BitParallelSimulator(const NetlistArena& arena,
                                           const netlist::SiteTable& sites,
                                           SimdTier tier)
    : arena_(&arena), sites_(&sites), tier_(tier) {
  if (!tier_available(tier_)) tier_ = best_tier();
  switch (tier_) {
    case SimdTier::kScalar: sweep_ = scalar_sweep(); break;
    case SimdTier::kSse2: sweep_ = sse2_sweep(); break;
    case SimdTier::kAvx2: sweep_ = avx2_sweep(); break;
  }
  assert(sweep_ != nullptr);
}

void BitParallelSimulator::bind(const TwoVectorResult& good) {
  const std::size_t G = arena_->num_gates();
  num_patterns_ = good.num_patterns;
  W_ = good.num_words;
  row_words_ = (num_patterns_ + kRowStride - 1) / kRowStride * kRowStride;
  tail_ = 0;
  if (W_ > 0) {
    const std::size_t rem = num_patterns_ % kWordBits;
    tail_ = rem == 0 ? ~Word{0} : (~Word{0} >> (kWordBits - rem));
  }
  v1_.resize(G * W_);
  v2_.resize(G * W_);
  tr_.resize(G * W_);
  for (std::uint32_t u = 0; u < G; ++u) {
    const netlist::GateId g = arena_->orig_of(u);
    for (std::size_t w = 0; w < W_; ++w) {
      v1_[u * W_ + w] = good.v1_word(g, w);
      v2_[u * W_ + w] = good.v2_word(g, w);
      tr_[u * W_ + w] = good.tr_word(g, w);
    }
    // Inverting gates leave garbage in tail bits; a tail bit must never
    // activate a fault, and the kernels' in-register expansion of V2 must
    // see zero pads (the event engine masks identically at bind).
    if (W_ > 0) {
      tr_[u * W_ + (W_ - 1)] &= tail_;
      v2_[u * W_ + (W_ - 1)] &= tail_;
    }
  }
}

void BitParallelSimulator::compute_activation(const InjectedFault& fault,
                                              Word* act) const {
  const std::uint32_t d = arena_->site(fault.site).driver;
  const Word* v1 = v1_.data() + static_cast<std::size_t>(d) * W_;
  const Word* v2 = v2_.data() + static_cast<std::size_t>(d) * W_;
  const Word* tr = tr_.data() + static_cast<std::size_t>(d) * W_;
  for (std::size_t w = 0; w < W_; ++w) {
    switch (fault.polarity) {
      case FaultPolarity::kSlowToRise: act[w] = ~v1[w] & v2[w] & tr[w]; break;
      case FaultPolarity::kSlowToFall: act[w] = v1[w] & ~v2[w] & tr[w]; break;
      case FaultPolarity::kSlow: act[w] = (v1[w] ^ v2[w]) & tr[w]; break;
      case FaultPolarity::kStuckAt0: act[w] = v2[w]; break;
      case FaultPolarity::kStuckAt1: act[w] = ~v2[w]; break;
    }
    if (w + 1 == W_) act[w] &= tail_;
  }
}

void BitParallelSimulator::run(std::span<const InjectedFault> faults,
                               Workspace& ws, BatchResult& out) const {
  // IPC / cache-miss evidence for the SIMD-payoff question PR 6 left open:
  // one counter pass per batch sweep, attributed to the bitpar kernel.
  M3DFL_OBS_COUNTERS(ctrs, "sim.bitpar.run");
  ws.single_spans.clear();
  ws.single_spans.reserve(faults.size());
  for (std::size_t j = 0; j < faults.size(); ++j) {
    ws.single_spans.push_back({faults.data() + j, 1});
  }
  run_machines(ws.single_spans, ws, out);
}

void BitParallelSimulator::run_machines(
    std::span<const std::span<const InjectedFault>> machines, Workspace& ws,
    BatchResult& out) const {
  assert(bound() && "bind() must be called before simulation");
  assert(machines.size() <= kMaxLanes);
  const std::size_t n = machines.size();

  ++ws.stats.batches;
  ws.stats.machines += n;
  out.num_machines = n;
  out.num_outputs = arena_->num_outputs();
  out.num_words = W_;
  out.num_patterns = num_patterns_;
  out.fails.clear();
  std::fill(std::begin(out.detected), std::end(out.detected), Word{0});
  out.lane_of.resize(n);
  if (n == 0 || num_patterns_ == 0) return;

  // Cluster cone-similar machines into the same 64-lane block: ascending
  // arena id of the first fault's site gate is topological order, so
  // neighbours share most of their forward cones and each block's union
  // schedule stays close to a single cone. Empty machines sort last.
  ws.order.resize(n);
  std::iota(ws.order.begin(), ws.order.end(), 0u);
  if (n > kBlockLanes) {
    std::stable_sort(ws.order.begin(), ws.order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       const auto key = [&](std::uint32_t j) {
                         return machines[j].empty()
                                    ? ~std::uint32_t{0}
                                    : arena_->site(machines[j][0].site).gate;
                       };
                       return key(a) < key(b);
                     });
  }
  for (std::size_t l = 0; l < n; ++l) {
    out.lane_of[ws.order[l]] = static_cast<std::uint32_t>(l);
  }

  for (std::size_t lo = 0; lo < n; lo += kBlockLanes) {
    run_block(machines, lo, std::min(n, lo + kBlockLanes), ws, out);
  }
}

void BitParallelSimulator::run_block(
    std::span<const std::span<const InjectedFault>> machines,
    std::size_t lane_lo, std::size_t lane_hi, Workspace& ws,
    BatchResult& out) const {
  const std::size_t W = W_;
  const std::size_t RW = row_words_;
  const std::size_t G = arena_->num_gates();

  // Activation rows + pending injections. The delta a fault contributes at
  // its injection point is exactly its activation mask, for every
  // polarity: the forced value differs from the good V2 precisely on the
  // activated patterns.
  ws.pending.clear();
  ws.act.clear();
  ws.union_act.assign(W, 0);
  std::size_t rows = 0;
  for (std::size_t l = lane_lo; l < lane_hi; ++l) {
    for (const InjectedFault& f : machines[ws.order[l]]) {
      ++ws.stats.faults;
      const NetlistArena::SiteRef& sr = arena_->site(f.site);
      if (!arena_->observable(sr.gate)) {
        ++ws.stats.cone_skips;  // Outside every output cone: invisible.
        continue;
      }
      ws.act.resize((rows + 1) * W);
      Word* act = ws.act.data() + rows * W;
      compute_activation(f, act);
      Word any = 0;
      for (std::size_t w = 0; w < W; ++w) any |= act[w];
      if (any == 0) {
        ++ws.stats.inactive_faults;
        ws.act.resize(rows * W);
        continue;
      }
      for (std::size_t w = 0; w < W; ++w) ws.union_act[w] |= act[w];
      assert(rows < 0xffff && "too many active faults in one block");
      ws.pending.push_back({sr.gate, sr.pin,
                            static_cast<std::uint16_t>(l - lane_lo),
                            static_cast<std::uint16_t>(rows)});
      ++rows;
      ++ws.stats.faults_injected;
    }
  }
  if (ws.pending.empty()) return;  // Nothing observable fires: all pass.
  std::size_t live = 0;
  for (std::size_t w = 0; w < W; ++w) {
    live += static_cast<std::size_t>(__builtin_popcountll(ws.union_act[w]));
  }
  ws.stats.patterns_skipped += num_patterns_ - live;

  // Group injections by (gate, pin) into points; each point gets a
  // constant lane mask and a per-pattern injection row.
  std::sort(ws.pending.begin(), ws.pending.end(),
            [](const Workspace::Pending& a, const Workspace::Pending& b) {
              if (a.gate != b.gate) return a.gate < b.gate;
              if (a.pin != b.pin) return a.pin < b.pin;
              return a.lane < b.lane;
            });
  ws.groups.clear();
  ws.points.clear();
  ws.lane_injects.clear();
  for (std::size_t i = 0; i < ws.pending.size();) {
    std::size_t e = i;
    while (e < ws.pending.size() && ws.pending[e].gate == ws.pending[i].gate &&
           ws.pending[e].pin == ws.pending[i].pin) {
      ++e;
    }
    const auto point = static_cast<std::uint16_t>(ws.points.size());
    assert(ws.points.size() < kNoPoint);
    ws.groups.push_back({ws.pending[i].gate, ws.pending[i].pin, point});
    ws.points.push_back({static_cast<std::uint32_t>(ws.lane_injects.size()),
                         static_cast<std::uint32_t>(e - i)});
    for (; i < e; ++i) {
      ws.lane_injects.push_back({ws.pending[i].lane, ws.pending[i].act_row});
    }
  }
  ws.point_masks.assign(ws.points.size(), 0);
  for (std::size_t i = 0; i < ws.points.size(); ++i) {
    const InjectPoint& pt = ws.points[i];
    for (std::uint32_t li = pt.begin; li < pt.begin + pt.count; ++li) {
      ws.point_masks[i] |= Word{1} << (ws.lane_injects[li].lane & 63);
    }
  }

  // Union forward cone of every injection gate, restricted to observable
  // gates. Ascending arena id is topological, so the sorted mark set is
  // the evaluation schedule.
  ws.marked.assign(G, 0);
  ws.bfs.clear();
  for (const Workspace::Group& g : ws.groups) {
    if (!ws.marked[g.gate]) {
      ws.marked[g.gate] = 1;
      ws.bfs.push_back(g.gate);
    }
  }
  for (std::size_t head = 0; head < ws.bfs.size(); ++head) {
    for (std::uint32_t fo : arena_->fanout(ws.bfs[head])) {
      if (!ws.marked[fo] && arena_->observable(fo)) {
        ws.marked[fo] = 1;
        ws.bfs.push_back(fo);
      }
    }
  }
  ws.sched_ids = ws.bfs;
  std::sort(ws.sched_ids.begin(), ws.sched_ids.end());

  // Compile the schedule. Groups are gate-ascending (pending was sorted)
  // and every group's gate is a seed, hence scheduled — one merge walk
  // attaches pin/override points. Pass gates (BUF/INV/MIV/OBS) with no
  // injection point alias their fanin's delta slot instead of being
  // evaluated: repeater and MIV chains cost nothing.
  ws.slot_of.assign(G, 0);
  ws.sched.clear();
  ws.taps.clear();
  std::size_t gi = 0;
  for (std::uint32_t i = 0; i < ws.sched_ids.size(); ++i) {
    const std::uint32_t u = ws.sched_ids[i];
    const bool pointed = gi < ws.groups.size() && ws.groups[gi].gate == u;
    const auto fan = arena_->fanin(u);
    if (!pointed && arena_->op(u) == OpKind::kPass) {
      ws.slot_of[u] = fan.empty() ? 0 : ws.slot_of[fan[0]];
    } else {
      CompiledGate cg;
      cg.op = arena_->op(u);
      assert(fan.size() <= 4);
      cg.nfanin = static_cast<std::uint8_t>(fan.size());
      for (std::size_t k = 0; k < fan.size(); ++k) {
        cg.fanin_slot[k] = ws.slot_of[fan[k]];
        cg.fanin_gate[k] = fan[k];
      }
      for (; gi < ws.groups.size() && ws.groups[gi].gate == u; ++gi) {
        if (ws.groups[gi].pin < 0) {
          cg.pin_point = ws.groups[gi].point;
        } else {
          assert(ws.groups[gi].pin < cg.nfanin);
          cg.ov_point[ws.groups[gi].pin] = ws.groups[gi].point;
        }
      }
      ws.sched.push_back(cg);
      ws.slot_of[u] = static_cast<std::uint32_t>(ws.sched.size());
    }
    for (std::uint32_t o : arena_->outputs_of(u)) {
      ws.taps.push_back({ws.slot_of[u], o});
    }
  }
  assert(gi == ws.groups.size());

  // Delta slots are fully overwritten by the kernel; only the shared zero
  // row (slot 0) must actually be zero, and resize() value-initializes any
  // growth, so no bulk clearing between blocks.
  const std::size_t need = (ws.sched.size() + 1) * RW;
  if (ws.delta.size() < need) ws.delta.resize(need, 0);
  std::fill_n(ws.delta.begin(), RW, Word{0});
  if (ws.eff.size() < 4 * RW) ws.eff.resize(4 * RW);

  SweepContext c;
  c.num_patterns = static_cast<std::uint32_t>(num_patterns_);
  c.row_words = static_cast<std::uint32_t>(RW);
  c.W = static_cast<std::uint32_t>(W);
  c.block = static_cast<std::uint32_t>(lane_lo / kBlockLanes);
  c.sched = ws.sched.data();
  c.sched_size = static_cast<std::uint32_t>(ws.sched.size());
  c.delta = ws.delta.data();
  c.eff = ws.eff.data();
  c.v2 = v2_.data();
  c.point_masks = ws.point_masks.data();
  c.points = ws.points.data();
  c.lane_injects = ws.lane_injects.data();
  c.act_rows = ws.act.data();
  c.taps = ws.taps.data();
  c.num_taps = static_cast<std::uint32_t>(ws.taps.size());
  c.fails = &out.fails;
  c.detected = &out.detected[c.block];
  c.stats = &ws.stats;
  sweep_(c);
}

void BitParallelSimulator::BatchResult::keys_of(
    std::size_t j, std::vector<std::uint64_t>& keys) const {
  keys.clear();
  const std::uint32_t l = lane_of[j];
  const std::uint32_t wj = l >> 6;
  const Word bj = Word{1} << (l & 63);
  for (const FailRecord& f : fails) {
    if (f.word == wj && (f.lanes & bj)) {
      keys.push_back((static_cast<std::uint64_t>(f.output) << 32) | f.pattern);
    }
  }
  std::sort(keys.begin(), keys.end());
}

bool BitParallelSimulator::BatchResult::diff_of(std::size_t j,
                                                std::vector<Word>& diff) const {
  diff.assign(num_outputs * num_words, 0);
  const std::uint32_t l = lane_of[j];
  const std::uint32_t wj = l >> 6;
  const Word bj = Word{1} << (l & 63);
  bool any = false;
  for (const FailRecord& f : fails) {
    if (f.word == wj && (f.lanes & bj)) {
      diff[static_cast<std::size_t>(f.output) * num_words + (f.pattern >> 6)] |=
          Word{1} << (f.pattern & 63);
      any = true;
    }
  }
  return any;
}

FailureLog BitParallelSimulator::BatchResult::failure_log_of(
    std::size_t j) const {
  FailureLog log;
  log.compacted = false;
  std::vector<std::uint64_t> keys;
  keys_of(j, keys);
  log.fails.reserve(keys.size());
  for (std::uint64_t k : keys) {
    log.fails.push_back({static_cast<std::uint32_t>(k & 0xffffffffu),
                         static_cast<std::uint32_t>(k >> 32)});
  }
  // failure_log_from_diff orders pattern-major; keys are output-major.
  std::sort(log.fails.begin(), log.fails.end(),
            [](const FailureLog::Obs& a, const FailureLog::Obs& b) {
              return a.pattern != b.pattern ? a.pattern < b.pattern
                                            : a.output < b.output;
            });
  return log;
}

void flush_bitpar_metrics(BitParStats& stats) {
  auto& reg = obs::MetricsRegistry::instance();
  // Registry entries are process-lifetime stable; cache the references.
  static obs::Counter& batches = reg.counter("sim.bitpar.batches");
  static obs::Counter& machines = reg.counter("sim.bitpar.machines");
  static obs::Counter& faults = reg.counter("sim.bitpar.faults");
  static obs::Counter& injected = reg.counter("sim.bitpar.faults_injected");
  static obs::Counter& cone = reg.counter("sim.bitpar.cone_skips");
  static obs::Counter& inactive = reg.counter("sim.bitpar.inactive_faults");
  static obs::Counter& swept = reg.counter("sim.bitpar.patterns_swept");
  static obs::Counter& skipped = reg.counter("sim.bitpar.patterns_skipped");
  static obs::Counter& evals = reg.counter("sim.bitpar.gate_evals");
  static obs::Counter& lane_words =
      reg.counter("sim.bitpar.lane_words_evaluated");
  static obs::Counter& fail_records = reg.counter("sim.bitpar.fail_records");
  batches.add(stats.batches);
  machines.add(stats.machines);
  faults.add(stats.faults);
  injected.add(stats.faults_injected);
  cone.add(stats.cone_skips);
  inactive.add(stats.inactive_faults);
  swept.add(stats.patterns_swept);
  skipped.add(stats.patterns_skipped);
  evals.add(stats.gate_evals);
  lane_words.add(stats.lane_words_evaluated);
  fail_records.add(stats.fail_records);
  stats = BitParStats{};
}

}  // namespace m3dfl::sim::bitpar
