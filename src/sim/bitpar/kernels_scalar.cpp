#include "sim/bitpar/kernels_impl.h"

namespace m3dfl::sim::bitpar {

namespace {

struct VecScalar {
  static constexpr std::size_t kWords = 1;
  using Reg = Word;
  static Reg load(const Word* p) { return *p; }
  static void store(Word* p, Reg r) { *p = r; }
  static Reg splat(Word w) { return w; }
  static Reg zero() { return 0; }
  static Reg xor_(Reg a, Reg b) { return a ^ b; }
  static Reg and_(Reg a, Reg b) { return a & b; }
  static Reg or_(Reg a, Reg b) { return a | b; }
  static Reg andnot(Reg a, Reg b) { return ~a & b; }
  static bool any(Reg r) { return r != 0; }
  /// Expands bit t of the packed word into an all-ones/all-zeros mask.
  static Reg bitmask(Word bits, std::uint32_t t) {
    return Word{0} - ((bits >> t) & 1);
  }
};

}  // namespace

SweepFn scalar_sweep() { return &sweep_impl<VecScalar>; }

}  // namespace m3dfl::sim::bitpar
