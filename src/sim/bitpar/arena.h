#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "netlist/netlist.h"

namespace m3dfl::sim::bitpar {

/// Delta-space operation class of a gate, precomputed per arena gate so the
/// pattern-sweep kernels stay branch-light. With d = faulty XOR good per
/// fanin and G the broadcast good value of a fanin at one pattern:
///  * kInput — no fanin; the delta is whatever the injection pins.
///  * kPass  — BUF/INV/MIV/OBS: d_out = d_in (inversions cancel in deltas).
///  * kXor2  — XOR/XNOR: d_out = d_a ^ d_b.
///  * kAnd   — AND/NAND: d_out = (AND_k (d_k ^ G_k)) ^ (AND_k g_k); the
///             NAND complement cancels, so both types share the formula.
///  * kOr    — OR/NOR, dually.
enum class OpKind : std::uint8_t { kInput = 0, kPass, kXor2, kAnd, kOr };

/// Flat CSR/SoA mirror of a netlist::Netlist, built once and shared
/// read-only by every BitParallelSimulator shard.
///
/// Arena gate ids renumber the netlist in (topological level, gate id)
/// order, so ascending arena id is a valid evaluation order and each
/// level occupies one contiguous range (level_begin/level_end). Fanin and
/// fanout lists are flattened into CSR arrays; output indices, the
/// reverse-reachability observability mask (same predicate the event
/// engine prunes with), and the fault-site table are re-based onto arena
/// ids so the simulator never touches the pointer-heavy Netlist on the
/// hot path.
class NetlistArena {
 public:
  NetlistArena(const netlist::Netlist& nl, const netlist::SiteTable& sites);

  std::size_t num_gates() const { return orig_of_.size(); }
  std::size_t num_outputs() const { return num_outputs_; }
  std::uint32_t num_levels() const { return num_levels_; }

  std::uint32_t arena_of(netlist::GateId g) const { return arena_of_[g]; }
  netlist::GateId orig_of(std::uint32_t u) const { return orig_of_[u]; }

  OpKind op(std::uint32_t u) const { return op_[u]; }
  netlist::GateType type(std::uint32_t u) const { return type_[u]; }
  std::uint32_t level(std::uint32_t u) const { return level_[u]; }
  bool observable(std::uint32_t u) const { return observable_[u] != 0; }

  /// Fanin arena ids of gate u, pin order preserved.
  std::span<const std::uint32_t> fanin(std::uint32_t u) const {
    return {fanin_.data() + fanin_off_[u], fanin_off_[u + 1] - fanin_off_[u]};
  }
  /// Fanout arena ids of gate u, ascending.
  std::span<const std::uint32_t> fanout(std::uint32_t u) const {
    return {fanout_.data() + fanout_off_[u],
            fanout_off_[u + 1] - fanout_off_[u]};
  }
  /// Observation-point indices reading gate u.
  std::span<const std::uint32_t> outputs_of(std::uint32_t u) const {
    return {obs_.data() + obs_off_[u], obs_off_[u + 1] - obs_off_[u]};
  }

  /// Arena gate range [level_begin(l), level_end(l)) of topological level l.
  std::uint32_t level_begin(std::uint32_t l) const { return level_off_[l]; }
  std::uint32_t level_end(std::uint32_t l) const { return level_off_[l + 1]; }

  /// Fault-site table re-based onto arena ids.
  struct SiteRef {
    std::uint32_t gate;    ///< Arena id of the owning gate.
    std::uint32_t driver;  ///< Arena id of the signal seen at the site.
    std::int16_t pin;      ///< -1: stem; >= 0: input pin of `gate`.
    bool is_stem() const { return pin < 0; }
  };
  const SiteRef& site(netlist::SiteId s) const { return sites_[s]; }
  std::size_t num_sites() const { return sites_.size(); }

 private:
  std::size_t num_outputs_ = 0;
  std::uint32_t num_levels_ = 0;
  std::vector<netlist::GateId> orig_of_;
  std::vector<std::uint32_t> arena_of_;
  std::vector<OpKind> op_;
  std::vector<netlist::GateType> type_;
  std::vector<std::uint32_t> level_;
  std::vector<std::uint8_t> observable_;
  std::vector<std::size_t> fanin_off_, fanout_off_, obs_off_;
  std::vector<std::uint32_t> fanin_, fanout_, obs_;
  std::vector<std::uint32_t> level_off_;
  std::vector<SiteRef> sites_;
};

}  // namespace m3dfl::sim::bitpar
