#pragma once

#include <cstdint>
#include <vector>

#include "sim/bitpar/arena.h"
#include "sim/logic_sim.h"

namespace m3dfl::sim::bitpar {

/// Lane geometry: one fault (or fault machine) per bit lane, up to 512
/// lanes per pass. A pass is executed as independent *blocks* of 64 lanes
/// (one machine word), each with its own union-cone schedule, so a tight
/// cluster of related faults never pays for an unrelated cone. Within a
/// block, every delta row holds one word per pattern (word p = the lanes
/// whose faulty machine differs from good at pattern p) and the SIMD
/// kernels stream across adjacent pattern words.
inline constexpr std::size_t kMaxLanes = 512;
inline constexpr std::size_t kBlockLanes = kWordBits;
inline constexpr std::size_t kLaneWords = kMaxLanes / kWordBits;

/// Delta/injection rows are padded to a multiple of kRowStride words so
/// every vector width divides the row cleanly; pad words stay zero.
inline constexpr std::size_t kRowStride = 4;

inline constexpr std::uint16_t kNoPoint = 0xffff;

/// One lane's contribution to an injection point: when activation row
/// `act_row` has pattern p set, lane `lane` gets its injection bit.
struct LaneInject {
  std::uint16_t lane;
  std::uint16_t act_row;
};

/// A group of lane injections sharing one (gate, pin) location: a stem pin
/// (pin < 0) or a branch override (pin >= 0). `begin/count` index the
/// lane-inject array; the point also owns a constant lane mask (lanes that
/// inject here at all) and a per-pattern injection row built per block.
struct InjectPoint {
  std::uint32_t begin = 0;
  std::uint32_t count = 0;
};

/// One gate of the block schedule, compiled against dense delta slots.
/// Slot 0 is a constant-zero row standing in for every unscheduled fanin
/// (their delta is zero by definition). Scheduled gate i writes slot i+1.
struct CompiledGate {
  OpKind op = OpKind::kPass;
  std::uint8_t nfanin = 0;
  std::uint16_t pin_point = kNoPoint;  ///< Stem pin, or kNoPoint.
  std::uint32_t fanin_slot[4] = {0, 0, 0, 0};
  std::uint32_t fanin_gate[4] = {0, 0, 0, 0};  ///< Arena ids (good rows).
  std::uint16_t ov_point[4] = {kNoPoint, kNoPoint, kNoPoint, kNoPoint};
};

/// A scheduled gate feeding observation point `output`.
struct OutputTap {
  std::uint32_t slot;
  std::uint32_t output;
};

/// One recorded miscompare: at (output, pattern), the lanes of block
/// `word` (batch lanes [word*64, word*64+64)) whose faulty machine
/// differs from the good machine.
struct FailRecord {
  std::uint32_t output;
  std::uint32_t pattern;
  std::uint32_t word;
  Word lanes;
};

/// Workload counters of the bit-parallel engine (per workspace; shards
/// flush them into the sim.bitpar.* metrics).
struct BitParStats {
  std::uint64_t batches = 0;
  std::uint64_t machines = 0;          ///< Lanes occupied across batches.
  std::uint64_t faults = 0;            ///< Faults submitted.
  std::uint64_t faults_injected = 0;   ///< Observable, nonzero activation.
  std::uint64_t cone_skips = 0;        ///< Faults outside every output cone.
  std::uint64_t inactive_faults = 0;   ///< All-zero activation masks.
  std::uint64_t patterns_swept = 0;    ///< Patterns x blocks executed.
  std::uint64_t patterns_skipped = 0;  ///< Union activation bit clear.
  std::uint64_t gate_evals = 0;
  std::uint64_t lane_words_evaluated = 0;  ///< Row words written by kernels.
  std::uint64_t fail_records = 0;
};

/// Everything a sweep kernel needs for one 64-lane block, laid out by
/// BitParallelSimulator. All rows are row_words long (num_patterns rounded
/// up to kRowStride; pad words are zero and stay zero). Good values and
/// activation masks stay bit-packed (64 patterns per word) and are
/// expanded to broadcast lane masks in-register — the kernel's working
/// set is the delta slots plus two small packed tables, not a pre-expanded
/// copy of the netlist.
struct SweepContext {
  std::uint32_t num_patterns = 0;
  std::uint32_t row_words = 0;
  std::uint32_t W = 0;      ///< Packed pattern words (ceil(patterns / 64)).
  std::uint32_t block = 0;  ///< Lane-word index within the batch.

  const CompiledGate* sched = nullptr;
  std::uint32_t sched_size = 0;
  Word* delta = nullptr;  ///< (sched_size + 1) * row_words; slot 0 zero.
  Word* eff = nullptr;    ///< 4 * row_words override scratch.

  const Word* v2 = nullptr;  ///< Arena-major packed capture-frame values.

  const Word* point_masks = nullptr;  ///< One lane word per point.
  const InjectPoint* points = nullptr;
  const LaneInject* lane_injects = nullptr;
  const Word* act_rows = nullptr;  ///< Packed activation rows, W words each.

  const OutputTap* taps = nullptr;
  std::uint32_t num_taps = 0;

  std::vector<FailRecord>* fails = nullptr;
  Word* detected = nullptr;  ///< This block's word; ORed with failing lanes.
  BitParStats* stats = nullptr;
};

}  // namespace m3dfl::sim::bitpar
