#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace m3dfl::sim::bitpar {

/// SIMD kernel tiers of the bit-parallel simulator, in ascending width.
/// Every tier computes bit-identical results; wider tiers just move more
/// lane words per instruction (scalar: 64 lanes, SSE2: 128, AVX2: 256).
enum class SimdTier : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* tier_name(SimdTier t);
std::optional<SimdTier> parse_tier(std::string_view s);

/// CPU capabilities relevant to kernel dispatch, probed once via cpuid
/// (x86) and cached. On non-x86 hosts everything beyond scalar is false.
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool os_avx = false;  ///< OS saves YMM state (OSXSAVE + XCR0[2:1]).
};

const CpuFeatures& cpu_features();

/// True if the tier's kernel is both compiled in and runnable on this host.
bool tier_available(SimdTier t);

/// Widest available tier on this host.
SimdTier best_tier();

/// Active tier under the resolution order
///   force_tier() override > M3DFL_SIMD env var > best_tier().
/// A forced/env tier the host cannot run falls back to best_tier() with a
/// one-line stderr notice instead of faulting on an illegal instruction.
SimdTier resolve_tier();

/// Programmatic override (the CLI's --simd flag). std::nullopt clears it.
void force_tier(std::optional<SimdTier> t);

}  // namespace m3dfl::sim::bitpar
