#include "sim/bitpar/arena.h"

#include <algorithm>
#include <cassert>

namespace m3dfl::sim::bitpar {

using netlist::GateId;
using netlist::GateType;

namespace {

OpKind op_of(GateType t) {
  switch (t) {
    case GateType::kInput: return OpKind::kInput;
    case GateType::kBuf:
    case GateType::kInv:
    case GateType::kMiv:
    case GateType::kObs: return OpKind::kPass;
    case GateType::kXor:
    case GateType::kXnor: return OpKind::kXor2;
    case GateType::kAnd:
    case GateType::kNand: return OpKind::kAnd;
    case GateType::kOr:
    case GateType::kNor: return OpKind::kOr;
  }
  return OpKind::kPass;
}

}  // namespace

NetlistArena::NetlistArena(const netlist::Netlist& nl,
                           const netlist::SiteTable& sites) {
  const std::size_t n = nl.num_gates();
  const auto& levels = nl.levels();
  num_outputs_ = nl.num_outputs();
  num_levels_ = nl.depth() + 1;

  // Arena order: stable sort by (level, gate id). Ascending arena id is
  // then a topological order and levels are contiguous.
  orig_of_.resize(n);
  for (std::size_t g = 0; g < n; ++g) orig_of_[g] = static_cast<GateId>(g);
  std::stable_sort(orig_of_.begin(), orig_of_.end(),
                   [&levels](GateId a, GateId b) {
                     if (levels[a] != levels[b]) return levels[a] < levels[b];
                     return a < b;
                   });
  arena_of_.resize(n);
  for (std::uint32_t u = 0; u < n; ++u) arena_of_[orig_of_[u]] = u;

  op_.resize(n);
  type_.resize(n);
  level_.resize(n);
  level_off_.assign(num_levels_ + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    const GateId g = orig_of_[u];
    type_[u] = nl.gate(g).type;
    op_[u] = op_of(type_[u]);
    level_[u] = levels[g];
    ++level_off_[level_[u] + 1];
  }
  for (std::uint32_t l = 0; l < num_levels_; ++l) {
    level_off_[l + 1] += level_off_[l];
  }

  // Fanin/fanout CSR in arena ids (fanin keeps pin order; fanout sorted
  // ascending for deterministic traversal).
  fanin_off_.assign(n + 1, 0);
  fanout_off_.assign(n + 1, 0);
  obs_off_.assign(n + 1, 0);
  for (std::uint32_t u = 0; u < n; ++u) {
    const netlist::Gate& gate = nl.gate(orig_of_[u]);
    fanin_off_[u + 1] = fanin_off_[u] + gate.fanin.size();
    fanout_off_[u + 1] = fanout_off_[u] + gate.fanout.size();
  }
  fanin_.resize(fanin_off_[n]);
  fanout_.resize(fanout_off_[n]);
  for (std::uint32_t u = 0; u < n; ++u) {
    const netlist::Gate& gate = nl.gate(orig_of_[u]);
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      fanin_[fanin_off_[u] + k] = arena_of_[gate.fanin[k]];
      assert(arena_of_[gate.fanin[k]] < u && "arena order is topological");
    }
    for (std::size_t k = 0; k < gate.fanout.size(); ++k) {
      fanout_[fanout_off_[u] + k] = arena_of_[gate.fanout[k]];
    }
    std::sort(fanout_.begin() + static_cast<std::ptrdiff_t>(fanout_off_[u]),
              fanout_.begin() + static_cast<std::ptrdiff_t>(fanout_off_[u + 1]));
  }

  // Observation points per gate (a gate may feed several scan cells).
  const auto outs = nl.outputs();
  for (std::uint32_t o = 0; o < outs.size(); ++o) {
    ++obs_off_[arena_of_[outs[o]] + 1];
  }
  for (std::size_t u = 0; u < n; ++u) obs_off_[u + 1] += obs_off_[u];
  obs_.resize(obs_off_[n]);
  {
    std::vector<std::size_t> cursor(obs_off_.begin(), obs_off_.end() - 1);
    for (std::uint32_t o = 0; o < outs.size(); ++o) {
      obs_[cursor[arena_of_[outs[o]]]++] = o;
    }
  }

  // Reverse reachability to the observation points — the same cone-pruning
  // predicate the event engine uses. Descending arena order is a reverse
  // topological order, so one sweep settles it.
  observable_.assign(n, 0);
  for (std::uint32_t u = static_cast<std::uint32_t>(n); u-- > 0;) {
    std::uint8_t obs = obs_off_[u + 1] != obs_off_[u] ? 1 : 0;
    if (!obs) {
      for (std::uint32_t fo : fanout(u)) obs |= observable_[fo];
    }
    observable_[u] = obs;
  }

  // Fault sites re-based onto arena ids.
  sites_.resize(sites.size());
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    const netlist::FaultSite& fs = sites.site(s);
    sites_[s] = {arena_of_[fs.gate], arena_of_[fs.driver], fs.pin};
  }
}

}  // namespace m3dfl::sim::bitpar
