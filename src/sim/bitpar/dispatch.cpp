#include "sim/bitpar/dispatch.h"

#include <cstdlib>

#include "obs/log.h"
#include "sim/bitpar/kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace m3dfl::sim::bitpar {

namespace {

CpuFeatures probe_cpu() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1;
    const bool osxsave = (ecx >> 27) & 1;
    const bool avx = (ecx >> 28) & 1;
    if (osxsave && avx) {
      // XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM state.
      // Raw xgetbv (safe here: OSXSAVE was checked) — the GCC builtin
      // would require compiling this TU with -mxsave.
      unsigned lo = 0, hi = 0;
      __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
      f.os_avx = (lo & 0x6) == 0x6;
    }
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = f.os_avx && ((ebx >> 5) & 1);
  }
#endif
  return f;
}

std::optional<SimdTier>& forced_slot() {
  static std::optional<SimdTier> forced;
  return forced;
}

}  // namespace

const char* tier_name(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "?";
}

std::optional<SimdTier> parse_tier(std::string_view s) {
  if (s == "scalar") return SimdTier::kScalar;
  if (s == "sse2") return SimdTier::kSse2;
  if (s == "avx2") return SimdTier::kAvx2;
  return std::nullopt;
}

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

bool tier_available(SimdTier t) {
  switch (t) {
    case SimdTier::kScalar: return scalar_sweep() != nullptr;
    case SimdTier::kSse2:
      return cpu_features().sse2 && sse2_sweep() != nullptr;
    case SimdTier::kAvx2:
      return cpu_features().avx2 && avx2_sweep() != nullptr;
  }
  return false;
}

SimdTier best_tier() {
  if (tier_available(SimdTier::kAvx2)) return SimdTier::kAvx2;
  if (tier_available(SimdTier::kSse2)) return SimdTier::kSse2;
  return SimdTier::kScalar;
}

void force_tier(std::optional<SimdTier> t) { forced_slot() = t; }

SimdTier resolve_tier() {
  std::optional<SimdTier> want = forced_slot();
  const char* origin = "--simd";
  if (!want) {
    if (const char* env = std::getenv("M3DFL_SIMD")) {
      want = parse_tier(env);
      origin = "M3DFL_SIMD";
      if (!want && env[0] != '\0') {
        M3DFL_LOG_WARN("simd",
                       "ignoring unknown M3DFL_SIMD value '%s' "
                       "(want scalar|sse2|avx2)",
                       env);
      }
    }
  }
  if (!want) return best_tier();
  if (tier_available(*want)) return *want;
  const SimdTier fallback = best_tier();
  M3DFL_LOG_WARN("simd",
                 "%s=%s is not available on this host; falling back to %s",
                 origin, tier_name(*want), tier_name(fallback));
  return fallback;
}

}  // namespace m3dfl::sim::bitpar
