#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/fault_sim.h"

namespace m3dfl::sim {

/// Pool of FaultSimulator clones of one bound prototype — the offline
/// mirror of the serving subsystem's per-design worker-context pool.
/// observed_diff() mutates the simulator's faulty-machine workspace, so
/// concurrent pipeline shards (dataset generation, dictionary campaigns)
/// each check a private simulator out instead of sharing the design's.
///
/// acquire() pops an idle clone or copies the prototype (a memcpy of the
/// good-machine state, not a re-simulation); release() returns it for
/// reuse. With K concurrent shards at most K clones ever exist. The
/// prototype is only read, never mutated, so any number of threads may
/// acquire concurrently while the prototype sits at rest.
class SimulatorPool {
 public:
  explicit SimulatorPool(const FaultSimulator& prototype)
      : prototype_(&prototype) {}

  SimulatorPool(const SimulatorPool&) = delete;
  SimulatorPool& operator=(const SimulatorPool&) = delete;

  std::unique_ptr<FaultSimulator> acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!idle_.empty()) {
        auto sim = std::move(idle_.back());
        idle_.pop_back();
        return sim;
      }
      ++created_;
    }
    // Clone outside the lock: the copy is the expensive part.
    return prototype_->clone();
  }

  void release(std::unique_ptr<FaultSimulator> sim) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(sim));
  }

  /// RAII checkout: returns the simulator to the pool on scope exit.
  class Lease {
   public:
    explicit Lease(SimulatorPool& pool)
        : pool_(&pool), sim_(pool.acquire()) {}
    ~Lease() {
      if (sim_) pool_->release(std::move(sim_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    FaultSimulator& operator*() { return *sim_; }
    FaultSimulator* operator->() { return sim_.get(); }

   private:
    SimulatorPool* pool_;
    std::unique_ptr<FaultSimulator> sim_;
  };

  Lease lease() { return Lease(*this); }

  /// Clones materialized so far (never exceeds the peak concurrency).
  std::size_t created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return created_;
  }

 private:
  const FaultSimulator* prototype_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<FaultSimulator>> idle_;
  std::size_t created_ = 0;
};

}  // namespace m3dfl::sim
