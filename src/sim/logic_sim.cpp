#include "sim/logic_sim.h"

#include <cassert>

namespace m3dfl::sim {

using netlist::Gate;
using netlist::GateType;

PatternSet::PatternSet(std::size_t num_inputs, std::size_t num_patterns)
    : num_inputs_(num_inputs),
      num_patterns_(num_patterns),
      num_words_(words_for(num_patterns)),
      bits_(num_inputs * num_words_, 0) {}

PatternSet PatternSet::random(std::size_t num_inputs,
                              std::size_t num_patterns, Rng& rng) {
  PatternSet ps(num_inputs, num_patterns);
  for (auto& w : ps.bits_) w = rng.next();
  // Zero the invalid tail bits so dumps and hashes are canonical.
  if (ps.num_words_ > 0) {
    const Word mask = ps.valid_mask(ps.num_words_ - 1);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      ps.word(i, ps.num_words_ - 1) &= mask;
    }
  }
  return ps;
}

bool PatternSet::bit(std::size_t input, std::size_t pattern) const {
  return (word(input, pattern / kWordBits) >> (pattern % kWordBits)) & 1u;
}

void PatternSet::set_bit(std::size_t input, std::size_t pattern, bool value) {
  Word& w = word(input, pattern / kWordBits);
  const Word m = Word{1} << (pattern % kWordBits);
  if (value) {
    w |= m;
  } else {
    w &= ~m;
  }
}

Word PatternSet::valid_mask(std::size_t w) const {
  if (w + 1 < num_words_) return ~Word{0};
  const std::size_t rem = num_patterns_ % kWordBits;
  if (rem == 0) return ~Word{0};
  return (Word{1} << rem) - 1;
}

void eval_gate_words(const Gate& gate, const Word* const* fanin, Word* out,
                     std::size_t W) {
  switch (gate.type) {
    case GateType::kInput:
      return;
    case GateType::kBuf:
    case GateType::kMiv:
    case GateType::kObs:
      for (std::size_t w = 0; w < W; ++w) out[w] = fanin[0][w];
      return;
    case GateType::kInv:
      for (std::size_t w = 0; w < W; ++w) out[w] = ~fanin[0][w];
      return;
    case GateType::kXor:
      for (std::size_t w = 0; w < W; ++w) out[w] = fanin[0][w] ^ fanin[1][w];
      return;
    case GateType::kXnor:
      for (std::size_t w = 0; w < W; ++w) {
        out[w] = ~(fanin[0][w] ^ fanin[1][w]);
      }
      return;
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t w = 0; w < W; ++w) out[w] = fanin[0][w];
      for (std::size_t k = 1; k < gate.fanin.size(); ++k) {
        for (std::size_t w = 0; w < W; ++w) out[w] &= fanin[k][w];
      }
      if (gate.type == GateType::kNand) {
        for (std::size_t w = 0; w < W; ++w) out[w] = ~out[w];
      }
      return;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t w = 0; w < W; ++w) out[w] = fanin[0][w];
      for (std::size_t k = 1; k < gate.fanin.size(); ++k) {
        for (std::size_t w = 0; w < W; ++w) out[w] |= fanin[k][w];
      }
      if (gate.type == GateType::kNor) {
        for (std::size_t w = 0; w < W; ++w) out[w] = ~out[w];
      }
      return;
  }
}

std::vector<Word> LogicSimulator::run(const PatternSet& inputs) const {
  std::vector<Word> vals(nl_->num_gates() * inputs.num_words(), 0);
  run_into(inputs, vals);
  return vals;
}

void LogicSimulator::run_into(const PatternSet& inputs,
                              std::span<Word> out) const {
  const std::size_t W = inputs.num_words();
  assert(inputs.num_inputs() == nl_->num_inputs());
  assert(out.size() == nl_->num_gates() * W);

  const auto ins = nl_->inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const auto base = static_cast<std::size_t>(ins[i]) * W;
    for (std::size_t w = 0; w < W; ++w) out[base + w] = inputs.word(i, w);
  }

  const Word* fanin_ptrs[8];
  for (GateId g : nl_->topo_order()) {
    const Gate& gate = nl_->gate(g);
    if (gate.type == GateType::kInput) continue;
    assert(gate.fanin.size() <= 8);
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      fanin_ptrs[k] =
          out.data() + static_cast<std::size_t>(gate.fanin[k]) * W;
    }
    eval_gate_words(gate, fanin_ptrs,
                    out.data() + static_cast<std::size_t>(g) * W, W);
  }
}

PatternSet derive_v2_inputs(const Netlist& nl, const PatternSet& v1_inputs,
                            std::span<const Word> v1_values) {
  const std::size_t W = v1_inputs.num_words();
  PatternSet v2(v1_inputs.num_inputs(), v1_inputs.num_patterns());
  const auto outs = nl.outputs();
  for (std::size_t i = 0; i < v1_inputs.num_inputs(); ++i) {
    if (i < nl.num_scan_cells()) {
      // Functional capture: scan cell i's Q in V2 is output i's V1 value.
      const GateId d = outs[i];
      for (std::size_t w = 0; w < W; ++w) {
        v2.word(i, w) = v1_values[static_cast<std::size_t>(d) * W + w] &
                        v1_inputs.valid_mask(w);
      }
    } else {
      // Primary inputs are held across launch/capture (at-speed LoC).
      for (std::size_t w = 0; w < W; ++w) v2.word(i, w) = v1_inputs.word(i, w);
    }
  }
  return v2;
}

TwoVectorResult simulate_launch_off_capture(const Netlist& nl,
                                            const PatternSet& v1_inputs) {
  LogicSimulator simulator(nl);
  TwoVectorResult r;
  r.num_patterns = v1_inputs.num_patterns();
  r.num_words = v1_inputs.num_words();
  r.v1 = simulator.run(v1_inputs);
  const PatternSet v2_inputs = derive_v2_inputs(nl, v1_inputs, r.v1);
  r.v2 = simulator.run(v2_inputs);
  r.transition.resize(r.v1.size());
  for (std::size_t i = 0; i < r.v1.size(); ++i) {
    r.transition[i] = r.v1[i] ^ r.v2[i];
  }
  return r;
}

TwoVectorResult simulate_two_vector(const Netlist& nl,
                                    const PatternSet& v1_inputs,
                                    const PatternSet& v2_inputs) {
  assert(v1_inputs.num_inputs() == v2_inputs.num_inputs());
  assert(v1_inputs.num_patterns() == v2_inputs.num_patterns());
  LogicSimulator simulator(nl);
  TwoVectorResult r;
  r.num_patterns = v1_inputs.num_patterns();
  r.num_words = v1_inputs.num_words();
  r.v1 = simulator.run(v1_inputs);
  r.v2 = simulator.run(v2_inputs);
  r.transition.resize(r.v1.size());
  for (std::size_t i = 0; i < r.v1.size(); ++i) {
    r.transition[i] = r.v1[i] ^ r.v2[i];
  }
  return r;
}

}  // namespace m3dfl::sim
