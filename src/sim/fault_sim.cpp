#include "sim/fault_sim.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace m3dfl::sim {

using netlist::FaultSite;
using netlist::Gate;
using netlist::GateId;
using netlist::GateType;

const char* polarity_name(FaultPolarity p) {
  switch (p) {
    case FaultPolarity::kSlowToRise: return "slow-to-rise";
    case FaultPolarity::kSlowToFall: return "slow-to-fall";
    case FaultPolarity::kSlow: return "slow";
    case FaultPolarity::kStuckAt0: return "stuck-at-0";
    case FaultPolarity::kStuckAt1: return "stuck-at-1";
  }
  return "?";
}

FaultSimulator::FaultSimulator(const netlist::Netlist& nl,
                               const SiteTable& sites)
    : nl_(&nl), sites_(&sites) {
  obs_of_gate_.resize(nl.num_gates());
  const auto outs = nl.outputs();
  for (std::uint32_t o = 0; o < outs.size(); ++o) {
    obs_of_gate_[outs[o]].push_back(o);
  }
}

void FaultSimulator::bind(const PatternSet& v1_inputs) {
  M3DFL_OBS_SPAN(span, "sim.bind");
  good_ = simulate_launch_off_capture(*nl_, v1_inputs);
  finish_bind(v1_inputs);
}

void FaultSimulator::bind(const PatternSet& v1_inputs,
                          const PatternSet& v2_inputs) {
  M3DFL_OBS_SPAN(span, "sim.bind");
  good_ = simulate_two_vector(*nl_, v1_inputs, v2_inputs);
  finish_bind(v1_inputs);
}

void FaultSimulator::finish_bind(const PatternSet& v1_inputs) {
  faulty_ = good_.v2;
  in_queue_.assign(nl_->num_gates(), 0);
  forced_.assign(nl_->num_gates(), 0);
  level_buckets_.assign(nl_->depth() + 1, {});
  touched_.clear();
  scratch_.assign(good_.num_words, 0);
  // Keep only the valid pattern bits of the good transition masks: the
  // inverting gates fill tail bits with garbage that must never activate a
  // fault or count as a transition.
  const std::size_t W = good_.num_words;
  if (W > 0) {
    const Word tail = v1_inputs.valid_mask(W - 1);
    for (std::size_t g = 0; g < nl_->num_gates(); ++g) {
      good_.transition[g * W + (W - 1)] &= tail;
    }
  }
}

void FaultSimulator::ensure_bound() const {
  assert(!faulty_.empty() && "bind() must be called before simulation");
}

std::vector<Word> FaultSimulator::activation_mask(
    const InjectedFault& fault) const {
  ensure_bound();
  const std::size_t W = good_.num_words;
  const GateId driver = sites_->site(fault.site).driver;
  std::vector<Word> act(W);
  const std::size_t rem = good_.num_patterns % kWordBits;
  const Word tail = rem ? (Word{1} << rem) - 1 : ~Word{0};
  for (std::size_t w = 0; w < W; ++w) {
    const Word v1 = good_.v1_word(driver, w);
    const Word v2 = good_.v2_word(driver, w);
    switch (fault.polarity) {
      case FaultPolarity::kSlowToRise:
        act[w] = ~v1 & v2 & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kSlowToFall:
        act[w] = v1 & ~v2 & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kSlow:
        act[w] = (v1 ^ v2) & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kStuckAt0:
        // Excited on every pattern whose good value is 1.
        act[w] = v2;
        break;
      case FaultPolarity::kStuckAt1:
        act[w] = ~v2;
        break;
    }
    if (w + 1 == W) act[w] &= tail;
  }
  return act;
}

bool FaultSimulator::observed_diff(const InjectedFault& fault,
                                   std::vector<Word>& diff,
                                   std::vector<std::uint32_t>* touched_outputs) {
  return observed_diff(std::span<const InjectedFault>(&fault, 1), diff,
                       touched_outputs);
}

bool FaultSimulator::observed_diff(std::span<const InjectedFault> faults,
                                   std::vector<Word>& diff,
                                   std::vector<std::uint32_t>* touched_outputs) {
  ensure_bound();
  ++stats_.observed_diff_calls;
  const std::size_t W = good_.num_words;
  const std::size_t num_outputs = nl_->num_outputs();
  diff.assign(num_outputs * W, 0);
  touched_.clear();
  if (touched_outputs) touched_outputs->clear();

  const auto& levels = nl_->levels();
  std::uint32_t min_level = 0xffffffffu;
  std::uint32_t max_level = 0;

  auto faulty_row = [this, W](GateId g) {
    return faulty_.data() + static_cast<std::size_t>(g) * W;
  };
  auto good_row = [this, W](GateId g) {
    return good_.v2.data() + static_cast<std::size_t>(g) * W;
  };
  auto touch = [this](GateId g) {
    touched_.push_back(g);  // May repeat; restore is idempotent.
  };
  auto enqueue = [&](GateId g) {
    if (in_queue_[g]) return;
    in_queue_[g] = 1;
    level_buckets_[levels[g]].push_back(g);
    min_level = std::min(min_level, levels[g]);
    max_level = std::max(max_level, levels[g]);
  };

  // Branch-fault overrides: (gate, pin) -> faulty value row. Small, so a
  // flat list with linear scan is fastest.
  struct BranchOverride {
    GateId gate;
    std::int16_t pin;
    std::vector<Word> value;
  };
  std::vector<BranchOverride> overrides;

  // Seed events from each fault.
  for (const InjectedFault& f : faults) {
    const FaultSite& fs = sites_->site(f.site);
    const std::vector<Word> act = activation_mask(f);
    bool any = false;
    for (Word w : act) any |= w != 0;
    if (!any) continue;

    // Faulty value of the signal at the site. TDF: the late V1 value where
    // activated; stuck-at: the forced constant.
    std::vector<Word> fv(W);
    for (std::size_t w = 0; w < W; ++w) {
      const Word v2 = good_.v2_word(fs.driver, w);
      Word forced;
      switch (f.polarity) {
        case FaultPolarity::kStuckAt0: forced = 0; break;
        case FaultPolarity::kStuckAt1: forced = ~Word{0}; break;
        default: forced = good_.v1_word(fs.driver, w); break;
      }
      fv[w] = (v2 & ~act[w]) | (forced & act[w]);
    }

    if (fs.is_stem()) {
      Word changed = 0;
      Word* row = faulty_row(fs.gate);
      for (std::size_t w = 0; w < W; ++w) changed |= row[w] ^ fv[w];
      if (changed == 0) continue;
      std::copy(fv.begin(), fv.end(), row);
      forced_[fs.gate] = 1;
      touch(fs.gate);
      for (GateId fo : nl_->gate(fs.gate).fanout) enqueue(fo);
    } else {
      overrides.push_back(BranchOverride{fs.gate, fs.pin, std::move(fv)});
      enqueue(fs.gate);
    }
  }

  // Propagate level by level. Fanout levels strictly exceed a gate's level,
  // so one ascending sweep settles everything.
  const Word* fanin_ptrs[8];
  if (min_level != 0xffffffffu) {
    for (std::uint32_t lvl = min_level; lvl <= max_level; ++lvl) {
      auto& bucket = level_buckets_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId g = bucket[i];
        in_queue_[g] = 0;
        if (forced_[g]) continue;  // Stem fault pins this gate's value.
        const Gate& gate = nl_->gate(g);
        assert(gate.fanin.size() <= 8);
        for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
          fanin_ptrs[k] = faulty_row(gate.fanin[k]);
        }
        for (const BranchOverride& ov : overrides) {
          if (ov.gate == g) fanin_ptrs[ov.pin] = ov.value.data();
        }
        eval_gate_words(gate, fanin_ptrs, scratch_.data(), W);
        Word changed = 0;
        Word* row = faulty_row(g);
        for (std::size_t w = 0; w < W; ++w) changed |= row[w] ^ scratch_[w];
        if (changed == 0) continue;
        std::copy(scratch_.begin(), scratch_.end(), row);
        touch(g);
        for (GateId fo : gate.fanout) {
          max_level = std::max(max_level, levels[fo]);
          enqueue(fo);
        }
      }
      bucket.clear();
    }
  }

  // Collect observation diffs and restore the workspace.
  bool any_fail = false;
  const Word tail =
      W > 0 ? ((good_.num_patterns % kWordBits)
                   ? ((Word{1} << (good_.num_patterns % kWordBits)) - 1)
                   : ~Word{0})
            : 0;
  for (GateId g : touched_) {
    for (std::uint32_t o : obs_of_gate_[g]) {
      if (touched_outputs) touched_outputs->push_back(o);
      Word* drow = diff.data() + static_cast<std::size_t>(o) * W;
      const Word* frow = faulty_row(g);
      const Word* grow = good_row(g);
      for (std::size_t w = 0; w < W; ++w) {
        Word d = frow[w] ^ grow[w];
        if (w + 1 == W) d &= tail;
        drow[w] = d;
        any_fail |= d != 0;
      }
    }
    // Restore the persistent workspace to the good machine.
    std::copy(good_row(g), good_row(g) + W, faulty_row(g));
    forced_[g] = 0;
  }
  if (any_fail) ++stats_.detected;
  return any_fail;
}

}  // namespace m3dfl::sim
