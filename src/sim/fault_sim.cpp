#include "sim/fault_sim.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace m3dfl::sim {

using netlist::FaultSite;
using netlist::Gate;
using netlist::GateId;
using netlist::GateType;

namespace {

/// Branch-override row slots pre-reserved at bind(); simultaneous branch
/// faults beyond this grow the pool (a one-off allocation that then sticks).
constexpr std::size_t kReservedOverrideSlots = 4;

constexpr std::uint32_t kNoLevel = 0xffffffffu;

}  // namespace

const char* polarity_name(FaultPolarity p) {
  switch (p) {
    case FaultPolarity::kSlowToRise: return "slow-to-rise";
    case FaultPolarity::kSlowToFall: return "slow-to-fall";
    case FaultPolarity::kSlow: return "slow";
    case FaultPolarity::kStuckAt0: return "stuck-at-0";
    case FaultPolarity::kStuckAt1: return "stuck-at-1";
  }
  return "?";
}

FaultSimulator::FaultSimulator(const netlist::Netlist& nl,
                               const SiteTable& sites)
    : nl_(&nl), sites_(&sites) {
  obs_of_gate_.resize(nl.num_gates());
  const auto outs = nl.outputs();
  for (std::uint32_t o = 0; o < outs.size(); ++o) {
    obs_of_gate_[outs[o]].push_back(o);
  }
  // Reverse reachability to the observation points: a fault effect entering
  // at an unobservable gate can never change any output, so both seeding and
  // propagation prune against this mask. Fixed per netlist, shared by every
  // bind().
  observable_.assign(nl.num_gates(), 0);
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId g = *it;
    std::uint8_t obs = obs_of_gate_[g].empty() ? 0 : 1;
    if (!obs) {
      for (GateId fo : nl.gate(g).fanout) obs |= observable_[fo];
    }
    observable_[g] = obs;
  }
}

void FaultSimulator::bind(const PatternSet& v1_inputs) {
  M3DFL_OBS_SPAN(span, "sim.bind");
  good_ = simulate_launch_off_capture(*nl_, v1_inputs);
  finish_bind(v1_inputs);
}

void FaultSimulator::bind(const PatternSet& v1_inputs,
                          const PatternSet& v2_inputs) {
  M3DFL_OBS_SPAN(span, "sim.bind");
  good_ = simulate_two_vector(*nl_, v1_inputs, v2_inputs);
  finish_bind(v1_inputs);
}

void FaultSimulator::finish_bind(const PatternSet& v1_inputs) {
  const std::size_t num_gates = nl_->num_gates();
  const std::size_t W = good_.num_words;
  faulty_ = good_.v2;
  in_queue_.assign(num_gates, 0);
  forced_.assign(num_gates, 0);
  touched_.clear();
  touch_stamp_.assign(num_gates, 0);
  epoch_ = 0;
  scratch_.assign(W, 0);
  act_.assign(W, 0);
  fv_.assign(W, 0);
  overrides_.clear();
  override_rows_.assign(kReservedOverrideSlots * W, 0);
  level_buckets_.assign(nl_->depth() + 1, {});
  reserve_workspace();

  // Keep only the valid pattern bits of the good transition masks: the
  // inverting gates fill tail bits with garbage that must never activate a
  // fault or count as a transition.
  tail_ = 0;
  if (W > 0) {
    tail_ = v1_inputs.valid_mask(W - 1);
    for (std::size_t g = 0; g < num_gates; ++g) {
      good_.transition[g * W + (W - 1)] &= tail_;
    }
  }
}

void FaultSimulator::reserve_workspace() {
  touched_.reserve(nl_->num_gates());
  overrides_.reserve(kReservedOverrideSlots);
  // Level buckets sized for the worst event front per level: only observable
  // gates are ever enqueued, so reserving their per-level counts makes the
  // steady state allocation-free.
  const auto& levels = nl_->levels();
  std::vector<std::size_t> per_level(level_buckets_.size(), 0);
  for (std::size_t g = 0; g < nl_->num_gates(); ++g) {
    if (observable_[g] && levels[g] < per_level.size()) ++per_level[levels[g]];
  }
  for (std::size_t l = 0; l < level_buckets_.size(); ++l) {
    level_buckets_[l].reserve(per_level[l]);
  }
}

std::unique_ptr<FaultSimulator> FaultSimulator::clone() const {
  auto copy = std::unique_ptr<FaultSimulator>(new FaultSimulator(*this));
  // A clone's counters start at zero: pooled shards flush whole snapshots
  // via take_stats(), which must never re-count the source's history.
  copy->stats_ = SimStats{};
  // Vector copies keep sizes but drop spare capacity; re-reserve so clones
  // inherit the allocation-free steady state (they power every parallel
  // shard, where per-call allocation would hurt most).
  if (!faulty_.empty()) copy->reserve_workspace();
  return copy;
}

void FaultSimulator::ensure_bound() const {
  assert(!faulty_.empty() && "bind() must be called before simulation");
}

void FaultSimulator::next_epoch() {
  if (++epoch_ == 0) {  // Wrapped: invalidate all stale stamps once.
    std::fill(touch_stamp_.begin(), touch_stamp_.end(), 0);
    epoch_ = 1;
  }
}

void FaultSimulator::compute_activation(const InjectedFault& fault,
                                        Word* act) const {
  const std::size_t W = good_.num_words;
  const GateId driver = sites_->site(fault.site).driver;
  for (std::size_t w = 0; w < W; ++w) {
    const Word v1 = good_.v1_word(driver, w);
    const Word v2 = good_.v2_word(driver, w);
    switch (fault.polarity) {
      case FaultPolarity::kSlowToRise:
        act[w] = ~v1 & v2 & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kSlowToFall:
        act[w] = v1 & ~v2 & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kSlow:
        act[w] = (v1 ^ v2) & good_.tr_word(driver, w);
        break;
      case FaultPolarity::kStuckAt0:
        // Excited on every pattern whose good value is 1.
        act[w] = v2;
        break;
      case FaultPolarity::kStuckAt1:
        act[w] = ~v2;
        break;
    }
    if (w + 1 == W) act[w] &= tail_;
  }
}

std::vector<Word> FaultSimulator::activation_mask(
    const InjectedFault& fault) const {
  ensure_bound();
  std::vector<Word> act(good_.num_words);
  compute_activation(fault, act.data());
  return act;
}

bool FaultSimulator::observed_diff(const InjectedFault& fault,
                                   std::vector<Word>& diff,
                                   std::vector<std::uint32_t>* touched_outputs) {
  return observed_diff(std::span<const InjectedFault>(&fault, 1), diff,
                       touched_outputs);
}

bool FaultSimulator::observed_diff(std::span<const InjectedFault> faults,
                                   std::vector<Word>& diff,
                                   std::vector<std::uint32_t>* touched_outputs) {
  return run_faulty(faults, &diff, touched_outputs, /*early_exit=*/false);
}

bool FaultSimulator::detects(const InjectedFault& fault) {
  return detects(std::span<const InjectedFault>(&fault, 1));
}

bool FaultSimulator::detects(std::span<const InjectedFault> faults) {
  return run_faulty(faults, nullptr, nullptr, /*early_exit=*/true);
}

bool FaultSimulator::run_faulty(std::span<const InjectedFault> faults,
                                std::vector<Word>* diff,
                                std::vector<std::uint32_t>* touched_outputs,
                                bool early_exit) {
  ensure_bound();
  ++stats_.observed_diff_calls;
  const std::size_t W = good_.num_words;
  const std::size_t num_outputs = nl_->num_outputs();
  if (diff) diff->assign(num_outputs * W, 0);
  touched_.clear();
  next_epoch();
  if (touched_outputs) touched_outputs->clear();
  overrides_.clear();

  const auto& levels = nl_->levels();
  std::uint32_t min_level = kNoLevel;
  std::uint32_t max_level = 0;

  auto faulty_row = [this, W](GateId g) {
    return faulty_.data() + static_cast<std::size_t>(g) * W;
  };
  auto good_row = [this, W](GateId g) {
    return good_.v2.data() + static_cast<std::size_t>(g) * W;
  };
  auto touch = [this](GateId g) {
    if (touch_stamp_[g] != epoch_) {
      touch_stamp_[g] = epoch_;
      touched_.push_back(g);
    }
  };
  auto enqueue = [&](GateId g) {
    if (!observable_[g]) {
      ++stats_.cone_skips;  // Outside every output cone: effect is invisible.
      return;
    }
    if (in_queue_[g]) return;
    in_queue_[g] = 1;
    level_buckets_[levels[g]].push_back(g);
    min_level = std::min(min_level, levels[g]);
    max_level = std::max(max_level, levels[g]);
  };
  // Early-exit detection check on a gate whose faulty row just changed: any
  // valid-pattern miscompare at an observation point ends the simulation.
  auto output_differs = [&](GateId g) {
    if (obs_of_gate_[g].empty()) return false;
    const Word* frow = faulty_row(g);
    const Word* grow = good_row(g);
    Word any = 0;
    for (std::size_t w = 0; w < W; ++w) {
      Word d = frow[w] ^ grow[w];
      if (w + 1 == W) d &= tail_;
      any |= d;
    }
    return any != 0;
  };

  bool detected_early = false;

  // Seed events from each fault.
  for (const InjectedFault& f : faults) {
    const FaultSite& fs = sites_->site(f.site);
    if (!observable_[fs.gate]) {
      ++stats_.cone_skips;  // The whole fault is outside every output cone.
      continue;
    }
    compute_activation(f, act_.data());
    Word any = 0;
    for (std::size_t w = 0; w < W; ++w) any |= act_[w];
    if (any == 0) continue;

    // Faulty value of the signal at the site. TDF: the late V1 value where
    // activated; stuck-at: the forced constant.
    for (std::size_t w = 0; w < W; ++w) {
      const Word v2 = good_.v2_word(fs.driver, w);
      Word forced;
      switch (f.polarity) {
        case FaultPolarity::kStuckAt0: forced = 0; break;
        case FaultPolarity::kStuckAt1: forced = ~Word{0}; break;
        default: forced = good_.v1_word(fs.driver, w); break;
      }
      fv_[w] = (v2 & ~act_[w]) | (forced & act_[w]);
    }

    if (fs.is_stem()) {
      Word changed = 0;
      Word* row = faulty_row(fs.gate);
      for (std::size_t w = 0; w < W; ++w) changed |= row[w] ^ fv_[w];
      if (changed == 0) continue;
      std::copy(fv_.begin(), fv_.end(), row);
      forced_[fs.gate] = 1;
      touch(fs.gate);
      if (early_exit && output_differs(fs.gate)) {
        detected_early = true;
        break;
      }
      for (GateId fo : nl_->gate(fs.gate).fanout) enqueue(fo);
    } else {
      const auto slot = static_cast<std::uint32_t>(overrides_.size());
      if ((slot + 1) * W > override_rows_.size()) {
        override_rows_.resize((slot + 1) * W);  // Beyond the bind() reserve.
      }
      std::copy(fv_.begin(), fv_.end(),
                override_rows_.begin() + static_cast<std::size_t>(slot) * W);
      overrides_.push_back(BranchOverride{fs.gate, fs.pin, slot});
      enqueue(fs.gate);
    }
  }

  // Propagate level by level. Fanout levels strictly exceed a gate's level,
  // so one ascending sweep settles everything.
  const Word* fanin_ptrs[8];
  if (!detected_early && min_level != kNoLevel) {
    for (std::uint32_t lvl = min_level; lvl <= max_level && !detected_early;
         ++lvl) {
      auto& bucket = level_buckets_[lvl];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const GateId g = bucket[i];
        in_queue_[g] = 0;
        if (forced_[g]) continue;  // Stem fault pins this gate's value.
        ++stats_.events_processed;
        stats_.words_evaluated += W;
        const Gate& gate = nl_->gate(g);
        assert(gate.fanin.size() <= 8);
        for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
          fanin_ptrs[k] = faulty_row(gate.fanin[k]);
        }
        for (const BranchOverride& ov : overrides_) {
          if (ov.gate == g) {
            fanin_ptrs[ov.pin] =
                override_rows_.data() + static_cast<std::size_t>(ov.row) * W;
          }
        }
        eval_gate_words(gate, fanin_ptrs, scratch_.data(), W);
        Word changed = 0;
        Word* row = faulty_row(g);
        for (std::size_t w = 0; w < W; ++w) changed |= row[w] ^ scratch_[w];
        if (changed == 0) continue;
        std::copy(scratch_.begin(), scratch_.end(), row);
        touch(g);
        if (early_exit && output_differs(g)) {
          detected_early = true;
          break;
        }
        for (GateId fo : gate.fanout) {
          max_level = std::max(max_level, levels[fo]);
          enqueue(fo);
        }
      }
      // On early exit the bucket still holds unprocessed gates whose
      // in_queue_ flags must survive until the drain below resets them.
      if (detected_early) break;
      bucket.clear();
    }
  }
  if (detected_early && min_level != kNoLevel) {
    // Early exit left events pending: drop them and their dedup flags.
    for (std::uint32_t lvl = min_level; lvl <= max_level; ++lvl) {
      for (GateId g : level_buckets_[lvl]) in_queue_[g] = 0;
      level_buckets_[lvl].clear();
    }
  }

  // Collect observation diffs and restore the workspace. touched_ is
  // duplicate-free (epoch stamps), so each gate is restored exactly once and
  // touched_outputs never repeats an observation index.
  bool any_fail = detected_early;
  for (GateId g : touched_) {
    if (diff) {
      for (std::uint32_t o : obs_of_gate_[g]) {
        if (touched_outputs) touched_outputs->push_back(o);
        Word* drow = diff->data() + static_cast<std::size_t>(o) * W;
        const Word* frow = faulty_row(g);
        const Word* grow = good_row(g);
        for (std::size_t w = 0; w < W; ++w) {
          Word d = frow[w] ^ grow[w];
          if (w + 1 == W) d &= tail_;
          drow[w] = d;
          any_fail |= d != 0;
        }
      }
    }
    std::copy(good_row(g), good_row(g) + W, faulty_row(g));
    forced_[g] = 0;
  }
  if (any_fail) ++stats_.detected;
  if (detected_early) ++stats_.early_exits;
  return any_fail;
}

}  // namespace m3dfl::sim
