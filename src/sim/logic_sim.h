#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "netlist/netlist.h"

namespace m3dfl::sim {

using netlist::GateId;
using netlist::Netlist;

/// 64 patterns are simulated per machine word.
using Word = std::uint64_t;
inline constexpr std::size_t kWordBits = 64;

inline std::size_t words_for(std::size_t num_patterns) {
  return (num_patterns + kWordBits - 1) / kWordBits;
}

/// A block of test patterns, stored input-major and bit-packed: bit p of
/// word(i, p / 64) is the value applied to input index i by pattern p.
class PatternSet {
 public:
  PatternSet() = default;
  PatternSet(std::size_t num_inputs, std::size_t num_patterns);

  /// Uniform random patterns.
  static PatternSet random(std::size_t num_inputs, std::size_t num_patterns,
                           Rng& rng);

  std::size_t num_inputs() const { return num_inputs_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_words() const { return num_words_; }

  Word word(std::size_t input, std::size_t w) const {
    return bits_[input * num_words_ + w];
  }
  Word& word(std::size_t input, std::size_t w) {
    return bits_[input * num_words_ + w];
  }
  std::span<const Word> row(std::size_t input) const {
    return {bits_.data() + input * num_words_, num_words_};
  }

  bool bit(std::size_t input, std::size_t pattern) const;
  void set_bit(std::size_t input, std::size_t pattern, bool value);

  /// Mask of valid pattern bits in word w (all-ones except possibly the
  /// final word). Complement-producing gates set garbage in tail bits, so
  /// anything that counts or reports per-pattern data must apply this.
  Word valid_mask(std::size_t w) const;

 private:
  std::size_t num_inputs_ = 0;
  std::size_t num_patterns_ = 0;
  std::size_t num_words_ = 0;
  std::vector<Word> bits_;
};

/// Evaluates one gate across W words given pointers to its fanin word rows.
/// Shared by the good-machine simulator and the event-driven fault
/// simulator. `out` must not alias any fanin row.
void eval_gate_words(const netlist::Gate& gate, const Word* const* fanin,
                     Word* out, std::size_t W);

/// Bit-parallel good-machine simulator for the combinational frame.
class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& nl) : nl_(&nl) {}

  /// Simulates all patterns; returns gate-major values:
  /// result[g * W + w] is the packed value of gate g for word w.
  std::vector<Word> run(const PatternSet& inputs) const;

  /// Same, writing into a caller-provided buffer of size num_gates * W.
  void run_into(const PatternSet& inputs, std::span<Word> out) const;

 private:
  const Netlist* nl_;
};

/// Good-machine result of launch-off-capture (LoC) two-vector transition
/// testing: V1 is scanned in; the capture of V1 becomes V2's scan state
/// (primary inputs held); the V2 response is observed.
struct TwoVectorResult {
  std::size_t num_patterns = 0;
  std::size_t num_words = 0;
  std::vector<Word> v1;          ///< Gate-major values under V1.
  std::vector<Word> v2;          ///< Gate-major values under V2.
  std::vector<Word> transition;  ///< v1 ^ v2 — the "transitions memorized
                                 ///< with TDF patterns" of paper Sec. III-A.

  Word v1_word(GateId g, std::size_t w) const { return v1[g * num_words + w]; }
  Word v2_word(GateId g, std::size_t w) const { return v2[g * num_words + w]; }
  Word tr_word(GateId g, std::size_t w) const {
    return transition[g * num_words + w];
  }
};

/// Runs the LoC two-vector simulation for a V1 pattern set.
TwoVectorResult simulate_launch_off_capture(const Netlist& nl,
                                            const PatternSet& v1_inputs);

/// Runs a two-vector simulation with an explicitly supplied V2 input block
/// (enhanced-scan test application: both vectors fully controllable, the
/// scheme commercial TDF ATPG approximates with its deterministic
/// launch/capture search). V1 and V2 must have identical shapes.
TwoVectorResult simulate_two_vector(const Netlist& nl,
                                    const PatternSet& v1_inputs,
                                    const PatternSet& v2_inputs);

/// Derives the V2 input block from a V1 result: scan cell i's input takes
/// the value captured at output i under V1; non-scan inputs are held.
PatternSet derive_v2_inputs(const Netlist& nl, const PatternSet& v1_inputs,
                            std::span<const Word> v1_values);

}  // namespace m3dfl::sim
