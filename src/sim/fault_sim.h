#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "sim/logic_sim.h"

namespace m3dfl::sim {

using netlist::SiteId;
using netlist::SiteTable;

/// Fault-model variants supported by the simulator. The paper's framework
/// targets transition delay faults; the classic stuck-at models are also
/// provided (the diagnosis engine and graph pipeline are fault-model
/// agnostic, so the library doubles as a stuck-at diagnosis substrate).
enum class FaultPolarity : std::uint8_t {
  kSlowToRise,  ///< TDF: late 0->1 transition.
  kSlowToFall,  ///< TDF: late 1->0 transition.
  kSlow,        ///< TDF: gross delay, both transitions late.
  kStuckAt0,    ///< Permanent 0 at the site.
  kStuckAt1,    ///< Permanent 1 at the site.
};

const char* polarity_name(FaultPolarity p);

/// All five polarities, in enum order (bench/test sweeps).
inline constexpr FaultPolarity kAllPolarities[] = {
    FaultPolarity::kSlowToRise, FaultPolarity::kSlowToFall,
    FaultPolarity::kSlow, FaultPolarity::kStuckAt0, FaultPolarity::kStuckAt1};

/// True for the stuck-at variants.
inline bool is_stuck_at(FaultPolarity p) {
  return p == FaultPolarity::kStuckAt0 || p == FaultPolarity::kStuckAt1;
}

/// One injected fault at a fault site.
struct InjectedFault {
  SiteId site = netlist::kNoSite;
  FaultPolarity polarity = FaultPolarity::kSlow;

  bool operator==(const InjectedFault&) const = default;
};

/// Event-driven bit-parallel TDF fault simulator.
///
/// Semantics (the standard LoC surrogate model): a TDF at site s is
/// *activated* by pattern p when the fault-free two-vector simulation
/// launches the matching transition through s; the faulty machine then sees
/// the V1 (late) value at s during capture, i.e. the site behaves as a
/// conditional stuck-at of its V1 value. Effects are propagated through the
/// V2 network event-driven (level-ordered), and the failing observation
/// points are reported.
///
/// bind() runs the good-machine two-vector simulation once per pattern set;
/// observed_diff() then costs only the faulty cone, which makes per-candidate
/// signature matching in the diagnosis engine cheap.
///
/// Engine internals (see DESIGN.md "Fault-simulation engine"):
///  * Output-cone pruning: a per-gate "reaches an observed output" mask is
///    precomputed once per netlist; faults whose injection gate lies outside
///    every output cone return immediately, and propagation never enqueues
///    fanout gates outside the observable cone.
///  * Epoch-stamped touched tracking: each gate is recorded, restored and
///    reported at most once per call (touched_outputs is duplicate-free).
///  * Zero-allocation steady state: all propagation scratch (activation and
///    faulty-value rows, branch overrides, level buckets, touched list) is
///    persistent member storage sized at bind(), so observed_diff()/detects()
///    perform no heap allocation after bind() (caller-owned output vectors
///    reuse their own capacity across calls).
class FaultSimulator {
 public:
  /// Lifetime workload counters. Plain (non-atomic) members on purpose: a
  /// simulator is only ever driven by one thread at a time. clone() starts
  /// the copy's counters at zero, and take_stats() snapshots-and-resets, so
  /// shard flushes (datagen, dictionary campaigns) can add whole snapshots
  /// without double-counting work inherited from a pooled clone's source.
  struct SimStats {
    std::uint64_t observed_diff_calls = 0;  ///< Faulty-machine simulations
                                            ///< (observed_diff + detects).
    std::uint64_t detected = 0;             ///< Calls with any failing pattern.
    std::uint64_t events_processed = 0;     ///< Gate evaluations performed.
    std::uint64_t words_evaluated = 0;      ///< 64-pattern words evaluated.
    std::uint64_t cone_skips = 0;  ///< Seeds/enqueues suppressed because the
                                   ///< gate reaches no observed output.
    std::uint64_t early_exits = 0;  ///< detects() calls that stopped at the
                                    ///< first failing observation point.
  };

  FaultSimulator(const netlist::Netlist& nl, const SiteTable& sites);

  /// Binds a V1 pattern set: runs good LoC simulation and prepares the
  /// persistent faulty-value workspace.
  void bind(const PatternSet& v1_inputs);

  /// Binds an enhanced-scan pattern pair (independently controllable V1 and
  /// V2 blocks of identical shape).
  void bind(const PatternSet& v1_inputs, const PatternSet& v2_inputs);

  const TwoVectorResult& good() const { return good_; }
  std::size_t num_words() const { return good_.num_words; }
  std::size_t num_patterns() const { return good_.num_patterns; }

  /// Simulates the faulty machine for the given (possibly multiple) faults.
  /// Fills `diff` (resized to num_outputs * num_words) with the packed
  /// pattern mask of miscompares per observation point, and returns true if
  /// any pattern fails. Invalid tail bits are already masked off.
  /// If `touched_outputs` is non-null it receives the indices of the
  /// observation points reached by the fault effect (a superset of the
  /// failing ones, duplicate-free); all other rows of `diff` are guaranteed
  /// zero, so signature matching needs to scan only these rows.
  bool observed_diff(std::span<const InjectedFault> faults,
                     std::vector<Word>& diff,
                     std::vector<std::uint32_t>* touched_outputs = nullptr);

  /// Convenience: single fault.
  bool observed_diff(const InjectedFault& fault, std::vector<Word>& diff,
                     std::vector<std::uint32_t>* touched_outputs = nullptr);

  /// Detect-only fast path: returns observed_diff(faults, ...)'s boolean
  /// without materializing the diff, stopping propagation as soon as any
  /// observed output differs on a valid pattern. The workspace is fully
  /// restored on return, so detects() and observed_diff() calls interleave
  /// freely on one simulator.
  bool detects(std::span<const InjectedFault> faults);

  /// Convenience: single fault.
  bool detects(const InjectedFault& fault);

  /// Activation mask of a fault under the bound patterns: bit p set iff
  /// pattern p launches the matching transition through the fault site.
  std::vector<Word> activation_mask(const InjectedFault& fault) const;

  /// True if the gate lies in the input cone of at least one observed
  /// output — i.e. a fault effect entering at this gate can be seen at all.
  bool gate_observable(netlist::GateId g) const { return observable_[g] != 0; }

  /// True if a fault at this site can reach any observed output (the
  /// cone-pruning predicate: stem faults enter at the site's gate, branch
  /// faults at the receiving gate).
  bool site_observable(SiteId s) const {
    return observable_[sites_->site(s).gate] != 0;
  }

  /// Deep copy of this (bound) simulator, sharing only the immutable
  /// netlist / site tables. The good-machine results are copied, not
  /// re-simulated, so cloning costs a memcpy instead of a full two-vector
  /// simulation — the facility behind SimulatorPool and every parallel
  /// pipeline stage. observed_diff() restores its workspace on return, so
  /// a clone taken from a simulator at rest behaves identically to the
  /// original (including the zero-allocation steady state: the clone's
  /// scratch reserves are re-established, since vector copies drop spare
  /// capacity).
  std::unique_ptr<FaultSimulator> clone() const;

  /// Workload counters since construction, the last take_stats(), or
  /// clone() (clones start at zero).
  const SimStats& sim_stats() const { return stats_; }

  /// Snapshots the counters and resets them to zero — the shard-flush
  /// primitive: every flush site consumes exactly the work it observed,
  /// no matter how often the simulator is reused or pooled.
  SimStats take_stats() {
    SimStats s = stats_;
    stats_ = SimStats{};
    return s;
  }

 private:
  FaultSimulator(const FaultSimulator&) = default;

  void ensure_bound() const;
  void finish_bind(const PatternSet& v1_inputs);

  /// (Re-)reserves the propagation scratch so the steady state allocates
  /// nothing: touched list, override slots, and per-level event buckets
  /// sized to the observable gates of each level.
  void reserve_workspace();

  /// Writes the (tail-masked) activation mask of `fault` into act[0..W).
  void compute_activation(const InjectedFault& fault, Word* act) const;

  /// Shared engine behind observed_diff() and detects(). `diff` may be null
  /// (detect-only); `early_exit` stops propagation at the first observed
  /// miscompare. Always restores the workspace before returning.
  bool run_faulty(std::span<const InjectedFault> faults,
                  std::vector<Word>* diff,
                  std::vector<std::uint32_t>* touched_outputs, bool early_exit);

  /// Advances the touched-gate epoch, resetting the stamp array on wrap.
  void next_epoch();

  const netlist::Netlist* nl_;
  const SiteTable* sites_;
  TwoVectorResult good_;

  // Per-output-index lists: which observation indices read each gate.
  std::vector<std::vector<std::uint32_t>> obs_of_gate_;

  // 1 iff the gate reaches at least one observed output (fixed per netlist).
  std::vector<std::uint8_t> observable_;

  // Event-driven workspace (sized at bind(); no allocation afterwards).
  std::vector<Word> faulty_;            ///< Persistent copy of good_.v2.
  std::vector<std::uint8_t> in_queue_;  ///< Dedup flag per gate.
  std::vector<std::uint8_t> forced_;    ///< Stem-fault forced gates.
  std::vector<std::vector<netlist::GateId>> level_buckets_;
  std::vector<netlist::GateId> touched_;      ///< Duplicate-free, via epochs.
  std::vector<std::uint32_t> touch_stamp_;    ///< Epoch stamp per gate.
  std::uint32_t epoch_ = 0;
  std::vector<Word> scratch_;  ///< One gate row of evaluation scratch.
  std::vector<Word> act_;      ///< One row of activation-mask scratch.
  std::vector<Word> fv_;       ///< One row of faulty-value scratch.
  Word tail_ = 0;              ///< Valid-bit mask of the final word.

  /// Branch-fault overrides: (gate, pin) -> row slot in override_rows_.
  /// Small, so a flat list with linear scan is fastest.
  struct BranchOverride {
    netlist::GateId gate;
    std::int16_t pin;
    std::uint32_t row;
  };
  std::vector<BranchOverride> overrides_;
  std::vector<Word> override_rows_;  ///< overrides_[i] owns row i.

  SimStats stats_;
};

}  // namespace m3dfl::sim
