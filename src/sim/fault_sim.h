#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "sim/logic_sim.h"

namespace m3dfl::sim {

using netlist::SiteId;
using netlist::SiteTable;

/// Fault-model variants supported by the simulator. The paper's framework
/// targets transition delay faults; the classic stuck-at models are also
/// provided (the diagnosis engine and graph pipeline are fault-model
/// agnostic, so the library doubles as a stuck-at diagnosis substrate).
enum class FaultPolarity : std::uint8_t {
  kSlowToRise,  ///< TDF: late 0->1 transition.
  kSlowToFall,  ///< TDF: late 1->0 transition.
  kSlow,        ///< TDF: gross delay, both transitions late.
  kStuckAt0,    ///< Permanent 0 at the site.
  kStuckAt1,    ///< Permanent 1 at the site.
};

const char* polarity_name(FaultPolarity p);

/// True for the stuck-at variants.
inline bool is_stuck_at(FaultPolarity p) {
  return p == FaultPolarity::kStuckAt0 || p == FaultPolarity::kStuckAt1;
}

/// One injected fault at a fault site.
struct InjectedFault {
  SiteId site = netlist::kNoSite;
  FaultPolarity polarity = FaultPolarity::kSlow;

  bool operator==(const InjectedFault&) const = default;
};

/// Event-driven bit-parallel TDF fault simulator.
///
/// Semantics (the standard LoC surrogate model): a TDF at site s is
/// *activated* by pattern p when the fault-free two-vector simulation
/// launches the matching transition through s; the faulty machine then sees
/// the V1 (late) value at s during capture, i.e. the site behaves as a
/// conditional stuck-at of its V1 value. Effects are propagated through the
/// V2 network event-driven (level-ordered), and the failing observation
/// points are reported.
///
/// bind() runs the good-machine two-vector simulation once per pattern set;
/// observed_diff() then costs only the faulty cone, which makes per-candidate
/// signature matching in the diagnosis engine cheap.
class FaultSimulator {
 public:
  /// Lifetime workload counters. Plain (non-atomic) members on purpose: a
  /// simulator is only ever driven by one thread at a time, and clone()
  /// relies on the defaulted copy constructor (a clone starts with a copy of
  /// the counters; callers that flush deltas must snapshot at clone time).
  struct SimStats {
    std::uint64_t observed_diff_calls = 0;  ///< Faulty-machine simulations.
    std::uint64_t detected = 0;             ///< Calls with any failing pattern.
  };

  FaultSimulator(const netlist::Netlist& nl, const SiteTable& sites);

  /// Binds a V1 pattern set: runs good LoC simulation and prepares the
  /// persistent faulty-value workspace.
  void bind(const PatternSet& v1_inputs);

  /// Binds an enhanced-scan pattern pair (independently controllable V1 and
  /// V2 blocks of identical shape).
  void bind(const PatternSet& v1_inputs, const PatternSet& v2_inputs);

  const TwoVectorResult& good() const { return good_; }
  std::size_t num_words() const { return good_.num_words; }
  std::size_t num_patterns() const { return good_.num_patterns; }

  /// Simulates the faulty machine for the given (possibly multiple) faults.
  /// Fills `diff` (resized to num_outputs * num_words) with the packed
  /// pattern mask of miscompares per observation point, and returns true if
  /// any pattern fails. Invalid tail bits are already masked off.
  /// If `touched_outputs` is non-null it receives the indices of the
  /// observation points reached by the fault effect (a superset of the
  /// failing ones); all other rows of `diff` are guaranteed zero, so
  /// signature matching needs to scan only these rows.
  bool observed_diff(std::span<const InjectedFault> faults,
                     std::vector<Word>& diff,
                     std::vector<std::uint32_t>* touched_outputs = nullptr);

  /// Convenience: single fault.
  bool observed_diff(const InjectedFault& fault, std::vector<Word>& diff,
                     std::vector<std::uint32_t>* touched_outputs = nullptr);

  /// Activation mask of a fault under the bound patterns: bit p set iff
  /// pattern p launches the matching transition through the fault site.
  std::vector<Word> activation_mask(const InjectedFault& fault) const;

  /// Deep copy of this (bound) simulator, sharing only the immutable
  /// netlist / site tables. The good-machine results are copied, not
  /// re-simulated, so cloning costs a memcpy instead of a full two-vector
  /// simulation — the facility behind SimulatorPool and every parallel
  /// pipeline stage. observed_diff() restores its workspace on return, so
  /// a clone taken from a simulator at rest behaves identically to the
  /// original.
  std::unique_ptr<FaultSimulator> clone() const {
    return std::unique_ptr<FaultSimulator>(new FaultSimulator(*this));
  }

  /// Workload counters since construction (or since the clone source's).
  const SimStats& sim_stats() const { return stats_; }

 private:
  FaultSimulator(const FaultSimulator&) = default;

  void ensure_bound() const;
  void finish_bind(const PatternSet& v1_inputs);

  const netlist::Netlist* nl_;
  const SiteTable* sites_;
  TwoVectorResult good_;

  // Per-output-index lists: which observation indices read each gate.
  std::vector<std::vector<std::uint32_t>> obs_of_gate_;

  // Event-driven workspace (sized at bind()).
  std::vector<Word> faulty_;            ///< Persistent copy of good_.v2.
  std::vector<std::uint8_t> in_queue_;  ///< Dedup flag per gate.
  std::vector<std::uint8_t> forced_;    ///< Stem-fault forced gates.
  std::vector<std::vector<netlist::GateId>> level_buckets_;
  std::vector<netlist::GateId> touched_;
  std::vector<Word> scratch_;  ///< One gate row of scratch.
  SimStats stats_;
};

}  // namespace m3dfl::sim
