#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/logic_sim.h"

namespace m3dfl::sim {

/// A tester failure log: the list of miscompares observed when a defective
/// chip is tested. Two shapes exist, mirroring the paper's two evaluation
/// modes:
///  * uncompacted (bypass) — each entry pinpoints the failing observation
///    point (scan cell) directly;
///  * compacted — each entry names only the failing (output channel, shift
///    cycle) of the 20x XOR spatial compactor, so up to 20 scan cells could
///    be responsible.
struct FailureLog {
  struct Obs {
    std::uint32_t pattern;
    std::uint32_t output;  ///< Observation-point index.
    bool operator==(const Obs&) const = default;
  };
  struct CObs {
    std::uint32_t pattern;
    std::uint32_t channel;
    std::uint32_t cycle;  ///< Shift-cycle == chain position.
    bool operator==(const CObs&) const = default;
  };

  bool compacted = false;
  std::vector<Obs> fails;    ///< Populated when !compacted.
  std::vector<CObs> cfails;  ///< Populated when compacted.

  bool empty() const { return fails.empty() && cfails.empty(); }
  std::size_t size() const {
    return compacted ? cfails.size() : fails.size();
  }
  /// Number of distinct failing patterns.
  std::size_t num_failing_patterns() const;
};

/// Builds an uncompacted failure log from per-output diff masks
/// (diff[o * W + w], as produced by FaultSimulator::observed_diff).
FailureLog failure_log_from_diff(std::span<const Word> diff,
                                 std::size_t num_outputs,
                                 std::size_t num_patterns);

/// Text interchange for tester failure logs — the datalog format a tester
/// (or this library's simulator) hands to the diagnosis flow:
///
/// ```
/// m3dfl-faillog v1 bypass          # or: m3dfl-faillog v1 compacted
/// fail <pattern> <output>          # bypass entries
/// fail <pattern> <channel> <cycle> # compacted entries
/// ```
std::string to_text(const FailureLog& log);

/// Parses the format above. Returns an empty optional-like pair on error:
/// ok == false and message describes the first problem.
struct FailureLogParseResult {
  bool ok = true;
  std::string message;
  FailureLog log;
};
FailureLogParseResult failure_log_from_text(const std::string& text);

}  // namespace m3dfl::sim
