#include "sim/failure_log.h"

#include <algorithm>
#include <bit>
#include <sstream>

namespace m3dfl::sim {

std::size_t FailureLog::num_failing_patterns() const {
  std::vector<std::uint32_t> pats;
  if (compacted) {
    pats.reserve(cfails.size());
    for (const CObs& f : cfails) pats.push_back(f.pattern);
  } else {
    pats.reserve(fails.size());
    for (const Obs& f : fails) pats.push_back(f.pattern);
  }
  std::sort(pats.begin(), pats.end());
  pats.erase(std::unique(pats.begin(), pats.end()), pats.end());
  return pats.size();
}

FailureLog failure_log_from_diff(std::span<const Word> diff,
                                 std::size_t num_outputs,
                                 std::size_t num_patterns) {
  FailureLog log;
  log.compacted = false;
  const std::size_t W = words_for(num_patterns);
  for (std::uint32_t o = 0; o < num_outputs; ++o) {
    for (std::size_t w = 0; w < W; ++w) {
      Word m = diff[static_cast<std::size_t>(o) * W + w];
      while (m) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const std::size_t p = w * kWordBits + static_cast<std::size_t>(bit);
        if (p < num_patterns) {
          log.fails.push_back(
              {static_cast<std::uint32_t>(p), o});
        }
      }
    }
  }
  std::sort(log.fails.begin(), log.fails.end(),
            [](const FailureLog::Obs& a, const FailureLog::Obs& b) {
              return a.pattern != b.pattern ? a.pattern < b.pattern
                                            : a.output < b.output;
            });
  return log;
}

std::string to_text(const FailureLog& log) {
  std::ostringstream os;
  os << "m3dfl-faillog v1 " << (log.compacted ? "compacted" : "bypass")
     << "\n";
  if (log.compacted) {
    for (const FailureLog::CObs& f : log.cfails) {
      os << "fail " << f.pattern << ' ' << f.channel << ' ' << f.cycle
         << "\n";
    }
  } else {
    for (const FailureLog::Obs& f : log.fails) {
      os << "fail " << f.pattern << ' ' << f.output << "\n";
    }
  }
  return os.str();
}

FailureLogParseResult failure_log_from_text(const std::string& text) {
  FailureLogParseResult r;
  std::istringstream is(text);
  std::string magic, version, mode;
  is >> magic >> version >> mode;
  if (magic != "m3dfl-faillog" || version != "v1" ||
      (mode != "bypass" && mode != "compacted")) {
    r.ok = false;
    r.message = "bad header (expected 'm3dfl-faillog v1 bypass|compacted')";
    return r;
  }
  r.log.compacted = mode == "compacted";
  std::string word;
  while (is >> word) {
    if (word != "fail") {
      r.ok = false;
      r.message = "unexpected token '" + word + "'";
      return r;
    }
    if (r.log.compacted) {
      std::uint32_t pattern = 0;
      std::uint32_t channel = 0;
      std::uint32_t cycle = 0;
      if (!(is >> pattern >> channel >> cycle)) {
        r.ok = false;
        r.message = "malformed compacted entry";
        return r;
      }
      r.log.cfails.push_back({pattern, channel, cycle});
    } else {
      std::uint32_t pattern = 0;
      std::uint32_t output = 0;
      if (!(is >> pattern >> output)) {
        r.ok = false;
        r.message = "malformed bypass entry";
        return r;
      }
      r.log.fails.push_back({pattern, output});
    }
  }
  return r;
}

}  // namespace m3dfl::sim
