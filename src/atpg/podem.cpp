#include "atpg/podem.h"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace m3dfl::atpg {

using netlist::FaultSite;
using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::kNoGate;
using netlist::Netlist;
using sim::FaultPolarity;
using sim::InjectedFault;

namespace {

/// Three-valued gate evaluation over a value lookup functor.
template <typename ValOf>
V3 eval3(const Gate& gate, ValOf&& val_of) {
  switch (gate.type) {
    case GateType::kInput:
      return V3::kX;
    case GateType::kBuf:
    case GateType::kMiv:
    case GateType::kObs:
      return val_of(0);
    case GateType::kInv:
      return v3_not(val_of(0));
    case GateType::kAnd:
    case GateType::kNand: {
      bool any_x = false;
      for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
        const V3 v = val_of(k);
        if (v == V3::k0) {
          return gate.type == GateType::kAnd ? V3::k0 : V3::k1;
        }
        any_x |= v == V3::kX;
      }
      if (any_x) return V3::kX;
      return gate.type == GateType::kAnd ? V3::k1 : V3::k0;
    }
    case GateType::kOr:
    case GateType::kNor: {
      bool any_x = false;
      for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
        const V3 v = val_of(k);
        if (v == V3::k1) {
          return gate.type == GateType::kOr ? V3::k1 : V3::k0;
        }
        any_x |= v == V3::kX;
      }
      if (any_x) return V3::kX;
      return gate.type == GateType::kOr ? V3::k0 : V3::k1;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      const V3 a = val_of(0);
      const V3 b = val_of(1);
      if (a == V3::kX || b == V3::kX) return V3::kX;
      const bool x = (a == V3::k1) != (b == V3::k1);
      return (gate.type == GateType::kXor) == x ? V3::k1 : V3::k0;
    }
  }
  return V3::kX;
}

}  // namespace

/// One PODEM frame: a 3-valued good machine plus (in V2 mode) a faulty
/// machine with the target site forced. Assignments propagate event-driven
/// — 3-valued evaluation is monotone in the information order, so an
/// X->defined wavefront converges without level ordering; only backtracks
/// need a full recompute.
struct Podem::Frame {
  const Netlist* nl;
  const FaultSite* site;  ///< nullptr in justify-only (V1) mode.
  V3 forced = V3::kX;     ///< Faulty-machine value at the site.

  std::vector<V3> good;
  std::vector<V3> fault;
  std::vector<V3> pi;  ///< Per input index.

  std::vector<std::uint8_t> is_output;
  std::vector<GateId> effect_gates;  ///< Gates where good != fault (defined).
  std::vector<std::uint8_t> in_effect;
  bool observed = false;

  std::vector<GateId> queue_;
  std::vector<std::uint8_t> queued_;

  Frame(const Netlist& netlist, const FaultSite* s, V3 forced_value)
      : nl(&netlist),
        site(s),
        forced(forced_value),
        good(netlist.num_gates(), V3::kX),
        fault(netlist.num_gates(), V3::kX),
        pi(netlist.num_inputs(), V3::kX),
        is_output(netlist.num_gates(), 0),
        in_effect(netlist.num_gates(), 0),
        queued_(netlist.num_gates(), 0) {
    for (GateId o : netlist.outputs()) is_output[o] = 1;
  }

  /// Re-arms the frame for a new target without reallocating.
  void reset(const FaultSite* s, V3 forced_value) {
    site = s;
    forced = forced_value;
    std::fill(pi.begin(), pi.end(), V3::kX);
    // recompute() (called by run_frame) clears the value/effect state.
  }

  V3 eval_good(GateId g) const {
    const Gate& gate = nl->gate(g);
    return eval3(gate, [&](std::size_t k) { return good[gate.fanin[k]]; });
  }

  V3 eval_fault(GateId g) const {
    const Gate& gate = nl->gate(g);
    if (site && site->is_stem() && g == site->gate) return forced;
    if (site && !site->is_stem() && g == site->gate) {
      return eval3(gate, [&](std::size_t k) {
        return static_cast<std::int16_t>(k) == site->pin
                   ? forced
                   : fault[gate.fanin[k]];
      });
    }
    if (!site) return good[g];
    return eval3(gate, [&](std::size_t k) { return fault[gate.fanin[k]]; });
  }

  void note(GateId g) {
    if (!in_effect[g] && good[g] != V3::kX && fault[g] != V3::kX &&
        good[g] != fault[g]) {
      in_effect[g] = 1;
      effect_gates.push_back(g);
      if (is_output[g]) observed = true;
    }
  }

  /// Event-driven propagation from a set of seed gates already updated.
  void propagate() {
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const GateId g = queue_[head];
      queued_[g] = 0;
      for (GateId f : nl->gate(g).fanout) {
        const V3 ng = eval_good(f);
        const V3 nf = site ? eval_fault(f) : ng;
        if (ng != good[f] || nf != fault[f]) {
          good[f] = ng;
          fault[f] = nf;
          note(f);
          if (!queued_[f]) {
            queued_[f] = 1;
            queue_.push_back(f);
          }
        }
      }
    }
    queue_.clear();
  }

  /// Assigns one input (previously X) and propagates.
  void assign(std::size_t input_idx, V3 val) {
    pi[input_idx] = val;
    const GateId g = nl->inputs()[input_idx];
    good[g] = val;
    fault[g] = val;
    // A stem fault on an input pin keeps its forced faulty value.
    if (site && site->is_stem() && site->gate == g) fault[g] = forced;
    note(g);
    queue_.push_back(g);
    queued_[g] = 1;
    propagate();
  }

  /// Full recompute from the PI assignments (used after backtracking,
  /// which removes information and breaks the monotone fast path).
  void recompute() {
    std::fill(good.begin(), good.end(), V3::kX);
    std::fill(fault.begin(), fault.end(), V3::kX);
    std::fill(in_effect.begin(), in_effect.end(), 0);
    effect_gates.clear();
    observed = false;
    queue_.clear();
    std::fill(queued_.begin(), queued_.end(), 0);

    const auto ins = nl->inputs();
    for (std::size_t i = 0; i < ins.size(); ++i) {
      good[ins[i]] = pi[i];
      fault[ins[i]] = pi[i];
    }
    if (site && site->is_stem() &&
        nl->gate(site->gate).type == GateType::kInput) {
      fault[site->gate] = forced;
    }
    for (GateId g : nl->topo_order()) {
      const Gate& gate = nl->gate(g);
      if (gate.type != GateType::kInput) {
        good[g] = eval_good(g);
        fault[g] = site ? eval_fault(g) : good[g];
      }
      note(g);
    }
  }
};

Podem::Podem(const Netlist& nl, const netlist::SiteTable& sites)
    : nl_(&nl), sites_(&sites) {
  input_index_of_gate_.assign(nl.num_gates(), -1);
  const auto ins = nl.inputs();
  for (std::size_t i = 0; i < ins.size(); ++i) {
    input_index_of_gate_[ins[i]] = static_cast<std::int64_t>(i);
  }
}

Podem::~Podem() = default;
Podem::Podem(Podem&&) noexcept = default;
Podem& Podem::operator=(Podem&&) noexcept = default;

namespace {

/// Objective backtrace: walk a (gate, value) objective toward an
/// unassigned input; returns (input index, value) or input -1 on failure.
std::pair<std::int64_t, V3> backtrace_objective(
    const Netlist& nl, const std::vector<V3>& vals,
    const std::vector<std::int64_t>& input_index_of_gate, GateId g, V3 val) {
  for (int guard = 0; guard < 4096; ++guard) {
    const Gate& gate = nl.gate(g);
    if (gate.type == GateType::kInput) {
      return {input_index_of_gate[g], val};
    }
    GateId next = kNoGate;
    V3 next_val = V3::kX;
    switch (gate.type) {
      case GateType::kBuf:
      case GateType::kMiv:
      case GateType::kObs:
        next = gate.fanin[0];
        next_val = val;
        break;
      case GateType::kInv:
        next = gate.fanin[0];
        next_val = v3_not(val);
        break;
      case GateType::kAnd:
      case GateType::kNand:
      case GateType::kOr:
      case GateType::kNor: {
        const bool inverted =
            gate.type == GateType::kNand || gate.type == GateType::kNor;
        // The value required at the AND/OR level; requesting it on any
        // X input either fully justifies (controlling value) or makes
        // progress toward the all-non-controlling case.
        const V3 want = inverted ? v3_not(val) : val;
        for (GateId d : gate.fanin) {
          if (vals[d] == V3::kX) {
            next = d;
            next_val = want;
            break;
          }
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        const GateId a = gate.fanin[0];
        const GateId b = gate.fanin[1];
        const bool want1 =
            (gate.type == GateType::kXor) ? val == V3::k1 : val == V3::k0;
        if (vals[a] == V3::kX) {
          const bool other1 = vals[b] == V3::k1;  // X treated as 0.
          next = a;
          next_val = (want1 != other1) ? V3::k1 : V3::k0;
        } else if (vals[b] == V3::kX) {
          const bool other1 = vals[a] == V3::k1;
          next = b;
          next_val = (want1 != other1) ? V3::k1 : V3::k0;
        }
        break;
      }
      case GateType::kInput:
        break;
    }
    if (next == kNoGate) return {-1, V3::kX};
    g = next;
    val = next_val;
  }
  return {-1, V3::kX};
}

/// Runs one PODEM frame to completion. Success predicate: V2 mode — fault
/// effect observed at an output; V1 mode — driver justified to `want`.
bool run_frame(const Netlist& nl,
               const std::vector<std::int64_t>& input_index_of_gate,
               Podem::Frame& frame, GateId driver, V3 want_driver,
               bool propagate_effect, int backtrack_limit, int* backtracks,
               bool* exhausted) {
  struct Decision {
    std::size_t input;
    bool tried_both;
  };
  std::vector<Decision> stack;
  frame.recompute();

  const int max_iters = 16 * backtrack_limit + 512;
  for (int iter = 0; iter < max_iters; ++iter) {
    if (propagate_effect ? frame.observed
                         : frame.good[driver] == want_driver) {
      return true;
    }

    GateId obj_gate = kNoGate;
    V3 obj_val = V3::kX;
    bool dead_end = false;

    if (frame.good[driver] == V3::kX) {
      obj_gate = driver;
      obj_val = want_driver;
    } else if (frame.good[driver] != want_driver) {
      dead_end = true;  // Activation contradicted.
    } else if (propagate_effect && frame.effect_gates.empty()) {
      // No D exists yet. For a branch fault the activated value sits on one
      // pin of the site's gate only; its side inputs must first be driven
      // to non-controlling values before a fault effect can form. (Stem
      // faults form their D the moment the driver is justified, so reaching
      // here with a stem fault means the effect was masked — dead end.)
      if (frame.site && !frame.site->is_stem()) {
        const Gate& gate = nl.gate(frame.site->gate);
        for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
          if (static_cast<std::int16_t>(k) == frame.site->pin) continue;
          if (frame.good[gate.fanin[k]] != V3::kX) continue;
          switch (gate.type) {
            case GateType::kAnd:
            case GateType::kNand:
              obj_val = V3::k1;
              break;
            case GateType::kOr:
            case GateType::kNor:
              obj_val = V3::k0;
              break;
            default:
              obj_val = V3::k0;
              break;
          }
          obj_gate = gate.fanin[k];
          break;
        }
      }
      if (obj_gate == kNoGate) dead_end = true;
    } else if (propagate_effect) {
      // D-frontier: fanouts of effect gates whose output is still X and
      // which have an X side input to sensitize.
      for (GateId d : frame.effect_gates) {
        for (GateId g : nl.gate(d).fanout) {
          if (frame.good[g] != V3::kX && frame.fault[g] != V3::kX) continue;
          const Gate& gate = nl.gate(g);
          for (GateId side : gate.fanin) {
            if (frame.good[side] != V3::kX) continue;
            switch (gate.type) {
              case GateType::kAnd:
              case GateType::kNand:
                obj_val = V3::k1;
                break;
              case GateType::kOr:
              case GateType::kNor:
                obj_val = V3::k0;
                break;
              default:
                obj_val = V3::k0;
                break;
            }
            obj_gate = side;
            break;
          }
          if (obj_gate != kNoGate) break;
        }
        if (obj_gate != kNoGate) break;
      }
      if (obj_gate == kNoGate) dead_end = true;  // Empty D-frontier.
    } else {
      dead_end = true;  // Justification contradicted.
    }

    std::int64_t pin = -1;
    V3 pin_val = V3::kX;
    if (!dead_end) {
      std::tie(pin, pin_val) = backtrace_objective(
          nl, frame.good, input_index_of_gate, obj_gate, obj_val);
      if (pin < 0) dead_end = true;
    }

    if (dead_end) {
      bool flipped = false;
      while (!stack.empty()) {
        Decision& d = stack.back();
        if (!d.tried_both) {
          d.tried_both = true;
          frame.pi[d.input] = v3_not(frame.pi[d.input]);
          ++*backtracks;
          flipped = true;
          break;
        }
        frame.pi[d.input] = V3::kX;
        stack.pop_back();
      }
      if (!flipped) {
        if (exhausted) *exhausted = true;  // Search tree fully explored.
        return false;
      }
      if (*backtracks > backtrack_limit) return false;
      frame.recompute();
      continue;
    }

    stack.push_back({static_cast<std::size_t>(pin), false});
    frame.assign(static_cast<std::size_t>(pin), pin_val);
  }
  return false;
}

}  // namespace

Podem::Result Podem::generate(const InjectedFault& target,
                              int backtrack_limit) {
  Result result;
  const FaultSite& site = sites_->site(target.site);

  if (sim::is_stuck_at(target.polarity)) {
    // Stuck-at: a single-frame problem — excite the opposite good value
    // and propagate; V1 is unconstrained.
    const V3 good_val = target.polarity == FaultPolarity::kStuckAt0
                            ? V3::k1
                            : V3::k0;
    const V3 forced_val = v3_not(good_val);
    if (!v2_frame_) {
      v2_frame_ = std::make_unique<Frame>(*nl_, &site, forced_val);
    }
    Frame& frame = *v2_frame_;
    frame.reset(&site, forced_val);
    int backtracks = 0;
    bool exhausted = false;
    if (!run_frame(*nl_, input_index_of_gate_, frame, site.driver, good_val,
                   /*propagate_effect=*/true, backtrack_limit, &backtracks,
                   &exhausted)) {
      result.backtracks = backtracks;
      result.untestable = exhausted;
      return result;
    }
    result.success = true;
    result.v1_inputs.assign(nl_->num_inputs(), V3::kX);
    result.v2_inputs = frame.pi;
    result.backtracks = backtracks;
    return result;
  }

  // Polarity kSlow is tested as slow-to-rise (either transition suffices).
  const bool rise = target.polarity != FaultPolarity::kSlowToFall;
  const V3 v1_value = rise ? V3::k0 : V3::k1;  // Initial value at the site.
  const V3 v2_value = rise ? V3::k1 : V3::k0;  // Final (good) value.
  const V3 forced = v1_value;                  // Faulty machine is "late".

  // V2 frame: excite good = v2_value at the driver and propagate the
  // stuck-at-`forced` effect to an observation point.
  if (!v2_frame_) {
    v2_frame_ = std::make_unique<Frame>(*nl_, &site, forced);
  }
  Frame& v2 = *v2_frame_;
  v2.reset(&site, forced);
  int backtracks = 0;
  bool exhausted = false;
  if (!run_frame(*nl_, input_index_of_gate_, v2, site.driver, v2_value,
                 /*propagate_effect=*/true, backtrack_limit, &backtracks,
                 &exhausted)) {
    result.backtracks = backtracks;
    result.untestable = exhausted;
    return result;
  }

  // V1 frame: justify the initial value at the driver (no propagation).
  if (!v1_frame_) {
    v1_frame_ = std::make_unique<Frame>(*nl_, nullptr, V3::kX);
  }
  Frame& v1 = *v1_frame_;
  v1.reset(nullptr, V3::kX);
  if (!run_frame(*nl_, input_index_of_gate_, v1, site.driver, v1_value,
                 /*propagate_effect=*/false, backtrack_limit, &backtracks,
                 &exhausted)) {
    result.backtracks = backtracks;
    result.untestable = exhausted;
    return result;
  }

  result.success = true;
  result.v1_inputs = v1.pi;
  result.v2_inputs = v2.pi;
  result.backtracks = backtracks;
  return result;
}

}  // namespace m3dfl::atpg
