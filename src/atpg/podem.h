#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/fault_site.h"
#include "sim/fault_sim.h"

namespace m3dfl::atpg {

/// Three-valued logic value used by the deterministic test generator.
enum class V3 : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline V3 v3_not(V3 v) {
  if (v == V3::kX) return V3::kX;
  return v == V3::k0 ? V3::k1 : V3::k0;
}

/// PODEM deterministic test generator for transition delay faults under
/// enhanced-scan application (independently controllable launch/capture
/// vectors). This is the "deterministic top-off" stage of the library's
/// ATPG: random patterns detect the easy faults, PODEM targets the
/// random-resistant remainder, reproducing the 97-99% coverage a
/// commercial tool reports in the paper's Table III.
///
/// The standard TDF surrogate splits a target into two single-frame
/// problems:
///  * V1 frame: justify the initial value at the fault site's driver
///    (0 for slow-to-rise, 1 for slow-to-fall);
///  * V2 frame: classic stuck-at PODEM — excite the final value and
///    propagate the fault effect (D / D-bar) to any observation point.
class Podem {
 public:
  Podem(const netlist::Netlist& nl, const netlist::SiteTable& sites);

  struct Result {
    bool success = false;
    /// The decision tree was exhausted below the backtrack limit: the
    /// fault is proven untestable under the TDF surrogate model (no
    /// launch/capture pair can both activate and propagate it). Commercial
    /// tools exclude such faults from the coverage denominator.
    bool untestable = false;
    /// Per input index; kX means unconstrained (free for random fill).
    std::vector<V3> v1_inputs;
    std::vector<V3> v2_inputs;
    int backtracks = 0;
  };

  /// Generates a two-vector test for the fault, or fails within the
  /// backtrack limit (the fault may be untestable or just hard).
  Result generate(const sim::InjectedFault& fault, int backtrack_limit = 50);

  /// Implementation detail exposed for the in-file helpers.
  struct Frame;
  ~Podem();
  Podem(Podem&&) noexcept;
  Podem& operator=(Podem&&) noexcept;

 private:
  const netlist::Netlist* nl_;
  const netlist::SiteTable* sites_;
  std::vector<std::int64_t> input_index_of_gate_;
  /// Reused across generate() calls; one PODEM run allocates nothing.
  std::unique_ptr<Frame> v2_frame_;
  std::unique_ptr<Frame> v1_frame_;
};

}  // namespace m3dfl::atpg
