#include "atpg/coverage.h"

#include "common/rng.h"

namespace m3dfl::atpg {

std::vector<InjectedFault> enumerate_tdf_faults(
    const netlist::SiteTable& sites) {
  std::vector<InjectedFault> faults;
  faults.reserve(sites.size() * 2);
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    faults.push_back({s, FaultPolarity::kSlowToRise});
    faults.push_back({s, FaultPolarity::kSlowToFall});
  }
  return faults;
}

std::vector<InjectedFault> enumerate_stuck_at_faults(
    const netlist::SiteTable& sites) {
  std::vector<InjectedFault> faults;
  faults.reserve(sites.size() * 2);
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    faults.push_back({s, FaultPolarity::kStuckAt0});
    faults.push_back({s, FaultPolarity::kStuckAt1});
  }
  return faults;
}

bool is_detected(sim::FaultSimulator& fsim, const InjectedFault& fault) {
  return fsim.detects(fault);
}

CoverageResult measure_tdf_coverage(sim::FaultSimulator& fsim,
                                    const netlist::SiteTable& sites,
                                    std::size_t sample_limit,
                                    std::uint64_t seed) {
  std::vector<InjectedFault> faults = enumerate_tdf_faults(sites);
  if (sample_limit > 0 && sample_limit < faults.size()) {
    Rng rng(seed);
    rng.shuffle(faults);
    faults.resize(sample_limit);
  }
  CoverageResult result;
  result.num_faults = faults.size();
  // Detect-only: the early-exit fast path stops each simulation at the
  // first failing observation point.
  for (const InjectedFault& f : faults) {
    if (fsim.detects(f)) ++result.detected;
  }
  return result;
}

}  // namespace m3dfl::atpg
