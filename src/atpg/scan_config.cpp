#include "atpg/scan_config.h"

#include <algorithm>
#include <cassert>

namespace m3dfl::atpg {

ScanConfig ScanConfig::make(std::uint32_t num_outputs,
                            std::uint32_t num_chains,
                            std::uint32_t compaction_ratio) {
  assert(num_chains > 0 && compaction_ratio > 0);
  ScanConfig cfg;
  cfg.num_outputs = num_outputs;
  cfg.num_chains = std::min(num_chains, std::max(1u, num_outputs));
  cfg.num_channels =
      (cfg.num_chains + compaction_ratio - 1) / compaction_ratio;
  cfg.chain_length =
      cfg.num_chains ? (num_outputs + cfg.num_chains - 1) / cfg.num_chains
                     : 0;
  return cfg;
}

std::vector<std::uint32_t> ScanConfig::outputs_of(std::uint32_t channel,
                                                  std::uint32_t cycle) const {
  std::vector<std::uint32_t> outs;
  for (std::uint32_t chain = channel; chain < num_chains;
       chain += num_channels) {
    const std::uint32_t o = cycle * num_chains + chain;
    if (o < num_outputs) outs.push_back(o);
  }
  return outs;
}

}  // namespace m3dfl::atpg
