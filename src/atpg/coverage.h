#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault_sim.h"

namespace m3dfl::atpg {

using sim::FaultPolarity;
using sim::InjectedFault;

/// Enumerates the full TDF fault list: slow-to-rise and slow-to-fall at
/// every fault site (every gate pin plus every MIV).
std::vector<InjectedFault> enumerate_tdf_faults(
    const netlist::SiteTable& sites);

/// Enumerates the classic stuck-at fault list: SA0 and SA1 at every site.
std::vector<InjectedFault> enumerate_stuck_at_faults(
    const netlist::SiteTable& sites);

struct CoverageResult {
  std::size_t num_faults = 0;
  std::size_t detected = 0;
  double coverage() const {
    return num_faults ? static_cast<double>(detected) / num_faults : 0.0;
  }
};

/// Measures TDF coverage of the pattern set bound to `fsim`. If
/// sample_limit > 0, a deterministic random sample of that many faults is
/// measured instead of the full list (statistical fault sampling, the
/// standard practice for large designs).
CoverageResult measure_tdf_coverage(sim::FaultSimulator& fsim,
                                    const netlist::SiteTable& sites,
                                    std::size_t sample_limit = 0,
                                    std::uint64_t seed = 1);

/// True if the fault produces at least one miscompare under the bound
/// pattern set.
bool is_detected(sim::FaultSimulator& fsim, const InjectedFault& fault);

}  // namespace m3dfl::atpg
