#include "atpg/patterns.h"

#include <algorithm>

#include "atpg/coverage.h"
#include "atpg/podem.h"
#include "common/rng.h"
#include "sim/fault_sim.h"

namespace m3dfl::atpg {

using sim::PatternSet;

sim::PatternSet generate_tdf_patterns(const netlist::Netlist& nl,
                                      const PatternGenOptions& opts) {
  Rng rng(opts.seed);
  sim::PatternSet ps(nl.num_inputs(), opts.num_patterns);
  // Weighted-random: each input gets a weight in {1/(L+1) .. L/(L+1)} per
  // pattern *block*, re-drawn every word to vary the bias over time.
  const int L = opts.weight_levels;
  for (std::size_t i = 0; i < ps.num_inputs(); ++i) {
    for (std::size_t w = 0; w < ps.num_words(); ++w) {
      const double p =
          static_cast<double>(rng.uniform_int(1, L)) / static_cast<double>(L + 1);
      sim::Word word = 0;
      for (std::size_t b = 0; b < sim::kWordBits; ++b) {
        if (rng.bernoulli(p)) word |= sim::Word{1} << b;
      }
      ps.word(i, w) = word & ps.valid_mask(w);
    }
  }
  return ps;
}

namespace {

/// Copies `src` into the first src.num_patterns() slots of a larger set.
PatternSet grow(const PatternSet& src, std::size_t new_count) {
  PatternSet out(src.num_inputs(), new_count);
  for (std::size_t i = 0; i < src.num_inputs(); ++i) {
    for (std::size_t p = 0; p < src.num_patterns(); ++p) {
      out.set_bit(i, p, src.bit(i, p));
    }
  }
  return out;
}

void fill_pattern(PatternSet& ps, std::size_t slot,
                  const std::vector<V3>& assign, Rng& rng) {
  for (std::size_t i = 0; i < ps.num_inputs(); ++i) {
    const V3 v = assign[i];
    const bool bit = v == V3::kX ? rng.bernoulli(0.5) : v == V3::k1;
    ps.set_bit(i, slot, bit);
  }
}

}  // namespace

TdfPatternPair generate_tdf_patterns_with_topoff(
    const netlist::Netlist& nl, const netlist::SiteTable& sites,
    const PatternGenOptions& opts, std::size_t max_topoff) {
  TdfPatternPair pair;
  pair.num_random = opts.num_patterns;

  PatternGenOptions v2_opts = opts;
  v2_opts.seed = derive_seed(opts.seed, 0x5eed);
  PatternSet v1 = generate_tdf_patterns(nl, opts);
  PatternSet v2 = generate_tdf_patterns(nl, v2_opts);

  // Fault-dropping pass over the random base.
  sim::FaultSimulator fsim(nl, sites);
  fsim.bind(v1, v2);
  std::vector<sim::InjectedFault> pending = enumerate_tdf_faults(sites);
  const std::size_t total_faults = pending.size();
  std::size_t detected = 0;
  {
    // Drop-detection only needs the boolean, so use the early-exit path.
    std::vector<sim::InjectedFault> undetected;
    for (const auto& f : pending) {
      if (fsim.detects(f)) {
        ++detected;
      } else {
        undetected.push_back(f);
      }
    }
    pending = std::move(undetected);
  }

  // Deterministic top-off, in blocks of up to 64 patterns so fortuitous
  // detection by the random X-fill drops faults cheaply.
  Podem podem(nl, sites);
  Rng fill_rng(derive_seed(opts.seed, 0xf111));
  struct Target {
    sim::InjectedFault fault;
    bool processed = false;  // PODEM already attempted.
  };
  std::vector<Target> targets;
  targets.reserve(pending.size());
  for (const auto& f : pending) targets.push_back({f, false});

  std::size_t added = 0;
  while (added < max_topoff) {
    const std::size_t block = std::min<std::size_t>(64, max_topoff - added);
    PatternSet bv1(nl.num_inputs(), block);
    PatternSet bv2(nl.num_inputs(), block);
    std::size_t produced = 0;
    for (Target& t : targets) {
      if (produced >= block) break;
      if (t.processed) continue;
      t.processed = true;
      const Podem::Result r = podem.generate(t.fault);
      if (r.untestable) ++pair.num_untestable;
      if (!r.success) continue;
      fill_pattern(bv1, produced, r.v1_inputs, fill_rng);
      fill_pattern(bv2, produced, r.v2_inputs, fill_rng);
      ++produced;
    }
    if (produced == 0) break;  // Every remaining target failed PODEM.
    added += produced;

    // Append the produced block to the full pattern pair.
    const std::size_t old_count = v1.num_patterns();
    PatternSet nv1 = grow(v1, old_count + produced);
    PatternSet nv2 = grow(v2, old_count + produced);
    for (std::size_t p = 0; p < produced; ++p) {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
        nv1.set_bit(i, old_count + p, bv1.bit(i, p));
        nv2.set_bit(i, old_count + p, bv2.bit(i, p));
      }
    }
    v1 = std::move(nv1);
    v2 = std::move(nv2);

    // Drop everything the new block detects (detection is monotone in the
    // pattern set, so simulating just the block is sufficient).
    PatternSet sv1(nl.num_inputs(), produced);
    PatternSet sv2(nl.num_inputs(), produced);
    for (std::size_t p = 0; p < produced; ++p) {
      for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
        sv1.set_bit(i, p, bv1.bit(i, p));
        sv2.set_bit(i, p, bv2.bit(i, p));
      }
    }
    sim::FaultSimulator bsim(nl, sites);
    bsim.bind(sv1, sv2);
    std::vector<Target> still;
    still.reserve(targets.size());
    for (const Target& t : targets) {
      if (bsim.detects(t.fault)) {
        ++detected;
      } else {
        still.push_back(t);
      }
    }
    targets = std::move(still);
  }

  pair.v1 = std::move(v1);
  pair.v2 = std::move(v2);
  pair.num_topoff = added;
  pair.coverage =
      total_faults ? static_cast<double>(detected) / total_faults : 0.0;
  const std::size_t testable = total_faults - pair.num_untestable;
  pair.test_coverage =
      testable ? static_cast<double>(detected) / testable : 0.0;
  return pair;
}

}  // namespace m3dfl::atpg
