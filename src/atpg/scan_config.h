#pragma once

#include <cstdint>
#include <vector>

namespace m3dfl::atpg {

/// Scan architecture of a design: observation points are stitched
/// round-robin into num_chains scan chains; chains are grouped onto
/// num_channels output channels through the spatial compactor
/// (compaction ratio = chains per channel, 20x in the paper).
struct ScanConfig {
  std::uint32_t num_outputs = 0;   ///< Observation points (scan cells).
  std::uint32_t num_chains = 1;
  std::uint32_t num_channels = 1;
  std::uint32_t chain_length = 0;  ///< ceil(num_outputs / num_chains).

  /// Builds a config; num_channels = ceil(num_chains / compaction_ratio).
  static ScanConfig make(std::uint32_t num_outputs, std::uint32_t num_chains,
                         std::uint32_t compaction_ratio);

  // Observation point o sits at position o / num_chains of chain
  // o % num_chains (round-robin stitching balances chain lengths).
  std::uint32_t chain_of(std::uint32_t output) const {
    return output % num_chains;
  }
  std::uint32_t position_of(std::uint32_t output) const {
    return output / num_chains;
  }
  std::uint32_t channel_of_chain(std::uint32_t chain) const {
    return chain % num_channels;
  }
  std::uint32_t channel_of(std::uint32_t output) const {
    return channel_of_chain(chain_of(output));
  }

  /// Observation points that map to (channel, cycle): the ambiguity set a
  /// diagnosis engine faces for one compacted miscompare (<= ratio points).
  std::vector<std::uint32_t> outputs_of(std::uint32_t channel,
                                        std::uint32_t cycle) const;

  /// Effective compaction ratio (chains per channel).
  double ratio() const {
    return num_channels ? static_cast<double>(num_chains) / num_channels : 0;
  }
};

}  // namespace m3dfl::atpg
