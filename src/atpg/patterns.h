#pragma once

#include <cstdint>

#include "netlist/fault_site.h"
#include "netlist/netlist.h"
#include "sim/logic_sim.h"

namespace m3dfl::atpg {

/// Options of the TDF pattern generator.
struct PatternGenOptions {
  std::size_t num_patterns = 256;
  /// Per-input 1-probability weights are drawn from this many discrete
  /// levels; weighted-random generation detects random-resistant faults
  /// faster than pure uniform patterns.
  int weight_levels = 3;
  std::uint64_t seed = 1;
};

/// Generates a launch-off-capture TDF pattern set for the design.
///
/// This plays the role of the paper's commercial TDF ATPG (Tessent): it
/// produces the V1 scan-load blocks. Weighted-random generation with a
/// deterministic seed gives high transition coverage on the library's
/// benchmark netlists (Table III reports 97-99% in the paper; our
/// bench_table3 binary measures the equivalent figure for each benchmark).
sim::PatternSet generate_tdf_patterns(const netlist::Netlist& nl,
                                      const PatternGenOptions& opts);

/// An enhanced-scan TDF pattern pair (launch block V1, capture block V2).
struct TdfPatternPair {
  sim::PatternSet v1;
  sim::PatternSet v2;
  std::size_t num_random = 0;   ///< Leading weighted-random patterns.
  std::size_t num_topoff = 0;   ///< Trailing deterministic (PODEM) patterns.
  std::size_t num_untestable = 0;  ///< Faults PODEM proved untestable.
  double coverage = 0.0;        ///< Raw TDF coverage: detected / all.
  /// Test coverage in the commercial-tool sense: detected / testable
  /// (untestable faults excluded from the denominator).
  double test_coverage = 0.0;
};

/// Full ATPG flow: weighted-random base patterns with fault-dropping
/// simulation, then deterministic PODEM top-off targeting the undetected
/// faults (X bits random-filled so each deterministic pattern also detects
/// fortuitous faults). Stops when the fault list is exhausted, no target
/// succeeds, or max_topoff extra patterns were added. This is the stand-in
/// for the paper's commercial TDF ATPG and reaches comparable (97-99%)
/// coverage on the benchmark netlists.
TdfPatternPair generate_tdf_patterns_with_topoff(
    const netlist::Netlist& nl, const netlist::SiteTable& sites,
    const PatternGenOptions& opts, std::size_t max_topoff);

}  // namespace m3dfl::atpg
