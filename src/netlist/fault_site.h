#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl::netlist {

/// Dense identifier of a fault site.
using SiteId = std::uint32_t;

inline constexpr SiteId kNoSite = 0xffffffffu;

/// One fault site. Following the paper (Sec. III-A), *every pin of a gate*
/// is a fault site: the output pin (stem) and each input pin (branch).
/// MIVs contribute their stem site as the "MIV node" of the graph.
struct FaultSite {
  GateId gate = kNoGate;    ///< Owning gate.
  std::int16_t pin = -1;    ///< -1: output (stem); >= 0: input pin index.
  GateId driver = kNoGate;  ///< Signal seen at this site (gate itself for a
                            ///< stem, gate.fanin[pin] for a branch).

  bool is_stem() const { return pin < 0; }
};

/// Enumeration of all fault sites of a netlist, with O(1) lookups in both
/// directions. Site ids are stable for a given netlist: all of the library's
/// layers (fault simulation, diagnosis reports, heterogeneous-graph nodes)
/// share this numbering, so a diagnosis candidate, a GNN graph node, and an
/// injected fault refer to the same physical location by the same id.
class SiteTable {
 public:
  SiteTable() = default;
  explicit SiteTable(const Netlist& nl);

  std::size_t size() const { return sites_.size(); }
  const FaultSite& site(SiteId s) const { return sites_[s]; }

  /// Stem site id of a gate.
  SiteId stem_of(GateId g) const { return stem_of_gate_[g]; }

  /// Branch site id for input pin `pin` of gate `g`.
  SiteId branch_of(GateId g, int pin) const {
    return first_branch_of_gate_[g] + static_cast<SiteId>(pin);
  }

  /// Tier a site belongs to: stem sites belong to their gate's tier, branch
  /// sites to the receiving gate's tier. (MIV stem sites carry their MIV
  /// gate's placement tier, but policy code treats MIVs as tier-less — see
  /// the paper's Table XI discussion.)
  Tier tier_of(SiteId s, const Netlist& nl) const;

  /// True if this site is the stem of an MIV gate (an "MIV node").
  bool is_miv_site(SiteId s, const Netlist& nl) const;

  /// All MIV stem sites, ascending.
  std::vector<SiteId> miv_sites(const Netlist& nl) const;

 private:
  std::vector<FaultSite> sites_;
  std::vector<SiteId> stem_of_gate_;
  std::vector<SiteId> first_branch_of_gate_;
};

}  // namespace m3dfl::netlist
