#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace m3dfl::netlist {

/// Structural-Verilog interchange for the library's netlists.
///
/// The dialect is the flat gate-level subset every synthesis tool can emit
/// and most can re-read:
///
/// ```verilog
/// module top (pi_0, pi_1, ..., po_0, po_1, ...);
///   input pi_0; ...
///   output po_0; ...
///   wire n12; ...
///   NAND2 g12 (.Y(n12), .A(pi_0), .B(n7));       // logic gates
///   MIV   g40 (.Y(n40), .A(n12));                // inter-tier vias
///   // m3dfl attributes ride in structured comments:
///   // @m3dfl tier g12 1
///   // @m3dfl pos  g12 0.4375
///   // @m3dfl scan_cells 40
/// endmodule
/// ```
///
/// Cell names: BUF, INV, AND2..AND4, NAND2..NAND4, OR2..OR4, NOR2..NOR4,
/// XOR2, XNOR2, MIV, OBS. Ports are Y (output) and A, B, C, D (inputs).
/// Inputs are named pi_<index> in inputs() order; outputs po_<index> in
/// outputs() order (a po_ is an `assign` alias of the observed net).
/// Tier / placement / scan metadata is carried in `@m3dfl` comments so a
/// plain Verilog flow can ignore it while round-trips stay lossless.

/// Serializes a netlist to the dialect above.
void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name = "top");

/// Convenience: serialize to a string.
std::string to_verilog(const Netlist& nl,
                       const std::string& module_name = "top");

/// Parse failure diagnostics.
struct VerilogParseError {
  bool ok = true;
  std::size_t line = 0;
  std::string message;
};

/// Parses the dialect back into a Netlist. On failure returns an empty
/// netlist and fills `error`. Unknown `@m3dfl` keys are ignored (forward
/// compatibility); unknown cells are an error.
Netlist read_verilog(std::istream& is, VerilogParseError* error = nullptr);

/// Convenience: parse from a string.
Netlist verilog_from_string(const std::string& text,
                            VerilogParseError* error = nullptr);

}  // namespace m3dfl::netlist
