#include "netlist/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>

#include "common/rng.h"

namespace m3dfl::netlist {
namespace {

/// Picks a gate type according to the generator's mix fractions.
GateType pick_type(const GeneratorParams& p, Rng& rng) {
  const double r = rng.uniform();
  if (r < p.buffer_fraction) {
    return rng.bernoulli(0.5) ? GateType::kBuf : GateType::kInv;
  }
  if (r < p.buffer_fraction + p.xor_fraction) {
    return rng.bernoulli(0.5) ? GateType::kXor : GateType::kXnor;
  }
  switch (rng.next_below(4)) {
    case 0: return GateType::kAnd;
    case 1: return GateType::kNand;
    case 2: return GateType::kOr;
    default: return GateType::kNor;
  }
}

/// 64-pattern functional signature of a gate given fanin signatures —
/// used to veto constant nets during generation (XOR(a, BUF(a)) and
/// similar reconvergent constants would otherwise poison the fault list
/// with untestable faults).
std::uint64_t eval_signature(GateType t, const std::vector<std::uint64_t>& sig,
                             std::span<const GateId> fanin) {
  switch (t) {
    case GateType::kInput: return 0;
    case GateType::kBuf:
    case GateType::kMiv:
    case GateType::kObs: return sig[fanin[0]];
    case GateType::kInv: return ~sig[fanin[0]];
    case GateType::kXor: return sig[fanin[0]] ^ sig[fanin[1]];
    case GateType::kXnor: return ~(sig[fanin[0]] ^ sig[fanin[1]]);
    case GateType::kAnd:
    case GateType::kNand: {
      std::uint64_t v = sig[fanin[0]];
      for (std::size_t k = 1; k < fanin.size(); ++k) v &= sig[fanin[k]];
      return t == GateType::kAnd ? v : ~v;
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::uint64_t v = sig[fanin[0]];
      for (std::size_t k = 1; k < fanin.size(); ++k) v |= sig[fanin[k]];
      return t == GateType::kOr ? v : ~v;
    }
  }
  return 0;
}

bool is_constant_sig(std::uint64_t sig) { return sig == 0 || sig == ~0ULL; }

int pick_fanin_count(GateType t, const GeneratorParams& p, Rng& rng) {
  const FaninArity ar = fanin_arity(t);
  if (ar.min == ar.max) return ar.min;
  if (rng.bernoulli(p.wide_gate_fraction)) {
    return static_cast<int>(rng.uniform_int(3, ar.max));
  }
  return 2;
}

}  // namespace

Netlist generate_netlist(const GeneratorParams& params) {
  assert(params.num_logic_gates > 0);
  assert(params.num_scan_cells > 0);
  assert(params.num_levels > 0);
  Rng rng(params.seed);
  Netlist nl;

  // Inputs: scan-cell Q pins first, then primary inputs, spread uniformly
  // across the placement span (scan cells are placed all over the die).
  const std::size_t num_inputs =
      params.num_scan_cells + params.num_primary_inputs;
  std::vector<std::uint64_t> sig;  // Functional signature per gate.
  for (std::size_t i = 0; i < num_inputs; ++i) {
    const GateId g = nl.add_input();
    nl.gate(g).pos = static_cast<float>(
        (static_cast<double>(i) + 0.5) / static_cast<double>(num_inputs));
    sig.push_back(rng.next());
  }
  // Keep input placement uncorrelated with scan index.
  {
    std::vector<float> xs(num_inputs);
    for (std::size_t i = 0; i < num_inputs; ++i) xs[i] = nl.gate(nl.inputs()[i]).pos;
    rng.shuffle(xs);
    for (std::size_t i = 0; i < num_inputs; ++i) nl.gate(nl.inputs()[i]).pos = xs[i];
  }

  // Levelized construction. per_level[l] holds gate ids created at level l
  // (level 0 = the inputs). unobserved tracks drivers with no fanout yet so
  // that we can bias fanin selection toward them — this guarantees (after
  // the collector pass below) that every gate reaches an output.
  std::vector<std::vector<GateId>> per_level(params.num_levels + 1);
  per_level[0].assign(nl.inputs().begin(), nl.inputs().end());

  std::vector<GateId> unobserved(nl.inputs().begin(), nl.inputs().end());
  std::vector<std::size_t> pos_in_unobserved(num_inputs + params.num_logic_gates * 3,
                                             static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < unobserved.size(); ++i) {
    pos_in_unobserved[unobserved[i]] = i;
  }

  auto mark_observed = [&](GateId g) {
    const std::size_t pos = pos_in_unobserved[g];
    if (pos == static_cast<std::size_t>(-1)) return;
    // Swap-remove.
    const GateId last = unobserved.back();
    unobserved[pos] = last;
    pos_in_unobserved[last] = pos;
    unobserved.pop_back();
    pos_in_unobserved[g] = static_cast<std::size_t>(-1);
  };
  auto mark_unobserved = [&](GateId g) {
    pos_in_unobserved[g] = unobserved.size();
    unobserved.push_back(g);
  };

  // Rent-style hub state (rent_exponent > 0 only; the default path draws
  // nothing from the RNG here, keeping legacy seeds bit-identical). Gates
  // with a drawn capacity >= 2 sit in an open-hub list; fanin selection
  // preferentially reuses them until their budget is spent, which is what
  // produces the heavy-tailed fanout distribution of real placed designs.
  const bool rent = params.rent_exponent > 0.0;
  constexpr std::size_t kNotOpen = static_cast<std::size_t>(-1);
  std::vector<GateId> open_gates;
  std::vector<std::uint32_t> open_rem;
  std::vector<std::size_t> pos_in_open;
  if (rent) {
    pos_in_open.assign(num_inputs + params.num_logic_gates * 3, kNotOpen);
  }
  auto open_add = [&](GateId g) {
    if (!rent) return;
    // P(cap >= k) = k^(-1/rent_exponent): an inverse-transform Pareto draw.
    const double u = std::max(rng.uniform(), 1e-12);
    const double cap = std::pow(u, -params.rent_exponent);
    const auto budget =
        static_cast<std::uint32_t>(std::clamp(cap, 1.0, 64.0));
    if (budget <= 1) return;  // The common case: an ordinary net.
    pos_in_open[g] = open_gates.size();
    open_gates.push_back(g);
    open_rem.push_back(budget);
  };
  auto open_consume = [&](GateId g) {
    if (!rent || pos_in_open[g] == kNotOpen) return;
    const std::size_t at = pos_in_open[g];
    if (--open_rem[at] > 0) return;
    const GateId last = open_gates.back();
    open_gates[at] = last;
    open_rem[at] = open_rem.back();
    pos_in_open[last] = at;
    open_gates.pop_back();
    open_rem.pop_back();
    pos_in_open[g] = kNotOpen;
  };
  if (rent) {
    for (GateId g : nl.inputs()) open_add(g);
  }

  const std::uint32_t gates_per_level =
      std::max<std::uint32_t>(1, params.num_logic_gates / params.num_levels);

  std::uint32_t created = 0;
  std::vector<GateId> fanin;
  for (std::uint32_t level = 1;
       level <= params.num_levels && created < params.num_logic_gates;
       ++level) {
    const std::uint32_t want =
        (level == params.num_levels) ? (params.num_logic_gates - created)
                                     : std::min(gates_per_level,
                                                params.num_logic_gates - created);
    // Window of candidate driver levels: [level - locality, level - 1].
    const std::uint32_t lo_level =
        level > params.locality ? level - params.locality : 0;
    // Gates created at this level may only read drivers from previous
    // levels, keeping the circuit depth at num_levels (intra-level chaining
    // would otherwise create pathologically deep random logic).
    const GateId level_start = static_cast<GateId>(nl.num_gates());
    for (std::uint32_t i = 0; i < want; ++i) {
      GateType type = pick_type(params, rng);
      const auto my_pos = static_cast<float>(
          (static_cast<double>(i) + 0.5) / static_cast<double>(want));
      auto near = [&](GateId cand) {
        return std::abs(nl.gate(cand).pos - my_pos) <= params.column_radius;
      };
      // Retry whole fanin selections that would create a constant net.
      for (int gate_attempt = 0; gate_attempt < 8; ++gate_attempt) {
        const int nf = pick_fanin_count(type, params, rng);
        fanin.clear();
        auto is_dup = [&fanin](GateId cand) {
          return std::find(fanin.begin(), fanin.end(), cand) != fanin.end();
        };
        for (int k = 0; k < nf; ++k) {
          GateId d = kNoGate;
          if (!unobserved.empty() && rng.bernoulli(params.fresh_driver_bias)) {
            for (int attempt = 0; attempt < 12; ++attempt) {
              const GateId cand = unobserved[rng.pick_index(unobserved)];
              if (cand < level_start && near(cand) && !is_dup(cand)) {
                d = cand;
                break;
              }
            }
          }
          if (d == kNoGate && rent && !open_gates.empty() &&
              rng.bernoulli(0.5)) {
            // Hub reuse: draw from the open-capacity list. Hubs may sit up
            // to 3x the column radius away — high-fanout nets are exactly
            // the longer wires Rent's rule predicts.
            for (int attempt = 0; attempt < 8; ++attempt) {
              const GateId cand = open_gates[rng.pick_index(open_gates)];
              if (cand < level_start && !is_dup(cand) &&
                  std::abs(nl.gate(cand).pos - my_pos) <=
                      3.0 * params.column_radius) {
                d = cand;
                break;
              }
            }
          }
          if (d == kNoGate) {
            // Pick a column-local driver from the locality window.
            for (int attempt = 0; attempt < 16 && d == kNoGate; ++attempt) {
              const auto l = static_cast<std::uint32_t>(
                  rng.uniform_int(lo_level, level - 1));
              if (per_level[l].empty()) continue;
              const GateId cand = per_level[l][rng.pick_index(per_level[l])];
              if (near(cand) && !is_dup(cand)) d = cand;
            }
          }
          if (d == kNoGate) {
            // Duplicate fanins are strictly forbidden: XOR(a, a) is
            // constant and poisons everything downstream with untestable
            // faults. Inputs are plentiful, so a distinct driver exists.
            for (int attempt = 0; attempt < 64 && d == kNoGate; ++attempt) {
              const GateId cand = per_level[0][rng.pick_index(per_level[0])];
              if (!is_dup(cand)) d = cand;
            }
            for (GateId cand : per_level[0]) {
              if (d != kNoGate) break;
              if (!is_dup(cand)) d = cand;
            }
          }
          assert(d != kNoGate && !is_dup(d));
          fanin.push_back(d);
        }
        if (rent) {
          for (GateId d : fanin) open_consume(d);
        }
        if (!is_constant_sig(eval_signature(type, sig, fanin))) break;
        if (gate_attempt == 6) {
          // Guaranteed non-constant last resort: XOR of two distinct
          // inputs (input signatures are independent random words).
          type = GateType::kXor;
          fanin.clear();
          fanin.push_back(per_level[0][rng.pick_index(per_level[0])]);
          GateId second = fanin[0];
          while (second == fanin[0]) {
            second = per_level[0][rng.pick_index(per_level[0])];
          }
          fanin.push_back(second);
          break;
        }
      }
      GateId g = nl.add_gate(type, fanin);
      sig.push_back(eval_signature(type, sig, fanin));
      nl.gate(g).pos = my_pos;
      per_level[level].push_back(g);
      for (GateId d : fanin) mark_observed(d);
      mark_unobserved(g);
      open_add(g);
      ++created;
      // Repeater chains behind buffers/inverters: every chain gate is a
      // fault-equivalent of its driver, growing the equivalence classes
      // that dominate diagnostic resolution.
      if ((type == GateType::kBuf || type == GateType::kInv) &&
          params.buffer_chain_len > 0) {
        const auto extra = static_cast<std::uint32_t>(
            rng.uniform_int(0, params.buffer_chain_len));
        // Repeaters sit along a route and drift gently within the local
        // column, so a chain's fault-equivalence class stays in one tier:
        // a fault on the chain remains tier-predictable. (The multi-tier
        // content of diagnosis reports comes from partial-match candidates
        // in shared logic cones, not from cross-tier equivalences.)
        float link_pos = my_pos;
        const double drift = 0.5 * params.column_radius;
        for (std::uint32_t b = 0;
             b < extra && created < params.num_logic_gates; ++b) {
          const GateId link = nl.add_gate(GateType::kBuf, {g});
          sig.push_back(sig[g]);
          link_pos = std::clamp(
              link_pos + static_cast<float>(rng.uniform(-drift, drift)),
              0.0f, 1.0f);
          nl.gate(link).pos = link_pos;
          per_level[level].push_back(link);
          mark_observed(g);
          mark_unobserved(link);
          if (rent) open_consume(g);
          open_add(link);
          g = link;
          ++created;
        }
      }
    }
  }

  // Collector pass: reduce the unobserved set to exactly num_scan_cells
  // signals by XOR-combining pairs (XOR preserves single-fault
  // observability of both operands), or tap extra internal signals with
  // buffers if there are too few.
  std::vector<GateId> heads = unobserved;
  // Combine position-adjacent heads so collector XOR trees stay spatially
  // local (a scan cell observes one region of the die).
  std::sort(heads.begin(), heads.end(), [&nl](GateId a, GateId b) {
    if (nl.gate(a).pos != nl.gate(b).pos) return nl.gate(a).pos < nl.gate(b).pos;
    return a < b;
  });
  while (heads.size() > params.num_scan_cells) {
    // One left-to-right sweep combines `excess` adjacent pairs; each
    // combination shrinks the list by one, so the loop always terminates.
    // Functionally-equal adjacent heads (whose XOR would be constant) are
    // skipped and kept as-is.
    const std::size_t excess = heads.size() - params.num_scan_cells;
    std::vector<GateId> next;
    next.reserve(heads.size());
    std::size_t combined = 0;
    bool progressed = false;
    for (std::size_t i = 0; i < heads.size();) {
      if (combined < excess && i + 1 < heads.size() &&
          !is_constant_sig(sig[heads[i]] ^ sig[heads[i + 1]])) {
        const GateId x =
            nl.add_gate(GateType::kXor, {heads[i], heads[i + 1]});
        nl.gate(x).pos =
            0.5f * (nl.gate(heads[i]).pos + nl.gate(heads[i + 1]).pos);
        sig.push_back(sig[heads[i]] ^ sig[heads[i + 1]]);
        next.push_back(x);
        i += 2;
        ++combined;
        progressed = true;
      } else {
        next.push_back(heads[i]);
        ++i;
      }
    }
    heads = std::move(next);
    if (!progressed) {
      // Every adjacent pair is functionally equal (degenerate); fall back
      // to buffer taps below by trimming the excess heads.
      heads.resize(params.num_scan_cells);
      break;
    }
  }
  while (heads.size() < params.num_scan_cells) {
    // Tap a random logic gate with a buffer to create one more output.
    const auto g = static_cast<GateId>(
        rng.uniform_int(static_cast<std::int64_t>(num_inputs),
                        static_cast<std::int64_t>(nl.num_gates()) - 1));
    const GateId buf = nl.add_gate(GateType::kBuf, {g});
    nl.gate(buf).pos = nl.gate(g).pos;
    sig.push_back(sig[g]);
    heads.push_back(buf);
  }

  rng.shuffle(heads);  // Decouple scan-cell index from creation order.
  for (GateId h : heads) nl.add_output(h);
  nl.set_num_scan_cells(params.num_scan_cells);

  assert(nl.validate().empty());
  return nl;
}

}  // namespace m3dfl::netlist
