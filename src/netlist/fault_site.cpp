#include "netlist/fault_site.h"

namespace m3dfl::netlist {

SiteTable::SiteTable(const Netlist& nl) {
  const std::size_t n = nl.num_gates();
  stem_of_gate_.resize(n, kNoSite);
  first_branch_of_gate_.resize(n, kNoSite);
  std::size_t total = 0;
  for (GateId g = 0; g < n; ++g) {
    total += 1 + nl.gate(g).fanin.size();
  }
  sites_.reserve(total);
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = nl.gate(g);
    stem_of_gate_[g] = static_cast<SiteId>(sites_.size());
    sites_.push_back(FaultSite{g, -1, g});
    first_branch_of_gate_[g] = static_cast<SiteId>(sites_.size());
    for (std::size_t k = 0; k < gate.fanin.size(); ++k) {
      sites_.push_back(
          FaultSite{g, static_cast<std::int16_t>(k), gate.fanin[k]});
    }
  }
}

Tier SiteTable::tier_of(SiteId s, const Netlist& nl) const {
  return nl.gate(sites_[s].gate).tier;
}

bool SiteTable::is_miv_site(SiteId s, const Netlist& nl) const {
  const FaultSite& fs = sites_[s];
  return fs.is_stem() && nl.gate(fs.gate).type == GateType::kMiv;
}

std::vector<SiteId> SiteTable::miv_sites(const Netlist& nl) const {
  std::vector<SiteId> out;
  for (SiteId s = 0; s < sites_.size(); ++s) {
    if (is_miv_site(s, nl)) out.push_back(s);
  }
  return out;
}

}  // namespace m3dfl::netlist
