#pragma once

#include <cstdint>

#include "netlist/netlist.h"

namespace m3dfl::netlist {

/// Function-preserving local re-synthesis (the paper's "Syn-2" design
/// configuration, which re-synthesizes the same RTL at a different clock
/// frequency, changing gate types and structure but not functionality).
///
/// Rewrites applied with probability rewrite_fraction per gate:
///  * AND <-> NAND + INV, OR <-> NOR + INV, XOR <-> XNOR + INV;
///  * double-inverter insertion on a driven signal.
///
/// The result computes the same Boolean function at every observed output
/// and preserves input order, output order, and scan-cell pairing.
/// Must be applied to a 2D netlist (before partitioning / MIV insertion).
Netlist resynthesize(const Netlist& src, std::uint64_t seed,
                     double rewrite_fraction = 0.35);

/// Test-point insertion (the paper's "TPI" configuration). Adds observation
/// test points — kObs buffers captured into observe-only scan cells — at the
/// signals that are hardest to observe (largest reverse-BFS distance to any
/// existing output). At most max_fraction * num_logic_gates points are
/// added (the paper uses 1%). Must be applied to a 2D netlist.
Netlist insert_test_points(const Netlist& src, double max_fraction,
                           std::uint64_t seed);

}  // namespace m3dfl::netlist
