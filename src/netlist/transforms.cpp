#include "netlist/transforms.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/rng.h"

namespace m3dfl::netlist {
namespace {

/// Dual type for the push-an-inverter rewrites (f -> dual + INV).
GateType dual_type(GateType t) {
  switch (t) {
    case GateType::kAnd: return GateType::kNand;
    case GateType::kNand: return GateType::kAnd;
    case GateType::kOr: return GateType::kNor;
    case GateType::kNor: return GateType::kOr;
    case GateType::kXor: return GateType::kXnor;
    case GateType::kXnor: return GateType::kXor;
    default: return t;
  }
}

bool has_dual(GateType t) { return dual_type(t) != t; }

}  // namespace

Netlist resynthesize(const Netlist& src, std::uint64_t seed,
                     double rewrite_fraction) {
  assert(src.num_mivs() == 0 && "resynthesis applies to 2D netlists");
  Rng rng(seed);
  Netlist out;
  std::vector<GateId> map(src.num_gates(), kNoGate);

  // Inputs first, preserving order (keeps scan-cell pairing intact).
  for (GateId g : src.inputs()) {
    map[g] = out.add_input();
    out.gate(map[g]).pos = src.gate(g).pos;
  }

  std::vector<GateId> fanin;
  for (GateId g : src.topo_order()) {
    const Gate& gate = src.gate(g);
    if (gate.type == GateType::kInput) continue;
    fanin.clear();
    for (GateId d : gate.fanin) {
      assert(map[d] != kNoGate);
      fanin.push_back(map[d]);
    }
    GateId ng;
    if (has_dual(gate.type) && rng.bernoulli(rewrite_fraction)) {
      // f(x) == INV(dual(x)).
      const GateId d = out.add_gate(dual_type(gate.type), fanin);
      out.gate(d).pos = gate.pos;
      ng = out.add_gate(GateType::kInv, {d});
    } else {
      ng = out.add_gate(gate.type, fanin);
    }
    out.gate(ng).pos = gate.pos;
    if (rng.bernoulli(rewrite_fraction * 0.3)) {
      // Double-inverter insertion: consumers see the same function through
      // two extra levels (changes structure, depth, and gate count).
      const GateId i1 = out.add_gate(GateType::kInv, {ng});
      out.gate(i1).pos = gate.pos;
      ng = out.add_gate(GateType::kInv, {i1});
      out.gate(ng).pos = gate.pos;
    }
    map[g] = ng;
  }

  for (GateId o : src.outputs()) out.add_output(map[o]);
  out.set_num_scan_cells(src.num_scan_cells());
  assert(out.validate().empty());
  return out;
}

Netlist insert_test_points(const Netlist& src, double max_fraction,
                           std::uint64_t seed) {
  assert(src.num_mivs() == 0 && "TPI applies to 2D netlists");
  Rng rng(seed);

  // Observation distance: reverse BFS from all observed outputs. Gates that
  // are far from every output are the hardest to observe — exactly where an
  // ATPG tool would put observe points.
  constexpr std::uint32_t kUnreached = 0xffffffffu;
  std::vector<std::uint32_t> dist(src.num_gates(), kUnreached);
  std::queue<GateId> bfs;
  for (GateId o : src.outputs()) {
    if (dist[o] != 0 || true) {
      dist[o] = 0;
      bfs.push(o);
    }
  }
  while (!bfs.empty()) {
    const GateId g = bfs.front();
    bfs.pop();
    for (GateId d : src.gate(g).fanin) {
      if (dist[d] == kUnreached) {
        dist[d] = dist[g] + 1;
        bfs.push(d);
      }
    }
  }

  const auto budget = static_cast<std::size_t>(
      max_fraction * static_cast<double>(src.num_logic_gates()));

  // Rank logic gates by distance (descending), jitter ties randomly so the
  // selection is not purely id-ordered.
  std::vector<GateId> candidates;
  for (GateId g = 0; g < src.num_gates(); ++g) {
    if (src.gate(g).type != GateType::kInput && dist[g] != kUnreached &&
        dist[g] >= 2) {
      candidates.push_back(g);
    }
  }
  rng.shuffle(candidates);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&dist](GateId a, GateId b) { return dist[a] > dist[b]; });
  if (candidates.size() > budget) candidates.resize(budget);

  // Rebuild with kObs taps appended as observe-only outputs.
  Netlist out;
  std::vector<GateId> map(src.num_gates(), kNoGate);
  for (GateId g : src.inputs()) {
    map[g] = out.add_input();
    out.gate(map[g]).pos = src.gate(g).pos;
  }
  for (GateId g : src.topo_order()) {
    const Gate& gate = src.gate(g);
    if (gate.type == GateType::kInput) continue;
    std::vector<GateId> fanin;
    fanin.reserve(gate.fanin.size());
    for (GateId d : gate.fanin) fanin.push_back(map[d]);
    map[g] = out.add_gate(gate.type, fanin);
    out.gate(map[g]).pos = gate.pos;
  }
  for (GateId o : src.outputs()) out.add_output(map[o]);
  out.set_num_scan_cells(src.num_scan_cells());
  for (GateId c : candidates) {
    const GateId obs = out.add_gate(GateType::kObs, {map[c]});
    out.gate(obs).pos = src.gate(c).pos;
    out.add_output(obs);  // Observe-only scan cell, no paired Q.
  }
  assert(out.validate().empty());
  return out;
}

}  // namespace m3dfl::netlist
