#include "netlist/scoap.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace m3dfl::netlist {
namespace {

using Sat = ScoapMeasures;

/// Minimum over a selection of per-fanin costs.
template <typename Cost>
std::uint32_t min_over(const std::vector<GateId>& fanin, Cost&& cost) {
  std::uint32_t best = 0xffffffu;
  for (GateId d : fanin) best = std::min(best, cost(d));
  return best;
}

/// Sum over all fanins of per-fanin costs (saturating).
template <typename Cost>
std::uint32_t sum_over(const std::vector<GateId>& fanin, Cost&& cost) {
  std::uint32_t total = 0;
  for (GateId d : fanin) total = Sat::sat_add(total, cost(d));
  return total;
}

}  // namespace

ScoapMeasures compute_scoap(const Netlist& nl) {
  ScoapMeasures m;
  const std::size_t n = nl.num_gates();
  m.cc0.assign(n, 0);
  m.cc1.assign(n, 0);
  m.co.assign(n, 0xffffffu);

  // Forward pass: controllability in topological order.
  for (GateId g : nl.topo_order()) {
    const Gate& gate = nl.gate(g);
    auto c0 = [&m](GateId d) { return m.cc0[d]; };
    auto c1 = [&m](GateId d) { return m.cc1[d]; };
    switch (gate.type) {
      case GateType::kInput:
        m.cc0[g] = 1;
        m.cc1[g] = 1;
        break;
      case GateType::kBuf:
      case GateType::kMiv:
      case GateType::kObs:
        m.cc0[g] = Sat::sat_add(m.cc0[gate.fanin[0]], 1);
        m.cc1[g] = Sat::sat_add(m.cc1[gate.fanin[0]], 1);
        break;
      case GateType::kInv:
        m.cc0[g] = Sat::sat_add(m.cc1[gate.fanin[0]], 1);
        m.cc1[g] = Sat::sat_add(m.cc0[gate.fanin[0]], 1);
        break;
      case GateType::kAnd:
        m.cc1[g] = Sat::sat_add(sum_over(gate.fanin, c1), 1);
        m.cc0[g] = Sat::sat_add(min_over(gate.fanin, c0), 1);
        break;
      case GateType::kNand:
        m.cc0[g] = Sat::sat_add(sum_over(gate.fanin, c1), 1);
        m.cc1[g] = Sat::sat_add(min_over(gate.fanin, c0), 1);
        break;
      case GateType::kOr:
        m.cc0[g] = Sat::sat_add(sum_over(gate.fanin, c0), 1);
        m.cc1[g] = Sat::sat_add(min_over(gate.fanin, c1), 1);
        break;
      case GateType::kNor:
        m.cc1[g] = Sat::sat_add(sum_over(gate.fanin, c0), 1);
        m.cc0[g] = Sat::sat_add(min_over(gate.fanin, c1), 1);
        break;
      case GateType::kXor:
      case GateType::kXnor: {
        const GateId a = gate.fanin[0];
        const GateId b = gate.fanin[1];
        // Even parity (both 0 or both 1) vs odd parity.
        const std::uint32_t even = std::min(
            Sat::sat_add(m.cc0[a], m.cc0[b]), Sat::sat_add(m.cc1[a], m.cc1[b]));
        const std::uint32_t odd = std::min(
            Sat::sat_add(m.cc0[a], m.cc1[b]), Sat::sat_add(m.cc1[a], m.cc0[b]));
        if (gate.type == GateType::kXor) {
          m.cc0[g] = Sat::sat_add(even, 1);
          m.cc1[g] = Sat::sat_add(odd, 1);
        } else {
          m.cc0[g] = Sat::sat_add(odd, 1);
          m.cc1[g] = Sat::sat_add(even, 1);
        }
        break;
      }
    }
  }

  // Backward pass: observability in reverse topological order. Observed
  // outputs cost 0; a gate's CO is the best CO over its readers plus the
  // cost of sensitizing that reader's side inputs.
  for (GateId o : nl.outputs()) m.co[o] = 0;
  const auto& order = nl.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId g = *it;
    for (GateId reader : nl.gate(g).fanout) {
      const Gate& r = nl.gate(reader);
      if (m.co[reader] == 0xffffffu) continue;
      // Side-input sensitization cost.
      std::uint32_t side = 0;
      for (GateId other : r.fanin) {
        if (other == g) continue;
        switch (r.type) {
          case GateType::kAnd:
          case GateType::kNand:
            side = Sat::sat_add(side, m.cc1[other]);
            break;
          case GateType::kOr:
          case GateType::kNor:
            side = Sat::sat_add(side, m.cc0[other]);
            break;
          case GateType::kXor:
          case GateType::kXnor:
            side = Sat::sat_add(side, std::min(m.cc0[other], m.cc1[other]));
            break;
          default:
            break;
        }
      }
      const std::uint32_t through =
          Sat::sat_add(Sat::sat_add(m.co[reader], side), 1);
      m.co[g] = std::min(m.co[g], through);
    }
  }
  return m;
}

Netlist insert_test_points_scoap(const Netlist& src, double max_fraction) {
  assert(src.num_mivs() == 0 && "TPI applies to 2D netlists");
  const ScoapMeasures m = compute_scoap(src);

  std::vector<GateId> candidates;
  for (GateId g = 0; g < src.num_gates(); ++g) {
    if (src.gate(g).type != GateType::kInput && m.co[g] >= 3) {
      candidates.push_back(g);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&m](GateId a, GateId b) { return m.co[a] > m.co[b]; });
  const auto budget = static_cast<std::size_t>(
      max_fraction * static_cast<double>(src.num_logic_gates()));
  if (candidates.size() > budget) candidates.resize(budget);

  Netlist out;
  std::vector<GateId> map(src.num_gates(), kNoGate);
  for (GateId g : src.inputs()) {
    map[g] = out.add_input();
    out.gate(map[g]).pos = src.gate(g).pos;
  }
  for (GateId g : src.topo_order()) {
    const Gate& gate = src.gate(g);
    if (gate.type == GateType::kInput) continue;
    std::vector<GateId> fanin;
    fanin.reserve(gate.fanin.size());
    for (GateId d : gate.fanin) fanin.push_back(map[d]);
    map[g] = out.add_gate(gate.type, fanin);
    out.gate(map[g]).pos = gate.pos;
  }
  for (GateId o : src.outputs()) out.add_output(map[o]);
  out.set_num_scan_cells(src.num_scan_cells());
  for (GateId c : candidates) {
    const GateId obs = out.add_gate(GateType::kObs, {map[c]});
    out.gate(obs).pos = src.gate(c).pos;
    out.add_output(obs);
  }
  assert(out.validate().empty());
  return out;
}

}  // namespace m3dfl::netlist
