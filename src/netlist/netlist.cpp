#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace m3dfl::netlist {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kInput: return "INPUT";
    case GateType::kBuf: return "BUF";
    case GateType::kInv: return "INV";
    case GateType::kAnd: return "AND";
    case GateType::kNand: return "NAND";
    case GateType::kOr: return "OR";
    case GateType::kNor: return "NOR";
    case GateType::kXor: return "XOR";
    case GateType::kXnor: return "XNOR";
    case GateType::kMiv: return "MIV";
    case GateType::kObs: return "OBS";
  }
  return "?";
}

FaninArity fanin_arity(GateType t) {
  switch (t) {
    case GateType::kInput: return {0, 0};
    case GateType::kBuf:
    case GateType::kInv:
    case GateType::kMiv:
    case GateType::kObs: return {1, 1};
    case GateType::kXor:
    case GateType::kXnor: return {2, 2};
    case GateType::kAnd:
    case GateType::kNand:
    case GateType::kOr:
    case GateType::kNor: return {2, 4};
  }
  return {0, 0};
}

GateId Netlist::add_input() {
  invalidate_caches();
  const GateId id = static_cast<GateId>(gates_.size());
  gates_.push_back(Gate{GateType::kInput, Tier::kBottom, {}, {}});
  inputs_.push_back(id);
  return id;
}

GateId Netlist::add_gate(GateType type, std::span<const GateId> fanin) {
  assert(type != GateType::kInput && "use add_input() for inputs");
  invalidate_caches();
  const GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.type = type;
  g.fanin.assign(fanin.begin(), fanin.end());
  gates_.push_back(std::move(g));
  for (GateId d : fanin) {
    assert(d < id && "fanin must reference existing gates");
    gates_[d].fanout.push_back(id);
  }
  return id;
}

GateId Netlist::add_gate(GateType type, std::initializer_list<GateId> fanin) {
  return add_gate(type, std::span<const GateId>(fanin.begin(), fanin.size()));
}

std::size_t Netlist::add_output(GateId g) {
  assert(g < gates_.size());
  outputs_.push_back(g);
  return outputs_.size() - 1;
}

void Netlist::set_num_scan_cells(std::size_t n) {
  assert(n <= inputs_.size() && n <= outputs_.size());
  num_scan_cells_ = n;
}

std::int64_t Netlist::input_index(GateId g) const {
  const auto it = std::find(inputs_.begin(), inputs_.end(), g);
  if (it == inputs_.end()) return -1;
  return it - inputs_.begin();
}

std::size_t Netlist::num_logic_gates() const {
  return gates_.size() - inputs_.size();
}

std::size_t Netlist::num_mivs() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.type == GateType::kMiv) ++n;
  }
  return n;
}

std::vector<GateId> Netlist::miv_gates() const {
  std::vector<GateId> out;
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].type == GateType::kMiv) out.push_back(g);
  }
  return out;
}

const std::vector<GateId>& Netlist::topo_order() const {
  if (!topo_cache_.empty() || gates_.empty()) return topo_cache_;
  // Kahn's algorithm. Gates are usually appended in topological order, but
  // transforms may rebuild arbitrarily, so we do not rely on that.
  std::vector<std::uint32_t> pending(gates_.size());
  std::vector<GateId> ready;
  ready.reserve(gates_.size());
  for (GateId g = 0; g < gates_.size(); ++g) {
    pending[g] = static_cast<std::uint32_t>(gates_[g].fanin.size());
    if (pending[g] == 0) ready.push_back(g);
  }
  topo_cache_.reserve(gates_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    topo_cache_.push_back(g);
    for (GateId f : gates_[g].fanout) {
      if (--pending[f] == 0) ready.push_back(f);
    }
  }
  assert(topo_cache_.size() == gates_.size() && "netlist contains a cycle");
  return topo_cache_;
}

const std::vector<std::uint32_t>& Netlist::levels() const {
  if (!level_cache_.empty() || gates_.empty()) return level_cache_;
  level_cache_.assign(gates_.size(), 0);
  for (GateId g : topo_order()) {
    std::uint32_t lvl = 0;
    for (GateId d : gates_[g].fanin) {
      lvl = std::max(lvl, level_cache_[d] + 1);
    }
    level_cache_[g] = lvl;
  }
  return level_cache_;
}

std::uint32_t Netlist::depth() const {
  const auto& lv = levels();
  std::uint32_t d = 0;
  for (auto l : lv) d = std::max(d, l);
  return d;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    const FaninArity ar = fanin_arity(gate.type);
    const int n = static_cast<int>(gate.fanin.size());
    if (n < ar.min || n > ar.max) {
      err << "gate " << g << " (" << gate_type_name(gate.type) << ") has "
          << n << " fanins, expected [" << ar.min << ", " << ar.max << "]";
      return err.str();
    }
    for (GateId d : gate.fanin) {
      if (d >= gates_.size()) {
        err << "gate " << g << " references missing fanin " << d;
        return err.str();
      }
      const auto& fo = gates_[d].fanout;
      if (std::count(fo.begin(), fo.end(), g) !=
          std::count(gate.fanin.begin(), gate.fanin.end(), d)) {
        err << "fanin/fanout mismatch between gates " << d << " and " << g;
        return err.str();
      }
    }
  }
  // DAG check: topo order must cover all gates.
  std::vector<std::uint32_t> pending(gates_.size());
  std::vector<GateId> ready;
  for (GateId g = 0; g < gates_.size(); ++g) {
    pending[g] = static_cast<std::uint32_t>(gates_[g].fanin.size());
    if (pending[g] == 0) ready.push_back(g);
  }
  std::size_t seen = 0;
  for (std::size_t head = 0; head < ready.size(); ++head) {
    ++seen;
    for (GateId f : gates_[ready[head]].fanout) {
      if (--pending[f] == 0) ready.push_back(f);
    }
  }
  if (seen != gates_.size()) return "netlist contains a combinational cycle";

  for (GateId g : inputs_) {
    if (gates_[g].type != GateType::kInput) {
      err << "inputs() entry " << g << " is not a kInput gate";
      return err.str();
    }
  }
  for (GateId g : outputs_) {
    if (g >= gates_.size()) {
      err << "outputs() references missing gate " << g;
      return err.str();
    }
  }
  if (num_scan_cells_ > inputs_.size() || num_scan_cells_ > outputs_.size()) {
    return "num_scan_cells exceeds input or output count";
  }
  return {};
}

std::vector<std::size_t> Netlist::type_histogram() const {
  std::vector<std::size_t> hist(static_cast<std::size_t>(GateType::kObs) + 1,
                                0);
  for (const Gate& g : gates_) {
    ++hist[static_cast<std::size_t>(g.type)];
  }
  return hist;
}

void Netlist::invalidate_caches() {
  topo_cache_.clear();
  level_cache_.clear();
}

}  // namespace m3dfl::netlist
