#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace m3dfl::netlist {

/// SCOAP testability measures (Goldstein's classic controllability /
/// observability analysis) for the combinational frame.
///
/// CC0(g) / CC1(g): the minimum number of input assignments needed to set
/// signal g to 0 / 1 (inputs cost 1). CO(g): the additional effort to
/// propagate g's value to an observed output (outputs cost 0). Large values
/// mark hard-to-control / hard-to-observe logic — the classical criterion
/// for test-point placement and a useful prior for diagnosis difficulty.
struct ScoapMeasures {
  std::vector<std::uint32_t> cc0;  ///< Per gate, controllability to 0.
  std::vector<std::uint32_t> cc1;  ///< Per gate, controllability to 1.
  std::vector<std::uint32_t> co;   ///< Per gate, observability.

  /// Combined testability of a slow-to-rise TDF at g's output: set 0 then
  /// 1, then observe (the launch/capture analogue of the SAF measure).
  std::uint32_t tdf_rise(GateId g) const {
    return sat_add(sat_add(cc0[g], cc1[g]), co[g]);
  }
  std::uint32_t tdf_fall(GateId g) const { return tdf_rise(g); }

  /// Saturating addition (SCOAP values on redundant logic can blow up).
  static std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
    const std::uint64_t s = static_cast<std::uint64_t>(a) + b;
    return s > 0xffffff ? 0xffffffu : static_cast<std::uint32_t>(s);
  }
};

/// Computes SCOAP measures in two linear passes (forward controllability,
/// backward observability).
ScoapMeasures compute_scoap(const Netlist& nl);

/// SCOAP-guided test-point insertion: observation points at the gates with
/// the worst observability (CO), the classical alternative to the
/// BFS-distance heuristic of insert_test_points(). Returns a rebuilt 2D
/// netlist with at most max_fraction * num_logic_gates kObs taps appended
/// as observe-only outputs.
Netlist insert_test_points_scoap(const Netlist& src, double max_fraction);

}  // namespace m3dfl::netlist
