#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace m3dfl::netlist {

/// Parameters of the structural netlist generator.
///
/// The generator replaces the paper's proprietary benchmark RTL + Synopsys
/// DC synthesis (see DESIGN.md "Substitutions"). It produces a levelized
/// reconvergent DAG whose statistical knobs control the properties that
/// matter for diagnosis quality:
///  * buffer_fraction drives the size of fault-equivalence classes (more
///    single-input gates => more indistinguishable candidates => worse
///    diagnostic resolution, as in the paper's netcard/leon3mp);
///  * locality controls cone depth and reconvergence;
///  * xor_fraction controls how observable internal transitions are.
struct GeneratorParams {
  std::uint32_t num_logic_gates = 2000;   ///< Combinational gates to create.
  std::uint32_t num_scan_cells = 160;     ///< Paired Q/D scan cells.
  std::uint32_t num_primary_inputs = 8;   ///< Extra non-scan inputs.
  std::uint32_t num_levels = 24;          ///< Target logic depth.
  double buffer_fraction = 0.12;          ///< BUF/INV share of gates.
  /// When a buffer/inverter is created, up to this many extra buffers are
  /// chained behind it. Long repeater chains are what gives real designs
  /// (and the paper's netcard/leon3mp) their large fault-equivalence
  /// classes and poor diagnostic resolution.
  std::uint32_t buffer_chain_len = 1;
  double xor_fraction = 0.15;             ///< XOR/XNOR share of gates.
  double wide_gate_fraction = 0.25;       ///< Share of 3-4 input AND/OR.
  std::uint32_t locality = 6;             ///< Fanin window, in levels.
  /// Column locality: fanins are drawn from drivers whose placement
  /// coordinate lies within this radius of the new gate's. Real netlists
  /// are spatially local after placement; this is what makes the
  /// placement-driven tier partition produce tier-coherent logic cones
  /// (and hence learnable tier labels, as in the paper's flow).
  double column_radius = 0.10;
  double fresh_driver_bias = 0.55;        ///< Probability of picking a
                                          ///< not-yet-observed driver.
  /// Rent-style fanout scaling for paper-scale designs. 0 disables the
  /// mechanism entirely — the generator then consumes the RNG stream
  /// exactly as before, so existing seeds reproduce bit-identical
  /// netlists. When > 0 (typical 0.55–0.75), every gate created during the
  /// levelized pass draws a target fanout capacity from the heavy-tailed
  /// law P(cap >= k) = k^(-1/rent_exponent), and fanin selection routes
  /// through still-open high-capacity drivers (within a relaxed 3x column
  /// radius). The result is the fanout distribution Rent's rule implies
  /// for real placed netlists: a few hub nets driving tens of sinks over
  /// longer wires, instead of the near-uniform fanout of the small
  /// synthetic benchmarks.
  double rent_exponent = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a 2D (single-tier) combinational-frame netlist. Every logic
/// gate has a structural path to at least one observed output, so the
/// design is fully observable and TDF coverage is high (as in Table III of
/// the paper). The result validates and has exactly
/// params.num_scan_cells paired scan cells.
Netlist generate_netlist(const GeneratorParams& params);

}  // namespace m3dfl::netlist
