#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace m3dfl::netlist {

/// Dense identifier of a gate within a Netlist. A gate id doubles as the id
/// of the signal the gate drives (every gate drives exactly one signal).
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = 0xffffffffu;

/// Device tier of an M3D design. This library demonstrates two-tier designs
/// (as the paper does); the partitioners and models generalize by widening
/// this enum and the Tier-predictor output vector.
enum class Tier : std::uint8_t { kBottom = 0, kTop = 1 };

inline constexpr int kNumTiers = 2;

/// Returns the opposite tier.
inline Tier other_tier(Tier t) {
  return t == Tier::kBottom ? Tier::kTop : Tier::kBottom;
}

/// Gate/primitive types of the combinational core.
///
/// The netlist models the *combinational frame* of a scan design: scan-cell
/// Q pins and primary inputs appear as kInput gates; scan-cell D pins and
/// primary outputs are "observed" signals (see Netlist::outputs()). This is
/// the standard reduction used by scan-based ATPG and diagnosis.
enum class GateType : std::uint8_t {
  kInput,  ///< Pseudo-primary input (scan-cell Q) or primary input; no fanin.
  kBuf,    ///< 1-input buffer.
  kInv,    ///< 1-input inverter.
  kAnd,    ///< 2..4-input AND.
  kNand,   ///< 2..4-input NAND.
  kOr,     ///< 2..4-input OR.
  kNor,    ///< 2..4-input NOR.
  kXor,    ///< 2-input XOR.
  kXnor,   ///< 2-input XNOR.
  kMiv,    ///< Monolithic inter-tier via: electrically a buffer, but a
           ///< first-class fault site and graph node (paper Sec. III-A).
  kObs,    ///< Test-point observation buffer (TPI transform).
};

/// Human-readable gate type name ("AND", "MIV", ...).
const char* gate_type_name(GateType t);

/// Number of fanin pins a gate type accepts: {min, max}.
struct FaninArity {
  int min;
  int max;
};
FaninArity fanin_arity(GateType t);

/// One gate instance.
struct Gate {
  GateType type = GateType::kBuf;
  Tier tier = Tier::kBottom;
  /// Normalized placement coordinate in [0, 1] — the 1-D abstraction of a
  /// placed row position. Synthesis (the generator) assigns it; the
  /// placement-driven partitioners ([34]/[35] stand-ins) seed their cuts
  /// from it, giving the tier-coherent regions real M3D flows produce.
  float pos = 0.5f;
  std::vector<GateId> fanin;   ///< Driving gates, pin order significant.
  std::vector<GateId> fanout;  ///< Derived; gates reading this gate's output.
};

/// Gate-level netlist of the combinational frame of one scan design.
///
/// Invariants (checked by validate()):
///  * the gate array forms a DAG;
///  * kInput gates have no fanin; all others satisfy fanin_arity();
///  * fanout lists exactly mirror fanin lists;
///  * the first num_scan_cells() inputs pair 1:1 with the first
///    num_scan_cells() outputs (Q of flop i / D of flop i).
///
/// Observed outputs beyond num_scan_cells() are observe-only scan cells
/// (e.g. inserted test points) — captured and scanned out, Q unused.
class Netlist {
 public:
  Netlist() = default;

  /// Appends a primary/pseudo-primary input. Returns its gate id.
  GateId add_input();

  /// Appends a gate of the given type reading the given fanin signals.
  /// Fanin gates must already exist. Returns the new gate id.
  GateId add_gate(GateType type, std::span<const GateId> fanin);

  /// Convenience overload.
  GateId add_gate(GateType type, std::initializer_list<GateId> fanin);

  /// Marks a signal as observed (captured into a scan cell / PO).
  /// Returns the output index.
  std::size_t add_output(GateId g);

  /// Declares that the first n inputs pair with the first n outputs as
  /// Q/D of scan cells. Requires n <= min(#inputs, #outputs).
  void set_num_scan_cells(std::size_t n);

  // -- Topology access ------------------------------------------------------

  std::size_t num_gates() const { return gates_.size(); }
  const Gate& gate(GateId g) const { return gates_[g]; }
  Gate& gate(GateId g) { return gates_[g]; }

  std::span<const GateId> inputs() const { return inputs_; }
  std::span<const GateId> outputs() const { return outputs_; }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }
  std::size_t num_scan_cells() const { return num_scan_cells_; }

  /// Index of g within inputs(), or -1 if g is not an input.
  std::int64_t input_index(GateId g) const;

  /// Count of combinational gates (everything except kInput).
  std::size_t num_logic_gates() const;

  /// Count of kMiv gates.
  std::size_t num_mivs() const;

  /// Gate ids of all kMiv gates, ascending.
  std::vector<GateId> miv_gates() const;

  // -- Derived structure ----------------------------------------------------

  /// Gates in a topological order (inputs first). Cached; invalidated by
  /// structural edits.
  const std::vector<GateId>& topo_order() const;

  /// Topological level of each gate (inputs are level 0,
  /// level(g) = 1 + max level(fanin)). Cached.
  const std::vector<std::uint32_t>& levels() const;

  /// Maximum topological level (circuit depth).
  std::uint32_t depth() const;

  /// Checks all class invariants; returns an empty string when valid, or a
  /// description of the first violation found.
  std::string validate() const;

  /// Per-type gate counts, indexed by GateType.
  std::vector<std::size_t> type_histogram() const;

 private:
  void invalidate_caches();

  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::size_t num_scan_cells_ = 0;

  mutable std::vector<GateId> topo_cache_;
  mutable std::vector<std::uint32_t> level_cache_;
};

}  // namespace m3dfl::netlist
