#include "compress/compactor.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

namespace m3dfl::compress {

void ResponseCompactor::compact_diff(std::span<const Word> diff,
                                     std::size_t W,
                                     std::vector<Word>& out) const {
  const std::size_t cells =
      static_cast<std::size_t>(cfg_.num_channels) * cfg_.chain_length;
  out.assign(cells * W, 0);
  for (std::uint32_t o = 0; o < cfg_.num_outputs; ++o) {
    const std::uint32_t ch = cfg_.channel_of(o);
    const std::uint32_t cyc = cfg_.position_of(o);
    Word* dst =
        out.data() + (static_cast<std::size_t>(ch) * cfg_.chain_length + cyc) * W;
    const Word* src = diff.data() + static_cast<std::size_t>(o) * W;
    for (std::size_t w = 0; w < W; ++w) dst[w] ^= src[w];
  }
}

FailureLog ResponseCompactor::failure_log_from_diff(
    std::span<const Word> diff, std::size_t W,
    std::size_t num_patterns) const {
  std::vector<Word> compacted;
  compact_diff(diff, W, compacted);
  FailureLog log;
  log.compacted = true;
  for (std::uint32_t ch = 0; ch < cfg_.num_channels; ++ch) {
    for (std::uint32_t cyc = 0; cyc < cfg_.chain_length; ++cyc) {
      const Word* row =
          compacted.data() +
          (static_cast<std::size_t>(ch) * cfg_.chain_length + cyc) * W;
      for (std::size_t w = 0; w < W; ++w) {
        Word m = row[w];
        while (m) {
          const int bit = std::countr_zero(m);
          m &= m - 1;
          const std::size_t p = w * sim::kWordBits + static_cast<std::size_t>(bit);
          if (p < num_patterns) {
            log.cfails.push_back({static_cast<std::uint32_t>(p), ch, cyc});
          }
        }
      }
    }
  }
  std::sort(log.cfails.begin(), log.cfails.end(),
            [](const FailureLog::CObs& a, const FailureLog::CObs& b) {
              if (a.pattern != b.pattern) return a.pattern < b.pattern;
              if (a.channel != b.channel) return a.channel < b.channel;
              return a.cycle < b.cycle;
            });
  return log;
}

FailureLog ResponseCompactor::compact_log(const FailureLog& uncompacted) const {
  assert(!uncompacted.compacted);
  // Parity per (pattern, channel, cycle).
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, int>
      parity;
  for (const FailureLog::Obs& f : uncompacted.fails) {
    const std::uint32_t ch = cfg_.channel_of(f.output);
    const std::uint32_t cyc = cfg_.position_of(f.output);
    ++parity[{f.pattern, ch, cyc}];
  }
  FailureLog log;
  log.compacted = true;
  for (const auto& [key, count] : parity) {
    if (count % 2 == 1) {
      log.cfails.push_back(
          {std::get<0>(key), std::get<1>(key), std::get<2>(key)});
    }
  }
  return log;
}

}  // namespace m3dfl::compress
