#pragma once

#include <cstdint>
#include <vector>

namespace m3dfl::compress {

/// Galois LFSR over GF(2) with a programmable tap polynomial. Used as the
/// ring generator of the EDT-style stimulus decompressor below and directly
/// testable as a substrate primitive.
class Lfsr {
 public:
  /// taps: polynomial bits (bit i set => tap at stage i); degree = highest
  /// set bit + 1. State must never be all-zero; a zero seed is remapped.
  explicit Lfsr(std::uint64_t taps, std::uint64_t seed = 1);

  /// Advances one step and returns the output bit.
  bool step();

  std::uint64_t state() const { return state_; }
  int degree() const { return degree_; }

  /// Period of the sequence for this polynomial starting from state 1
  /// (exhaustive walk; degree <= 24 recommended). Primitive polynomials
  /// yield 2^degree - 1.
  static std::uint64_t period(std::uint64_t taps);

 private:
  std::uint64_t taps_;
  std::uint64_t state_;
  int degree_;
};

/// EDT-style test-stimulus decompressor: a small number of external input
/// channels feed an LFSR ring whose phase-shifted outputs drive many scan
/// chains. The paper's designs use embedded deterministic test (Tessent
/// EDT); this class reproduces the mechanism so the library models the
/// stimulus side of compression as well as the response side.
class EdtDecompressor {
 public:
  EdtDecompressor(int num_chains, int num_input_channels,
                  std::uint64_t taps = (1ULL << 16) | (1ULL << 14) |
                                       (1ULL << 13) | (1ULL << 11) | 1ULL);

  /// Expands one compressed shift-cycle: channel bits are XOR-injected into
  /// the ring, then each chain receives one phase-shifted ring bit.
  std::vector<bool> expand_cycle(const std::vector<bool>& channel_bits);

  /// Resets the ring to the given seed.
  void reset(std::uint64_t seed = 1);

  int num_chains() const { return num_chains_; }
  int num_input_channels() const { return num_input_channels_; }

 private:
  int num_chains_;
  int num_input_channels_;
  std::uint64_t taps_;
  Lfsr lfsr_;
};

}  // namespace m3dfl::compress
