#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/scan_config.h"
#include "sim/failure_log.h"

namespace m3dfl::compress {

using atpg::ScanConfig;
using sim::FailureLog;
using sim::Word;

/// Combinational XOR spatial response compactor.
///
/// Chains are grouped onto output channels (ScanConfig::channel_of_chain);
/// the value scanned out of a channel at shift cycle c is the XOR of the
/// cells at position c of every chain in the group. XOR is linear, so the
/// *error* observed on a channel is the XOR of the per-cell errors — an odd
/// number of simultaneous errors at the same (channel, cycle) is visible,
/// an even number aliases (cancels). Both effects are modeled exactly.
///
/// A bypass mode (paper Sec. IV: "bypass signals that enable the designs to
/// scan out uncompressed responses") is simply the uncompacted failure log.
class ResponseCompactor {
 public:
  explicit ResponseCompactor(const ScanConfig& cfg) : cfg_(cfg) {}

  const ScanConfig& config() const { return cfg_; }
  std::uint32_t num_channels() const { return cfg_.num_channels; }
  std::uint32_t num_cycles() const { return cfg_.chain_length; }

  /// XOR-compacts per-output diff masks (diff[o * W + w]) into
  /// per-(channel, cycle) masks: out[(channel * num_cycles + cycle) * W + w].
  void compact_diff(std::span<const Word> diff, std::size_t W,
                    std::vector<Word>& out) const;

  /// Builds a compacted failure log directly from per-output diff masks.
  FailureLog failure_log_from_diff(std::span<const Word> diff, std::size_t W,
                                   std::size_t num_patterns) const;

  /// Compacts an uncompacted failure log (models re-testing the same die
  /// with the compactor engaged). Aliasing (even error parity) is applied.
  FailureLog compact_log(const FailureLog& uncompacted) const;

 private:
  ScanConfig cfg_;
};

}  // namespace m3dfl::compress
