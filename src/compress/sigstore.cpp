#include "compress/sigstore.h"

#include <cstdio>
#include <stdexcept>

#include "compress/varint.h"

#if defined(_WIN32)
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace m3dfl::compress {

void SignatureStore::encode_keys(std::span<const std::uint64_t> sorted_keys,
                                 std::vector<std::uint8_t>& out) {
  std::uint64_t prev = 0;
  bool first = true;
  for (std::uint64_t k : sorted_keys) {
    put_varint(out, first ? k : k - prev);
    prev = k;
    first = false;
  }
}

bool SignatureStore::decode_keys(const std::uint8_t* p, std::size_t n,
                                 std::uint32_t count,
                                 std::vector<std::uint64_t>& out) {
  out.clear();
  out.reserve(count);
  const std::uint8_t* end = p + n;
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t v = 0;
    p = get_varint(p, end, v);
    if (p == nullptr) return false;
    acc = i == 0 ? v : acc + v;
    out.push_back(acc);
  }
  return p == end;
}

SignatureStore::SignatureStore(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("SignatureStore: cannot open spill file '" +
                             path_ + "' for writing");
  }
}

SignatureStore::~SignatureStore() {
#if !defined(_WIN32)
  if (mapped_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(mapped_), mapped_size_);
  }
  if (fd_ >= 0) ::close(fd_);
#endif
  if (file_ != nullptr) std::fclose(file_);
  std::remove(path_.c_str());
}

SigRef SignatureStore::append(std::span<const std::uint64_t> sorted_keys) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_ || file_ == nullptr) {
    throw std::runtime_error("SignatureStore: append after seal");
  }
  scratch_.clear();
  encode_keys(sorted_keys, scratch_);
  SigRef ref;
  ref.offset = size_;
  ref.bytes = static_cast<std::uint32_t>(scratch_.size());
  ref.count = static_cast<std::uint32_t>(sorted_keys.size());
  if (!scratch_.empty() &&
      std::fwrite(scratch_.data(), 1, scratch_.size(), file_) !=
          scratch_.size()) {
    throw std::runtime_error("SignatureStore: short write to '" + path_ + "'");
  }
  size_ += scratch_.size();
  return ref;
}

void SignatureStore::seal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) return;
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
#if !defined(_WIN32)
  if (size_ > 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0) {
      throw std::runtime_error("SignatureStore: cannot reopen '" + path_ +
                               "' for mapping");
    }
    void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (m == MAP_FAILED) {
      throw std::runtime_error("SignatureStore: mmap failed on '" + path_ +
                               "'");
    }
    mapped_ = static_cast<const std::uint8_t*>(m);
    mapped_size_ = size_;
  }
#else
  // Portability fallback (non-POSIX): read the file back into an owned
  // buffer. Loses the out-of-core property but keeps decode() working.
  if (size_ > 0) {
    fallback_.resize(size_);
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr || std::fread(fallback_.data(), 1, size_, f) != size_) {
      if (f != nullptr) std::fclose(f);
      throw std::runtime_error("SignatureStore: readback failed on '" + path_ +
                               "'");
    }
    std::fclose(f);
    mapped_ = fallback_.data();
    mapped_size_ = size_;
  }
#endif
  sealed_ = true;
}

void SignatureStore::decode(const SigRef& ref,
                            std::vector<std::uint64_t>& out) const {
  if (!sealed_) {
    throw std::runtime_error("SignatureStore: decode before seal");
  }
  if (ref.count == 0) {
    out.clear();
    return;
  }
  if (ref.offset + ref.bytes > mapped_size_ ||
      !decode_keys(mapped_ + ref.offset, ref.bytes, ref.count, out)) {
    throw std::runtime_error("SignatureStore: corrupt record in '" + path_ +
                             "'");
  }
}

}  // namespace m3dfl::compress
