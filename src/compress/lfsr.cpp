#include "compress/lfsr.h"

#include <bit>
#include <cassert>

namespace m3dfl::compress {

Lfsr::Lfsr(std::uint64_t taps, std::uint64_t seed)
    : taps_(taps), state_(seed), degree_(64 - std::countl_zero(taps)) {
  assert(taps != 0);
  const std::uint64_t mask =
      degree_ >= 64 ? ~0ULL : ((1ULL << degree_) - 1);
  state_ &= mask;
  if (state_ == 0) state_ = 1;
}

bool Lfsr::step() {
  const bool out = state_ & 1;
  state_ >>= 1;
  if (out) state_ ^= taps_ >> 1;
  return out;
}

std::uint64_t Lfsr::period(std::uint64_t taps) {
  Lfsr ref(taps, 1);
  const std::uint64_t start = ref.state();
  std::uint64_t n = 0;
  do {
    ref.step();
    ++n;
  } while (ref.state() != start && n < (1ULL << 26));
  return n;
}

EdtDecompressor::EdtDecompressor(int num_chains, int num_input_channels,
                                 std::uint64_t taps)
    : num_chains_(num_chains),
      num_input_channels_(num_input_channels),
      taps_(taps),
      lfsr_(taps, 1) {}

void EdtDecompressor::reset(std::uint64_t seed) { lfsr_ = Lfsr(taps_, seed); }

std::vector<bool> EdtDecompressor::expand_cycle(
    const std::vector<bool>& channel_bits) {
  assert(static_cast<int>(channel_bits.size()) == num_input_channels_);
  // Inject channel bits into spaced ring stages.
  std::uint64_t inject = 0;
  const int deg = lfsr_.degree();
  for (int c = 0; c < num_input_channels_; ++c) {
    if (channel_bits[c]) {
      // Stages 1..deg-1, spread evenly; stage 0 is avoided so injection can
      // never cancel a fresh seed into the (remapped) all-zero state.
      inject |= 1ULL << (1 + (c * (deg - 1)) /
                                 std::max(1, num_input_channels_));
    }
  }
  // One ring rotation per shift cycle, then phase-shifted chain outputs.
  Lfsr stepped(taps_, lfsr_.state() ^ inject);
  stepped.step();
  const std::uint64_t s = stepped.state();
  std::vector<bool> chain_bits(num_chains_);
  for (int i = 0; i < num_chains_; ++i) {
    // Phase shifter: XOR of three spread stages per chain.
    const int a = (i * 7 + 1) % deg;
    const int b = (i * 13 + 3) % deg;
    const int c = (i * 29 + 5) % deg;
    chain_bits[i] = (((s >> a) ^ (s >> b) ^ (s >> c)) & 1) != 0;
  }
  lfsr_ = stepped;
  return chain_bits;
}

}  // namespace m3dfl::compress
