#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace m3dfl::compress {

/// Locator of one encoded signature inside a SignatureStore file.
struct SigRef {
  std::uint64_t offset = 0;  ///< Byte offset of the encoded record.
  std::uint32_t bytes = 0;   ///< Encoded length in bytes.
  std::uint32_t count = 0;   ///< Number of keys in the signature.
};

/// Out-of-core storage for fault-signature key sets. A signature is a
/// sorted, duplicate-free stream of 64-bit (output << 32 | pattern) keys;
/// the store delta-encodes each stream (first key, then successive gaps) as
/// LEB128 varints and appends it to a spill file, so a paper-scale
/// dictionary campaign never holds more than the in-flight shard's
/// signatures in memory.
///
/// Lifecycle: construct (creates/truncates the file) -> append() from any
/// number of threads while the campaign runs -> seal() once -> decode() at
/// lookup time against the memory-mapped file. The destructor unmaps and
/// deletes the spill file (it is scratch state owned by the dictionary, not
/// an interchange format).
class SignatureStore {
 public:
  /// Creates/truncates the spill file. Throws std::runtime_error when the
  /// file cannot be opened for writing.
  explicit SignatureStore(std::string path);
  ~SignatureStore();

  SignatureStore(const SignatureStore&) = delete;
  SignatureStore& operator=(const SignatureStore&) = delete;

  /// Encodes and appends one signature. Thread-safe; callable only before
  /// seal(). Record order in the file follows append order (racy under
  /// threads), but every caller gets back the exact Ref of its own record,
  /// so decoded content is deterministic regardless of interleaving.
  SigRef append(std::span<const std::uint64_t> sorted_keys);

  /// Flushes the writer and memory-maps the file for decode(). Idempotent.
  void seal();
  bool sealed() const { return sealed_; }

  /// Decodes the signature at `ref` into `out` (cleared first). Requires
  /// seal(). Throws std::runtime_error on a corrupt record.
  void decode(const SigRef& ref, std::vector<std::uint64_t>& out) const;

  /// Total encoded bytes written.
  std::uint64_t bytes_on_disk() const { return size_; }

  const std::string& path() const { return path_; }

  /// Codec core, exposed for unit tests: encode appends to `out`; decode
  /// reads `count` keys from [p, p + n). decode_keys returns false on
  /// truncated/corrupt input.
  static void encode_keys(std::span<const std::uint64_t> sorted_keys,
                          std::vector<std::uint8_t>& out);
  static bool decode_keys(const std::uint8_t* p, std::size_t n,
                          std::uint32_t count,
                          std::vector<std::uint64_t>& out);

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;      ///< Write handle; null after seal().
  std::uint64_t size_ = 0;         ///< Bytes appended so far.
  std::vector<std::uint8_t> scratch_;  ///< Encode buffer (under mu_).
  const std::uint8_t* mapped_ = nullptr;
  std::uint64_t mapped_size_ = 0;
  int fd_ = -1;
  bool sealed_ = false;
  std::vector<std::uint8_t> fallback_;  ///< Non-POSIX seal() readback.
};

}  // namespace m3dfl::compress
