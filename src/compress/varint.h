#pragma once

#include <cstdint>
#include <vector>

namespace m3dfl::compress {

/// LEB128 variable-length unsigned integer codec — the byte-oriented varint
/// used by the out-of-core signature store. Small values (the common case
/// for delta-encoded sorted key streams) cost one byte; a full 64-bit value
/// costs ten.
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes one varint from [p, end). Returns the position one past the last
/// consumed byte, or nullptr on truncated/overlong input.
inline const std::uint8_t* get_varint(const std::uint8_t* p,
                                      const std::uint8_t* end,
                                      std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const std::uint8_t byte = *p++;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return p;
    shift += 7;
  }
  return nullptr;
}

}  // namespace m3dfl::compress
