#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace m3dfl {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**).
///
/// Every stochastic step in the library (netlist generation, partitioning
/// tie-breaks, pattern generation, fault injection, weight initialization,
/// dataset shuffling) draws from an explicitly seeded Rng so that all
/// experiments are bit-reproducible across runs and platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// UniformValue in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  std::size_t pick_index(const Container& c) {
    return static_cast<std::size_t>(next_below(c.size()));
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derives an independent stream seed from a base seed and a stream tag.
/// Used to give each pipeline stage its own generator so that changing the
/// sample count of one stage does not perturb another.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace m3dfl
