#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace m3dfl {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::set_header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TablePrinter::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TablePrinter::to_string() const {
  // Compute column widths.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) {
    if (!row.separator) grow(row.cells);
  }

  std::size_t total = widths.empty() ? 0 : 3 * widths.size() + 1;
  for (auto w : widths) total += w;

  std::ostringstream out;
  auto hline = [&out, total]() { out << std::string(total, '-') << '\n'; };
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out << ' ' << c << std::string(widths[i] - c.size(), ' ') << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      hline();
    } else {
      emit(row.cells);
    }
  }
  hline();
  return out.str();
}

void TablePrinter::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string fmt_delta_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%+.*f%%)", decimals, fraction * 100.0);
  return buf;
}

}  // namespace m3dfl
