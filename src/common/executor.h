#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace m3dfl {

/// Fixed-size thread pool with a FIFO task queue — the library's reusable
/// concurrency primitive. The diagnosis service fans per-request inference
/// out across it, and the offline pipeline (dataset generation, fault-
/// dictionary campaigns, parallel training epochs) submits plain callables
/// the same way.
///
/// Semantics:
///  * submit() returns a std::future carrying the callable's result (or its
///    exception — a throwing task never takes down a worker);
///  * post() is the fire-and-forget variant (no future allocation);
///  * tasks run in submission order, up to num_threads() at a time;
///  * the destructor drains the queue: every task already submitted runs to
///    completion before the workers join.
class Executor {
 public:
  /// Per-pool utilization accounting, maintained under the queue mutex (one
  /// extra clock pair per task — noise against shard-sized tasks).
  struct Stats {
    std::uint64_t tasks = 0;      ///< Tasks completed.
    double busy_seconds = 0.0;    ///< Summed task run time across workers.
    std::size_t max_queued = 0;   ///< High-water mark of the task queue.
    double wall_seconds = 0.0;    ///< Since construction.
    /// busy / (wall * workers): 1.0 means every worker ran tasks the whole
    /// time; low values mean the pool sat idle or starved on the queue.
    double utilization = 0.0;
  };

  /// `label`, when given, must outlive the executor (a string literal); the
  /// destructor then publishes the pool's stats to the obs MetricsRegistry
  /// as executor.<label>.{tasks,utilization,max_queued}.
  explicit Executor(std::size_t num_threads, const char* label = nullptr);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // std::function requires copyable targets; a packaged_task is move-only,
    // so it rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Enqueues a task whose result (and exceptions) nobody waits for.
  void post(std::function<void()> fn);

  std::size_t num_threads() const { return threads_.size(); }

  /// Tasks enqueued but not yet started.
  std::size_t queued() const;

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Current utilization accounting (wall clock measured at the call).
  Stats stats() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals workers: task or stop.
  std::condition_variable idle_cv_;   ///< Signals wait_idle().
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  ///< Workers currently running a task.
  bool stop_ = false;
  const char* label_ = nullptr;
  std::chrono::steady_clock::time_point created_;
  std::uint64_t tasks_done_ = 0;
  double busy_seconds_ = 0.0;
  std::size_t max_queued_ = 0;
  std::vector<std::thread> threads_;
};

/// Resolves a user-facing thread-count knob: 0 means "whatever the hardware
/// offers" (never less than 1); any other value is taken literally.
std::size_t resolve_num_threads(std::size_t requested);

}  // namespace m3dfl
