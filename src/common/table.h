#pragma once

#include <string>
#include <vector>

namespace m3dfl {

/// Minimal fixed-width ASCII table printer used by the benchmark harness to
/// render the paper's tables. Columns auto-size to their widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = {});

  /// Sets the header row (clears any previous header).
  void set_header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the full table to a string (title, header, rows).
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fmt(double value, int decimals = 1);

/// Formats a percentage: fmt_pct(0.9932, 1) -> "99.3%".
std::string fmt_pct(double fraction, int decimals = 1);

/// Formats a signed delta percentage: "(+32.9%)" / "(-0.4%)".
std::string fmt_delta_pct(double fraction, int decimals = 1);

}  // namespace m3dfl
