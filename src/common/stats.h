#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace m3dfl {

/// Streaming accumulator for mean / standard deviation (Welford's method).
/// Used throughout the evaluation harness to summarize diagnostic
/// resolution, first-hit index, and runtime distributions.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Population standard deviation (paper tables report sigma over the
  /// full test set, so population rather than sample variance is used).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span; returns 0 for an empty span.
double mean_of(std::span<const double> xs);

/// Population standard deviation of a span; returns 0 for size < 1.
double stddev_of(std::span<const double> xs);

/// Pearson correlation of two equally sized spans (0 if degenerate).
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Percentile (0..100) with linear interpolation; input need not be sorted.
double percentile(std::vector<double> xs, double pct);

}  // namespace m3dfl
