#include "common/rng.h"

#include <cmath>

namespace m3dfl {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (cannot occur with splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  // Guard against log(0).
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t sm = base ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  sm += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = sm;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace m3dfl
