#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace m3dfl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::stddev() const {
  if (n_ < 1) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> xs, double pct) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (pct <= 0.0) return xs.front();
  if (pct >= 100.0) return xs.back();
  const double pos = pct / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace m3dfl
