#include "common/executor.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/prof/profiler.h"
#include "obs/trace.h"

namespace m3dfl {

Executor::Executor(std::size_t num_threads, const char* label)
    : label_(label), created_(std::chrono::steady_clock::now()) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  if (label_ != nullptr) {
    // Workers are joined, so the counters are final. Labeled pools publish
    // their lifetime stats; gauges are last-writer-wins, so a sequence of
    // same-labeled pools reports the most recent run.
    const Stats s = stats();
    auto& reg = obs::MetricsRegistry::instance();
    const std::string prefix = std::string("executor.") + label_;
    reg.counter(prefix + ".tasks").add(s.tasks);
    reg.gauge(prefix + ".utilization").set(s.utilization);
    reg.gauge(prefix + ".max_queued")
        .set(static_cast<double>(s.max_queued));
  }
}

void Executor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
    max_queued_ = std::max(max_queued_, queue_.size());
  }
  work_cv_.notify_one();
}

std::size_t Executor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

Executor::Stats Executor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.tasks = tasks_done_;
  s.busy_seconds = busy_seconds_;
  s.max_queued = max_queued_;
  s.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - created_)
                       .count();
  const double capacity =
      s.wall_seconds * static_cast<double>(threads_.size());
  s.utilization = capacity > 0.0 ? s.busy_seconds / capacity : 0.0;
  return s;
}

void Executor::worker_loop() {
  // Register with the sampling profiler for the worker's lifetime: pool
  // threads are where the pipeline burns its cycles, so they must be
  // sampleable whenever a profile window opens (CLI --profile or
  // /profilez). Unregisters — and disarms any active timer — on exit,
  // before the thread's CPU clock dies with it.
  M3DFL_PROF_THREAD(prof_registration);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // Drain the queue even when stopping so ~Executor never abandons a
    // submitted task (its future would otherwise never become ready).
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    {
      M3DFL_OBS_SPAN(span, "executor.task");
      task();  // packaged_task captures exceptions into the future.
    }
    const double busy = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    lock.lock();
    --active_;
    ++tasks_done_;
    busy_seconds_ += busy;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace m3dfl
