#include "common/executor.h"

#include <algorithm>

namespace m3dfl {

Executor::Executor(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Executor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

std::size_t Executor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Executor::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void Executor::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // Drain the queue even when stopping so ~Executor never abandons a
    // submitted task (its future would otherwise never become ready).
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();  // packaged_task captures exceptions into the future.
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace m3dfl
