#pragma once

#include <cstdint>
#include <vector>

#include "atpg/scan_config.h"
#include "graphx/hetero_graph.h"
#include "graphx/subgraph.h"
#include "sim/failure_log.h"

namespace m3dfl::graphx {

using atpg::ScanConfig;
using sim::FailureLog;

struct BacktraceOptions {
  /// If the strict intersection of per-response suspect sets is empty
  /// (possible with response compaction or multiple defects), relax to
  /// nodes present in at least this fraction of responses. The paper's
  /// Fig. 3 uses strict intersection; this fallback keeps the sub-graph
  /// non-empty in the corner cases, matching the framework's behaviour on
  /// multi-fault logs (Sec. VII-A).
  double relax_fraction = 0.60;
  /// Upper bound on responses examined (large multi-fault logs are
  /// deterministically subsampled for the structural pass).
  std::size_t max_responses = 384;
};

/// The back-tracing algorithm of paper Fig. 3: for every erroneous test
/// response, collect the union over connected Topnodes of the fan-in-cone
/// nodes whose signal switches under the failing pattern; intersect across
/// responses; return the surviving candidate nodes. Runs in O(n_e * n_g).
///
/// Requires graph.bind_transitions() to have been called. For compacted
/// logs, the Topnode set of a response is the ambiguity set of scan cells
/// behind the failing (channel, cycle).
std::vector<SiteId> backtrace(const HeteroGraph& graph, const FailureLog& log,
                              const ScanConfig& scan,
                              const BacktraceOptions& opts = {});

/// Convenience: back-trace then extract the homogeneous sub-graph.
SubGraph backtrace_subgraph(const HeteroGraph& graph, const FailureLog& log,
                            const ScanConfig& scan,
                            const BacktraceOptions& opts = {});

}  // namespace m3dfl::graphx
