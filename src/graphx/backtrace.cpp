#include "graphx/backtrace.h"

#include <algorithm>
#include <cassert>

namespace m3dfl::graphx {

std::vector<SiteId> backtrace(const HeteroGraph& graph, const FailureLog& log,
                              const ScanConfig& scan,
                              const BacktraceOptions& opts) {
  assert(graph.has_transitions());
  if (log.empty()) return {};

  struct Response {
    std::uint32_t pattern;
    std::vector<std::uint32_t> topnodes;
  };
  std::vector<Response> responses;
  if (log.compacted) {
    responses.reserve(log.cfails.size());
    for (const FailureLog::CObs& f : log.cfails) {
      responses.push_back({f.pattern, scan.outputs_of(f.channel, f.cycle)});
    }
  } else {
    responses.reserve(log.fails.size());
    for (const FailureLog::Obs& f : log.fails) {
      responses.push_back({f.pattern, {f.output}});
    }
  }
  if (responses.size() > opts.max_responses) {
    std::vector<Response> sampled;
    sampled.reserve(opts.max_responses);
    const double stride =
        static_cast<double>(responses.size()) / opts.max_responses;
    for (std::size_t i = 0; i < opts.max_responses; ++i) {
      sampled.push_back(
          std::move(responses[static_cast<std::size_t>(i * stride)]));
    }
    responses = std::move(sampled);
  }

  // count[n]: responses whose suspect union contains node n; last_seen
  // dedups per response (a node may sit in several Topnode cones).
  std::vector<std::uint32_t> count(graph.num_nodes(), 0);
  std::vector<std::uint32_t> last_seen(graph.num_nodes(), 0xffffffffu);
  for (std::uint32_t r = 0; r < responses.size(); ++r) {
    const Response& resp = responses[r];
    for (std::uint32_t t : resp.topnodes) {
      for (const HeteroGraph::TopEdge& te : graph.topedges_of(t)) {
        if (last_seen[te.node] == r) continue;
        if (!graph.transitions_at(te.node, resp.pattern)) continue;
        last_seen[te.node] = r;
        ++count[te.node];
      }
    }
  }

  const auto all = static_cast<std::uint32_t>(responses.size());
  std::vector<SiteId> candidates;
  for (SiteId n = 0; n < graph.num_nodes(); ++n) {
    if (count[n] == all) candidates.push_back(n);
  }
  if (candidates.empty()) {
    const auto floor_count = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(opts.relax_fraction * all));
    for (SiteId n = 0; n < graph.num_nodes(); ++n) {
      if (count[n] >= floor_count) candidates.push_back(n);
    }
  }
  if (candidates.empty()) {
    // Multiple defects can defeat any fixed fraction (each fault explains
    // only its own share of the responses); keep the best-explaining nodes
    // so the sub-graph is never empty for a non-empty log.
    std::uint32_t best = 0;
    for (SiteId n = 0; n < graph.num_nodes(); ++n) {
      best = std::max(best, count[n]);
    }
    for (SiteId n = 0; n < graph.num_nodes() && best > 0; ++n) {
      if (count[n] == best) candidates.push_back(n);
    }
  }
  return candidates;
}

SubGraph backtrace_subgraph(const HeteroGraph& graph, const FailureLog& log,
                            const ScanConfig& scan,
                            const BacktraceOptions& opts) {
  const std::vector<SiteId> nodes = backtrace(graph, log, scan, opts);
  return extract_subgraph(graph, nodes);
}

}  // namespace m3dfl::graphx
