#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "sim/logic_sim.h"

namespace m3dfl::graphx {

using netlist::Netlist;
using netlist::SiteId;
using netlist::SiteTable;

/// The heterogeneous graph of paper Sec. III-A.
///
/// Circuit level: every fault site (every gate pin, plus every MIV) is a
/// node; edges are input-pin -> output-pin (within a gate) and net-stem ->
/// net-branch (driver output pin to each reader input pin). Node ids are
/// the shared SiteIds, so graph nodes, diagnosis candidates and injected
/// faults all name the same location.
///
/// Top level: one Topnode per observation point (scan-cell D input); a
/// Topedge connects a Topnode to every node in its fan-in cone and carries
/// the BFS-shortest distance between its ends and the number of MIV nodes
/// on that shortest path (Table I). Construction is O(V + E) per Topnode
/// via BFS, exactly as analyzed in the paper.
///
/// The top level exists to accelerate back-tracing and to contribute
/// numerical node features; after back-tracing only circuit-level nodes are
/// extracted into the homogeneous sub-graph fed to the GNNs.
class HeteroGraph {
 public:
  HeteroGraph(const Netlist& nl, const SiteTable& sites);

  std::size_t num_nodes() const { return static_.size(); }
  std::size_t num_edges() const { return out_col_.size(); }
  std::size_t num_topnodes() const { return topedge_ptr_.size() - 1; }
  std::size_t num_topedges() const { return topedge_pool_.size(); }

  const Netlist& nl() const { return *nl_; }
  const SiteTable& sites() const { return *sites_; }

  std::span<const SiteId> out_neighbors(SiteId n) const {
    return {out_col_.data() + out_ptr_[n], out_ptr_[n + 1] - out_ptr_[n]};
  }
  std::span<const SiteId> in_neighbors(SiteId n) const {
    return {in_col_.data() + in_ptr_[n], in_ptr_[n + 1] - in_ptr_[n]};
  }

  /// Static (pattern-independent) node attributes.
  struct NodeStatic {
    std::uint32_t level = 0;        ///< Topological level in the site graph.
    std::uint8_t tier = 0;          ///< Tier of the owning pin.
    std::uint8_t is_output_pin = 0; ///< 1 for stem (gate output) nodes.
    std::uint8_t connects_miv = 0;  ///< 1 if any neighbor is an MIV node.
    std::uint8_t is_miv = 0;        ///< 1 for MIV stem nodes.
  };
  const NodeStatic& node(SiteId n) const { return static_[n]; }
  std::uint32_t max_level() const { return max_level_; }

  /// One Topedge: destination circuit node + features of Table I.
  struct TopEdge {
    SiteId node;
    std::uint16_t dist;  ///< D_top: shortest distance between both ends.
    std::uint16_t nmiv;  ///< N_MIV: MIVs passed through on that path.
  };
  std::span<const TopEdge> topedges_of(std::uint32_t topnode) const {
    return {topedge_pool_.data() + topedge_ptr_[topnode],
            topedge_ptr_[topnode + 1] - topedge_ptr_[topnode]};
  }

  /// Per-node aggregates over all Topedges that reach the node; these feed
  /// the Table-II sub-graph features (count, mean/std of length, mean/std
  /// of MIVs passed through).
  struct TopAgg {
    std::uint32_t count = 0;
    double sum_d = 0, sum_d2 = 0;
    double sum_m = 0, sum_m2 = 0;
  };
  const TopAgg& top_agg(SiteId n) const { return agg_[n]; }

  // -- Pattern binding ------------------------------------------------------

  /// Binds the good-machine two-vector result so transition queries (used
  /// by back-tracing and the Tpat feature) are available. The result must
  /// outlive the binding.
  void bind_transitions(const sim::TwoVectorResult& tv);

  bool has_transitions() const { return tv_ != nullptr; }

  /// True if the signal at node n switches under pattern p.
  bool transitions_at(SiteId n, std::uint32_t pattern) const;

  /// Tpat: number of patterns that launch a transition through node n.
  std::uint32_t tpat(SiteId n) const { return tpat_[n]; }

 private:
  const Netlist* nl_;
  const SiteTable* sites_;

  std::vector<std::size_t> out_ptr_, in_ptr_;
  std::vector<SiteId> out_col_, in_col_;
  std::vector<NodeStatic> static_;
  std::uint32_t max_level_ = 0;

  std::vector<TopEdge> topedge_pool_;
  std::vector<std::size_t> topedge_ptr_;
  std::vector<TopAgg> agg_;

  const sim::TwoVectorResult* tv_ = nullptr;
  std::vector<std::uint32_t> tpat_;
};

}  // namespace m3dfl::graphx
