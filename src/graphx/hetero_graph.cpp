#include "graphx/hetero_graph.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <queue>

namespace m3dfl::graphx {

using netlist::FaultSite;
using netlist::GateId;
using netlist::GateType;

HeteroGraph::HeteroGraph(const Netlist& nl, const SiteTable& sites)
    : nl_(&nl), sites_(&sites) {
  const std::size_t n = sites.size();

  // --- Circuit-level edges -------------------------------------------------
  // input-pin -> output-pin (branch b of gate g -> stem of g) and
  // net-stem -> net-branch (stem of driver d -> branch (g, k)).
  std::vector<std::size_t> out_deg(n, 0), in_deg(n, 0);
  auto for_each_edge = [&](auto&& fn) {
    for (SiteId s = 0; s < n; ++s) {
      const FaultSite& fs = sites.site(s);
      if (fs.is_stem()) continue;
      const SiteId stem = sites.stem_of(fs.gate);
      const SiteId driver_stem = sites.stem_of(fs.driver);
      fn(s, stem);         // input pin -> output pin of the same gate
      fn(driver_stem, s);  // stem -> branch
    }
  };
  for_each_edge([&](SiteId a, SiteId b) {
    ++out_deg[a];
    ++in_deg[b];
  });
  out_ptr_.assign(n + 1, 0);
  in_ptr_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out_ptr_[i + 1] = out_ptr_[i] + out_deg[i];
    in_ptr_[i + 1] = in_ptr_[i] + in_deg[i];
  }
  out_col_.resize(out_ptr_[n]);
  in_col_.resize(in_ptr_[n]);
  std::vector<std::size_t> ofill(out_ptr_.begin(), out_ptr_.end() - 1);
  std::vector<std::size_t> ifill(in_ptr_.begin(), in_ptr_.end() - 1);
  for_each_edge([&](SiteId a, SiteId b) {
    out_col_[ofill[a]++] = b;
    in_col_[ifill[b]++] = a;
  });

  // --- Static node attributes ---------------------------------------------
  static_.resize(n);
  const auto& gate_levels = nl.levels();
  for (SiteId s = 0; s < n; ++s) {
    const FaultSite& fs = sites.site(s);
    NodeStatic& st = static_[s];
    const std::uint32_t gl = gate_levels[fs.gate];
    st.level = fs.is_stem() ? 2 * gl : (gl > 0 ? 2 * gl - 1 : 0);
    st.tier = static_cast<std::uint8_t>(sites.tier_of(s, nl));
    st.is_output_pin = fs.is_stem() ? 1 : 0;
    st.is_miv = sites.is_miv_site(s, nl) ? 1 : 0;
    max_level_ = std::max(max_level_, st.level);
  }
  for (SiteId s = 0; s < n; ++s) {
    std::uint8_t c = 0;
    for (SiteId m : out_neighbors(s)) c |= static_[m].is_miv;
    for (SiteId m : in_neighbors(s)) c |= static_[m].is_miv;
    static_[s].connects_miv = c;
  }

  // --- Top level: Topnodes + Topedges via backward BFS ---------------------
  const auto outs = nl.outputs();
  topedge_ptr_.assign(outs.size() + 1, 0);
  agg_.assign(n, TopAgg{});

  std::vector<std::uint32_t> dist(n, 0xffffffffu);
  std::vector<std::uint16_t> nmiv(n, 0);
  std::vector<SiteId> frontier, next, reached;
  // First pass estimates pool size, second fills; a single pass with
  // push_back is simpler and the reallocation cost is negligible.
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const SiteId root = sites.stem_of(outs[o]);
    reached.clear();
    frontier.clear();
    frontier.push_back(root);
    dist[root] = 0;
    nmiv[root] = static_[root].is_miv;
    reached.push_back(root);
    std::uint32_t d = 0;
    while (!frontier.empty()) {
      next.clear();
      ++d;
      for (SiteId u : frontier) {
        for (SiteId v : in_neighbors(u)) {
          if (dist[v] != 0xffffffffu) continue;
          dist[v] = d;
          nmiv[v] = static_cast<std::uint16_t>(nmiv[u] + static_[v].is_miv);
          next.push_back(v);
          reached.push_back(v);
        }
      }
      frontier.swap(next);
    }
    for (SiteId v : reached) {
      topedge_pool_.push_back(
          {v, static_cast<std::uint16_t>(std::min(dist[v], 0xffffu)),
           nmiv[v]});
      TopAgg& a = agg_[v];
      ++a.count;
      a.sum_d += dist[v];
      a.sum_d2 += static_cast<double>(dist[v]) * dist[v];
      a.sum_m += nmiv[v];
      a.sum_m2 += static_cast<double>(nmiv[v]) * nmiv[v];
      dist[v] = 0xffffffffu;  // Reset for the next Topnode.
    }
    topedge_ptr_[o + 1] = topedge_pool_.size();
  }
}

void HeteroGraph::bind_transitions(const sim::TwoVectorResult& tv) {
  tv_ = &tv;
  tpat_.assign(num_nodes(), 0);
  const std::size_t W = tv.num_words;
  const std::size_t rem = tv.num_patterns % sim::kWordBits;
  const sim::Word tail = rem ? ((sim::Word{1} << rem) - 1) : ~sim::Word{0};
  for (SiteId s = 0; s < num_nodes(); ++s) {
    const GateId drv = sites_->site(s).driver;
    std::uint32_t count = 0;
    for (std::size_t w = 0; w < W; ++w) {
      sim::Word t = tv.tr_word(drv, w);
      if (w + 1 == W) t &= tail;
      count += static_cast<std::uint32_t>(std::popcount(t));
    }
    tpat_[s] = count;
  }
}

bool HeteroGraph::transitions_at(SiteId n, std::uint32_t pattern) const {
  assert(tv_);
  const GateId drv = sites_->site(n).driver;
  const sim::Word t = tv_->tr_word(drv, pattern / sim::kWordBits);
  return (t >> (pattern % sim::kWordBits)) & 1;
}

}  // namespace m3dfl::graphx
