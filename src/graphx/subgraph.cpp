#include "graphx/subgraph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace m3dfl::graphx {

const char* subgraph_feature_name(std::size_t i) {
  switch (i) {
    case 0: return "circuit-fanin-edges";
    case 1: return "circuit-fanout-edges";
    case 2: return "topedges-connected";
    case 3: return "tier-location";
    case 4: return "topological-level";
    case 5: return "is-gate-output";
    case 6: return "connects-to-miv";
    case 7: return "subgraph-fanin-edges";
    case 8: return "subgraph-fanout-edges";
    case 9: return "mean-topedge-length";
    case 10: return "std-topedge-length";
    case 11: return "mean-topedge-mivs";
    case 12: return "std-topedge-mivs";
  }
  return "?";
}

std::int64_t SubGraph::local_of(SiteId global) const {
  const auto it = std::lower_bound(nodes.begin(), nodes.end(), global);
  if (it == nodes.end() || *it != global) return -1;
  return it - nodes.begin();
}

std::vector<double> SubGraph::feature_mean() const {
  std::vector<double> mean(kNumSubgraphFeatures, 0.0);
  if (nodes.empty()) return mean;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t f = 0; f < kNumSubgraphFeatures; ++f) {
      mean[f] += feature(i, f);
    }
  }
  for (double& m : mean) m /= static_cast<double>(nodes.size());
  return mean;
}

SubGraph extract_subgraph(const HeteroGraph& graph,
                          std::span<const SiteId> node_set) {
  SubGraph sg;
  sg.nodes.assign(node_set.begin(), node_set.end());
  std::sort(sg.nodes.begin(), sg.nodes.end());
  sg.nodes.erase(std::unique(sg.nodes.begin(), sg.nodes.end()),
                 sg.nodes.end());
  const std::size_t n = sg.nodes.size();

  // Local index lookup via binary search on the sorted node array.
  auto local_of = [&sg](SiteId g) { return sg.local_of(g); };

  // Induced directed degrees (for features 7/8) and the undirected CSR.
  std::vector<std::uint32_t> in_deg(n, 0), out_deg(n, 0);
  std::vector<std::vector<std::uint32_t>> undirected(n);
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId g = sg.nodes[i];
    for (SiteId nb : graph.out_neighbors(g)) {
      const std::int64_t j = local_of(nb);
      if (j < 0) continue;
      ++out_deg[i];
      ++in_deg[static_cast<std::size_t>(j)];
      undirected[i].push_back(static_cast<std::uint32_t>(j));
      undirected[static_cast<std::size_t>(j)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  sg.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& adj = undirected[i];
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
    sg.row_ptr[i + 1] = sg.row_ptr[i] + adj.size();
  }
  sg.col_idx.resize(sg.row_ptr[n]);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy(undirected[i].begin(), undirected[i].end(),
              sg.col_idx.begin() + sg.row_ptr[i]);
  }

  // Features (Table II), scaled to ~[0, 1].
  sg.features.assign(n * kNumSubgraphFeatures, 0.0f);
  const double level_norm = std::max<double>(1.0, graph.max_level());
  const double dist_norm = std::max<double>(1.0, graph.max_level() + 1);
  const double top_norm = std::max<double>(1.0, graph.num_topnodes());
  const auto scale_deg = [](double d) {
    return std::log1p(d) / std::log1p(8.0);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const SiteId g = sg.nodes[i];
    const auto& st = graph.node(g);
    const auto& agg = graph.top_agg(g);
    const double cnt = agg.count;
    const double mean_d = cnt > 0 ? agg.sum_d / cnt : 0.0;
    const double var_d =
        cnt > 0 ? std::max(0.0, agg.sum_d2 / cnt - mean_d * mean_d) : 0.0;
    const double mean_m = cnt > 0 ? agg.sum_m / cnt : 0.0;
    const double var_m =
        cnt > 0 ? std::max(0.0, agg.sum_m2 / cnt - mean_m * mean_m) : 0.0;

    float* f = sg.features.data() + i * kNumSubgraphFeatures;
    f[0] = static_cast<float>(scale_deg(graph.in_neighbors(g).size()));
    f[1] = static_cast<float>(scale_deg(graph.out_neighbors(g).size()));
    f[2] = static_cast<float>(cnt / top_norm);
    f[3] = static_cast<float>(st.tier);
    f[4] = static_cast<float>(st.level / level_norm);
    f[5] = static_cast<float>(st.is_output_pin);
    f[6] = static_cast<float>(st.connects_miv);
    f[7] = static_cast<float>(scale_deg(in_deg[i]));
    f[8] = static_cast<float>(scale_deg(out_deg[i]));
    f[9] = static_cast<float>(mean_d / dist_norm);
    f[10] = static_cast<float>(std::sqrt(var_d) / dist_norm);
    f[11] = static_cast<float>(std::log1p(mean_m) / std::log1p(32.0));
    f[12] = static_cast<float>(std::log1p(std::sqrt(var_m)) / std::log1p(32.0));

    if (st.is_miv) {
      sg.miv_local.push_back(static_cast<std::uint32_t>(i));
    }
  }
  sg.miv_label.assign(sg.miv_local.size(), 0.0f);
  return sg;
}

}  // namespace m3dfl::graphx
