#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphx/hetero_graph.h"

namespace m3dfl::graphx {

/// Number of initial node features of a sub-graph (Table II of the paper).
inline constexpr std::size_t kNumSubgraphFeatures = 13;

/// Names of the Table-II features, indexed 0..12.
const char* subgraph_feature_name(std::size_t i);

/// The homogeneous sub-graph extracted after back-tracing — the input of
/// the GNN models. Node features follow Table II exactly:
///   0 circuit fan-in edges        7 sub-graph fan-in edges
///   1 circuit fan-out edges       8 sub-graph fan-out edges
///   2 #Topedges connected         9 mean Topedge length
///   3 tier (binary)              10 std  Topedge length
///   4 topological level          11 mean MIVs passed by Topedges
///   5 is gate output (binary)    12 std  MIVs passed by Topedges
///   6 connects to MIV (binary)
/// All features are scaled to ~[0, 1] at extraction so the GCN sees a
/// stable input distribution across designs (part of what makes the models
/// transferable).
struct SubGraph {
  std::vector<SiteId> nodes;  ///< Global node (site) ids, ascending.

  /// Undirected adjacency in CSR form over local indices (no self-loops;
  /// the GCN adds self-connections during normalization).
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col_idx;

  /// Row-major features: nodes.size() x kNumSubgraphFeatures.
  std::vector<float> features;

  /// Local indices of MIV nodes (prediction targets of MIV-pinpointer).
  std::vector<std::uint32_t> miv_local;

  // -- Labels (filled by the data-generation flow) --------------------------
  int label_tier = -1;            ///< Tier of the injected fault, or -1.
  std::vector<float> miv_label;   ///< Parallel to miv_local: 1 = faulty MIV.
  bool truth_in_nodes = false;    ///< Ground truth survived back-tracing.

  std::size_t num_nodes() const { return nodes.size(); }
  std::size_t num_edges() const { return col_idx.size(); }

  float feature(std::size_t local, std::size_t f) const {
    return features[local * kNumSubgraphFeatures + f];
  }
  float& feature(std::size_t local, std::size_t f) {
    return features[local * kNumSubgraphFeatures + f];
  }

  /// Local index of a global node id, or -1.
  std::int64_t local_of(SiteId global) const;

  /// Graph-level descriptor: the feature mean over nodes. Used for the
  /// PCA transferability analysis (paper Fig. 5).
  std::vector<double> feature_mean() const;
};

/// Induces the sub-graph on the given (deduplicated) candidate node set.
SubGraph extract_subgraph(const HeteroGraph& graph,
                          std::span<const SiteId> nodes);

}  // namespace m3dfl::graphx
