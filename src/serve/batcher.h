#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "serve/metrics.h"  // FlushReason

namespace m3dfl::serve {

/// Micro-batcher: accumulates pushed items and hands them to a flush
/// callback in batches, whichever comes first of
///  * the batch reaching max_batch items, or
///  * max_wait elapsing since the first item of the batch arrived
///    (the latency deadline — a lone request never waits longer than this).
///
/// push() is thread-safe and cheap (one lock, one notify). The flush
/// callback runs on the batcher's own thread; it should dispatch real work
/// elsewhere (the diagnosis service fans items out across an Executor).
/// The destructor flushes whatever is pending, so no pushed item is lost.
/// Each flush is tagged with why it fired (FlushReason): a full batch, the
/// deadline, or teardown — the size-vs-deadline split is the batcher's key
/// tuning signal.
template <typename Item>
class Batcher {
 public:
  struct Options {
    std::size_t max_batch = 8;
    std::chrono::microseconds max_wait{2000};
  };
  using FlushFn = std::function<void(std::vector<Item>&&, FlushReason)>;

  Batcher(Options opts, FlushFn flush)
      : opts_(opts), flush_(std::move(flush)) {
    if (opts_.max_batch == 0) opts_.max_batch = 1;
    thread_ = std::thread([this] { loop(); });
  }

  ~Batcher() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void push(Item item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) {
        deadline_ = std::chrono::steady_clock::now() + opts_.max_wait;
      }
      pending_.push_back(std::move(item));
      if (pending_.size() > pending_high_water_) {
        pending_high_water_ = pending_.size();
      }
    }
    cv_.notify_one();
  }

  std::uint64_t batches_flushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batches_;
  }

  /// High-water mark of items waiting in the batcher (queue-depth signal
  /// the admin plane's /statusz reports).
  std::size_t pending_high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_high_water_;
  }

  const Options& options() const { return opts_; }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (pending_.empty()) {
        if (stop_) return;
        cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
        continue;
      }
      if (pending_.size() < opts_.max_batch && !stop_) {
        // Either the batch fills up (predicate) or the deadline passes
        // (timeout) — both fall through to the flush below.
        cv_.wait_until(lock, deadline_, [this] {
          return stop_ || pending_.size() >= opts_.max_batch;
        });
      }
      // Why this flush fired. A batch that filled up reports kSize even if
      // the deadline or stop raced it — size is the strongest signal.
      FlushReason reason;
      if (pending_.size() >= opts_.max_batch) {
        reason = FlushReason::kSize;
      } else if (stop_) {
        reason = FlushReason::kShutdown;
      } else {
        reason = FlushReason::kDeadline;
      }
      std::vector<Item> batch;
      if (pending_.size() <= opts_.max_batch) {
        batch.swap(pending_);
      } else {
        // More arrived while we slept than one batch may carry: peel off
        // max_batch and restart the deadline for the remainder.
        const auto split =
            pending_.begin() + static_cast<std::ptrdiff_t>(opts_.max_batch);
        batch.assign(std::make_move_iterator(pending_.begin()),
                     std::make_move_iterator(split));
        pending_.erase(pending_.begin(), split);
        deadline_ = std::chrono::steady_clock::now() + opts_.max_wait;
      }
      ++batches_;
      lock.unlock();
      flush_(std::move(batch), reason);
      lock.lock();
    }
  }

  Options opts_;
  FlushFn flush_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Item> pending_;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t batches_ = 0;
  std::size_t pending_high_water_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace m3dfl::serve
