#include "serve/service.h"

#include <exception>
#include <type_traits>
#include <utility>

#include "diagnosis/diagnoser.h"
#include "graphx/backtrace.h"
#include "obs/exemplar.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/trace.h"

namespace m3dfl::serve {

namespace {

/// Resolves the mode a request actually runs under: int8 degrades to fp32
/// when the published framework has no quantized twin. `count` switches the
/// per-path counters on (the served path counts; status probes don't).
eval::InferenceMode resolve_inference_mode(eval::InferenceMode requested,
                                           const eval::TrainedFramework& fw,
                                           bool count) {
  static obs::Counter& int8_requests = obs::MetricsRegistry::instance()
      .counter("serve.inference.int8_requests");
  static obs::Counter& fp32_requests = obs::MetricsRegistry::instance()
      .counter("serve.inference.fp32_requests");
  static obs::Counter& int8_fallbacks = obs::MetricsRegistry::instance()
      .counter("serve.inference.int8_fallbacks");
  eval::InferenceMode mode = requested;
  if (mode == eval::InferenceMode::kInt8 && !fw.quant) {
    if (count) int8_fallbacks.add();
    mode = eval::InferenceMode::kFp32;
  }
  if (count) {
    (mode == eval::InferenceMode::kInt8 ? int8_requests : fp32_requests).add();
  }
  return mode;
}

}  // namespace

std::uint64_t failure_log_fingerprint(const sim::FailureLog& log) {
  static_assert(
      std::has_unique_object_representations_v<sim::FailureLog::Obs> &&
          std::has_unique_object_representations_v<sim::FailureLog::CObs>,
      "failure-log entries must be padding-free to hash raw bytes");
  std::uint64_t h = fnv1a64(&log.compacted, sizeof(log.compacted));
  const std::uint64_t counts[2] = {log.fails.size(), log.cfails.size()};
  h = fnv1a64(counts, sizeof(counts), h);
  if (!log.fails.empty()) {
    h = fnv1a64(log.fails.data(),
                log.fails.size() * sizeof(sim::FailureLog::Obs), h);
  }
  if (!log.cfails.empty()) {
    h = fnv1a64(log.cfails.data(),
                log.cfails.size() * sizeof(sim::FailureLog::CObs), h);
  }
  return h;
}

/// Stateful per-task diagnosis machinery. The Diagnoser mutates scratch
/// buffers and its FaultSimulator's faulty-machine workspace during
/// diagnose(), so contexts are never shared between concurrent tasks; the
/// design's own shared simulator (design.fsim) is left untouched by the
/// service.
struct DiagnosisService::WorkerContext {
  std::unique_ptr<sim::FaultSimulator> fsim;
  std::unique_ptr<diag::Diagnoser> diagnoser;

  explicit WorkerContext(const eval::Design& d) {
    // Clone the design's already-bound simulator instead of re-running the
    // good-machine simulation: registration and pool growth become a
    // memcpy of the good-machine state.
    fsim = d.fsim->clone();
    // Mirrors Design::make_diagnoser(false) but binds a private simulator,
    // which is what makes concurrent diagnosis of one design legal.
    diag::DiagnoserOptions opts = d.spec.diag;
    opts.multifault = false;
    diagnoser = std::make_unique<diag::Diagnoser>(d.nl, d.sites, d.scan, opts);
    diagnoser->bind(*fsim);
  }
};

struct DiagnosisService::DesignState {
  const eval::Design* design = nullptr;
  std::mutex mu;
  std::vector<std::unique_ptr<WorkerContext>> idle;
};

DiagnosisService::DiagnosisService(ModelRegistry& registry,
                                   ServiceOptions opts)
    : opts_(opts),
      model_(registry.handle(opts.model_name)),
      subgraph_cache_(opts.cache_capacity),
      executor_(opts.num_threads, "serve"),
      batcher_({opts.max_batch, opts.max_wait},
               [this](std::vector<Pending>&& batch, FlushReason reason) {
                 flush_batch(std::move(batch), reason);
               }) {
  // 0 = fp32, 1 = int8: the configured mode as a scrapable gauge (the
  // effective per-request mode can differ on fallback — see the counters).
  obs::MetricsRegistry::instance()
      .gauge("gnn.inference.mode")
      .set(opts_.inference == eval::InferenceMode::kInt8 ? 1.0 : 0.0);
}

DiagnosisService::~DiagnosisService() = default;

void DiagnosisService::register_design(const eval::Design& design) {
  // Touch the netlist's lazily built mutable caches while single-threaded;
  // afterwards workers only ever read them.
  design.nl.topo_order();
  design.nl.levels();
  design.nl.depth();

  auto state = std::make_unique<DesignState>();
  state->design = &design;
  // First context built eagerly (a clone of the design's bound simulator),
  // so the first request pays only diagnosis.
  state->idle.push_back(std::make_unique<WorkerContext>(design));
  std::lock_guard<std::mutex> lock(designs_mu_);
  designs_.emplace(&design, std::move(state));
}

std::future<DiagnosisResponse> DiagnosisService::submit(
    const eval::Design& design, sim::FailureLog log) {
  Pending p;
  p.log = std::move(log);
  p.promise = std::make_shared<std::promise<DiagnosisResponse>>();
  p.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  p.t_submit = std::chrono::steady_clock::now();
  std::future<DiagnosisResponse> future = p.promise->get_future();
  {
    std::lock_guard<std::mutex> lock(designs_mu_);
    const auto it = designs_.find(&design);
    p.state = it == designs_.end() ? nullptr : it->second.get();
  }
  metrics_.on_request();
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++accepted_;
  }
  if (p.state == nullptr) {
    DiagnosisResponse r;
    r.error = "design not registered with the service";
    r.request_id = p.request_id;
    // rid in the log line matches the response, the /tracez exemplar, and
    // the client-side error — one identifier across all three surfaces.
    M3DFL_LOG_WARN("serve", "rid=%llu rejected: design not registered",
                   static_cast<unsigned long long>(p.request_id));
    metrics_.on_complete_split(0.0, 0.0, false);
    p.promise->set_value(std::move(r));
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++finished_;
    }
    drain_cv_.notify_all();
    return future;
  }
  batcher_.push(std::move(p));
  return future;
}

void DiagnosisService::flush_batch(std::vector<Pending>&& batch,
                                   FlushReason reason) {
  metrics_.on_batch(batch.size(), reason);
  const auto t_flush = std::chrono::steady_clock::now();
  // Fan the batch out: every request becomes one executor task, so a batch
  // of B occupies min(B, num_threads) workers concurrently.
  for (Pending& item : batch) {
    item.t_flush = t_flush;
    executor_.post([this, p = std::move(item)]() mutable { process(p); });
  }
}

std::unique_ptr<DiagnosisService::WorkerContext>
DiagnosisService::acquire_context(DesignState& state) {
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.idle.empty()) {
      auto ctx = std::move(state.idle.back());
      state.idle.pop_back();
      return ctx;
    }
  }
  // Pool empty: build a fresh context outside the lock. At most
  // num_threads tasks run at once, so at most num_threads contexts are
  // ever created per design.
  return std::make_unique<WorkerContext>(*state.design);
}

void DiagnosisService::release_context(DesignState& state,
                                       std::unique_ptr<WorkerContext> c) {
  std::lock_guard<std::mutex> lock(state.mu);
  state.idle.push_back(std::move(c));
}

void DiagnosisService::process(Pending& p) {
  M3DFL_OBS_SPAN(span, "serve.process");
  M3DFL_OBS_COUNTERS(ctrs, "serve.process");
  using clock = std::chrono::steady_clock;
  // Worker pickup: the boundary between queue wait and service time. Queue
  // wait = batcher dwell + executor queue; service = everything below.
  const clock::time_point t_start = clock::now();
  const bool want_exemplar = obs::ExemplarStore::instance().enabled();
  auto rel_ms = [&p](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  std::vector<obs::ExemplarStage> stages;
  if (want_exemplar) {
    stages.push_back({"serve.batcher_wait", 0.0, rel_ms(p.t_submit, t_start)});
  }
  DiagnosisResponse r;
  r.request_id = p.request_id;
  try {
    const ModelRegistry::Published* published = model_.current();
    if (!published) {
      r.error = "no framework published under '" + opts_.model_name + "'";
    } else {
      const eval::Design& d = *p.state->design;
      const clock::time_point t_diag0 = clock::now();
      std::unique_ptr<WorkerContext> ctx = acquire_context(*p.state);
      r.atpg_report = ctx->diagnoser->diagnose(p.log);
      release_context(*p.state, std::move(ctx));
      const clock::time_point t_diag1 = clock::now();
      if (want_exemplar) {
        stages.push_back({"serve.diagnose", rel_ms(p.t_submit, t_diag0),
                          rel_ms(t_diag0, t_diag1)});
      }

      const CacheKey key{&d, failure_log_fingerprint(p.log)};
      std::shared_ptr<const graphx::SubGraph> sub = subgraph_cache_.get(key);
      r.cache_hit = sub != nullptr;
      metrics_.on_cache(r.cache_hit);
      if (!sub) {
        M3DFL_OBS_SPAN(bt_span, "serve.backtrace");
        const clock::time_point t_bt0 = clock::now();
        sub = std::make_shared<const graphx::SubGraph>(
            graphx::backtrace_subgraph(*d.graph, p.log, d.scan));
        subgraph_cache_.put(key, sub);
        if (want_exemplar) {
          stages.push_back({"serve.backtrace", rel_ms(p.t_submit, t_bt0),
                            rel_ms(t_bt0, clock::now())});
        }
      }

      const clock::time_point t_pol0 = clock::now();
      const eval::InferenceMode mode = resolve_inference_mode(
          opts_.inference, published->framework, /*count=*/true);
      r.outcome =
          core::apply_policy(r.atpg_report, *sub,
                             published->framework.models(mode),
                             published->framework.policy_for(mode));
      if (want_exemplar) {
        stages.push_back({"serve.policy", rel_ms(p.t_submit, t_pol0),
                          rel_ms(t_pol0, clock::now())});
      }
      r.model_version = published->version;
      metrics_.on_model_version(published->version);
      r.ok = true;
    }
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.queue_seconds =
      std::chrono::duration<double>(t_start - p.t_submit).count();
  r.service_seconds =
      std::chrono::duration<double>(clock::now() - t_start).count();
  r.seconds = r.queue_seconds + r.service_seconds;
  metrics_.on_complete_split(r.queue_seconds, r.service_seconds, r.ok);
  if (!r.ok) {
    M3DFL_LOG_WARN("serve", "rid=%llu failed after %.1f ms: %s",
                   static_cast<unsigned long long>(p.request_id),
                   1e3 * r.seconds, r.error.c_str());
  }
  {
    // Resolved once; record() is wait-free, so the global registry adds no
    // lock to the completion path.
    static obs::LatencyHistogram& queue_hist =
        obs::MetricsRegistry::instance().histogram("serve.queue_wait_seconds");
    static obs::LatencyHistogram& service_hist =
        obs::MetricsRegistry::instance().histogram("serve.service_seconds");
    queue_hist.record(r.queue_seconds);
    service_hist.record(r.service_seconds);
  }
  if (want_exemplar) {
    obs::RequestExemplar ex;
    ex.request_id = r.request_id;
    ex.total_ms = 1e3 * r.seconds;
    ex.queue_ms = 1e3 * r.queue_seconds;
    ex.service_ms = 1e3 * r.service_seconds;
    ex.ok = r.ok;
    ex.cache_hit = r.cache_hit;
    ex.model_version = r.model_version;
    ex.stages = std::move(stages);
    obs::ExemplarStore::instance().offer(std::move(ex));
  }
  p.promise->set_value(std::move(r));
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++finished_;
  }
  drain_cv_.notify_all();
}

DiagnosisResponse DiagnosisService::diagnose_direct(
    const eval::Design& design, const eval::TrainedFramework& fw,
    const sim::FailureLog& log, eval::InferenceMode mode) {
  DiagnosisResponse r;
  diag::Diagnoser diagnoser = design.make_diagnoser();
  r.atpg_report = diagnoser.diagnose(log);
  const graphx::SubGraph sub =
      graphx::backtrace_subgraph(*design.graph, log, design.scan);
  mode = resolve_inference_mode(mode, fw, /*count=*/false);
  r.outcome = core::apply_policy(r.atpg_report, sub, fw.models(mode),
                                 fw.policy_for(mode));
  r.ok = true;
  return r;
}

bool DiagnosisService::ready() const {
  const ModelRegistry::Published* published = model_.current();
  return published != nullptr && executor_.num_threads() > 0;
}

std::uint64_t DiagnosisService::live_model_version() const {
  const ModelRegistry::Published* published = model_.current();
  return published ? published->version : 0;
}

DiagnosisService::QuantStatus DiagnosisService::live_quant_status() const {
  QuantStatus s;
  s.configured = opts_.inference;
  const ModelRegistry::Published* published = model_.current();
  if (published && published->framework.quant) {
    const eval::QuantizedFramework& q = *published->framework.quant;
    s.quantized_available = true;
    s.calib_graphs = q.calib_graphs();
    s.fingerprint = q.fingerprint();
  }
  s.effective = s.configured == eval::InferenceMode::kInt8 &&
                        s.quantized_available
                    ? eval::InferenceMode::kInt8
                    : eval::InferenceMode::kFp32;
  return s;
}

void DiagnosisService::drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return finished_ == accepted_; });
}

}  // namespace m3dfl::serve
