#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/table.h"

namespace m3dfl::serve {
namespace {

constexpr double kBase_us = 1.0;   ///< Upper bound of bucket 0.
constexpr double kGrowth = 1.5;

std::size_t bucket_of(double seconds) {
  const double us = seconds * 1e6;
  if (us <= kBase_us) return 0;
  const std::size_t i =
      static_cast<std::size_t>(std::ceil(std::log(us / kBase_us) /
                                         std::log(kGrowth)));
  return std::min(i, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

double LatencyHistogram::bucket_upper_seconds(std::size_t i) {
  return kBase_us * std::pow(kGrowth, static_cast<double>(i)) * 1e-6;
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  buckets_[bucket_of(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         (1e9 * static_cast<double>(n));
}

double LatencyHistogram::percentile_seconds(double pct) const {
  std::array<std::uint64_t, kNumBuckets> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  const double target = pct / 100.0 * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (snap[i] == 0) continue;
    const double lo = i == 0 ? 0.0 : bucket_upper_seconds(i - 1);
    const double hi = bucket_upper_seconds(i);
    if (static_cast<double>(cum + snap[i]) >= target) {
      const double within =
          (target - static_cast<double>(cum)) / static_cast<double>(snap[i]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cum += snap[i];
  }
  return bucket_upper_seconds(kNumBuckets - 1);
}

void ServiceMetrics::on_request() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::on_batch(std::size_t items) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_items_.fetch_add(items, std::memory_order_relaxed);
}

void ServiceMetrics::on_cache(bool hit) {
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::on_model_version(std::uint64_t version) {
  // Counts upward version transitions; concurrent observers may both claim
  // the same swap, which over-counts by at most the worker count per swap —
  // fine for a visibility gauge.
  std::uint64_t seen = last_version_.load(std::memory_order_relaxed);
  while (version > seen) {
    if (last_version_.compare_exchange_weak(seen, version,
                                            std::memory_order_relaxed)) {
      if (seen != 0) {
        hot_swaps_observed_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void ServiceMetrics::on_complete(double seconds, bool ok) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  latency_.record(seconds);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_items = batch_items_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.hot_swaps_observed = hot_swaps_observed_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches ? static_cast<double>(s.batch_items) /
                                 static_cast<double>(s.batches)
                           : 0.0;
  const std::uint64_t lookups = s.cache_hits + s.cache_misses;
  s.cache_hit_rate = lookups ? static_cast<double>(s.cache_hits) /
                                   static_cast<double>(lookups)
                             : 0.0;
  s.mean_latency_ms = 1e3 * latency_.mean_seconds();
  s.p50_ms = 1e3 * latency_.percentile_seconds(50.0);
  s.p95_ms = 1e3 * latency_.percentile_seconds(95.0);
  s.p99_ms = 1e3 * latency_.percentile_seconds(99.0);
  return s;
}

std::string ServiceMetrics::render(const std::string& title) const {
  const MetricsSnapshot s = snapshot();
  TablePrinter table(title);
  table.set_header({"metric", "value"});
  table.add_row({"requests", std::to_string(s.requests)});
  table.add_row({"completed", std::to_string(s.completed)});
  table.add_row({"errors", std::to_string(s.errors)});
  table.add_row({"in flight", std::to_string(s.in_flight)});
  table.add_row({"batches", std::to_string(s.batches)});
  table.add_row({"mean batch size", fmt(s.mean_batch, 2)});
  table.add_row({"cache hit rate", fmt_pct(s.cache_hit_rate)});
  table.add_row({"hot swaps observed", std::to_string(s.hot_swaps_observed)});
  table.add_row({"mean latency (ms)", fmt(s.mean_latency_ms, 3)});
  table.add_row({"p50 latency (ms)", fmt(s.p50_ms, 3)});
  table.add_row({"p95 latency (ms)", fmt(s.p95_ms, 3)});
  table.add_row({"p99 latency (ms)", fmt(s.p99_ms, 3)});
  return table.to_string();
}

}  // namespace m3dfl::serve
