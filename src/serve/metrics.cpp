#include "serve/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/table.h"

namespace m3dfl::serve {

const char* flush_reason_name(FlushReason r) {
  switch (r) {
    case FlushReason::kSize: return "size";
    case FlushReason::kDeadline: return "deadline";
    case FlushReason::kShutdown: return "shutdown";
  }
  return "?";
}

void ServiceMetrics::on_request() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::on_batch(std::size_t items, FlushReason reason) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_items_.fetch_add(items, std::memory_order_relaxed);
  flush_reasons_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServiceMetrics::on_cache(bool hit) {
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
}

void ServiceMetrics::on_model_version(std::uint64_t version) {
  // Counts upward version transitions; concurrent observers may both claim
  // the same swap, which over-counts by at most the worker count per swap —
  // fine for a visibility gauge.
  std::uint64_t seen = last_version_.load(std::memory_order_relaxed);
  while (version > seen) {
    if (last_version_.compare_exchange_weak(seen, version,
                                            std::memory_order_relaxed)) {
      if (seen != 0) {
        hot_swaps_observed_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

void ServiceMetrics::on_complete(double seconds, bool ok) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) errors_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  latency_.record(seconds);
}

void ServiceMetrics::on_complete_split(double queue_seconds,
                                       double service_seconds, bool ok) {
  queue_wait_.record(queue_seconds);
  service_time_.record(service_seconds);
  on_complete(queue_seconds + service_seconds, ok);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_items = batch_items_.load(std::memory_order_relaxed);
  s.flush_size = flush_reasons_[static_cast<std::size_t>(FlushReason::kSize)]
                     .load(std::memory_order_relaxed);
  s.flush_deadline =
      flush_reasons_[static_cast<std::size_t>(FlushReason::kDeadline)].load(
          std::memory_order_relaxed);
  s.flush_shutdown =
      flush_reasons_[static_cast<std::size_t>(FlushReason::kShutdown)].load(
          std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.hot_swaps_observed = hot_swaps_observed_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches ? static_cast<double>(s.batch_items) /
                                 static_cast<double>(s.batches)
                           : 0.0;
  const std::uint64_t lookups = s.cache_hits + s.cache_misses;
  s.cache_hit_rate = lookups ? static_cast<double>(s.cache_hits) /
                                   static_cast<double>(lookups)
                             : 0.0;
  s.mean_latency_ms = 1e3 * latency_.mean_seconds();
  s.p50_ms = 1e3 * latency_.percentile_seconds(50.0);
  s.p95_ms = 1e3 * latency_.percentile_seconds(95.0);
  s.p99_ms = 1e3 * latency_.percentile_seconds(99.0);
  s.mean_queue_ms = 1e3 * queue_wait_.mean_seconds();
  s.p95_queue_ms = 1e3 * queue_wait_.percentile_seconds(95.0);
  s.mean_service_ms = 1e3 * service_time_.mean_seconds();
  s.p95_service_ms = 1e3 * service_time_.percentile_seconds(95.0);
  return s;
}

std::string ServiceMetrics::render(const std::string& title) const {
  const MetricsSnapshot s = snapshot();
  TablePrinter table(title);
  table.set_header({"metric", "value"});
  table.add_row({"requests", std::to_string(s.requests)});
  table.add_row({"completed", std::to_string(s.completed)});
  table.add_row({"errors", std::to_string(s.errors)});
  table.add_row({"in flight", std::to_string(s.in_flight)});
  table.add_row({"batches", std::to_string(s.batches)});
  table.add_row({"mean batch size", fmt(s.mean_batch, 2)});
  table.add_row({"flushes (size)", std::to_string(s.flush_size)});
  table.add_row({"flushes (deadline)", std::to_string(s.flush_deadline)});
  table.add_row({"flushes (shutdown)", std::to_string(s.flush_shutdown)});
  table.add_row({"cache hit rate", fmt_pct(s.cache_hit_rate)});
  table.add_row({"hot swaps observed", std::to_string(s.hot_swaps_observed)});
  table.add_row({"mean latency (ms)", fmt(s.mean_latency_ms, 3)});
  table.add_row({"p50 latency (ms)", fmt(s.p50_ms, 3)});
  table.add_row({"p95 latency (ms)", fmt(s.p95_ms, 3)});
  table.add_row({"p99 latency (ms)", fmt(s.p99_ms, 3)});
  table.add_row({"mean queue wait (ms)", fmt(s.mean_queue_ms, 3)});
  table.add_row({"mean service time (ms)", fmt(s.mean_service_ms, 3)});
  return table.to_string();
}

std::string ServiceMetrics::to_json() const {
  const MetricsSnapshot s = snapshot();
  auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", std::isfinite(v) ? v : 0.0);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "{\"requests\":" << s.requests << ",\"completed\":" << s.completed
     << ",\"errors\":" << s.errors << ",\"in_flight\":" << s.in_flight
     << ",\"batches\":" << s.batches << ",\"batch_items\":" << s.batch_items
     << ",\"mean_batch\":" << num(s.mean_batch) << ",\"flush_reasons\":{"
     << "\"size\":" << s.flush_size << ",\"deadline\":" << s.flush_deadline
     << ",\"shutdown\":" << s.flush_shutdown << "}"
     << ",\"cache_hits\":" << s.cache_hits
     << ",\"cache_misses\":" << s.cache_misses
     << ",\"cache_hit_rate\":" << num(s.cache_hit_rate)
     << ",\"hot_swaps_observed\":" << s.hot_swaps_observed
     << ",\"latency_ms\":{\"mean\":" << num(s.mean_latency_ms)
     << ",\"p50\":" << num(s.p50_ms) << ",\"p95\":" << num(s.p95_ms)
     << ",\"p99\":" << num(s.p99_ms) << "}"
     << ",\"queue_ms\":{\"mean\":" << num(s.mean_queue_ms)
     << ",\"p95\":" << num(s.p95_queue_ms) << "}"
     << ",\"service_ms\":{\"mean\":" << num(s.mean_service_ms)
     << ",\"p95\":" << num(s.p95_service_ms) << "}}";
  return os.str();
}

}  // namespace m3dfl::serve
