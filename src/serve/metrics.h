#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace m3dfl::serve {

/// Lock-free latency histogram with geometrically spaced buckets
/// (1 us * 1.5^i, ~48 buckets spanning 1 us .. ~4 minutes). record() is a
/// single relaxed fetch_add on the matching bucket, so the request hot path
/// never serializes on the metrics layer; percentiles are computed from a
/// snapshot with linear interpolation inside the winning bucket.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 48;

  void record(double seconds);

  std::uint64_t count() const;
  double mean_seconds() const;
  /// pct in [0, 100]. Returns 0 when empty.
  double percentile_seconds(double pct) const;

  /// Upper bound of bucket i, in seconds (test hook).
  static double bucket_upper_seconds(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
};

/// One coherent reading of every service counter (taken with relaxed loads;
/// individual counters are exact, cross-counter relations are approximate
/// while requests are in flight and exact once the service is drained).
struct MetricsSnapshot {
  std::uint64_t requests = 0;    ///< Accepted by submit().
  std::uint64_t completed = 0;   ///< Responses delivered (ok or error).
  std::uint64_t errors = 0;      ///< Responses with ok == false.
  std::uint64_t in_flight = 0;   ///< Accepted, response not yet delivered.
  std::uint64_t batches = 0;     ///< Micro-batches flushed.
  std::uint64_t batch_items = 0; ///< Sum of flushed batch sizes.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_swaps_observed = 0;  ///< Requests served by a model
                                         ///< version newer than the last one
                                         ///< this counter saw.
  double mean_batch = 0.0;
  double cache_hit_rate = 0.0;   ///< hits / (hits + misses), 0 when idle.
  double mean_latency_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// Counters + latency histogram for the diagnosis service. All mutators are
/// thread-safe and wait-free (atomic increments).
class ServiceMetrics {
 public:
  void on_request();                       ///< requests++, in-flight++.
  void on_batch(std::size_t items);        ///< One micro-batch flushed.
  void on_cache(bool hit);
  void on_model_version(std::uint64_t version);
  /// completed++, in-flight--, latency recorded; errors++ when !ok.
  void on_complete(double seconds, bool ok);

  MetricsSnapshot snapshot() const;

  /// Renders the snapshot as a fixed-width table (common/table).
  std::string render(const std::string& title = "serve metrics") const;

  const LatencyHistogram& latency() const { return latency_; }

 private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_items_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> hot_swaps_observed_{0};
  std::atomic<std::uint64_t> last_version_{0};
  LatencyHistogram latency_;
};

}  // namespace m3dfl::serve
