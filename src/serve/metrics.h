#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace m3dfl::serve {

/// The latency histogram now lives in the observability layer
/// (obs::LatencyHistogram) so offline stages share it; this alias keeps the
/// serve API and existing call sites intact.
using LatencyHistogram = obs::LatencyHistogram;

/// Why the micro-batcher handed a batch to the flush callback.
enum class FlushReason : std::uint8_t {
  kSize,      ///< The batch reached max_batch items.
  kDeadline,  ///< max_wait elapsed since the batch's first item.
  kShutdown,  ///< Destructor drained the pending items.
};

const char* flush_reason_name(FlushReason r);

/// One coherent reading of every service counter (taken with relaxed loads;
/// individual counters are exact, cross-counter relations are approximate
/// while requests are in flight and exact once the service is drained).
struct MetricsSnapshot {
  std::uint64_t requests = 0;    ///< Accepted by submit().
  std::uint64_t completed = 0;   ///< Responses delivered (ok or error).
  std::uint64_t errors = 0;      ///< Responses with ok == false.
  std::uint64_t in_flight = 0;   ///< Accepted, response not yet delivered.
  std::uint64_t batches = 0;     ///< Micro-batches flushed.
  std::uint64_t batch_items = 0; ///< Sum of flushed batch sizes.
  std::uint64_t flush_size = 0;      ///< Batches flushed because full.
  std::uint64_t flush_deadline = 0;  ///< Batches flushed on the deadline.
  std::uint64_t flush_shutdown = 0;  ///< Batches flushed at teardown.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t hot_swaps_observed = 0;  ///< Requests served by a model
                                         ///< version newer than the last one
                                         ///< this counter saw.
  double mean_batch = 0.0;
  double cache_hit_rate = 0.0;   ///< hits / (hits + misses), 0 when idle.
  double mean_latency_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Queue-wait (submit -> worker pickup) and service-time (pickup ->
  /// response ready) split of the end-to-end latency. Populated by
  /// on_complete_split(); requests recorded through the legacy
  /// on_complete() overload contribute to the totals only.
  double mean_queue_ms = 0.0;
  double p95_queue_ms = 0.0;
  double mean_service_ms = 0.0;
  double p95_service_ms = 0.0;
};

/// Counters + latency histogram for the diagnosis service. All mutators are
/// thread-safe and wait-free (atomic increments).
class ServiceMetrics {
 public:
  void on_request();                       ///< requests++, in-flight++.
  /// One micro-batch flushed, tagged with why the batcher flushed it.
  void on_batch(std::size_t items, FlushReason reason);
  void on_cache(bool hit);
  void on_model_version(std::uint64_t version);
  /// completed++, in-flight--, latency recorded; errors++ when !ok.
  /// Records the end-to-end total only (queue/service histograms
  /// untouched) — kept for callers that cannot attribute the split.
  void on_complete(double seconds, bool ok);
  /// The split-accounting variant the service uses: total = queue +
  /// service by construction (the worker-pickup instant is the shared
  /// boundary), so the lump latency histogram stays comparable with
  /// pre-split records while the two components get their own histograms.
  void on_complete_split(double queue_seconds, double service_seconds,
                         bool ok);

  MetricsSnapshot snapshot() const;

  /// Renders the snapshot as a fixed-width table (common/table).
  std::string render(const std::string& title = "serve metrics") const;

  /// Machine-readable snapshot (one JSON object) — what `m3dfl serve
  /// --metrics-json` and bench/serve_throughput.cpp emit.
  std::string to_json() const;

  const LatencyHistogram& latency() const { return latency_; }
  const LatencyHistogram& queue_wait() const { return queue_wait_; }
  const LatencyHistogram& service_time() const { return service_time_; }

 private:
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_items_{0};
  std::array<std::atomic<std::uint64_t>, 3> flush_reasons_{};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> hot_swaps_observed_{0};
  std::atomic<std::uint64_t> last_version_{0};
  LatencyHistogram latency_;       ///< End-to-end (queue + service).
  LatencyHistogram queue_wait_;    ///< submit -> worker pickup.
  LatencyHistogram service_time_;  ///< worker pickup -> response ready.
};

}  // namespace m3dfl::serve
