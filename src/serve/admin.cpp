#include "serve/admin.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "obs/build_info.h"
#include "obs/exemplar.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/prof/profiler.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "sim/backend.h"
#include "sim/bitpar/dispatch.h"

namespace m3dfl::serve {

namespace {

/// How many of the most recent tracer spans /tracez returns. The tracer
/// rings hold thousands; the admin page is a tail, not an export — use
/// `m3dfl serve --trace out.json` for the full Chrome trace.
constexpr std::size_t kTracezSpanLimit = 64;

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return std::string(buf);
}

#if M3DFL_OBS_ENABLED
/// "seconds=3&hz=199" -> value of `key` as a clamped int, or `fallback`
/// when absent/garbage. Good enough for the two numeric knobs /profilez
/// takes; not a general query parser.
int query_int(const std::string& query, const std::string& key, int fallback,
              int lo, int hi) {
  const std::string needle = key + "=";
  std::size_t at = 0;
  while (at < query.size()) {
    const std::size_t amp = query.find('&', at);
    const std::string pair =
        query.substr(at, amp == std::string::npos ? amp : amp - at);
    if (pair.rfind(needle, 0) == 0) {
      const std::string v = pair.substr(needle.size());
      char* end = nullptr;
      const long parsed = std::strtol(v.c_str(), &end, 10);
      if (end != nullptr && end != v.c_str() && *end == '\0') {
        return std::clamp(static_cast<int>(parsed), lo, hi);
      }
      return fallback;
    }
    if (amp == std::string::npos) break;
    at = amp + 1;
  }
  return fallback;
}
#endif

}  // namespace

void register_admin_endpoints(obs::AdminHttpServer& server,
                              const DiagnosisService& service) {
  const auto t_registered = std::chrono::steady_clock::now();

  server.handle("/healthz", [] {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });

  server.handle("/readyz", [&service] {
    obs::HttpResponse r;
    if (service.ready()) {
      r.body = "ready\n";
    } else {
      r.status = 503;
      r.body = "not ready: no model published under '" +
               service.options().model_name + "'\n";
    }
    return r;
  });

  server.handle("/metrics", [] {
    obs::publish_process_metrics();
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::MetricsRegistry::instance().to_prometheus();
    return r;
  });

  server.handle("/metrics.json", [&service] {
    obs::publish_process_metrics();
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"registry\":" + obs::MetricsRegistry::instance().to_json() +
             ",\"service\":" + service.metrics().to_json() + "}";
    return r;
  });

  // On-demand CPU profile: arms the sampling profiler for `seconds`
  // (default 5, clamped to [1, 30]) at `hz` (default 99) and answers with
  // collapsed stacks — `curl .../profilez?seconds=10 | flamegraph.pl`.
  // One profiling session at a time: a second scrape during the window
  // gets 409. The handler thread sleeps through the window (it is SIGPROF-
  // masked infrastructure, so it never pollutes the profile), which also
  // means the window occupies one of the admin pool's threads.
  server.handle_query("/profilez", [](const std::string& query) {
    obs::HttpResponse r;
#if M3DFL_OBS_ENABLED
    const int seconds = query_int(query, "seconds", 5, 1, 30);
    const int hz = query_int(query, "hz", 99, 1, 1000);
    auto& prof = obs::prof::CpuProfiler::instance();
    obs::prof::ProfilerOptions opts;
    opts.sample_hz = hz;
    std::string err;
    if (!prof.start(opts, &err)) {
      r.status = 409;
      r.body = "cannot start profiler: " + err + "\n";
      return r;
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    prof.stop();
    std::ostringstream os;
    prof.write_folded(os);
    r.body = os.str();
    if (r.body.empty()) {
      r.body = "# no samples: no registered thread burned CPU during the " +
               std::to_string(seconds) + "s window\n";
    }
#else
    (void)query;
    r.status = 501;
    r.body = "profiler compiled out (-DM3DFL_OBS=OFF)\n";
#endif
    return r;
  });

  // Hardware-counter aggregates (per CounterScope stage) plus the probed
  // availability rung — "rusage" here means perf_event_open was denied and
  // only CPU-seconds are being accumulated.
  server.handle("/countersz", [] {
    obs::HttpResponse r;
#if M3DFL_OBS_ENABLED
    r.content_type = "application/json";
    r.body = obs::prof::CounterRegistry::instance().to_json();
#else
    r.status = 501;
    r.body = "counters compiled out (-DM3DFL_OBS=OFF)\n";
#endif
    return r;
  });

  server.handle("/statusz", [&service, t_registered] {
    const ServiceOptions& o = service.options();
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_registered)
            .count();
    std::ostringstream os;
    os << "{\"build\":" << obs::build_info_json()
       << ",\"uptime_seconds\":" << num(uptime) << ",\"obs\":{"
       << "\"tracing_enabled\":"
       << (obs::Tracer::instance().enabled() ? "true" : "false")
       << ",\"exemplars_enabled\":"
       << (obs::ExemplarStore::instance().enabled() ? "true" : "false");
#if M3DFL_OBS_ENABLED
    const obs::prof::CounterAvailability& av =
        obs::prof::counter_availability();
    os << ",\"profiler\":{\"compiled\":true,\"running\":"
       << (obs::prof::CpuProfiler::instance().running() ? "true" : "false")
       << ",\"samples\":" << obs::prof::CpuProfiler::instance().samples()
       << "},\"counters\":{\"mode\":\""
       << obs::prof::counter_mode_name(av.mode) << "\",\"detail\":\""
       << obs::json_escape(av.detail) << "\",\"enabled\":"
       << (obs::prof::CounterRegistry::instance().enabled() ? "true"
                                                            : "false")
       << '}';
#else
    os << ",\"profiler\":{\"compiled\":false}";
#endif
    os << "},\"service\":{"
       << "\"model_name\":\"" << obs::json_escape(o.model_name) << "\""
       << ",\"model_version\":" << service.live_model_version()
       << ",\"ready\":" << (service.ready() ? "true" : "false")
       << ",\"num_threads\":" << o.num_threads
       << ",\"max_batch\":" << o.max_batch
       << ",\"max_wait_us\":" << o.max_wait.count()
       << ",\"cache_capacity\":" << o.cache_capacity
       << ",\"batcher_pending_high_water\":" << service.batcher_high_water()
       << "},\"inference\":{";
    {
      const DiagnosisService::QuantStatus q = service.live_quant_status();
      char fp[32];
      std::snprintf(fp, sizeof(fp), "%016llx",
                    static_cast<unsigned long long>(q.fingerprint));
      os << "\"mode\":\"" << eval::inference_mode_name(q.effective) << "\""
         << ",\"configured\":\"" << eval::inference_mode_name(q.configured)
         << "\",\"quantized_available\":"
         << (q.quantized_available ? "true" : "false")
         << ",\"calibration\":{\"graphs\":" << q.calib_graphs
         << ",\"fingerprint\":\"" << (q.quantized_available ? fp : "") << "\"}";
    }
    os << "},\"sim\":{"
       << "\"backend\":\"" << sim::backend_name(static_cast<sim::SimBackend>(
              obs::MetricsRegistry::instance().gauge("sim.backend").value()))
       << "\",\"simd_tier\":\""
       << sim::bitpar::tier_name(sim::bitpar::resolve_tier())
       << "\",\"cpu\":{"
       << "\"sse2\":" << (sim::bitpar::cpu_features().sse2 ? "true" : "false")
       << ",\"avx2\":" << (sim::bitpar::cpu_features().avx2 ? "true" : "false")
       << ",\"os_avx\":"
       << (sim::bitpar::cpu_features().os_avx ? "true" : "false") << "}}}";
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = os.str();
    return r;
  });

  server.handle("/tracez", [] {
    std::vector<obs::SpanEvent> spans = obs::Tracer::instance().snapshot();
    // Tail of the snapshot by start time — the most recent activity.
    std::sort(spans.begin(), spans.end(),
              [](const obs::SpanEvent& a, const obs::SpanEvent& b) {
                return a.start_ns < b.start_ns;
              });
    const std::size_t begin =
        spans.size() > kTracezSpanLimit ? spans.size() - kTracezSpanLimit : 0;
    std::ostringstream os;
    os << "{\"dropped\":" << obs::Tracer::instance().dropped()
       << ",\"spans\":[";
    for (std::size_t i = begin; i < spans.size(); ++i) {
      const obs::SpanEvent& e = spans[i];
      if (i != begin) os << ',';
      os << "{\"name\":\"" << obs::json_escape(e.name ? e.name : "")
         << "\",\"cat\":\"" << obs::json_escape(e.category ? e.category : "")
         << "\",\"start_us\":" << num(static_cast<double>(e.start_ns) / 1e3)
         << ",\"dur_us\":" << num(static_cast<double>(e.dur_ns) / 1e3)
         << ",\"tid\":" << e.tid << ",\"depth\":" << e.depth << '}';
    }
    os << "],\"exemplars\":" << obs::ExemplarStore::instance().to_json()
       << '}';
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = os.str();
    return r;
  });
}

}  // namespace m3dfl::serve
