#pragma once

// The thread-pool executor began life inside the serving subsystem; it is
// now the library-wide concurrency primitive (the offline pipeline —
// dataset generation, dictionary campaigns, parallel training — shares
// it), so the implementation lives in common/executor.h. This header stays
// as a forwarding alias for serve users.

#include "common/executor.h"

namespace m3dfl::serve {

using m3dfl::Executor;

}  // namespace m3dfl::serve
