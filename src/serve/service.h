#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy.h"
#include "eval/benchmarks.h"
#include "eval/experiments.h"
#include "graphx/subgraph.h"
#include "serve/batcher.h"
#include "serve/cache.h"
#include "serve/executor.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "sim/failure_log.h"

namespace m3dfl::serve {

struct ServiceOptions {
  std::size_t num_threads = 4;          ///< Executor workers.
  std::size_t max_batch = 8;            ///< Micro-batch size cap.
  std::chrono::microseconds max_wait{2000};  ///< Micro-batch deadline.
  std::size_t cache_capacity = 256;     ///< Sub-graph LRU entries (0 = off).
  std::string model_name = "default";   ///< Registry name served.
  /// Which forward pass the policy models run. kInt8 requires the
  /// published framework to carry a quantized twin; requests against a
  /// framework without one fall back to fp32 (counted as
  /// serve.inference.int8_fallbacks) rather than fail.
  eval::InferenceMode inference = eval::InferenceMode::kFp32;
};

/// What the service returns for one failure log: the raw ATPG report plus
/// the GNN policy outcome (tier call, MIV ranking, pruned/reordered
/// candidate list, backup dictionary) — the same payload the sequential
/// `m3dfl diagnose` path prints.
struct DiagnosisResponse {
  bool ok = false;
  std::string error;                 ///< Filled when !ok.
  diag::DiagnosisReport atpg_report; ///< Effect-cause diagnosis output.
  core::PolicyOutcome outcome;       ///< Policy-updated report + tier/MIVs.
  std::uint64_t model_version = 0;   ///< Registry version that served this.
  bool cache_hit = false;            ///< Sub-graph came from the LRU cache.
  std::uint64_t request_id = 0;      ///< Service-assigned (1-based) trace id.
  double seconds = 0.0;              ///< End-to-end latency (submit→ready).
  double queue_seconds = 0.0;    ///< submit → worker pickup (batcher+queue).
  double service_seconds = 0.0;  ///< worker pickup → response ready.
};

/// Long-lived, concurrent diagnosis-inference service:
///
///   submit(design, log) → micro-batcher → executor fan-out →
///     per-worker ATPG diagnosis → (cached) back-trace sub-graph →
///     GNN policy with the registry's live framework → future<Response>
///
/// Threading model:
///  * designs are immutable after register_design(); workers share them
///    read-only (register_design warms the netlist's lazy topo caches while
///    still single-threaded);
///  * the effect-cause Diagnoser and its FaultSimulator are stateful, so
///    each concurrent task checks a private (diagnoser, simulator) context
///    out of a per-design pool — at most num_threads contexts ever exist;
///  * frameworks come from the ModelRegistry via one atomic load per
///    request, so publish() hot-swaps models mid-stream without quiescing;
///  * results are bit-identical to the sequential path (diagnose_direct),
///    which tests/serve_test.cpp asserts under concurrent load.
class DiagnosisService {
 public:
  DiagnosisService(ModelRegistry& registry, ServiceOptions opts = {});
  ~DiagnosisService();

  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Makes a design servable. Must be called before submit() for that
  /// design, and while no requests are in flight (typically at startup).
  /// Builds the first worker context eagerly so the first request does not
  /// pay the good-machine simulation, and warms shared lazy caches.
  void register_design(const eval::Design& design);

  /// Enqueues one failure log for diagnosis. Never blocks on inference;
  /// the future becomes ready when the response (ok or error) is computed.
  std::future<DiagnosisResponse> submit(const eval::Design& design,
                                        sim::FailureLog log);

  /// The sequential reference path (exactly what `m3dfl diagnose` runs):
  /// shared-simulator Diagnoser, fresh back-trace, policy. The served path
  /// must produce bit-identical reports to this (per inference mode).
  static DiagnosisResponse diagnose_direct(
      const eval::Design& design, const eval::TrainedFramework& fw,
      const sim::FailureLog& log,
      eval::InferenceMode mode = eval::InferenceMode::kFp32);

  /// Blocks until every accepted request has completed.
  void drain();

  const ServiceMetrics& metrics() const { return metrics_; }
  const ServiceOptions& options() const { return opts_; }

  /// Admin-plane readiness: a framework is published under the served
  /// model name and the executor pool is up.
  bool ready() const;

  /// Registry version currently being served (0 before the first publish).
  std::uint64_t live_model_version() const;

  /// Inference-mode status of the live framework (for /statusz): the
  /// configured mode, whether the published framework carries a quantized
  /// twin, and that twin's calibration provenance.
  struct QuantStatus {
    eval::InferenceMode configured = eval::InferenceMode::kFp32;
    eval::InferenceMode effective = eval::InferenceMode::kFp32;
    bool quantized_available = false;
    std::size_t calib_graphs = 0;
    std::uint64_t fingerprint = 0;
  };
  QuantStatus live_quant_status() const;

  /// Batcher queue-depth high-water mark (see Batcher::pending_high_water).
  std::size_t batcher_high_water() const {
    return batcher_.pending_high_water();
  }

 private:
  /// Private stateful diagnosis context (one per concurrently running
  /// task; pooled per design).
  struct WorkerContext;
  struct DesignState;

  struct Pending {
    DesignState* state = nullptr;
    sim::FailureLog log;
    std::shared_ptr<std::promise<DiagnosisResponse>> promise;
    std::uint64_t request_id = 0;  ///< Assigned by submit(), rides the
                                   ///< batcher into the worker span.
    std::chrono::steady_clock::time_point t_submit;
    std::chrono::steady_clock::time_point t_flush;  ///< Batcher hand-off.
  };

  struct CacheKey {
    const eval::Design* design = nullptr;
    std::uint64_t fingerprint = 0;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(
          fnv1a64(&k.fingerprint, sizeof(k.fingerprint),
                  reinterpret_cast<std::uintptr_t>(k.design) |
                      0xcbf29ce484222325ull));
    }
  };

  void flush_batch(std::vector<Pending>&& batch, FlushReason reason);
  void process(Pending& p);
  std::unique_ptr<WorkerContext> acquire_context(DesignState& state);
  void release_context(DesignState& state, std::unique_ptr<WorkerContext> c);

  ServiceOptions opts_;
  ModelRegistry::Handle model_;
  ServiceMetrics metrics_;
  LruCache<CacheKey, graphx::SubGraph, CacheKeyHash> subgraph_cache_;

  std::mutex designs_mu_;
  std::map<const eval::Design*, std::unique_ptr<DesignState>> designs_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t accepted_ = 0;
  std::uint64_t finished_ = 0;
  std::atomic<std::uint64_t> next_request_id_{1};

  // Destruction order matters: ~batcher_ flushes pending items into
  // executor_, ~executor_ runs every queued task to completion, and both
  // still reference the members above — so these two stay last.
  Executor executor_;
  Batcher<Pending> batcher_;
};

/// Order- and content-sensitive fingerprint of a failure log (cache key).
std::uint64_t failure_log_fingerprint(const sim::FailureLog& log);

}  // namespace m3dfl::serve
