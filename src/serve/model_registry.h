#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/framework_io.h"

namespace m3dfl::serve {

/// Versioned store of trained frameworks (Tier-predictor + MIV-pinpointer +
/// Classifier + policy), supporting lock-free hot-swap under load.
///
/// Publishing is serialized by a mutex (it is rare — a model upgrade), but
/// the request hot path never takes a lock: a Handle resolves the entry
/// once, and each request does a single acquire-load of a raw atomic
/// pointer. Every published snapshot is retained in the entry's version
/// history for the registry's lifetime, so a pointer obtained before a
/// hot-swap stays valid for as long as the request that holds it runs (or
/// longer) — models can be upgraded while ≥ N threads are mid-inference
/// with no quiescing, and any historical version can be rolled back to
/// instantly. (A raw atomic pointer is used deliberately instead of
/// std::atomic<shared_ptr>: the latter is a spin-lock in libstdc++ — not
/// lock-free — and its relaxed internal unlock trips ThreadSanitizer.
/// Retention cost: one framework, ~10^4 parameters, per publish.)
class ModelRegistry {
 public:
  /// An immutable published framework plus its registry version. Weights
  /// and version travel in one atomically swapped object, so a reader can
  /// never observe version N with the weights of version N±1.
  struct Published {
    eval::TrainedFramework framework;
    std::uint64_t version = 0;   ///< 1-based, monotonic per name.
    std::string source;          ///< Provenance (file name, "trained", ...).
  };

  /// Lock-free accessor for one model name. Obtain once (handle()), then
  /// call current() per request.
  class Handle {
   public:
    Handle() = default;

    /// Acquire-loads the live framework; null when nothing has been
    /// published yet. The snapshot remains valid for the registry's
    /// lifetime (it is owned by the entry's version history).
    const Published* current() const {
      return entry_ ? entry_->current.load(std::memory_order_acquire)
                    : nullptr;
    }
    explicit operator bool() const { return entry_ != nullptr; }

   private:
    friend class ModelRegistry;
    struct Entry {
      std::atomic<const Published*> current{nullptr};
      /// Owns every snapshot ever published under this name, in version
      /// order. Guarded by the registry mutex; `current` always points
      /// into it.
      std::vector<std::unique_ptr<const Published>> history;
    };
    explicit Handle(const Entry* entry) : entry_(entry) {}
    const Entry* entry_ = nullptr;
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publishes (or hot-swaps) the framework under `name`; returns the new
  /// version number.
  std::uint64_t publish(const std::string& name, eval::TrainedFramework fw,
                        std::string source = "published");

  /// Parses a framework file (framework_io text format) and publishes it.
  /// Returns 0 and fills `error` on malformed input; the previously
  /// published version (if any) stays live.
  std::uint64_t publish_stream(const std::string& name, std::istream& is,
                               std::string source, std::string* error);

  /// Re-publishes historical snapshot `version` of `name` as a new version
  /// (instant model rollback, no file round-trip). Returns the new version
  /// number, or 0 when the name or version does not exist.
  std::uint64_t rollback(const std::string& name, std::uint64_t version);

  /// Stable lock-free accessor for `name`. Creating the handle registers
  /// the name (with no published framework yet) if needed, so handles can
  /// be resolved before the first publish.
  Handle handle(const std::string& name);

  /// One-shot lookup (takes the registry mutex; prefer Handle on hot paths).
  const Published* current(const std::string& name) const;

  /// Latest version of `name`, 0 when never published.
  std::uint64_t version(const std::string& name) const;

  /// True once any framework has been published under `name` — the admin
  /// plane's /readyz predicate.
  bool has_published(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  Handle::Entry* entry_of(const std::string& name);
  std::uint64_t publish_locked(Handle::Entry* entry,
                               eval::TrainedFramework fw, std::string source);

  mutable std::mutex mu_;  ///< Guards the map shape + histories, not reads.
  /// node-based map: Entry addresses are stable across inserts, which is
  /// what makes long-lived Handles safe.
  std::map<std::string, std::unique_ptr<Handle::Entry>> entries_;
};

}  // namespace m3dfl::serve
