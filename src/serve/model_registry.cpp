#include "serve/model_registry.h"

#include <istream>
#include <utility>

namespace m3dfl::serve {

ModelRegistry::Handle::Entry* ModelRegistry::entry_of(
    const std::string& name) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second = std::make_unique<Handle::Entry>();
  return it->second.get();
}

std::uint64_t ModelRegistry::publish_locked(Handle::Entry* entry,
                                            eval::TrainedFramework fw,
                                            std::string source) {
  auto next = std::make_unique<Published>();
  next->framework = std::move(fw);
  next->version = entry->history.size() + 1;
  next->source = std::move(source);
  const Published* raw = next.get();
  entry->history.push_back(std::move(next));
  entry->current.store(raw, std::memory_order_release);
  return raw->version;
}

std::uint64_t ModelRegistry::publish(const std::string& name,
                                     eval::TrainedFramework fw,
                                     std::string source) {
  std::lock_guard<std::mutex> lock(mu_);
  return publish_locked(entry_of(name), std::move(fw), std::move(source));
}

std::uint64_t ModelRegistry::publish_stream(const std::string& name,
                                            std::istream& is,
                                            std::string source,
                                            std::string* error) {
  eval::TrainedFramework fw;
  if (!eval::load_framework(fw, is, error)) return 0;
  return publish(name, std::move(fw), std::move(source));
}

std::uint64_t ModelRegistry::rollback(const std::string& name,
                                      std::uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  Handle::Entry* entry = it->second.get();
  if (version == 0 || version > entry->history.size()) return 0;
  const Published& old = *entry->history[version - 1];
  return publish_locked(entry, old.framework,
                        "rollback of v" + std::to_string(version));
}

ModelRegistry::Handle ModelRegistry::handle(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return Handle(entry_of(name));
}

const ModelRegistry::Published* ModelRegistry::current(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second->current.load(std::memory_order_acquire);
}

std::uint64_t ModelRegistry::version(const std::string& name) const {
  const Published* p = current(name);
  return p ? p->version : 0;
}

bool ModelRegistry::has_published(const std::string& name) const {
  return current(name) != nullptr;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace m3dfl::serve
