#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace m3dfl::serve {

/// Thread-safe LRU cache of immutable values. Values are handed out as
/// shared_ptr<const Value>, so an entry evicted while a request still holds
/// it stays alive until that request drops the reference — eviction never
/// invalidates a reader.
///
/// The diagnosis service keys it by (design, failure-log fingerprint) and
/// caches back-traced sub-graphs: repeat diagnoses of the same chip (retest,
/// model A/B comparison, hot-swap re-runs) skip the back-trace and feature
/// extraction entirely.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value (promoting it to most-recently-used), or an
  /// empty pointer on miss. Counts a hit or a miss.
  std::shared_ptr<const Value> get(const Key& key) {
    if (capacity_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts (or refreshes) an entry, evicting the least recently used one
  /// when over capacity.
  void put(const Key& key, std::shared_ptr<const Value> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  double hit_rate() const {
    const std::uint64_t h = hits(), m = misses();
    return h + m ? static_cast<double>(h) / static_cast<double>(h + m) : 0.0;
  }

 private:
  using Entry = std::pair<Key, std::shared_ptr<const Value>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// FNV-1a, the fingerprint primitive for cache keys.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace m3dfl::serve
