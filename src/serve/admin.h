#pragma once

#include "obs/httpd.h"

namespace m3dfl::serve {

class DiagnosisService;

/// Wires the standard admin-plane routes onto `server` (call before
/// AdminHttpServer::start()):
///
///   /healthz       200 "ok" while the process is up (liveness)
///   /readyz        200 once a model is published and the executor is up,
///                  503 before (readiness — what a load balancer polls)
///   /metrics       Prometheus text exposition of the global MetricsRegistry
///   /metrics.json  {"registry":<registry json>,"service":<service json>}
///   /statusz       build info, obs state, uptime, ServiceOptions, live
///                  model version, batcher queue-depth high-water
///   /tracez        recent tracer spans + slow-request exemplar store
///
/// Handlers only read atomics and mutex-guarded snapshots of state the
/// serve path already publishes; they never touch a worker's private
/// context, so scraping cannot perturb in-flight diagnosis (see DESIGN.md,
/// "Admin plane threading model"). `service` must outlive the server.
void register_admin_endpoints(obs::AdminHttpServer& server,
                              const DiagnosisService& service);

}  // namespace m3dfl::serve
