#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/sigstore.h"
#include "diagnosis/report.h"
#include "partition/hier.h"
#include "sim/backend.h"
#include "sim/failure_log.h"
#include "sim/fault_sim.h"

namespace m3dfl::diag {

/// Fault-dictionary diagnosis — the classic precompute-everything
/// alternative to the effect-cause Diagnoser. Every fault's full failure
/// signature is simulated once and indexed; diagnosing a failure log is
/// then a hash lookup (exact matches) plus a similarity scan (nearest
/// signatures), with no simulation on the tester-floor critical path.
///
/// Trade-off (the textbook one): the dictionary costs
/// O(faults x signature) memory and a full fault-simulation campaign up
/// front, but diagnosis drops from tens of milliseconds (effect-cause with
/// per-candidate simulation) to microseconds. The paper's framework makes
/// the same style of trade when it amortizes graph construction; this
/// class completes the library's coverage of classic diagnosis techniques.
struct FaultDictionaryOptions {
  /// Only faults whose signature is non-empty are stored.
  sim::FaultPolarity polarities[2] = {sim::FaultPolarity::kSlowToRise,
                                      sim::FaultPolarity::kSlowToFall};
  /// Report size cap for nearest-signature fallback.
  std::size_t max_candidates = 32;
  /// Worker threads for the signature campaign (0 = hardware concurrency).
  /// Sites are sharded into contiguous ranges over pooled simulator
  /// clones and merged in site order, so the dictionary is bit-identical
  /// at every thread count.
  std::size_t num_threads = 0;
  /// Simulation engine for the campaign. kBitParallel batches up to 512
  /// (site, polarity) jobs per sweep; both backends yield bit-identical
  /// dictionaries (same fingerprint()) at every thread count.
  sim::SimBackend backend = sim::SimBackend::kEvent;
  /// When > 0, the campaign shards over cone-closed hierarchical regions of
  /// at most this many gates (partition/hier.h) instead of contiguous site
  /// ranges. Regions complete independently (across both backends and any
  /// thread count) and the merged entries are restored to canonical
  /// (site, polarity) order, so fingerprint() stays bit-identical to an
  /// unpartitioned build.
  std::size_t partition_max_gates = 0;
  /// When non-empty, signatures spill to this file as the campaign runs
  /// (delta + varint encoded, see compress/sigstore.h) and lookups read
  /// them back through an mmap; entries keep only a small (offset, bytes,
  /// count) ref, so peak memory no longer scales with the full dictionary.
  std::string spill_path;
};

class FaultDictionary {
 public:
  /// Builds the dictionary by simulating every TDF once. `fsim` must be
  /// bound to the production pattern set.
  FaultDictionary(const netlist::Netlist& nl,
                  const netlist::SiteTable& sites,
                  sim::FaultSimulator& fsim,
                  FaultDictionaryOptions options = {});

  std::size_t num_entries() const { return entries_.size(); }

  /// Resident (heap) footprint of the stored signatures, in bytes. In the
  /// default in-memory mode this is the paper-style dictionary cost figure;
  /// in spill mode it is ~0 because the signatures live on disk.
  std::size_t signature_bytes() const;

  /// Where the signature bytes actually are.
  struct SignatureFootprint {
    std::size_t resident_bytes = 0;  ///< Decoded keys held in memory.
    std::size_t disk_bytes = 0;      ///< Encoded bytes in the spill file.
    std::size_t logical_bytes = 0;   ///< 8 bytes x total keys — what a
                                     ///< fully-resident build would hold.
  };
  SignatureFootprint footprint() const;

  /// Order-sensitive hash of every stored entry (site, polarity, keys) —
  /// the whole dictionary in one comparable value. Used by the parallel-
  /// determinism tests to assert sharded builds match sequential ones.
  std::uint64_t fingerprint() const;

  /// Diagnoses an uncompacted failure log. Exact signature matches rank
  /// first (score 1); otherwise the highest-Jaccard signatures are
  /// returned.
  DiagnosisReport diagnose(const sim::FailureLog& log) const;

 private:
  struct Entry {
    netlist::SiteId site;
    sim::FaultPolarity polarity;
    std::vector<std::uint64_t> keys;  ///< Sorted (output << 32 | pattern);
                                      ///< empty in spill mode.
    std::uint64_t hash;
    std::uint32_t count = 0;          ///< Number of keys.
    compress::SigRef ref;             ///< Spill-mode locator.
  };

  static std::uint64_t hash_keys(const std::vector<std::uint64_t>& keys);

  /// The entry's keys: the resident vector, or (spill mode) a decode into
  /// `scratch`.
  const std::vector<std::uint64_t>& keys_of(const Entry& e,
                                            std::vector<std::uint64_t>&
                                                scratch) const;

  const netlist::Netlist* nl_;
  const netlist::SiteTable* sites_;
  FaultDictionaryOptions options_;
  std::vector<Entry> entries_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  std::unique_ptr<compress::SignatureStore> store_;  ///< Spill mode only.
};

}  // namespace m3dfl::diag
