#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/fault_site.h"
#include "sim/fault_sim.h"

namespace m3dfl::diag {

using netlist::SiteId;
using netlist::Tier;
using sim::FaultPolarity;

/// One ranked entry of a diagnosis report.
struct Candidate {
  SiteId site = netlist::kNoSite;
  FaultPolarity polarity = FaultPolarity::kSlow;
  Tier tier = Tier::kBottom;
  bool is_miv = false;
  double score = 0.0;            ///< Jaccard(predicted, observed) in [0, 1].
  std::uint32_t matched = 0;     ///< Observed miscompares reproduced.
  std::uint32_t mispredicted = 0;///< Predicted miscompares not observed.
  std::uint32_t missed = 0;      ///< Observed miscompares not reproduced.
};

/// A ranked diagnosis report — what the paper's commercial ATPG diagnosis
/// produces for one failure log, and what the GNN-based policy then prunes
/// and reorders.
struct DiagnosisReport {
  std::vector<Candidate> candidates;  ///< Best first.
  double seconds = 0.0;               ///< Wall-clock diagnosis time (T_ATPG).

  /// Diagnostic resolution: the number of candidates (paper Sec. II-B).
  std::size_t resolution() const { return candidates.size(); }

  /// True if any candidate is one of the ground-truth sites.
  bool hits_any(std::span<const SiteId> truth) const;

  /// True if every ground-truth site appears in the candidate list
  /// (the multi-fault accuracy criterion, paper Sec. VII-A).
  bool hits_all(std::span<const SiteId> truth) const;

  /// First-hit index: 1-based rank of the first ground-truth candidate, or
  /// 0 when none is present.
  std::size_t first_hit_index(std::span<const SiteId> truth) const;

  /// True if all candidates lie in a single tier. MIV candidates are
  /// tier-less (paper Sec. VII-B) and excluded from the check unless the
  /// report is MIV-only.
  bool single_tier(Tier* which = nullptr) const;
};

}  // namespace m3dfl::diag
