#include "diagnosis/diagnoser.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <future>

#include "common/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace m3dfl::diag {

using netlist::GateId;
using netlist::GateType;
using sim::InjectedFault;
using sim::kWordBits;

Diagnoser::Diagnoser(const Netlist& nl, const SiteTable& sites,
                     const ScanConfig& scan, DiagnoserOptions opts)
    : nl_(&nl),
      sites_(&sites),
      scan_(scan),
      compactor_(scan),
      opts_(opts) {
  // Fan-in cone bitsets, one per observation point.
  const std::size_t n = nl.num_gates();
  cone_words_ = (n + kWordBits - 1) / kWordBits;
  const auto outs = nl.outputs();
  cone_.assign(outs.size() * cone_words_, 0);
  std::vector<GateId> stack;
  for (std::size_t o = 0; o < outs.size(); ++o) {
    Word* bits = cone_.data() + o * cone_words_;
    stack.clear();
    stack.push_back(outs[o]);
    bits[outs[o] / kWordBits] |= Word{1} << (outs[o] % kWordBits);
    while (!stack.empty()) {
      const GateId g = stack.back();
      stack.pop_back();
      for (GateId d : nl.gate(g).fanin) {
        Word& w = bits[d / kWordBits];
        const Word m = Word{1} << (d % kWordBits);
        if (!(w & m)) {
          w |= m;
          stack.push_back(d);
        }
      }
    }
  }
}

void Diagnoser::bind(FaultSimulator& fsim) {
  fsim_ = &fsim;
  pool_.reset();  // Clones of the previous simulator are stale.
}

bool Diagnoser::gate_in_cone_of_output(GateId g, std::uint32_t output) const {
  const Word* bits = cone_.data() + static_cast<std::size_t>(output) * cone_words_;
  return (bits[g / kWordBits] >> (g % kWordBits)) & 1;
}

std::vector<GateId> Diagnoser::collect_suspect_gates(const FailureLog& log) {
  assert(fsim_);
  const auto& good = fsim_->good();
  const std::size_t W = good.num_words;
  const std::size_t num_gates = nl_->num_gates();

  // Failing responses as (pattern, candidate observation points).
  struct Response {
    std::uint32_t pattern;
    std::vector<std::uint32_t> outputs;
  };
  std::vector<Response> responses;
  if (log.compacted) {
    responses.reserve(log.cfails.size());
    for (const FailureLog::CObs& f : log.cfails) {
      responses.push_back({f.pattern, scan_.outputs_of(f.channel, f.cycle)});
    }
  } else {
    responses.reserve(log.fails.size());
    for (const FailureLog::Obs& f : log.fails) {
      responses.push_back({f.pattern, {f.output}});
    }
  }
  if (responses.empty()) return {};

  // For very large logs (multi-fault), subsample responses for the
  // structural pass; signature matching still uses the full log.
  constexpr std::size_t kMaxResponses = 384;
  if (responses.size() > kMaxResponses) {
    std::vector<Response> sampled;
    sampled.reserve(kMaxResponses);
    const double stride =
        static_cast<double>(responses.size()) / kMaxResponses;
    for (std::size_t i = 0; i < kMaxResponses; ++i) {
      sampled.push_back(
          std::move(responses[static_cast<std::size_t>(i * stride)]));
    }
    responses = std::move(sampled);
  }

  auto passes = [&](GateId g, const Response& r) {
    if (!opts_.include_stuck_at) {
      // TDF: only a transitioning node can launch the fault effect.
      const Word tr = good.tr_word(g, r.pattern / kWordBits);
      if (!((tr >> (r.pattern % kWordBits)) & 1)) return false;
    }
    for (std::uint32_t o : r.outputs) {
      if (gate_in_cone_of_output(g, o)) return true;
    }
    return false;
  };

  // Suspect counting. Gates are scanned either exhaustively or — with a
  // partition attached — region by region, skipping every region whose
  // output closure misses all failing observation points (no such gate can
  // pass the cone test, so its count stays 0 either way). count[] slots are
  // disjoint across regions/ranges, which makes the parallel fan-out
  // deterministic: the merged counts are identical at every thread count.
  std::vector<std::uint32_t> count(num_gates, 0);
  auto count_gates = [&](std::span<const GateId> gates) {
    for (const Response& r : responses) {
      for (GateId g : gates) {
        if (passes(g, r)) ++count[g];
      }
    }
  };
  auto count_range = [&](GateId lo, GateId hi) {
    for (const Response& r : responses) {
      for (GateId g = lo; g < hi; ++g) {
        if (passes(g, r)) ++count[g];
      }
    }
  };
  std::size_t threads = resolve_num_threads(opts_.num_threads);
  if (partition_ != nullptr) {
    static obs::Counter& skipped_ctr =
        obs::MetricsRegistry::instance().counter("diag.regions_skipped");
    std::vector<std::uint8_t> touched(partition_->num_regions(), 0);
    for (const Response& r : responses) {
      for (std::uint32_t o : r.outputs) {
        for (std::uint32_t reg : partition_->regions_of_output(o)) {
          touched[reg] = 1;
        }
      }
    }
    std::vector<std::uint32_t> active;
    active.reserve(touched.size());
    for (std::uint32_t r = 0; r < touched.size(); ++r) {
      if (touched[r]) active.push_back(r);
    }
    skipped_ctr.add(touched.size() - active.size());
    if (threads <= 1 || active.size() < 2) {
      for (std::uint32_t r : active) count_gates(partition_->region(r).gates);
    } else {
      Executor exec(std::min(threads, active.size()), "diag.backtrace");
      std::vector<std::future<void>> done;
      done.reserve(active.size());
      for (std::uint32_t r : active) {
        done.push_back(exec.submit(
            [&count_gates, this, r] { count_gates(partition_->region(r).gates); }));
      }
      for (auto& f : done) f.get();
    }
  } else if (threads > 1 && num_gates >= 4096) {
    const std::size_t num_chunks = std::min<std::size_t>(num_gates, threads * 4);
    const std::size_t chunk = (num_gates + num_chunks - 1) / num_chunks;
    Executor exec(threads, "diag.backtrace");
    std::vector<std::future<void>> done;
    for (std::size_t lo = 0; lo < num_gates; lo += chunk) {
      const GateId hi =
          static_cast<GateId>(std::min<std::size_t>(num_gates, lo + chunk));
      done.push_back(exec.submit([&count_range, lo, hi] {
        count_range(static_cast<GateId>(lo), hi);
      }));
    }
    for (auto& f : done) f.get();
  } else {
    count_range(0, static_cast<GateId>(num_gates));
  }
  (void)W;

  std::vector<GateId> suspects;
  const auto all = static_cast<std::uint32_t>(responses.size());
  if (!opts_.multifault) {
    // Single defect: a strong candidate explains (nearly) every failing
    // response; near-misses are kept per single_fault_relax.
    const auto floor_count = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(opts_.single_fault_relax * all));
    for (GateId g = 0; g < num_gates; ++g) {
      if (count[g] >= floor_count) suspects.push_back(g);
    }
    if (suspects.empty()) {
      // Compaction aliasing can defeat even the relaxed floor; degrade
      // gracefully to the best-explaining gates.
      std::uint32_t best = 0;
      for (GateId g = 0; g < num_gates; ++g) best = std::max(best, count[g]);
      for (GateId g = 0; g < num_gates && best > 0; ++g) {
        if (count[g] == best) suspects.push_back(g);
      }
    }
  } else {
    // Multiple defects: any gate explaining at least one response is a
    // suspect; rank by how much of the log it could explain.
    for (GateId g = 0; g < num_gates; ++g) {
      if (count[g] > 0) suspects.push_back(g);
    }
    std::stable_sort(suspects.begin(), suspects.end(),
                     [&count](GateId a, GateId b) {
                       return count[a] > count[b];
                     });
  }
  if (suspects.size() > opts_.max_suspects) {
    suspects.resize(opts_.max_suspects);
  }
  return suspects;
}

std::vector<Candidate> Diagnoser::score_candidates(
    const FailureLog& log, const std::vector<GateId>& suspects) {
  const std::size_t W = fsim_->num_words();

  // Observed failure masks. Bypass mode: rows indexed by observation point;
  // compacted mode: rows indexed by compactor cell (channel * cycles + cyc).
  const std::size_t num_rows =
      log.compacted
          ? static_cast<std::size_t>(scan_.num_channels) * scan_.chain_length
          : nl_->num_outputs();
  obs_mask_.assign(num_rows * W, 0);
  if (log.compacted) {
    for (const FailureLog::CObs& f : log.cfails) {
      const std::size_t cell =
          static_cast<std::size_t>(f.channel) * scan_.chain_length + f.cycle;
      obs_mask_[cell * W + f.pattern / kWordBits] |=
          Word{1} << (f.pattern % kWordBits);
    }
  } else {
    for (const FailureLog::Obs& f : log.fails) {
      obs_mask_[static_cast<std::size_t>(f.output) * W +
                f.pattern / kWordBits] |= Word{1} << (f.pattern % kWordBits);
    }
  }
  obs_total_fails_ = log.size();

  // Candidate fault sites: stems of the suspects plus the branches they
  // drive. Deduplicated by construction (each site enumerated once).
  std::vector<netlist::SiteId> cand_sites;
  cand_sites.reserve(suspects.size() * 3);
  std::vector<std::uint8_t> is_suspect(nl_->num_gates(), 0);
  for (GateId d : suspects) is_suspect[d] = 1;
  for (GateId d : suspects) {
    cand_sites.push_back(sites_->stem_of(d));
    for (GateId g : nl_->gate(d).fanout) {
      const auto& fanin = nl_->gate(g).fanin;
      for (std::size_t k = 0; k < fanin.size(); ++k) {
        if (fanin[k] == d) {
          cand_sites.push_back(sites_->branch_of(g, static_cast<int>(k)));
        }
      }
    }
  }
  if (cand_sites.size() > opts_.max_suspects) {
    cand_sites.resize(opts_.max_suspects);
  }

  signatures_.clear();
  std::vector<Candidate> scored;
  scored.reserve(cand_sites.size());

  std::vector<FaultPolarity> polarities = {FaultPolarity::kSlowToRise,
                                           FaultPolarity::kSlowToFall};
  if (opts_.include_stuck_at) {
    polarities.push_back(FaultPolarity::kStuckAt0);
    polarities.push_back(FaultPolarity::kStuckAt1);
  }

  const std::size_t threads =
      std::min(resolve_num_threads(opts_.num_threads), cand_sites.size());
  if (threads <= 1) {
    for (netlist::SiteId site : cand_sites) {
      Candidate best;
      Signature best_sig;
      if (!score_site(*fsim_, scratch_, log, num_rows, polarities, site, best,
                      best_sig)) {
        continue;
      }
      scored.push_back(best);
      if (opts_.multifault) signatures_.push_back(std::move(best_sig));
    }
    return scored;
  }

  // Parallel scoring: contiguous candidate chunks, each on a pooled
  // simulator clone with private scratch, merged back in chunk order —
  // the scored sequence is identical to the sequential pass.
  if (!pool_) pool_ = std::make_unique<sim::SimulatorPool>(*fsim_);
  const std::size_t num_chunks =
      std::min(cand_sites.size(), threads * 4);
  const std::size_t chunk = (cand_sites.size() + num_chunks - 1) / num_chunks;
  struct ChunkOut {
    std::vector<Candidate> cands;
    std::vector<Signature> sigs;
  };
  std::vector<ChunkOut> outs((cand_sites.size() + chunk - 1) / chunk);
  Executor exec(threads, "diag.score");
  std::vector<std::future<void>> done;
  done.reserve(outs.size());
  for (std::size_t c = 0; c < outs.size(); ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(cand_sites.size(), lo + chunk);
    const std::span<const netlist::SiteId> sites_span(
        cand_sites.data() + lo, hi - lo);
    done.push_back(exec.submit([this, &log, num_rows, &polarities, sites_span,
                                out = &outs[c]] {
      auto sim = pool_->lease();
      ScoreScratch sc;
      for (netlist::SiteId site : sites_span) {
        Candidate best;
        Signature best_sig;
        if (!score_site(*sim, sc, log, num_rows, polarities, site, best,
                        best_sig)) {
          continue;
        }
        out->cands.push_back(best);
        if (opts_.multifault) out->sigs.push_back(std::move(best_sig));
      }
    }));
  }
  for (auto& f : done) f.get();  // Propagates shard exceptions.
  for (ChunkOut& out : outs) {
    for (Candidate& c : out.cands) scored.push_back(c);
    for (Signature& s : out.sigs) signatures_.push_back(std::move(s));
  }
  return scored;
}

bool Diagnoser::score_site(FaultSimulator& sim, ScoreScratch& sc,
                           const FailureLog& log, std::size_t num_rows,
                           std::span<const FaultPolarity> polarities,
                           netlist::SiteId site, Candidate& best,
                           Signature& best_sig) const {
  const std::size_t W = sim.num_words();
  // Sparse compaction scratch: one row per compactor cell, kept all-zero
  // between candidates (dirtied rows are wiped after each fold).
  if (log.compacted && sc.cell_scratch.size() < num_rows * W) {
    sc.cell_scratch.assign(num_rows * W, 0);
  }
  for (FaultPolarity pol : polarities) {
    const InjectedFault fault{site, pol};
    if (!sim.observed_diff(fault, sc.pred_diff, &sc.pred_touched)) continue;

    std::size_t matched = 0;
    std::size_t mispred = 0;
    Signature sig;
    if (!log.compacted) {
      for (std::uint32_t o : sc.pred_touched) {
        const Word* p = sc.pred_diff.data() + static_cast<std::size_t>(o) * W;
        const Word* ob = obs_mask_.data() + static_cast<std::size_t>(o) * W;
        for (std::size_t w = 0; w < W; ++w) {
          matched += static_cast<std::size_t>(std::popcount(p[w] & ob[w]));
          mispred += static_cast<std::size_t>(std::popcount(p[w] & ~ob[w]));
        }
        if (opts_.multifault) {
          for (std::size_t w = 0; w < W; ++w) {
            Word m = p[w];
            while (m) {
              const int bit = std::countr_zero(m);
              m &= m - 1;
              sig.keys.push_back((static_cast<std::uint64_t>(o) << 32) |
                                 (w * kWordBits + bit));
            }
          }
        }
      }
    } else {
      // Fold predicted diffs through the XOR compactor, sparsely.
      sc.touched_cells.clear();
      for (std::uint32_t o : sc.pred_touched) {
        const std::size_t cell =
            static_cast<std::size_t>(scan_.channel_of(o)) *
                scan_.chain_length +
            scan_.position_of(o);
        const Word* p = sc.pred_diff.data() + static_cast<std::size_t>(o) * W;
        Word any = 0;
        for (std::size_t w = 0; w < W; ++w) {
          sc.cell_scratch[cell * W + w] ^= p[w];
          any |= p[w];
        }
        if (any) sc.touched_cells.push_back(cell);
      }
      std::sort(sc.touched_cells.begin(), sc.touched_cells.end());
      sc.touched_cells.erase(
          std::unique(sc.touched_cells.begin(), sc.touched_cells.end()),
          sc.touched_cells.end());
      for (std::size_t cell : sc.touched_cells) {
        const Word* p = sc.cell_scratch.data() + cell * W;
        const Word* ob = obs_mask_.data() + cell * W;
        for (std::size_t w = 0; w < W; ++w) {
          matched += static_cast<std::size_t>(std::popcount(p[w] & ob[w]));
          mispred += static_cast<std::size_t>(std::popcount(p[w] & ~ob[w]));
        }
        if (opts_.multifault) {
          for (std::size_t w = 0; w < W; ++w) {
            Word m = p[w];
            while (m) {
              const int bit = std::countr_zero(m);
              m &= m - 1;
              sig.keys.push_back((static_cast<std::uint64_t>(cell) << 32) |
                                 (w * kWordBits + bit));
            }
          }
        }
      }
      // Clear the scratch rows we dirtied.
      for (std::size_t cell : sc.touched_cells) {
        std::fill_n(sc.cell_scratch.begin() + cell * W, W, Word{0});
      }
    }
    if (matched == 0) continue;
    const std::size_t missed = obs_total_fails_ - matched;
    const double denom = static_cast<double>(matched + mispred + missed);
    const double score = denom > 0 ? static_cast<double>(matched) / denom : 0;
    if (score > best.score) {
      best.site = site;
      best.polarity = pol;
      best.score = score;
      best.matched = static_cast<std::uint32_t>(matched);
      best.mispredicted = static_cast<std::uint32_t>(mispred);
      best.missed = static_cast<std::uint32_t>(missed);
      best_sig = std::move(sig);
    }
  }
  if (best.site == netlist::kNoSite) return false;
  best.tier = sites_->tier_of(best.site, *nl_);
  best.is_miv = sites_->is_miv_site(best.site, *nl_);
  if (opts_.multifault) {
    std::sort(best_sig.keys.begin(), best_sig.keys.end());
  }
  return true;
}

DiagnosisReport Diagnoser::assemble_single(std::vector<Candidate> scored) {
  DiagnosisReport report;
  if (scored.empty()) return report;
  // Candidate selection is by Jaccard score (the strongest evidence), but
  // the *ranking* follows what effect-cause tools actually emit: primary
  // key = number of observed failures explained. Candidates that explain
  // every failure form one large tie group in which the ground truth sits
  // at an arbitrary position — the FHI head-room that report reordering
  // (baseline [11] or the GNN policy) then exploits.
  std::sort(scored.begin(), scored.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.mispredicted != b.mispredicted) {
                return a.mispredicted < b.mispredicted;
              }
              return a.site < b.site;
            });
  const double best = scored.front().score;
  const double cutoff = std::max(opts_.min_score, opts_.keep_score_ratio * best);
  for (const Candidate& c : scored) {
    if (c.score < cutoff) break;
    report.candidates.push_back(c);
    if (report.candidates.size() >= opts_.max_candidates) break;
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.matched != b.matched) return a.matched > b.matched;
              return a.site < b.site;
            });
  return report;
}

DiagnosisReport Diagnoser::assemble_multifault(std::vector<Candidate> scored,
                                               const FailureLog& log) {
  (void)log;
  DiagnosisReport report;
  if (scored.empty()) return report;
  assert(signatures_.size() == scored.size());

  // Greedy cover: repeatedly pick the candidate explaining the most of the
  // residual failure set with high precision.
  std::vector<std::uint64_t> residual;
  {
    // Residual = all observed keys; reconstruct from obs_mask_ popcount via
    // the union of candidate signatures is not sufficient, so rebuild.
    // Keys follow the same encoding as Signature::keys.
    // obs rows were filled in score_candidates.
    const std::size_t W = fsim_->num_words();
    const std::size_t rows = obs_mask_.size() / std::max<std::size_t>(1, W);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t w = 0; w < W; ++w) {
        Word m = obs_mask_[r * W + w];
        while (m) {
          const int bit = std::countr_zero(m);
          m &= m - 1;
          residual.push_back((static_cast<std::uint64_t>(r) << 32) |
                             (w * kWordBits + bit));
        }
      }
    }
    std::sort(residual.begin(), residual.end());
  }

  std::vector<std::uint8_t> picked(scored.size(), 0);
  std::vector<std::size_t> pick_order;
  std::vector<std::uint64_t> inter;
  for (int round = 0; round < 8 && !residual.empty(); ++round) {
    std::size_t best_idx = scored.size();
    std::size_t best_cover = 0;
    double best_prec = 0;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (picked[i]) continue;
      const auto& keys = signatures_[i].keys;
      if (keys.empty()) continue;
      inter.clear();
      std::set_intersection(keys.begin(), keys.end(), residual.begin(),
                            residual.end(), std::back_inserter(inter));
      const double prec =
          static_cast<double>(inter.size()) / static_cast<double>(keys.size());
      if (inter.size() > best_cover ||
          (inter.size() == best_cover && prec > best_prec)) {
        best_idx = i;
        best_cover = inter.size();
        best_prec = prec;
      }
    }
    if (best_idx == scored.size() || best_cover == 0) break;
    picked[best_idx] = 1;
    pick_order.push_back(best_idx);
    std::vector<std::uint64_t> next;
    std::set_difference(residual.begin(), residual.end(),
                        signatures_[best_idx].keys.begin(),
                        signatures_[best_idx].keys.end(),
                        std::back_inserter(next));
    residual = std::move(next);
  }

  // Report: greedy picks plus the precise remainder, ranked like the
  // single-fault reports — by observed failures explained — so the truth
  // sits inside its tie group rather than being hand-delivered at rank 1
  // (commercial tools do not know which candidates the greedy cover chose).
  for (std::size_t i : pick_order) report.candidates.push_back(scored[i]);
  std::vector<std::size_t> rest;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (!picked[i]) rest.push_back(i);
  }
  auto precision = [&](std::size_t i) {
    const auto& c = scored[i];
    const double denom = static_cast<double>(c.matched + c.mispredicted);
    return denom > 0 ? c.matched / denom : 0.0;
  };
  std::stable_sort(rest.begin(), rest.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double pa = precision(a) * scored[a].matched;
                     const double pb = precision(b) * scored[b].matched;
                     if (pa != pb) return pa > pb;
                     return scored[a].site < scored[b].site;
                   });
  const std::size_t cap = opts_.max_candidates;
  for (std::size_t i : rest) {
    if (report.candidates.size() >= cap) break;
    if (precision(i) < 0.9) continue;  // Imprecise candidates are noise.
    report.candidates.push_back(scored[i]);
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.matched != b.matched) return a.matched > b.matched;
              return a.site < b.site;
            });
  return report;
}

DiagnosisReport Diagnoser::diagnose(const FailureLog& log) {
  assert(fsim_ && "bind() a FaultSimulator before diagnosing");
  using clock = std::chrono::steady_clock;
  auto& reg = obs::MetricsRegistry::instance();
  static obs::LatencyHistogram& bt_hist = reg.histogram("diag.backtrace");
  static obs::LatencyHistogram& score_hist = reg.histogram("diag.score");
  static obs::LatencyHistogram& rank_hist = reg.histogram("diag.rank");
  auto seconds_since = [](clock::time_point t0) {
    return std::chrono::duration<double>(clock::now() - t0).count();
  };

  const auto start = clock::now();
  DiagnosisReport report;
  if (!log.empty()) {
    std::vector<GateId> suspects;
    {
      M3DFL_OBS_SPAN(span, "diag.backtrace");
      const auto t0 = clock::now();
      suspects = collect_suspect_gates(log);
      bt_hist.record(seconds_since(t0));
    }
    std::vector<Candidate> scored;
    {
      M3DFL_OBS_SPAN(span, "diag.score");
      const auto t0 = clock::now();
      scored = score_candidates(log, suspects);
      score_hist.record(seconds_since(t0));
    }
    {
      M3DFL_OBS_SPAN(span, "diag.rank");
      const auto t0 = clock::now();
      report = opts_.multifault ? assemble_multifault(std::move(scored), log)
                                : assemble_single(std::move(scored));
      rank_hist.record(seconds_since(t0));
    }
  }
  report.seconds = std::chrono::duration<double>(clock::now() - start).count();
  return report;
}

}  // namespace m3dfl::diag
