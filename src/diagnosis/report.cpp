#include "diagnosis/report.h"

#include <algorithm>

namespace m3dfl::diag {

namespace {
bool contains(std::span<const SiteId> xs, SiteId s) {
  return std::find(xs.begin(), xs.end(), s) != xs.end();
}
}  // namespace

bool DiagnosisReport::hits_any(std::span<const SiteId> truth) const {
  return std::any_of(candidates.begin(), candidates.end(),
                     [&truth](const Candidate& c) {
                       return contains(truth, c.site);
                     });
}

bool DiagnosisReport::hits_all(std::span<const SiteId> truth) const {
  return std::all_of(truth.begin(), truth.end(), [this](SiteId s) {
    return std::any_of(candidates.begin(), candidates.end(),
                       [s](const Candidate& c) { return c.site == s; });
  });
}

std::size_t DiagnosisReport::first_hit_index(
    std::span<const SiteId> truth) const {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (contains(truth, candidates[i].site)) return i + 1;
  }
  return 0;
}

bool DiagnosisReport::single_tier(Tier* which) const {
  bool seen = false;
  Tier t = Tier::kBottom;
  for (const Candidate& c : candidates) {
    if (c.is_miv) continue;
    if (!seen) {
      t = c.tier;
      seen = true;
    } else if (c.tier != t) {
      return false;
    }
  }
  if (!seen && !candidates.empty()) {
    // MIV-only report: treat as localized to the MIVs' placement tier if
    // they agree.
    t = candidates.front().tier;
    for (const Candidate& c : candidates) {
      if (c.tier != t) return false;
    }
    seen = true;
  }
  if (seen && which) *which = t;
  return seen;
}

}  // namespace m3dfl::diag
