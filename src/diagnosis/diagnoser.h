#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atpg/scan_config.h"
#include "compress/compactor.h"
#include "diagnosis/report.h"
#include "netlist/fault_site.h"
#include "partition/hier.h"
#include "sim/failure_log.h"
#include "sim/fault_sim.h"
#include "sim/sim_pool.h"

namespace m3dfl::diag {

using atpg::ScanConfig;
using netlist::Netlist;
using netlist::SiteTable;
using sim::FailureLog;
using sim::FaultSimulator;
using sim::Word;

/// Tuning of the effect-cause diagnosis engine.
struct DiagnoserOptions {
  /// Candidates scoring below keep_score_ratio * best are dropped.
  double keep_score_ratio = 0.70;
  /// Absolute floor: candidates below this Jaccard score are never kept.
  double min_score = 0.30;
  /// Report size cap. Ground truth beyond the cap is lost — the realistic
  /// accuracy-loss mechanism of commercial tools on large designs.
  std::size_t max_candidates = 48;
  /// Cap on suspect sites that are fault-simulated per log.
  std::size_t max_suspects = 3000;
  /// Single-fault suspect gathering keeps gates explaining at least this
  /// fraction of the failing responses (1.0 = strict intersection).
  /// Commercial tools keep near-miss candidates because real defects only
  /// approximate the fault model; this produces the partial-match report
  /// entries the 2D baseline [11] exists to prune.
  double single_fault_relax = 0.85;
  /// Multi-fault mode: union-based suspect collection + greedy cover.
  bool multifault = false;
  /// Also hypothesize stuck-at candidates (SA0/SA1) next to the TDF
  /// polarities, and drop the suspect transition requirement (a stuck site
  /// fails patterns it never transitions on). Enables diagnosing stuck-at
  /// defects with the same engine.
  bool include_stuck_at = false;
  /// Worker threads for the structural back-trace and per-candidate fault
  /// simulation (0 = one per hardware thread). Parallel runs shard over
  /// disjoint gate/candidate ranges and merge in order, so reports are
  /// bit-identical at every thread count.
  std::size_t num_threads = 1;
};

/// Effect-cause TDF diagnosis with per-candidate fault-signature matching —
/// the library's stand-in for the paper's commercial ATPG diagnosis flow.
///
/// Pipeline per failure log:
///  1. structural back-trace: suspect gates = transitioning gates inside the
///     fan-in cones of the failing observation points (intersected across
///     failing responses for a single defect, united for multi-fault);
///  2. candidate enumeration: stem and branch fault sites over the suspects;
///  3. per-candidate TDF fault simulation (both polarities) and signature
///     matching against the observed failure log — at the observation-point
///     level in bypass mode, at the (channel, cycle) level with compaction;
///  4. ranking by match score and report assembly.
class Diagnoser {
 public:
  Diagnoser(const Netlist& nl, const SiteTable& sites, const ScanConfig& scan,
            DiagnoserOptions opts = {});

  /// Attaches the fault simulator (already bound to the pattern set).
  void bind(FaultSimulator& fsim);

  /// Attaches a hierarchical campaign partition (borrowed; pass nullptr to
  /// detach; must outlive diagnose() calls). The structural back-trace then
  /// skips whole regions whose output closure misses the failing
  /// observation points and, with num_threads > 1, fans per-region suspect
  /// counting out over a thread pool. Reports are bit-identical with or
  /// without a partition.
  void set_partition(const part::HierPartition* hp) { partition_ = hp; }

  /// Diagnoses one failure log (compacted or not). Thread-compatible per
  /// instance (not thread-safe across concurrent calls).
  DiagnosisReport diagnose(const FailureLog& log);

  const DiagnoserOptions& options() const { return opts_; }

 private:
  // Per-candidate predicted signatures (multi-fault greedy cover).
  struct Signature {
    std::vector<std::uint64_t> keys;  ///< Sorted (cell, pattern) keys.
  };
  // Per-worker scratch for signature matching (one per scoring shard).
  struct ScoreScratch {
    std::vector<Word> pred_diff;
    std::vector<std::uint32_t> pred_touched;
    std::vector<Word> cell_scratch;
    std::vector<std::size_t> touched_cells;
  };

  std::vector<netlist::GateId> collect_suspect_gates(const FailureLog& log);
  std::vector<Candidate> score_candidates(
      const FailureLog& log, const std::vector<netlist::GateId>& suspects);
  /// Scores one candidate site (all polarities) against obs_mask_. Returns
  /// false when no polarity produced a match. Reads only immutable state
  /// plus obs_mask_/obs_total_fails_, so shards may run it concurrently
  /// with private simulators and scratch.
  bool score_site(FaultSimulator& sim, ScoreScratch& sc,
                  const FailureLog& log, std::size_t num_rows,
                  std::span<const FaultPolarity> polarities,
                  netlist::SiteId site, Candidate& best,
                  Signature& best_sig) const;
  DiagnosisReport assemble_single(std::vector<Candidate> scored);
  DiagnosisReport assemble_multifault(std::vector<Candidate> scored,
                                      const FailureLog& log);

  bool gate_in_cone_of_output(netlist::GateId g, std::uint32_t output) const;

  const Netlist* nl_;
  const SiteTable* sites_;
  ScanConfig scan_;
  compress::ResponseCompactor compactor_;
  DiagnoserOptions opts_;
  FaultSimulator* fsim_ = nullptr;
  const part::HierPartition* partition_ = nullptr;
  /// Simulator clones for parallel candidate scoring (lazily built from
  /// fsim_ on the first multi-threaded score pass; reset by bind()).
  std::unique_ptr<sim::SimulatorPool> pool_;

  // cone_[o] is a bitset over gates: the fan-in cone of observation o.
  std::size_t cone_words_ = 0;
  std::vector<Word> cone_;

  // Scratch for signature matching.
  std::vector<Word> obs_mask_;       ///< Observed diff masks (per obs/cell).
  std::size_t obs_total_fails_ = 0;  ///< Popcount of obs_mask_.
  ScoreScratch scratch_;             ///< Sequential-path scoring scratch.

  std::vector<Signature> signatures_;
};

}  // namespace m3dfl::diag
