#include "diagnosis/dictionary.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <optional>

#include "common/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/bitpar/bitpar_sim.h"
#include "sim/sim_pool.h"

namespace m3dfl::diag {

namespace {

std::vector<std::uint64_t> keys_from_diff(
    std::span<const sim::Word> diff,
    std::span<const std::uint32_t> touched_outputs, std::size_t W,
    std::size_t num_patterns) {
  std::vector<std::uint64_t> keys;
  // Only the touched rows can hold miscompares (duplicate-free by the
  // simulator's epoch tracking); every other diff row is guaranteed zero,
  // so the scan skips the untouched bulk of the response space.
  for (std::uint32_t o : touched_outputs) {
    for (std::size_t w = 0; w < W; ++w) {
      sim::Word m = diff[static_cast<std::size_t>(o) * W + w];
      while (m) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const std::size_t p = w * sim::kWordBits + static_cast<std::size_t>(bit);
        if (p < num_patterns) {
          keys.push_back((static_cast<std::uint64_t>(o) << 32) | p);
        }
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::uint64_t FaultDictionary::hash_keys(
    const std::vector<std::uint64_t>& keys) {
  // FNV-1a over the sorted key stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t k : keys) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (k >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

FaultDictionary::FaultDictionary(const netlist::Netlist& nl,
                                 const netlist::SiteTable& sites,
                                 sim::FaultSimulator& fsim,
                                 FaultDictionaryOptions options)
    : nl_(&nl), sites_(&sites) {
  M3DFL_OBS_SPAN(build_span, "dictionary.build");
  const std::size_t W = fsim.num_words();
  const std::size_t num_sites = sites.size();

  auto& reg = obs::MetricsRegistry::instance();
  static obs::LatencyHistogram& shard_hist = reg.histogram("dictionary.shard");
  static obs::Counter& sim_calls_ctr = reg.counter("sim.observed_diff_calls");
  static obs::Counter& sim_det_ctr = reg.counter("sim.detected");
  static obs::Counter& sim_events_ctr = reg.counter("sim.events_processed");
  static obs::Counter& sim_words_ctr = reg.counter("sim.words_evaluated");
  static obs::Counter& sim_cone_ctr = reg.counter("sim.cone_skips");
  static obs::Counter& sim_early_ctr = reg.counter("sim.early_exits");

  reg.gauge("sim.backend").set(static_cast<double>(options.backend));

  // Simulates [lo, hi) sites into `out`, preserving the site-then-polarity
  // entry order the sequential campaign produces.
  auto build_range = [&](sim::FaultSimulator& sim_, netlist::SiteId lo,
                         netlist::SiteId hi, std::vector<Entry>& out) {
    M3DFL_OBS_SPAN(shard_span, "dictionary.shard");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::Word> diff;
    std::vector<std::uint32_t> touched;
    for (netlist::SiteId s = lo; s < hi; ++s) {
      for (sim::FaultPolarity pol : options.polarities) {
        if (!sim_.observed_diff({s, pol}, diff, &touched)) continue;
        Entry e;
        e.site = s;
        e.polarity = pol;
        e.keys = keys_from_diff(diff, touched, W, sim_.num_patterns());
        e.hash = hash_keys(e.keys);
        out.push_back(std::move(e));
      }
    }
    // take_stats() snapshots-and-resets, so pooled clones re-leased by a
    // later shard never re-flush counts a previous shard already reported.
    const sim::FaultSimulator::SimStats d = sim_.take_stats();
    sim_calls_ctr.add(d.observed_diff_calls);
    sim_det_ctr.add(d.detected);
    sim_events_ctr.add(d.events_processed);
    sim_words_ctr.add(d.words_evaluated);
    sim_cone_ctr.add(d.cone_skips);
    sim_early_ctr.add(d.early_exits);
    shard_hist.record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  };

  // Bit-parallel variant of build_range: packs the shard's (site, polarity)
  // jobs up to kMaxLanes per sweep, in site-major order, so the entry
  // sequence (and thus fingerprint()) matches the event campaign exactly.
  sim::bitpar::NetlistArena const* arena = nullptr;
  sim::bitpar::BitParallelSimulator const* bp = nullptr;
  std::optional<sim::bitpar::NetlistArena> arena_storage;
  std::optional<sim::bitpar::BitParallelSimulator> bp_storage;
  if (options.backend == sim::SimBackend::kBitParallel) {
    arena_storage.emplace(nl, sites);
    arena = &*arena_storage;
    bp_storage.emplace(*arena, sites);
    bp_storage->bind(fsim.good());
    bp = &*bp_storage;
    reg.gauge("sim.simd_tier").set(static_cast<double>(bp->tier()));
  }
  auto build_range_bp = [&](sim::bitpar::BitParallelSimulator::Workspace& ws,
                            netlist::SiteId lo, netlist::SiteId hi,
                            std::vector<Entry>& out) {
    M3DFL_OBS_SPAN(shard_span, "dictionary.shard");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::InjectedFault> jobs;
    jobs.reserve(static_cast<std::size_t>(hi - lo) * 2);
    for (netlist::SiteId s = lo; s < hi; ++s) {
      for (sim::FaultPolarity pol : options.polarities) {
        jobs.push_back({s, pol});
      }
    }
    sim::bitpar::BitParallelSimulator::BatchResult res;
    std::vector<std::uint64_t> keys;
    for (std::size_t base = 0; base < jobs.size();
         base += sim::bitpar::kMaxLanes) {
      const std::size_t count =
          std::min(sim::bitpar::kMaxLanes, jobs.size() - base);
      bp->run(std::span<const sim::InjectedFault>(jobs).subspan(base, count),
              ws, res);
      for (std::size_t j = 0; j < count; ++j) {
        res.keys_of(j, keys);
        if (keys.empty()) continue;
        Entry e;
        e.site = jobs[base + j].site;
        e.polarity = jobs[base + j].polarity;
        e.keys = keys;
        e.hash = hash_keys(e.keys);
        out.push_back(std::move(e));
      }
    }
    sim::bitpar::flush_bitpar_metrics(ws.stats);
    shard_hist.record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  };

  const bool bitpar = options.backend == sim::SimBackend::kBitParallel;
  std::size_t threads = resolve_num_threads(options.num_threads);
  threads = std::min(threads, std::max<std::size_t>(num_sites, 1));
  if (threads <= 1) {
    if (bitpar) {
      sim::bitpar::BitParallelSimulator::Workspace ws;
      build_range_bp(ws, 0, static_cast<netlist::SiteId>(num_sites),
                     entries_);
    } else {
      build_range(fsim, 0, static_cast<netlist::SiteId>(num_sites), entries_);
    }
  } else {
    // Contiguous site shards merged in shard order — the concatenation is
    // exactly the sequential entry sequence. Event shards lease pooled
    // simulator clones; bit-parallel shards share the one immutable
    // simulator and own a private Workspace each.
    // Warm the netlist's lazy topo/level caches before fan-out (they are
    // unsynchronized; every shard reads the same netlist).
    nl.topo_order();
    nl.levels();
    nl.depth();
    std::optional<sim::SimulatorPool> pool;
    if (!bitpar) pool.emplace(fsim);
    Executor exec(threads, "dictionary");
    const std::size_t num_chunks = std::min(num_sites, threads * 4);
    const std::size_t chunk = (num_sites + num_chunks - 1) / num_chunks;
    std::vector<std::vector<Entry>> shards((num_sites + chunk - 1) / chunk);
    std::vector<std::future<void>> done;
    done.reserve(shards.size());
    for (std::size_t c = 0; c * chunk < num_sites; ++c) {
      const auto lo = static_cast<netlist::SiteId>(c * chunk);
      const auto hi = static_cast<netlist::SiteId>(
          std::min(num_sites, (c + 1) * chunk));
      if (bitpar) {
        done.push_back(exec.submit([&build_range_bp, &shards, c, lo, hi] {
          sim::bitpar::BitParallelSimulator::Workspace ws;
          build_range_bp(ws, lo, hi, shards[c]);
        }));
      } else {
        done.push_back(exec.submit([&build_range, &pool, &shards, c, lo, hi] {
          auto sim_ = pool->lease();
          build_range(*sim_, lo, hi, shards[c]);
        }));
      }
    }
    for (auto& f : done) f.get();  // Propagates shard exceptions.
    std::size_t total = 0;
    for (const auto& sh : shards) total += sh.size();
    entries_.reserve(total);
    for (auto& sh : shards) {
      for (Entry& e : sh) entries_.push_back(std::move(e));
    }
  }

  reg.counter("dictionary.entries").add(entries_.size());

  by_hash_.reserve(entries_.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    by_hash_[entries_[i].hash].push_back(i);
  }
}

std::uint64_t FaultDictionary::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const Entry& e : entries_) {
    mix(e.site);
    mix(static_cast<std::uint64_t>(e.polarity));
    mix(e.keys.size());
    for (std::uint64_t k : e.keys) mix(k);
  }
  return h;
}

std::size_t FaultDictionary::signature_bytes() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += e.keys.size() * sizeof(std::uint64_t);
  }
  return total;
}

DiagnosisReport FaultDictionary::diagnose(const sim::FailureLog& log) const {
  DiagnosisReport report;
  if (log.compacted || log.empty()) return report;

  std::vector<std::uint64_t> keys;
  keys.reserve(log.fails.size());
  for (const sim::FailureLog::Obs& f : log.fails) {
    keys.push_back((static_cast<std::uint64_t>(f.output) << 32) | f.pattern);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto make_candidate = [this](const Entry& e, double score) {
    Candidate c;
    c.site = e.site;
    c.polarity = e.polarity;
    c.tier = sites_->tier_of(e.site, *nl_);
    c.is_miv = sites_->is_miv_site(e.site, *nl_);
    c.score = score;
    return c;
  };

  // Exact matches first: hash bucket + full verification.
  const std::uint64_t h = hash_keys(keys);
  const auto bucket = by_hash_.find(h);
  if (bucket != by_hash_.end()) {
    for (std::uint32_t idx : bucket->second) {
      const Entry& e = entries_[idx];
      if (e.keys == keys) {
        Candidate c = make_candidate(e, 1.0);
        c.matched = static_cast<std::uint32_t>(keys.size());
        report.candidates.push_back(c);
      }
    }
  }
  if (!report.candidates.empty()) {
    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.site < b.site;
              });
    return report;
  }

  // Nearest-signature fallback: Jaccard over the stored signatures.
  struct Scored {
    double score;
    std::uint32_t idx;
  };
  std::vector<Scored> scored;
  std::vector<std::uint64_t> inter;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    inter.clear();
    std::set_intersection(keys.begin(), keys.end(), e.keys.begin(),
                          e.keys.end(), std::back_inserter(inter));
    if (inter.empty()) continue;
    const double uni = static_cast<double>(keys.size() + e.keys.size() -
                                           inter.size());
    scored.push_back({static_cast<double>(inter.size()) / uni, i});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.idx < b.idx;
  });
  const FaultDictionaryOptions defaults;
  for (const Scored& s : scored) {
    if (report.candidates.size() >= defaults.max_candidates) break;
    const Entry& e = entries_[s.idx];
    Candidate c = make_candidate(e, s.score);
    report.candidates.push_back(c);
  }
  return report;
}

}  // namespace m3dfl::diag
