#include "diagnosis/dictionary.h"

#include <algorithm>
#include <bit>

namespace m3dfl::diag {

namespace {

std::vector<std::uint64_t> keys_from_diff(std::span<const sim::Word> diff,
                                          std::size_t num_outputs,
                                          std::size_t W,
                                          std::size_t num_patterns) {
  std::vector<std::uint64_t> keys;
  for (std::uint32_t o = 0; o < num_outputs; ++o) {
    for (std::size_t w = 0; w < W; ++w) {
      sim::Word m = diff[static_cast<std::size_t>(o) * W + w];
      while (m) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const std::size_t p = w * sim::kWordBits + static_cast<std::size_t>(bit);
        if (p < num_patterns) {
          keys.push_back((static_cast<std::uint64_t>(o) << 32) | p);
        }
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace

std::uint64_t FaultDictionary::hash_keys(
    const std::vector<std::uint64_t>& keys) {
  // FNV-1a over the sorted key stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t k : keys) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (k >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

FaultDictionary::FaultDictionary(const netlist::Netlist& nl,
                                 const netlist::SiteTable& sites,
                                 sim::FaultSimulator& fsim,
                                 FaultDictionaryOptions options)
    : nl_(&nl), sites_(&sites) {
  std::vector<sim::Word> diff;
  const std::size_t W = fsim.num_words();
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    for (sim::FaultPolarity pol : options.polarities) {
      if (!fsim.observed_diff({s, pol}, diff)) continue;
      Entry e;
      e.site = s;
      e.polarity = pol;
      e.keys = keys_from_diff(diff, nl.num_outputs(), W,
                              fsim.num_patterns());
      e.hash = hash_keys(e.keys);
      by_hash_[e.hash].push_back(static_cast<std::uint32_t>(entries_.size()));
      entries_.push_back(std::move(e));
    }
  }
}

std::size_t FaultDictionary::signature_bytes() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += e.keys.size() * sizeof(std::uint64_t);
  }
  return total;
}

DiagnosisReport FaultDictionary::diagnose(const sim::FailureLog& log) const {
  DiagnosisReport report;
  if (log.compacted || log.empty()) return report;

  std::vector<std::uint64_t> keys;
  keys.reserve(log.fails.size());
  for (const sim::FailureLog::Obs& f : log.fails) {
    keys.push_back((static_cast<std::uint64_t>(f.output) << 32) | f.pattern);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto make_candidate = [this](const Entry& e, double score) {
    Candidate c;
    c.site = e.site;
    c.polarity = e.polarity;
    c.tier = sites_->tier_of(e.site, *nl_);
    c.is_miv = sites_->is_miv_site(e.site, *nl_);
    c.score = score;
    return c;
  };

  // Exact matches first: hash bucket + full verification.
  const std::uint64_t h = hash_keys(keys);
  const auto bucket = by_hash_.find(h);
  if (bucket != by_hash_.end()) {
    for (std::uint32_t idx : bucket->second) {
      const Entry& e = entries_[idx];
      if (e.keys == keys) {
        Candidate c = make_candidate(e, 1.0);
        c.matched = static_cast<std::uint32_t>(keys.size());
        report.candidates.push_back(c);
      }
    }
  }
  if (!report.candidates.empty()) {
    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.site < b.site;
              });
    return report;
  }

  // Nearest-signature fallback: Jaccard over the stored signatures.
  struct Scored {
    double score;
    std::uint32_t idx;
  };
  std::vector<Scored> scored;
  std::vector<std::uint64_t> inter;
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    inter.clear();
    std::set_intersection(keys.begin(), keys.end(), e.keys.begin(),
                          e.keys.end(), std::back_inserter(inter));
    if (inter.empty()) continue;
    const double uni = static_cast<double>(keys.size() + e.keys.size() -
                                           inter.size());
    scored.push_back({static_cast<double>(inter.size()) / uni, i});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.idx < b.idx;
  });
  const FaultDictionaryOptions defaults;
  for (const Scored& s : scored) {
    if (report.candidates.size() >= defaults.max_candidates) break;
    const Entry& e = entries_[s.idx];
    Candidate c = make_candidate(e, s.score);
    report.candidates.push_back(c);
  }
  return report;
}

}  // namespace m3dfl::diag
