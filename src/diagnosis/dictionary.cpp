#include "diagnosis/dictionary.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <future>
#include <optional>
#include <queue>

#include "common/executor.h"
#include "obs/metrics.h"
#include "obs/prof/counters.h"
#include "obs/trace.h"
#include "sim/bitpar/bitpar_sim.h"
#include "sim/sim_pool.h"

namespace m3dfl::diag {

namespace {

std::vector<std::uint64_t> keys_from_diff(
    std::span<const sim::Word> diff,
    std::span<const std::uint32_t> touched_outputs, std::size_t W,
    std::size_t num_patterns) {
  std::vector<std::uint64_t> keys;
  // Only the touched rows can hold miscompares (duplicate-free by the
  // simulator's epoch tracking); every other diff row is guaranteed zero,
  // so the scan skips the untouched bulk of the response space.
  for (std::uint32_t o : touched_outputs) {
    for (std::size_t w = 0; w < W; ++w) {
      sim::Word m = diff[static_cast<std::size_t>(o) * W + w];
      while (m) {
        const int bit = std::countr_zero(m);
        m &= m - 1;
        const std::size_t p = w * sim::kWordBits + static_cast<std::size_t>(bit);
        if (p < num_patterns) {
          keys.push_back((static_cast<std::uint64_t>(o) << 32) | p);
        }
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Count-only sorted intersection (no materialized output).
std::size_t intersection_size(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  std::size_t n = 0, i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

std::uint64_t FaultDictionary::hash_keys(
    const std::vector<std::uint64_t>& keys) {
  // FNV-1a over the sorted key stream.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t k : keys) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (k >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

const std::vector<std::uint64_t>& FaultDictionary::keys_of(
    const Entry& e, std::vector<std::uint64_t>& scratch) const {
  if (store_ == nullptr) return e.keys;
  store_->decode(e.ref, scratch);
  return scratch;
}

FaultDictionary::FaultDictionary(const netlist::Netlist& nl,
                                 const netlist::SiteTable& sites,
                                 sim::FaultSimulator& fsim,
                                 FaultDictionaryOptions options)
    : nl_(&nl), sites_(&sites), options_(options) {
  M3DFL_OBS_SPAN(build_span, "dictionary.build");
  M3DFL_OBS_COUNTERS(build_ctrs, "dictionary.build");
  const std::size_t W = fsim.num_words();
  const std::size_t num_sites = sites.size();

  auto& reg = obs::MetricsRegistry::instance();
  static obs::LatencyHistogram& shard_hist = reg.histogram("dictionary.shard");
  static obs::Counter& sim_calls_ctr = reg.counter("sim.observed_diff_calls");
  static obs::Counter& sim_det_ctr = reg.counter("sim.detected");
  static obs::Counter& sim_events_ctr = reg.counter("sim.events_processed");
  static obs::Counter& sim_words_ctr = reg.counter("sim.words_evaluated");
  static obs::Counter& sim_cone_ctr = reg.counter("sim.cone_skips");
  static obs::Counter& sim_early_ctr = reg.counter("sim.early_exits");

  reg.gauge("sim.backend").set(static_cast<double>(options.backend));

  if (!options.spill_path.empty()) {
    store_ = std::make_unique<compress::SignatureStore>(options.spill_path);
  }

  // Completes an entry whose keys were just simulated: hash + count always;
  // in spill mode the keys move to the store and only the ref stays
  // resident, so a shard's memory high-water mark is one signature.
  auto finish_entry = [this](Entry& e) {
    e.hash = hash_keys(e.keys);
    e.count = static_cast<std::uint32_t>(e.keys.size());
    if (store_ != nullptr) {
      e.ref = store_->append(e.keys);
      e.keys = {};
    }
  };

  // Simulates the given sites (ascending within the list) into `out`,
  // preserving the site-then-polarity entry order the sequential campaign
  // produces.
  auto build_sites = [&](sim::FaultSimulator& sim_,
                         std::span<const netlist::SiteId> site_list,
                         std::vector<Entry>& out) {
    M3DFL_OBS_SPAN(shard_span, "dictionary.shard");
    M3DFL_OBS_COUNTERS(shard_ctrs, "dictionary.shard");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::Word> diff;
    std::vector<std::uint32_t> touched;
    for (netlist::SiteId s : site_list) {
      for (sim::FaultPolarity pol : options.polarities) {
        if (!sim_.observed_diff({s, pol}, diff, &touched)) continue;
        Entry e;
        e.site = s;
        e.polarity = pol;
        e.keys = keys_from_diff(diff, touched, W, sim_.num_patterns());
        finish_entry(e);
        out.push_back(std::move(e));
      }
    }
    // take_stats() snapshots-and-resets, so pooled clones re-leased by a
    // later shard never re-flush counts a previous shard already reported.
    const sim::FaultSimulator::SimStats d = sim_.take_stats();
    sim_calls_ctr.add(d.observed_diff_calls);
    sim_det_ctr.add(d.detected);
    sim_events_ctr.add(d.events_processed);
    sim_words_ctr.add(d.words_evaluated);
    sim_cone_ctr.add(d.cone_skips);
    sim_early_ctr.add(d.early_exits);
    shard_hist.record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  };

  // Bit-parallel variant of build_sites: packs the shard's (site, polarity)
  // jobs up to kMaxLanes per sweep, in site-major order, so the entry
  // sequence (and thus fingerprint()) matches the event campaign exactly.
  sim::bitpar::NetlistArena const* arena = nullptr;
  sim::bitpar::BitParallelSimulator const* bp = nullptr;
  std::optional<sim::bitpar::NetlistArena> arena_storage;
  std::optional<sim::bitpar::BitParallelSimulator> bp_storage;
  if (options.backend == sim::SimBackend::kBitParallel) {
    arena_storage.emplace(nl, sites);
    arena = &*arena_storage;
    bp_storage.emplace(*arena, sites);
    bp_storage->bind(fsim.good());
    bp = &*bp_storage;
    reg.gauge("sim.simd_tier").set(static_cast<double>(bp->tier()));
  }
  auto build_sites_bp = [&](sim::bitpar::BitParallelSimulator::Workspace& ws,
                            std::span<const netlist::SiteId> site_list,
                            std::vector<Entry>& out) {
    M3DFL_OBS_SPAN(shard_span, "dictionary.shard");
    M3DFL_OBS_COUNTERS(shard_ctrs, "dictionary.shard");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::InjectedFault> jobs;
    jobs.reserve(site_list.size() * 2);
    for (netlist::SiteId s : site_list) {
      for (sim::FaultPolarity pol : options.polarities) {
        jobs.push_back({s, pol});
      }
    }
    sim::bitpar::BitParallelSimulator::BatchResult res;
    std::vector<std::uint64_t> keys;
    for (std::size_t base = 0; base < jobs.size();
         base += sim::bitpar::kMaxLanes) {
      const std::size_t count =
          std::min(sim::bitpar::kMaxLanes, jobs.size() - base);
      bp->run(std::span<const sim::InjectedFault>(jobs).subspan(base, count),
              ws, res);
      for (std::size_t j = 0; j < count; ++j) {
        res.keys_of(j, keys);
        if (keys.empty()) continue;
        Entry e;
        e.site = jobs[base + j].site;
        e.polarity = jobs[base + j].polarity;
        e.keys = keys;
        finish_entry(e);
        out.push_back(std::move(e));
      }
    }
    sim::bitpar::flush_bitpar_metrics(ws.stats);
    shard_hist.record(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  };

  const bool bitpar = options.backend == sim::SimBackend::kBitParallel;

  // Shard plan: either cone-closed hierarchical regions (paper-scale mode)
  // or contiguous site ranges. Both are lists of ascending site ids; the
  // region lists are non-contiguous across shards, so that mode re-sorts
  // the merged entries back into canonical (site, polarity) order below.
  std::optional<part::HierPartition> hp;
  std::vector<netlist::SiteId> all_sites;
  std::vector<std::span<const netlist::SiteId>> shard_sites;
  const bool partitioned = options.partition_max_gates > 0;
  if (partitioned) {
    hp.emplace(nl, sites,
               part::HierPartitionOptions{options.partition_max_gates});
    shard_sites.reserve(hp->num_regions());
    for (const part::Region& r : hp->regions()) {
      if (!r.sites.empty()) shard_sites.push_back(r.sites);
    }
    reg.gauge("dictionary.partition_regions")
        .set(static_cast<double>(hp->num_regions()));
  } else {
    all_sites.resize(num_sites);
    for (netlist::SiteId s = 0; s < num_sites; ++s) all_sites[s] = s;
  }

  std::size_t threads = resolve_num_threads(options.num_threads);
  threads = std::min(threads, std::max<std::size_t>(num_sites, 1));
  if (!partitioned) {
    // Contiguous ranges sized for the pool: concatenating the shard outputs
    // in shard order reproduces the sequential entry sequence exactly.
    const std::size_t num_chunks =
        threads <= 1 ? 1 : std::min(num_sites, threads * 4);
    const std::size_t chunk =
        num_chunks == 0 ? 1 : (num_sites + num_chunks - 1) / num_chunks;
    for (std::size_t c = 0; c * chunk < num_sites; ++c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(num_sites, (c + 1) * chunk);
      shard_sites.push_back(
          std::span<const netlist::SiteId>(all_sites).subspan(lo, hi - lo));
    }
  }

  if (threads <= 1) {
    if (bitpar) {
      sim::bitpar::BitParallelSimulator::Workspace ws;
      for (const auto& span_ : shard_sites) {
        build_sites_bp(ws, span_, entries_);
      }
    } else {
      for (const auto& span_ : shard_sites) {
        build_sites(fsim, span_, entries_);
      }
    }
  } else {
    // One task per shard, merged in shard order. Event shards lease pooled
    // simulator clones; bit-parallel shards share the one immutable
    // simulator and own a private Workspace each.
    // Warm the netlist's lazy topo/level caches before fan-out (they are
    // unsynchronized; every shard reads the same netlist).
    nl.topo_order();
    nl.levels();
    nl.depth();
    std::optional<sim::SimulatorPool> pool;
    if (!bitpar) pool.emplace(fsim);
    Executor exec(threads, "dictionary");
    std::vector<std::vector<Entry>> shards(shard_sites.size());
    std::vector<std::future<void>> done;
    done.reserve(shards.size());
    for (std::size_t c = 0; c < shard_sites.size(); ++c) {
      const std::span<const netlist::SiteId> span_ = shard_sites[c];
      if (bitpar) {
        done.push_back(exec.submit([&build_sites_bp, &shards, c, span_] {
          sim::bitpar::BitParallelSimulator::Workspace ws;
          build_sites_bp(ws, span_, shards[c]);
        }));
      } else {
        done.push_back(exec.submit([&build_sites, &pool, &shards, c, span_] {
          auto sim_ = pool->lease();
          build_sites(*sim_, span_, shards[c]);
        }));
      }
    }
    for (auto& f : done) f.get();  // Propagates shard exceptions.
    std::size_t total = 0;
    for (const auto& sh : shards) total += sh.size();
    entries_.reserve(total);
    for (auto& sh : shards) {
      for (Entry& e : sh) entries_.push_back(std::move(e));
    }
  }

  if (partitioned) {
    // Region shards are disjoint but interleaved in site id; restore the
    // canonical (site, polarity-rank) order so fingerprint() is
    // bit-identical to an unpartitioned build. Keys stay wherever they are
    // (heap or spill file) — only the entry index moves.
    auto pol_rank = [&](sim::FaultPolarity p) {
      return p == options_.polarities[0] ? 0 : 1;
    };
    std::sort(entries_.begin(), entries_.end(),
              [&](const Entry& a, const Entry& b) {
                if (a.site != b.site) return a.site < b.site;
                return pol_rank(a.polarity) < pol_rank(b.polarity);
              });
  }

  if (store_ != nullptr) store_->seal();

  reg.counter("dictionary.entries").add(entries_.size());
  const SignatureFootprint fp = footprint();
  reg.gauge("dictionary.signature_resident_bytes")
      .set(static_cast<double>(fp.resident_bytes));
  reg.gauge("dictionary.signature_disk_bytes")
      .set(static_cast<double>(fp.disk_bytes));
  reg.gauge("dictionary.signature_logical_bytes")
      .set(static_cast<double>(fp.logical_bytes));
  reg.gauge("process.peak_rss_bytes")
      .set(static_cast<double>(obs::peak_rss_bytes()));

  by_hash_.reserve(entries_.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    by_hash_[entries_[i].hash].push_back(i);
  }
}

std::uint64_t FaultDictionary::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  std::vector<std::uint64_t> scratch;
  for (const Entry& e : entries_) {
    mix(e.site);
    mix(static_cast<std::uint64_t>(e.polarity));
    mix(e.count);
    for (std::uint64_t k : keys_of(e, scratch)) mix(k);
  }
  return h;
}

std::size_t FaultDictionary::signature_bytes() const {
  std::size_t total = 0;
  for (const Entry& e : entries_) {
    total += e.keys.size() * sizeof(std::uint64_t);
  }
  return total;
}

FaultDictionary::SignatureFootprint FaultDictionary::footprint() const {
  SignatureFootprint fp;
  fp.resident_bytes = signature_bytes();
  fp.disk_bytes = store_ != nullptr
                      ? static_cast<std::size_t>(store_->bytes_on_disk())
                      : 0;
  for (const Entry& e : entries_) {
    fp.logical_bytes += static_cast<std::size_t>(e.count) *
                        sizeof(std::uint64_t);
  }
  return fp;
}

DiagnosisReport FaultDictionary::diagnose(const sim::FailureLog& log) const {
  DiagnosisReport report;
  if (log.compacted || log.empty()) return report;

  std::vector<std::uint64_t> keys;
  keys.reserve(log.fails.size());
  for (const sim::FailureLog::Obs& f : log.fails) {
    keys.push_back((static_cast<std::uint64_t>(f.output) << 32) | f.pattern);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto make_candidate = [this](const Entry& e, double score) {
    Candidate c;
    c.site = e.site;
    c.polarity = e.polarity;
    c.tier = sites_->tier_of(e.site, *nl_);
    c.is_miv = sites_->is_miv_site(e.site, *nl_);
    c.score = score;
    return c;
  };

  std::vector<std::uint64_t> scratch;

  // Exact matches first: hash bucket + full verification.
  const std::uint64_t h = hash_keys(keys);
  const auto bucket = by_hash_.find(h);
  if (bucket != by_hash_.end()) {
    for (std::uint32_t idx : bucket->second) {
      const Entry& e = entries_[idx];
      if (e.count == keys.size() && keys_of(e, scratch) == keys) {
        Candidate c = make_candidate(e, 1.0);
        c.matched = static_cast<std::uint32_t>(keys.size());
        report.candidates.push_back(c);
      }
    }
  }
  if (!report.candidates.empty()) {
    std::sort(report.candidates.begin(), report.candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.site < b.site;
              });
    return report;
  }

  // Nearest-signature fallback: bounded top-K Jaccard instead of the old
  // score-everything-then-sort scan. A bounded worst-on-top heap keeps the
  // current best max_candidates, and the Jaccard upper bound
  // min(|q|,|e|)/max(|q|,|e|) — reached only when one signature contains
  // the other — lets most entries skip the set intersection (and, in spill
  // mode, the decode) entirely once the heap is full. Selection and order
  // are identical to the full scan: replace only on a strictly better
  // score, so ties keep the lowest entry index, exactly like the old
  // (score desc, idx asc) sort.
  struct Scored {
    double score;
    std::uint32_t idx;
  };
  auto better = [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.idx < b.idx;
  };
  std::priority_queue<Scored, std::vector<Scored>, decltype(better)> heap(
      better);  // top() = worst kept candidate.
  const std::size_t cap = std::max<std::size_t>(options_.max_candidates, 1);
  const double nq = static_cast<double>(keys.size());
  for (std::uint32_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const double ne = static_cast<double>(e.count);
    const double upper = std::min(nq, ne) / std::max(nq, ne);
    if (heap.size() == cap && upper <= heap.top().score) continue;
    const std::size_t inter = intersection_size(keys, keys_of(e, scratch));
    if (inter == 0) continue;
    const double score =
        static_cast<double>(inter) / (nq + ne - static_cast<double>(inter));
    if (heap.size() < cap) {
      heap.push({score, i});
    } else if (score > heap.top().score) {
      heap.pop();
      heap.push({score, i});
    }
  }
  std::vector<Scored> scored;
  scored.reserve(heap.size());
  while (!heap.empty()) {
    scored.push_back(heap.top());
    heap.pop();
  }
  std::sort(scored.begin(), scored.end(), better);
  for (const Scored& s : scored) {
    report.candidates.push_back(make_candidate(entries_[s.idx], s.score));
  }
  return report;
}

}  // namespace m3dfl::diag
