#include "diagnosis/baseline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace m3dfl::diag {

const char* BaselineFeatures::name(int i) {
  switch (i) {
    case 0: return "match-score";
    case 1: return "explained-fraction";
    case 2: return "misprediction-rate";
    case 3: return "rank-percentile";
    case 4: return "driver-fanout";
    case 5: return "is-stem";
  }
  return "?";
}

BaselineFeatures baseline_features(const Candidate& c, std::size_t rank,
                                   std::size_t report_size,
                                   const netlist::Netlist& nl,
                                   const netlist::SiteTable& sites) {
  BaselineFeatures f;
  const double total_obs = c.matched + c.missed;
  const double total_pred = c.matched + c.mispredicted;
  f.x[0] = c.score;
  f.x[1] = total_obs > 0 ? c.matched / total_obs : 0.0;
  f.x[2] = total_pred > 0 ? c.mispredicted / total_pred : 0.0;
  f.x[3] = report_size > 1
               ? 1.0 - static_cast<double>(rank) /
                           static_cast<double>(report_size - 1)
               : 1.0;
  const netlist::FaultSite& fs = sites.site(c.site);
  f.x[4] = std::log1p(static_cast<double>(nl.gate(fs.driver).fanout.size())) /
           std::log1p(8.0);
  f.x[5] = fs.is_stem() ? 1.0 : 0.0;
  return f;
}

double BaselineModel::probability(const BaselineFeatures& f) const {
  double z = bias;
  for (int i = 0; i < BaselineFeatures::kNum; ++i) z += w[i] * f.x[i];
  return 1.0 / (1.0 + std::exp(-z));
}

BaselineModel train_baseline(const std::vector<BaselineTrainingSample>& data,
                             const netlist::Netlist& nl,
                             const netlist::SiteTable& sites,
                             const BaselineTrainOptions& opts) {
  // Flatten (features, label) pairs: label 1 = ground-truth candidate.
  struct Ex {
    BaselineFeatures f;
    double y;
  };
  std::vector<Ex> examples;
  for (const BaselineTrainingSample& s : data) {
    const auto& cands = s.report->candidates;
    for (std::size_t r = 0; r < cands.size(); ++r) {
      const bool is_truth =
          std::find(s.truth.begin(), s.truth.end(), cands[r].site) !=
          s.truth.end();
      examples.push_back(
          {baseline_features(cands[r], r, cands.size(), nl, sites),
           is_truth ? 1.0 : 0.0});
    }
  }
  BaselineModel model;
  if (examples.empty()) return model;

  // Class weighting: ground-truth candidates are rare (one per report).
  std::size_t pos = 0;
  for (const Ex& e : examples) pos += e.y > 0.5;
  const double w_pos =
      pos ? static_cast<double>(examples.size()) / (2.0 * pos) : 1.0;
  const double w_neg =
      examples.size() > pos
          ? static_cast<double>(examples.size()) / (2.0 * (examples.size() - pos))
          : 1.0;

  Rng rng(opts.seed);
  std::vector<std::size_t> order(examples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.shuffle(order);
    const double lr =
        opts.learning_rate / (1.0 + 0.02 * static_cast<double>(epoch));
    for (std::size_t i : order) {
      const Ex& e = examples[i];
      const double p = model.probability(e.f);
      const double grad = (p - e.y) * (e.y > 0.5 ? w_pos : w_neg);
      for (int k = 0; k < BaselineFeatures::kNum; ++k) {
        model.w[k] -= lr * (grad * e.f.x[k] + opts.l2 * model.w[k]);
      }
      model.bias -= lr * grad;
    }
  }

  // Recall-constrained threshold: highest tau such that at least
  // min_report_recall of the training reports keep >= 1 truth candidate.
  std::vector<double> truth_best;
  for (const BaselineTrainingSample& s : data) {
    const auto& cands = s.report->candidates;
    double best = -1.0;
    for (std::size_t r = 0; r < cands.size(); ++r) {
      const bool is_truth =
          std::find(s.truth.begin(), s.truth.end(), cands[r].site) !=
          s.truth.end();
      if (!is_truth) continue;
      best = std::max(
          best, model.probability(baseline_features(cands[r], r, cands.size(),
                                                     nl, sites)));
    }
    if (best >= 0.0) truth_best.push_back(best);
  }
  if (truth_best.empty()) {
    model.threshold = 0.0;
    return model;
  }
  std::sort(truth_best.begin(), truth_best.end());
  // Allow losing at most (1 - min_report_recall) of the reports.
  const auto allowed = static_cast<std::size_t>(
      (1.0 - opts.min_report_recall) * static_cast<double>(truth_best.size()));
  const double tau = truth_best[std::min(allowed, truth_best.size() - 1)];
  // Sit just under the lowest truth probability we must keep.
  model.threshold = std::max(0.0, tau - 1e-9);
  return model;
}

DiagnosisReport apply_baseline(const DiagnosisReport& report,
                               const BaselineModel& model,
                               const netlist::Netlist& nl,
                               const netlist::SiteTable& sites) {
  DiagnosisReport out;
  out.seconds = report.seconds;
  if (report.candidates.empty()) return out;

  struct Scored {
    Candidate c;
    double p;
  };
  std::vector<Scored> scored;
  scored.reserve(report.candidates.size());
  for (std::size_t r = 0; r < report.candidates.size(); ++r) {
    const Candidate& c = report.candidates[r];
    scored.push_back(
        {c, model.probability(baseline_features(
                c, r, report.candidates.size(), nl, sites))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) { return a.p > b.p; });
  for (const Scored& s : scored) {
    if (s.p >= model.threshold || out.candidates.empty()) {
      out.candidates.push_back(s.c);
    }
  }
  return out;
}

}  // namespace m3dfl::diag
