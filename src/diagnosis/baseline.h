#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "diagnosis/report.h"
#include "netlist/fault_site.h"

namespace m3dfl::diag {

/// Per-candidate feature vector of the 2D baseline. Mirrors PADRE [11]
/// (physically-aware diagnostic resolution enhancement): only tier-agnostic
/// features derived from the report and circuit structure are used — the
/// baseline has no notion of device tiers, which is exactly why it cannot
/// provide tier-level localization (paper Sec. VI-A).
struct BaselineFeatures {
  static constexpr int kNum = 6;
  std::array<double, kNum> x{};

  static const char* name(int i);
};

/// Extracts baseline features for the candidate at `rank` (0-based) of a
/// report of `report_size` entries.
BaselineFeatures baseline_features(const Candidate& c, std::size_t rank,
                                   std::size_t report_size,
                                   const netlist::Netlist& nl,
                                   const netlist::SiteTable& sites);

/// First-level candidate classifier of the baseline: logistic regression
/// over BaselineFeatures with a recall-constrained decision threshold. The
/// paper compares against exactly this stage of [11] ("only the results
/// from the first-level classifier ... are chosen to prevent a large loss
/// of accuracy").
struct BaselineModel {
  std::array<double, BaselineFeatures::kNum> w{};
  double bias = 0.0;
  double threshold = 0.5;

  double probability(const BaselineFeatures& f) const;
};

/// One labeled training report for the baseline.
struct BaselineTrainingSample {
  const DiagnosisReport* report;
  std::vector<netlist::SiteId> truth;
};

struct BaselineTrainOptions {
  int epochs = 300;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  /// Fraction of training reports that must keep at least one ground-truth
  /// candidate after filtering; the threshold is lowered until satisfied.
  double min_report_recall = 0.995;
  std::uint64_t seed = 7;
};

/// Trains the first-level classifier on labeled diagnosis reports.
BaselineModel train_baseline(const std::vector<BaselineTrainingSample>& data,
                             const netlist::Netlist& nl,
                             const netlist::SiteTable& sites,
                             const BaselineTrainOptions& opts = {});

/// Applies the baseline to a report: removes candidates the classifier
/// rejects (always keeping at least the single best one) and reorders the
/// survivors by descending classifier probability.
DiagnosisReport apply_baseline(const DiagnosisReport& report,
                               const BaselineModel& model,
                               const netlist::Netlist& nl,
                               const netlist::SiteTable& sites);

}  // namespace m3dfl::diag
