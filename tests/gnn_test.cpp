// Tests of the GNN library: matrix kernels, GCN forward/backward (numeric
// gradient check), models, Adam, trainers, oversampling, explainer, PCA.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "gnn/adam.h"
#include "gnn/explain.h"
#include "gnn/gcn.h"
#include "gnn/model.h"
#include "gnn/oversample.h"
#include "gnn/pca.h"
#include "gnn/qkernels.h"
#include "gnn/quant.h"
#include "gnn/trainer.h"
#include "sim/bitpar/dispatch.h"

namespace m3dfl::gnn {
namespace {

// --- Matrix kernels -----------------------------------------------------------

TEST(Matrix, MatmulAgainstManual) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [1 0; 0 1; 1 1].
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {1, 0, 0, 1, 1, 1};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 4);
  EXPECT_FLOAT_EQ(c.at(0, 1), 5);
  EXPECT_FLOAT_EQ(c.at(1, 0), 10);
  EXPECT_FLOAT_EQ(c.at(1, 1), 11);
}

TEST(Matrix, TransposedProductsAgree) {
  Rng rng(3);
  Matrix a = Matrix::xavier(4, 5, rng);
  Matrix b = Matrix::xavier(4, 3, rng);
  // a^T b computed two ways.
  Matrix at(5, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix direct = matmul_at_b(a, b);
  const Matrix expected = matmul(at, b);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], expected.data()[i], 1e-5);
  }

  Matrix c = Matrix::xavier(3, 5, rng);
  Matrix ct(5, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) ct.at(j, i) = c.at(i, j);
  }
  const Matrix direct2 = matmul_a_bt(a, c);   // (4x5)(3x5)^T -> 4x3.
  const Matrix expected2 = matmul(a, ct);
  for (std::size_t i = 0; i < direct2.size(); ++i) {
    EXPECT_NEAR(direct2.data()[i], expected2.data()[i], 1e-5);
  }
}

TEST(Matrix, SoftmaxIsNormalizedAndStable) {
  const float big[] = {1000.0f, 1001.0f};
  const auto p = softmax({big, 2});
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
  EXPECT_GT(p[1], p[0]);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Matrix, RowMeanAndColsum) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  const Matrix mean = row_mean(m);
  EXPECT_FLOAT_EQ(mean.at(0, 0), 2);
  EXPECT_FLOAT_EQ(mean.at(0, 1), 3);
  std::vector<float> cs(2, 0);
  add_colsum(cs, m);
  EXPECT_FLOAT_EQ(cs[0], 4);
  EXPECT_FLOAT_EQ(cs[1], 6);
}

// --- Kernel bit-identity regression ------------------------------------------

// Scalar reference kernels replicating the exact accumulation order of the
// production kernels in matrix.cpp / gcn.cpp (including the zero-row skip).
// The production loops carry __restrict / hoisted-bound vectorization hints;
// this pins their outputs bit-identically so a future "optimization" that
// reorders floating-point accumulation fails loudly.

Matrix ref_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float av = a.at(i, k);
      if (av == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += av * b.at(k, j);
      }
    }
  }
  return out;
}

Matrix ref_matmul_at_b(const Matrix& a, const Matrix& b) {
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const float av = a.at(k, i);
      if (av == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out.at(i, j) += av * b.at(k, j);
      }
    }
  }
  return out;
}

Matrix ref_matmul_a_bt(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      float s = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a.at(i, k) * b.at(j, k);
      out.at(i, j) = s;
    }
  }
  return out;
}

Matrix ref_aggregate(const graphx::SubGraph& g, const Matrix& h) {
  Matrix agg(g.num_nodes(), h.cols());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    for (std::size_t c = 0; c < h.cols(); ++c) agg.at(v, c) = h.at(v, c);
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      for (std::size_t c = 0; c < h.cols(); ++c) {
        agg.at(v, c) += h.at(g.col_idx[e], c);
      }
    }
    const float inv =
        1.0f / static_cast<float>(1 + g.row_ptr[v + 1] - g.row_ptr[v]);
    for (std::size_t c = 0; c < h.cols(); ++c) agg.at(v, c) *= inv;
  }
  return agg;
}

Matrix ref_aggregate_transpose(const graphx::SubGraph& g, const Matrix& d) {
  Matrix out(g.num_nodes(), d.cols());
  for (std::size_t v = 0; v < g.num_nodes(); ++v) {
    const float inv =
        1.0f / static_cast<float>(1 + g.row_ptr[v + 1] - g.row_ptr[v]);
    for (std::size_t c = 0; c < d.cols(); ++c) {
      out.at(v, c) += inv * d.at(v, c);
    }
    for (std::uint32_t e = g.row_ptr[v]; e < g.row_ptr[v + 1]; ++e) {
      for (std::size_t c = 0; c < d.cols(); ++c) {
        out.at(g.col_idx[e], c) += inv * d.at(v, c);
      }
    }
  }
  return out;
}

void expect_bit_identical(const Matrix& got, const Matrix& want,
                          const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i])
        << what << " diverges at flat index " << i;
  }
}

TEST(KernelBitIdentity, MatmulVariantsMatchScalarReference) {
  Rng rng(91);
  const Matrix a = Matrix::xavier(17, 23, rng);
  const Matrix b = Matrix::xavier(23, 13, rng);
  const Matrix c = Matrix::xavier(17, 13, rng);
  Matrix sparse = a;
  for (std::size_t i = 0; i < sparse.size(); i += 3) sparse.data()[i] = 0.0f;
  expect_bit_identical(matmul(a, b), ref_matmul(a, b), "matmul");
  expect_bit_identical(matmul(sparse, b), ref_matmul(sparse, b),
                       "matmul(sparse)");
  expect_bit_identical(matmul_at_b(a, c), ref_matmul_at_b(a, c), "matmul_at_b");
  expect_bit_identical(matmul_a_bt(b, c), ref_matmul_a_bt(b, c),
                       "matmul_a_bt");
}

TEST(KernelBitIdentity, ElementwiseKernelsMatchScalarReference) {
  Rng rng(92);
  Matrix m = Matrix::xavier(9, 21, rng);
  std::vector<float> bias(21);
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  Matrix want = m;
  for (std::size_t i = 0; i < want.rows(); ++i) {
    for (std::size_t j = 0; j < want.cols(); ++j) want.at(i, j) += bias[j];
  }
  Matrix got = m;
  add_bias_rows(got, bias);
  expect_bit_identical(got, want, "add_bias_rows");

  for (std::size_t i = 0; i < want.size(); ++i) {
    want.data()[i] = std::max(0.0f, want.data()[i]);
  }
  relu_inplace(got);
  expect_bit_identical(got, want, "relu_inplace");

  std::vector<float> cs_got(21, 0.25f), cs_want(21, 0.25f);
  add_colsum(cs_got, m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) cs_want[j] += m.at(i, j);
  }
  for (std::size_t j = 0; j < cs_want.size(); ++j) {
    ASSERT_EQ(cs_got[j], cs_want[j]) << "add_colsum col " << j;
  }

  Matrix mean_want(1, m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      mean_want.at(0, j) += m.at(i, j);
    }
  }
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (std::size_t j = 0; j < m.cols(); ++j) mean_want.at(0, j) *= inv;
  expect_bit_identical(row_mean(m), mean_want, "row_mean");
}

// --- int8 GEMM kernel family -------------------------------------------------

/// Plain-loop int32 reference over the padded rows (pads are zero, so
/// covering the full stride matches the kernels' whole-vector consumption).
std::vector<std::int32_t> ref_qgemm(const QMatrix& a, const QMatrix& bt) {
  std::vector<std::int32_t> c(a.rows() * bt.rows(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < bt.rows(); ++j) {
      std::int32_t s = 0;
      for (std::size_t k = 0; k < a.stride(); ++k) {
        s += static_cast<std::int32_t>(a.at(i, k)) *
             static_cast<std::int32_t>(bt.at(j, k));
      }
      c[i * bt.rows() + j] = s;
    }
  }
  return c;
}

QMatrix random_qmatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  QMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = static_cast<std::int8_t>(
          std::lround(rng.uniform(-127.0, 127.0)));
    }
  }
  return m;
}

TEST(QGemm, EveryCompiledTierMatchesInt32Reference) {
  Rng rng(94);
  // Odd dims so the zero padding (70 -> 96 stride) is actually exercised,
  // including values at the extremes of the int8 range.
  const QMatrix a = random_qmatrix(7, 70, rng);
  const QMatrix bt = random_qmatrix(9, 70, rng);
  ASSERT_EQ(a.stride(), bt.stride());
  const std::vector<std::int32_t> want = ref_qgemm(a, bt);

  struct TierFn {
    const char* name;
    QGemmFn fn;
    bool runnable;
  };
  const TierFn tiers[] = {
      {"scalar", qgemm_scalar(), true},
      {"sse2", qgemm_sse2(),
       sim::bitpar::tier_available(sim::bitpar::SimdTier::kSse2)},
      {"avx2", qgemm_avx2(),
       sim::bitpar::tier_available(sim::bitpar::SimdTier::kAvx2)},
  };
  ASSERT_NE(tiers[0].fn, nullptr);
  int checked = 0;
  for (const TierFn& t : tiers) {
    if (t.fn == nullptr || !t.runnable) continue;
    std::vector<std::int32_t> got(a.rows() * bt.rows(), -1);
    t.fn(a.data(), bt.data(), got.data(), a.rows(), bt.rows(), a.stride());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << t.name << " diverges at flat index " << i;
    }
    ++checked;
  }
  EXPECT_GE(checked, 1);
}

TEST(QGemm, ActiveKernelFollowsForcedTier) {
  using sim::bitpar::SimdTier;
  struct Clear {
    ~Clear() { sim::bitpar::force_tier(std::nullopt); }
  } clear_on_exit;
  const struct {
    SimdTier tier;
    QGemmFn fn;
  } table[] = {
      {SimdTier::kScalar, qgemm_scalar()},
      {SimdTier::kSse2, qgemm_sse2()},
      {SimdTier::kAvx2, qgemm_avx2()},
  };
  for (const auto& row : table) {
    if (!sim::bitpar::tier_available(row.tier)) continue;
    sim::bitpar::force_tier(row.tier);
    EXPECT_EQ(active_qgemm_tier(), row.tier);
    EXPECT_EQ(active_qgemm(), row.fn);
  }
}

// --- A tiny synthetic SubGraph ---------------------------------------------------

/// Builds a path graph 0-1-2-...-(n-1) with controllable features.
graphx::SubGraph path_graph(std::size_t n, Rng& rng, float tier_value = 0.f) {
  graphx::SubGraph g;
  g.nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) g.nodes[i] = static_cast<std::uint32_t>(i);
  g.row_ptr.assign(n + 1, 0);
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    adj[i].push_back(static_cast<std::uint32_t>(i + 1));
    adj[i + 1].push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.row_ptr[i + 1] = g.row_ptr[i] + adj[i].size();
    for (auto v : adj[i]) g.col_idx.push_back(v);
  }
  g.features.resize(n * graphx::kNumSubgraphFeatures);
  for (auto& f : g.features) f = static_cast<float>(rng.uniform());
  for (std::size_t i = 0; i < n; ++i) g.feature(i, 3) = tier_value;
  return g;
}

// --- GCN layer -----------------------------------------------------------------

TEST(GcnLayer, AggregateIsMeanWithSelfLoop) {
  Rng rng(5);
  graphx::SubGraph g = path_graph(3, rng);
  Matrix h(3, 2);
  h.at(0, 0) = 3;
  h.at(1, 0) = 6;
  h.at(2, 0) = 9;
  const Matrix agg = GcnLayer::aggregate(g, h);
  // Node 0: mean(h0, h1) = 4.5; node 1: mean(h0,h1,h2) = 6.
  EXPECT_FLOAT_EQ(agg.at(0, 0), 4.5f);
  EXPECT_FLOAT_EQ(agg.at(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(agg.at(2, 0), 7.5f);
}

TEST(GcnLayer, AggregateTransposeIsAdjoint) {
  // <A x, y> == <x, A^T y> for random x, y.
  Rng rng(6);
  graphx::SubGraph g = path_graph(5, rng);
  Matrix x = Matrix::xavier(5, 3, rng);
  Matrix y = Matrix::xavier(5, 3, rng);
  const Matrix ax = GcnLayer::aggregate(g, x);
  const Matrix aty = GcnLayer::aggregate_transpose(g, y);
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    lhs += static_cast<double>(ax.data()[i]) * y.data()[i];
    rhs += static_cast<double>(x.data()[i]) * aty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

// Full-layer companion to the KernelBitIdentity tests: forward and backward
// through GcnLayer must match the scalar reference composition bit-for-bit,
// so any aliasing/vectorization change that perturbs FP order is caught at
// the layer level too (including the aggregate / aggregate_transpose paths).
TEST(GcnLayer, ForwardBackwardBitIdenticalToScalarReference) {
  Rng rng(93);
  graphx::SubGraph g = path_graph(11, rng);
  const std::size_t in_dim = graphx::kNumSubgraphFeatures;
  GcnLayer layer(in_dim, 10, rng);
  const Matrix h = Matrix::xavier(g.num_nodes(), in_dim, rng);
  const Matrix d_out = Matrix::xavier(g.num_nodes(), 10, rng);

  GcnCache cache;
  const Matrix out = layer.forward(g, h, &cache);

  const Matrix agg_ref = ref_aggregate(g, h);
  expect_bit_identical(cache.agg, agg_ref, "forward agg");
  Matrix out_ref = ref_matmul(agg_ref, layer.W);
  for (std::size_t i = 0; i < out_ref.rows(); ++i) {
    for (std::size_t j = 0; j < out_ref.cols(); ++j) {
      out_ref.at(i, j) += layer.b[j];
      out_ref.at(i, j) = std::max(0.0f, out_ref.at(i, j));
    }
  }
  expect_bit_identical(out, out_ref, "forward out");

  layer.zero_grad();
  const Matrix d_in = layer.backward(g, h, cache, d_out);

  Matrix d_pre = d_out;
  for (std::size_t i = 0; i < d_pre.size(); ++i) {
    if (cache.out.data()[i] <= 0.0f) d_pre.data()[i] = 0.0f;
  }
  expect_bit_identical(layer.gW, ref_matmul_at_b(agg_ref, d_pre),
                       "backward gW");
  std::vector<float> gb_ref(10, 0.0f);
  for (std::size_t i = 0; i < d_pre.rows(); ++i) {
    for (std::size_t j = 0; j < d_pre.cols(); ++j) {
      gb_ref[j] += d_pre.at(i, j);
    }
  }
  for (std::size_t j = 0; j < gb_ref.size(); ++j) {
    ASSERT_EQ(layer.gb[j], gb_ref[j]) << "backward gb col " << j;
  }
  const Matrix d_agg_ref = ref_matmul_a_bt(d_pre, layer.W);
  expect_bit_identical(d_in, ref_aggregate_transpose(g, d_agg_ref),
                       "backward d_in");
}

/// Numeric gradient check of the full GraphClassifier loss.
TEST(GraphClassifier, NumericGradientCheck) {
  Rng rng(7);
  graphx::SubGraph g = path_graph(6, rng);
  GraphClassifier model(graphx::kNumSubgraphFeatures, {8}, 2, /*seed=*/11);

  model.zero_grad();
  model.train_graph(g, /*label=*/1);

  // Check dL/dW for a few weights of each parameter tensor.
  auto params = model.params();
  const double eps = 1e-3;
  int checked = 0;
  for (ParamRef& p : params) {
    for (std::size_t idx : {std::size_t{0}, p.size / 2, p.size - 1}) {
      const float saved = p.value[idx];
      const float analytic = p.grad[idx];
      p.value[idx] = saved + static_cast<float>(eps);
      GraphClassifier& m = model;
      // Loss at +eps (predict path re-computes everything).
      const auto probs_hi = m.predict(g);
      const double loss_hi = -std::log(std::max(1e-12, probs_hi[1]));
      p.value[idx] = saved - static_cast<float>(eps);
      const auto probs_lo = m.predict(g);
      const double loss_lo = -std::log(std::max(1e-12, probs_lo[1]));
      p.value[idx] = saved;
      const double numeric = (loss_hi - loss_lo) / (2 * eps);
      EXPECT_NEAR(analytic, numeric, 2e-2 + 0.05 * std::abs(numeric))
          << "param idx " << idx;
      ++checked;
    }
  }
  EXPECT_GE(checked, 6);
}

TEST(NodeScorer, NumericGradientCheck) {
  Rng rng(8);
  graphx::SubGraph g = path_graph(6, rng);
  g.miv_local = {1, 4};
  g.miv_label = {1.0f, 0.0f};
  NodeScorer model(graphx::kNumSubgraphFeatures, {8}, 13);
  model.zero_grad();
  model.train_graph(g);

  auto loss_of = [&]() {
    const auto s = model.predict_miv(g);
    double l = 0;
    l -= std::log(std::max(1e-12, s[0]));
    l -= std::log(std::max(1e-12, 1.0 - s[1]));
    return l / 2.0;
  };
  auto params = model.params();
  const double eps = 1e-3;
  for (ParamRef& p : params) {
    const std::size_t idx = p.size / 2;
    const float saved = p.value[idx];
    const float analytic = p.grad[idx];
    p.value[idx] = saved + static_cast<float>(eps);
    const double hi = loss_of();
    p.value[idx] = saved - static_cast<float>(eps);
    const double lo = loss_of();
    p.value[idx] = saved;
    const double numeric = (hi - lo) / (2 * eps);
    EXPECT_NEAR(analytic, numeric, 2e-2 + 0.05 * std::abs(numeric));
  }
}

TEST(GraphClassifier, EmptyGraphGivesUniform) {
  GraphClassifier model(graphx::kNumSubgraphFeatures, {8}, 2, 1);
  graphx::SubGraph empty;
  const auto p = model.predict(empty);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

// predict() is documented as an exact double-widening shim over the float
// inference path — every threshold comparison made on the double view must
// agree bit-wise with the float probabilities underneath.
TEST(GraphClassifier, PredictIsExactWideningOfPredictProbs) {
  Rng rng(95);
  const graphx::SubGraph g = path_graph(6, rng);
  const GraphClassifier model(graphx::kNumSubgraphFeatures, {8}, 2, 19);
  const std::vector<float> pf = model.predict_probs(g);
  const std::vector<double> pd = model.predict(g);
  ASSERT_EQ(pf.size(), pd.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < pf.size(); ++i) {
    EXPECT_EQ(pd[i], static_cast<double>(pf[i]));
    sum += pd[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

// --- Trainer: learnability -------------------------------------------------------

TEST(Trainer, LearnsSeparableGraphTask) {
  // Class = value of feature 3 (constant over nodes). Trivially separable;
  // the trainer must reach high accuracy quickly.
  Rng rng(9);
  std::vector<graphx::SubGraph> graphs;
  std::vector<LabeledGraph> data;
  for (int i = 0; i < 60; ++i) {
    const int label = i % 2;
    graphs.push_back(path_graph(5 + i % 4, rng, label ? 1.0f : 0.0f));
  }
  for (int i = 0; i < 60; ++i) data.push_back({&graphs[i], i % 2});

  GraphClassifier model(graphx::kNumSubgraphFeatures, {16}, 2, 21);
  TrainOptions opts;
  opts.epochs = 30;
  opts.lr = 1e-2;
  const TrainStats stats = train_graph_classifier(model, data, opts);
  EXPECT_GT(stats.epochs_run, 0);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  EXPECT_GT(classifier_accuracy(model, data), 0.95);
}

TEST(Trainer, NodeScorerLearnsMarkedNodes) {
  // MIV node with feature 6 == 1 is "faulty"; others are not.
  Rng rng(10);
  std::vector<graphx::SubGraph> graphs;
  for (int i = 0; i < 50; ++i) {
    graphx::SubGraph g = path_graph(6, rng);
    g.miv_local = {1, 3};
    const bool first_faulty = i % 2 == 0;
    g.miv_label = {first_faulty ? 1.0f : 0.0f, first_faulty ? 0.0f : 1.0f};
    g.feature(1, 6) = first_faulty ? 1.0f : 0.0f;
    g.feature(3, 6) = first_faulty ? 0.0f : 1.0f;
    graphs.push_back(std::move(g));
  }
  std::vector<const graphx::SubGraph*> data;
  for (const auto& g : graphs) data.push_back(&g);

  NodeScorer model(graphx::kNumSubgraphFeatures, {16}, 31);
  TrainOptions opts;
  opts.epochs = 40;
  opts.lr = 1e-2;
  train_node_scorer(model, data, opts);
  int correct = 0;
  for (const auto* g : data) {
    const auto s = model.predict_miv(*g);
    const int top = s[0] > s[1] ? 0 : 1;
    const int truth = g->miv_label[0] > 0.5f ? 0 : 1;
    correct += top == truth;
  }
  EXPECT_GT(correct, 45);
}

// --- Adam -------------------------------------------------------------------------

TEST(Adam, MinimizesQuadratic) {
  // One parameter vector, loss = sum (x_i - t_i)^2.
  std::vector<float> x(4, 0.0f), g(4, 0.0f);
  const float target[] = {1.0f, -2.0f, 3.0f, 0.5f};
  Adam adam({{x.data(), g.data(), 4}}, {.lr = 0.05});
  for (int step = 0; step < 400; ++step) {
    for (int i = 0; i < 4; ++i) g[i] = 2.0f * (x[i] - target[i]);
    adam.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], target[i], 0.05);
}

TEST(Adam, StepClearsGradients) {
  std::vector<float> x(2, 0.0f), g(2, 1.0f);
  Adam adam({{x.data(), g.data(), 2}});
  adam.step();
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
}

// --- Transfer learning --------------------------------------------------------------

TEST(Transfer, FrozenStackUnchangedByTraining) {
  Rng rng(12);
  std::vector<graphx::SubGraph> graphs;
  std::vector<LabeledGraph> data;
  for (int i = 0; i < 20; ++i) {
    graphs.push_back(path_graph(5, rng, (i % 2) ? 1.0f : 0.0f));
  }
  for (int i = 0; i < 20; ++i) data.push_back({&graphs[i], i % 2});

  GraphClassifier base(graphx::kNumSubgraphFeatures, {8, 8}, 2, 41);
  train_graph_classifier(base, data, {.epochs = 5});

  GraphClassifier transfer =
      GraphClassifier::transfer_from(base.stack, 2, 4, 42);
  const std::vector<float> before(
      transfer.stack.layers[0].W.data(),
      transfer.stack.layers[0].W.data() + transfer.stack.layers[0].W.size());
  train_graph_classifier(transfer, data, {.epochs = 5});
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(transfer.stack.layers[0].W.data()[i], before[i])
        << "frozen weight moved";
  }
  EXPECT_TRUE(transfer.has_hidden_head);
  EXPECT_TRUE(transfer.freeze_stack);
}

// --- Oversampling -------------------------------------------------------------------

TEST(Oversample, DummyBufferPreservesStructure) {
  Rng rng(13);
  graphx::SubGraph g = path_graph(4, rng);
  g.miv_local = {2};
  g.miv_label = {1.0f};
  g.label_tier = 1;
  const graphx::SubGraph aug = append_dummy_buffer(g, 1);
  EXPECT_EQ(aug.num_nodes(), 5u);
  EXPECT_EQ(aug.num_edges(), g.num_edges() + 2);
  EXPECT_EQ(aug.label_tier, 1);
  EXPECT_EQ(aug.miv_local, g.miv_local);
  // New node connected to node 1.
  bool found = false;
  for (std::uint32_t e = aug.row_ptr[4]; e < aug.row_ptr[5]; ++e) {
    found |= aug.col_idx[e] == 1;
  }
  EXPECT_TRUE(found);
  // Nodes stay sorted/unique for local_of.
  for (std::size_t i = 1; i < aug.nodes.size(); ++i) {
    EXPECT_LT(aug.nodes[i - 1], aug.nodes[i]);
  }
}

// Regression: when every minority graph is empty no buffer variant can
// ever be synthesized; the loop used to spin forever chasing the target.
TEST(Oversample, AllEmptyMinorityTerminates) {
  graphx::SubGraph empty1, empty2;
  std::vector<const graphx::SubGraph*> minority{&empty1, &empty2};
  const auto out = oversample_with_buffers(minority, 9, 15);
  EXPECT_EQ(out.size(), 2u);
  for (const auto& g : out) EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(Oversample, ReachesTargetCount) {
  Rng rng(14);
  std::vector<graphx::SubGraph> graphs{path_graph(4, rng), path_graph(5, rng)};
  std::vector<const graphx::SubGraph*> minority{&graphs[0], &graphs[1]};
  const auto out = oversample_with_buffers(minority, 9, 15);
  EXPECT_EQ(out.size(), 9u);
  // Synthetic graphs grow in node count.
  EXPECT_GT(out.back().num_nodes(), graphs.back().num_nodes());
}

// --- Explainer ---------------------------------------------------------------------

TEST(Explainer, SignificanceNearHalfAndDiscriminative) {
  Rng rng(16);
  std::vector<graphx::SubGraph> graphs;
  std::vector<LabeledGraph> data;
  for (int i = 0; i < 40; ++i) {
    graphs.push_back(path_graph(6, rng, (i % 2) ? 1.0f : 0.0f));
  }
  for (int i = 0; i < 40; ++i) data.push_back({&graphs[i], i % 2});
  GraphClassifier model(graphx::kNumSubgraphFeatures, {16}, 2, 61);
  train_graph_classifier(model, data, {.epochs = 25, .lr = 1e-2});

  const auto sig = explain_feature_significance(model, data);
  ASSERT_EQ(sig.size(), graphx::kNumSubgraphFeatures);
  for (double s : sig) {
    EXPECT_GT(s, 0.2);
    EXPECT_LT(s, 0.8);  // Mask scores cluster near 0.5, as in the paper.
  }
  // Permutation importance singles out the label-carrying feature 3.
  const auto imp = permutation_importance(model, data);
  const auto top =
      std::max_element(imp.begin(), imp.end()) - imp.begin();
  EXPECT_EQ(top, 3);
}

// --- PCA ---------------------------------------------------------------------------

TEST(Pca, RecoversDominantDirection) {
  Rng rng(17);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 300; ++i) {
    const double t = rng.normal();
    // Variance concentrated along (1, 1, 0) / sqrt(2).
    samples.push_back({t + 0.01 * rng.normal(), t + 0.01 * rng.normal(),
                       0.05 * rng.normal()});
  }
  const PcaResult pca = fit_pca(samples, 2);
  ASSERT_EQ(pca.components.size(), 2u);
  const auto& c0 = pca.components[0];
  EXPECT_NEAR(std::abs(c0[0]), std::sqrt(0.5), 0.05);
  EXPECT_NEAR(std::abs(c0[1]), std::sqrt(0.5), 0.05);
  EXPECT_NEAR(c0[2], 0.0, 0.1);
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
  EXPECT_GT(pca.eigenvalues[0], pca.eigenvalues[1]);
}

TEST(Pca, ProjectionCentersData) {
  Rng rng(18);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back({5.0 + rng.normal(), -3.0 + rng.normal()});
  }
  const PcaResult pca = fit_pca(samples, 2);
  double mx = 0, my = 0;
  for (const auto& s : samples) {
    const auto p = pca.project2(s);
    mx += p[0];
    my += p[1];
  }
  EXPECT_NEAR(mx / 100, 0.0, 1e-9);
  EXPECT_NEAR(my / 100, 0.0, 1e-9);
}

}  // namespace
}  // namespace m3dfl::gnn
