// Integration tests of the evaluation harness: design building, dataset
// generation, framework training, and every experiment driver at tiny
// scale. These are the end-to-end guarantees behind the bench binaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/experiments.h"

namespace m3dfl::eval {
namespace {

const RunScale& tiny() {
  static const RunScale s = RunScale::tiny();
  return s;
}

// --- Design building ----------------------------------------------------------

TEST(Design, BuildsEveryConfiguration) {
  const BenchmarkSpec spec = tiny_spec();
  for (Config config : eval_configs()) {
    const Design& d = cached_design(spec, config);
    EXPECT_TRUE(d.nl.validate().empty());
    EXPECT_GT(d.nl.num_mivs(), 0u);
    EXPECT_GT(d.patterns.num_patterns(), 0u);
    EXPECT_GT(d.graph->num_nodes(), 0u);
    EXPECT_TRUE(d.graph->has_transitions());
    EXPECT_GT(d.atpg_coverage, 0.7) << config_name(config);
    EXPECT_GE(d.test_coverage, d.atpg_coverage);
  }
}

TEST(Design, ConfigurationsDifferStructurally) {
  const BenchmarkSpec spec = tiny_spec();
  const Design& syn1 = cached_design(spec, Config::kSyn1);
  const Design& syn2 = cached_design(spec, Config::kSyn2);
  const Design& tpi = cached_design(spec, Config::kTPI);
  EXPECT_NE(syn1.nl.num_gates(), syn2.nl.num_gates());
  EXPECT_GT(tpi.nl.num_outputs(), syn1.nl.num_outputs());
}

TEST(Design, CacheReturnsSameInstance) {
  const BenchmarkSpec spec = tiny_spec();
  const Design& a = cached_design(spec, Config::kSyn1);
  const Design& b = cached_design(spec, Config::kSyn1);
  EXPECT_EQ(&a, &b);
  const Design& r1 = cached_design(spec, Config::kRandomPart, 1);
  const Design& r2 = cached_design(spec, Config::kRandomPart, 2);
  EXPECT_NE(&r1, &r2);
  EXPECT_NE(r1.part.tier_of_gate, r2.part.tier_of_gate);
}

// --- Dataset generation --------------------------------------------------------

class DatagenMode : public ::testing::TestWithParam<FaultMode> {};

TEST_P(DatagenMode, SamplesAreWellFormed) {
  const Design& d = cached_design(tiny_spec(), Config::kSyn1);
  DatagenOptions o;
  o.mode = GetParam();
  o.num_samples = 15;
  o.seed = 555;
  const Dataset ds = generate_dataset(d, o);
  ASSERT_GT(ds.size(), 10u);
  for (const Sample& s : ds.samples) {
    EXPECT_FALSE(s.log.empty());
    EXPECT_FALSE(s.faults.empty());
    EXPECT_EQ(s.truth_sites.size(), s.faults.size());
    EXPECT_GE(s.fault_tier, 0);
    EXPECT_LE(s.fault_tier, 1);
    EXPECT_GT(s.sub.num_nodes(), 0u);
    EXPECT_EQ(s.sub.label_tier, s.fault_tier);
    // Uncompacted single-fault back-tracing always keeps the truth.
    if (GetParam() == FaultMode::kSingleSite) {
      EXPECT_TRUE(s.sub.truth_in_nodes);
    }
    if (GetParam() == FaultMode::kSingleMiv) {
      EXPECT_TRUE(s.truth_is_miv);
      // The faulty MIV is labeled in the sub-graph.
      const float labeled = std::count(s.sub.miv_label.begin(),
                                       s.sub.miv_label.end(), 1.0f);
      EXPECT_GE(labeled, 1.0f);
    }
    if (GetParam() == FaultMode::kMultiSameTier) {
      EXPECT_GE(s.faults.size(), 2u);
      EXPECT_LE(s.faults.size(), 5u);
      for (netlist::SiteId site : s.truth_sites) {
        EXPECT_EQ(static_cast<int>(d.sites.tier_of(site, d.nl)),
                  s.fault_tier);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, DatagenMode,
                         ::testing::Values(FaultMode::kSingleSite,
                                           FaultMode::kSingleMiv,
                                           FaultMode::kMultiSameTier));

TEST(Datagen, CompactedLogsAreCompacted) {
  const Design& d = cached_design(tiny_spec(), Config::kSyn1);
  DatagenOptions o;
  o.compacted = true;
  o.num_samples = 8;
  o.seed = 556;
  const Dataset ds = generate_dataset(d, o);
  for (const Sample& s : ds.samples) {
    EXPECT_TRUE(s.log.compacted);
    EXPECT_FALSE(s.log.cfails.empty());
  }
}

// Regression: a fully XOR-aliased compacted response used to retry
// unboundedly (`--i; continue;`). Aliases now charge max_retries like
// undetected draws — even a budget of 1 must terminate and only produce
// non-empty compacted logs.
TEST(Datagen, AliasRetriesChargeTheBudgetAndTerminate) {
  const Design& d = cached_design(tiny_spec(), Config::kSyn1);
  DatagenOptions o;
  o.compacted = true;
  o.num_samples = 8;
  o.seed = 558;
  o.max_retries = 1;
  const Dataset ds = generate_dataset(d, o);
  EXPECT_LE(ds.size(), o.num_samples);
  for (const Sample& s : ds.samples) {
    EXPECT_TRUE(s.log.compacted);
    EXPECT_FALSE(s.log.cfails.empty());
  }
}

// Sample i draws from derive_seed(seed, i), so a longer run extends a
// shorter one instead of reshuffling it.
TEST(Datagen, PerSampleStreamsMakePrefixesStable) {
  const Design& d = cached_design(tiny_spec(), Config::kSyn1);
  DatagenOptions o;
  o.num_samples = 20;
  o.seed = 559;
  const Dataset big = generate_dataset(d, o);
  o.num_samples = 10;
  const Dataset small = generate_dataset(d, o);
  ASSERT_LE(small.size(), big.size());
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.samples[i].truth_sites, big.samples[i].truth_sites);
    EXPECT_EQ(small.samples[i].log.fails, big.samples[i].log.fails);
  }
}

TEST(Datagen, DeterministicUnderSeed) {
  const Design& d = cached_design(tiny_spec(), Config::kSyn1);
  DatagenOptions o;
  o.num_samples = 6;
  o.seed = 557;
  const Dataset a = generate_dataset(d, o);
  const Dataset b = generate_dataset(d, o);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].truth_sites, b.samples[i].truth_sites);
    EXPECT_EQ(a.samples[i].log.fails, b.samples[i].log.fails);
  }
}

// --- Framework training --------------------------------------------------------

TEST(Framework, TrainsAndExceedsChanceEverywhere) {
  const TrainingBundle bundle =
      build_training_bundle(tiny_spec(), false, tiny());
  const TrainedFramework fw = train_framework(bundle, tiny());
  EXPECT_GT(fw.train_tier_accuracy, 0.6);
  EXPECT_GT(fw.policy.t_p, 0.4);
  EXPECT_LE(fw.policy.t_p, 1.0 + 1e-9);
  EXPECT_GT(fw.gnn_train_seconds, 0.0);

  // The classifier must produce valid probabilities on unseen graphs.
  DatagenOptions o;
  o.num_samples = 5;
  o.seed = 600;
  const Dataset test = generate_dataset(*bundle.syn1, o);
  for (const Sample& s : test.samples) {
    const double p = fw.classifier.prune_probability(s.sub);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

// --- Experiment drivers ---------------------------------------------------------

TEST(Experiments, AtpgQualityRowsCoverAllConfigs) {
  const auto rows = run_atpg_quality(tiny_spec(), false, tiny());
  ASSERT_EQ(rows.size(), 4u);
  std::set<std::string> configs;
  for (const auto& r : rows) {
    configs.insert(r.config);
    EXPECT_GT(r.atpg.accuracy, 0.8);
    EXPECT_GE(r.atpg.mean_res, 1.0);
    EXPECT_GE(r.atpg.mean_fhi, 1.0);
    EXPECT_LE(r.atpg.mean_fhi, r.atpg.mean_res + 1e-9);
  }
  EXPECT_EQ(configs.size(), 4u);
}

TEST(Experiments, EffectivenessInvariants) {
  const auto rows = run_effectiveness(tiny_spec(), false, tiny());
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    // The baseline and GNN never grow the candidate list.
    EXPECT_LE(r.baseline.mean_res, r.atpg.mean_res + 1e-9);
    EXPECT_LE(r.gnn.mean_res, r.atpg.mean_res + 1e-9);
    EXPECT_LE(r.gnn_plus.mean_res, r.gnn.mean_res + 1e-9);
    // Accuracy losses stay bounded (tiny-scale models are noisy, so the
    // bound is loose; the bench scale tightens it).
    EXPECT_GT(r.baseline.accuracy, r.atpg.accuracy - 0.15);
    EXPECT_GT(r.gnn.accuracy, r.atpg.accuracy - 0.15);
    // Tier localization is reported for baseline and GNN.
    EXPECT_GE(r.baseline.tier_loc, 0.0);
    EXPECT_GE(r.gnn.tier_loc, 0.0);
  }
}

TEST(Experiments, EffectivenessCompactedRuns) {
  const auto rows = run_effectiveness(tiny_spec(), true, tiny());
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.atpg.accuracy, 0.7);
    EXPECT_LE(r.gnn.mean_res, r.atpg.mean_res + 1e-9);
  }
}

TEST(Experiments, Fig6ComparesDedicatedAndTransferred) {
  const auto rows = run_fig6(tiny_spec(), tiny());
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.dedicated_tier, 0.5);
    EXPECT_GT(r.transferred_tier, 0.5);
    EXPECT_GE(r.dedicated_miv, 0.0);
    EXPECT_GE(r.transferred_miv, 0.0);
  }
}

TEST(Experiments, Fig5CloudsOverlap) {
  const auto result = run_fig5(tiny_spec(), tiny());
  EXPECT_GT(result.points.size(), 40u);
  EXPECT_GT(result.explained_variance, 0.3);
  // The transferability claim: configuration centroids sit within the
  // intra-configuration spread.
  EXPECT_LT(result.separation_ratio, 1.5);
}

TEST(Experiments, FeatureSignificanceShape) {
  const auto r = run_feature_significance(tiny_spec(), tiny());
  ASSERT_EQ(r.significance.size(), graphx::kNumSubgraphFeatures);
  ASSERT_EQ(r.perm_importance.size(), graphx::kNumSubgraphFeatures);
  for (double s : r.significance) {
    EXPECT_GT(s, 0.1);
    EXPECT_LT(s, 0.9);
  }
}

TEST(Experiments, DesignMatrixCoversAllBenchmarks) {
  // Uses the full benchmark specs (cached across the process; the heavy
  // part is the one-off ATPG per design).
  const auto rows = run_design_matrix();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].design, "aes");
  EXPECT_EQ(rows[3].design, "leon3mp");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].gates, rows[i - 1].gates) << "size ordering broken";
  }
  for (const auto& r : rows) {
    EXPECT_GT(r.test_coverage, 0.9) << r.design;
    EXPECT_GT(r.mivs, 100u);
  }
}

TEST(Experiments, MultiFaultRowWellFormed) {
  const auto rows = run_multifault(tiny_spec(), tiny());
  ASSERT_EQ(rows.size(), 1u);
  const auto& r = rows.front();
  EXPECT_GT(r.atpg.mean_res, 0.0);
  EXPECT_GE(r.framework.tier_loc, 0.0);
  EXPECT_LE(r.framework.mean_res, r.atpg.mean_res + 1e-9);
}

TEST(Experiments, AblationHasFourMethods) {
  const auto rows = run_ablation(tiny_spec(), tiny());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].method, "ATPG only");
  // No method may grow the report.
  for (const auto& r : rows) {
    EXPECT_LE(r.cell.mean_res, rows[0].cell.mean_res + 1e-9);
  }
  // MIV-pinpointer standalone never changes the candidate set, only the
  // order — resolution must match ATPG exactly.
  EXPECT_DOUBLE_EQ(rows[2].cell.mean_res, rows[0].cell.mean_res);
  EXPECT_DOUBLE_EQ(rows[2].cell.accuracy, rows[0].cell.accuracy);
}

TEST(Experiments, RuntimeRowsPositive) {
  // run_runtime covers all four full-size benchmarks; at tiny test scale
  // it is still the most expensive driver, so keep the sample count low.
  RunScale s = tiny();
  s.test_samples = 10;
  const auto rows = run_runtime(s);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.feature_seconds, 0.0);
    EXPECT_GT(r.train_seconds, 0.0);
    EXPECT_GT(r.t_atpg, 0.0);
    EXPECT_GT(r.t_gnn, 0.0);
    EXPECT_GE(r.t_update, 0.0);
    EXPECT_GT(r.t_atpg, r.t_update) << "update must be cheap vs diagnosis";
  }
}

}  // namespace
}  // namespace m3dfl::eval
