// Sampling-profiler and hardware-counter tests. The profiler test is the
// acceptance check that folded output names real hot paths: it burns CPU
// in a noinline, externally visible function and asserts that function
// appears in the collapsed stacks. Counter tests pin the degradation
// ladder's rusage rung (forced via M3DFL_NO_PERF_EVENT so they pass both
// on bare metal and in perf-less containers).

#include <gtest/gtest.h>

#if M3DFL_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/prof/counters.h"
#include "obs/prof/profiler.h"

// External linkage + noinline so -rdynamic exports it and dladdr can name
// it in the folded stacks; the volatile sink defeats whole-loop deletion.
__attribute__((noinline)) double m3dfl_prof_test_burn(double until_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double sink = 1.0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < until_seconds) {
    for (int i = 1; i < 4096; ++i) sink = sink + 1.0 / static_cast<double>(i);
  }
  return sink;
}

namespace {

using m3dfl::obs::prof::CounterRegistry;
using m3dfl::obs::prof::CounterScope;
using m3dfl::obs::prof::CounterValues;
using m3dfl::obs::prof::CpuProfiler;
using m3dfl::obs::prof::FoldedStack;
using m3dfl::obs::prof::ProfilerOptions;

TEST(Profiler, FoldedStacksNameTheHotFunction) {
  auto& prof = CpuProfiler::instance();
  ProfilerOptions opts;
  opts.sample_hz = 997;  // High rate so a short burn yields many samples.
  std::string error;
  ASSERT_TRUE(prof.start(opts, &error)) << error;
  EXPECT_TRUE(prof.running());
  m3dfl_prof_test_burn(0.6);
  prof.stop();
  EXPECT_FALSE(prof.running());
  ASSERT_GT(prof.samples(), 10u)
      << "per-thread CPU timer delivered almost no SIGPROF ticks";

  const std::vector<FoldedStack> folded = prof.collect();
  ASSERT_FALSE(folded.empty());
  // Heaviest-first ordering.
  for (std::size_t i = 1; i < folded.size(); ++i) {
    EXPECT_GE(folded[i - 1].count, folded[i].count);
  }
  std::uint64_t burn_samples = 0;
  for (const FoldedStack& f : folded) {
    if (f.stack.find("m3dfl_prof_test_burn") != std::string::npos) {
      burn_samples += f.count;
    }
  }
  // The burn loop had the CPU to itself; the vast majority of samples must
  // resolve to it by name (this is the "top frames name real hot paths"
  // acceptance bar — hex-only stacks mean symbolization broke).
  EXPECT_GT(burn_samples, prof.samples() / 2)
      << "folded output did not attribute the burn loop";

  std::ostringstream os;
  prof.write_folded(os);
  EXPECT_NE(os.str().find("m3dfl_prof_test_burn"), std::string::npos);
  EXPECT_NE(os.str().find(' '), std::string::npos);  // "stack count" shape

  // Chrome sections for trace merging are well-formed non-empty JSON
  // fragments once samples exist.
  const std::string chrome = prof.chrome_sample_sections();
  EXPECT_NE(chrome.find("\"stackFrames\""), std::string::npos);
  EXPECT_NE(chrome.find("\"samples\""), std::string::npos);
}

TEST(Profiler, SecondStartWhileRunningFails) {
  auto& prof = CpuProfiler::instance();
  std::string error;
  ASSERT_TRUE(prof.start(ProfilerOptions{}, &error)) << error;
  std::string error2;
  EXPECT_FALSE(prof.start(ProfilerOptions{}, &error2));
  EXPECT_FALSE(error2.empty());
  prof.stop();
}

TEST(Profiler, RegisteredWorkerThreadIsSampled) {
  auto& prof = CpuProfiler::instance();
  std::string error;
  ASSERT_TRUE(prof.start(ProfilerOptions{.sample_hz = 997}, &error)) << error;
  std::atomic<bool> go{false};
  std::thread worker([&go] {
    m3dfl::obs::prof::ProfiledThread reg;
    while (!go.load(std::memory_order_acquire)) {
    }
    m3dfl_prof_test_burn(0.4);
  });
  go.store(true, std::memory_order_release);
  worker.join();
  prof.stop();
  std::ostringstream os;
  prof.write_folded(os);
  EXPECT_NE(os.str().find("m3dfl_prof_test_burn"), std::string::npos)
      << "worker-thread samples missing:\n"
      << os.str();
}

TEST(Counters, ForcedFallbackLandsOnRusage) {
  const auto av = m3dfl::obs::prof::probe_counters(/*force_no_perf_event=*/
                                                  true);
  EXPECT_EQ(av.mode, m3dfl::obs::prof::CounterMode::kRusage);
  EXPECT_FALSE(av.detail.empty());
  EXPECT_STREQ(m3dfl::obs::prof::counter_mode_name(av.mode), "rusage");
}

TEST(Counters, AvailabilityProbeNeverCrashesAndHasDetail) {
  // Whatever rung this machine lands on, the probe must answer with a
  // mode no worse than rusage and say why.
  const auto& av = m3dfl::obs::prof::counter_availability();
  EXPECT_NE(av.mode, m3dfl::obs::prof::CounterMode::kUnavailable);
  EXPECT_FALSE(av.detail.empty());
}

TEST(Counters, ThreadReadIsMonotonicInCpuSeconds) {
  CounterValues a, b;
  ASSERT_TRUE(m3dfl::obs::prof::read_thread_counters(&a));
  m3dfl_prof_test_burn(0.1);
  ASSERT_TRUE(m3dfl::obs::prof::read_thread_counters(&b));
  EXPECT_GE(b.cpu_seconds, a.cpu_seconds);
  // 0.1 s of wall-clock spinning yields much less CPU time under parallel
  // ctest on a shared core; 1 ms is a safe floor at any contention level.
  EXPECT_GT(b.cpu_seconds - a.cpu_seconds, 0.001);
  if (a.hw_valid && b.hw_valid) {
    EXPECT_GE(b.cycles, a.cycles);
    EXPECT_GE(b.instructions, a.instructions);
  }
}

TEST(Counters, ScopeAggregatesAndSerializes) {
  auto& reg = CounterRegistry::instance();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();
  {
    M3DFL_OBS_COUNTERS(ctrs, "test.burn");
    m3dfl_prof_test_burn(0.05);
  }
  {
    M3DFL_OBS_COUNTERS(ctrs, "test.burn");
    m3dfl_prof_test_burn(0.05);
  }
  bool found = false;
  for (const auto& [name, totals] : reg.snapshot()) {
    if (name != "test.burn") continue;
    found = true;
    EXPECT_EQ(totals.count, 2u);
    // Wall-clock burns can yield far less CPU time when parallel ctest
    // shares the core; only positivity is load-independent.
    EXPECT_GT(totals.cpu_seconds, 0.0);
  }
  EXPECT_TRUE(found);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test.burn\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"cpu_seconds\""), std::string::npos);
  reg.set_enabled(was_enabled);
}

TEST(Counters, DisabledScopeRecordsNothing) {
  auto& reg = CounterRegistry::instance();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);
  reg.reset();
  {
    M3DFL_OBS_COUNTERS(ctrs, "test.disabled");
    m3dfl_prof_test_burn(0.02);
  }
  for (const auto& [name, totals] : reg.snapshot()) {
    if (name == "test.disabled") {
      EXPECT_EQ(totals.count, 0u);
    }
  }
  reg.set_enabled(was_enabled);
}

}  // namespace

#else  // !M3DFL_OBS_ENABLED

TEST(Profiler, CompiledOut) {
  GTEST_SKIP() << "profiler compiled out under -DM3DFL_OBS=OFF";
}

#endif  // M3DFL_OBS_ENABLED
