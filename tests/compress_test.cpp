// Tests of the XOR spatial response compactor and the EDT-style LFSR
// stimulus decompressor.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "compress/compactor.h"
#include "compress/lfsr.h"

namespace m3dfl::compress {
namespace {

using atpg::ScanConfig;
using sim::FailureLog;
using sim::Word;

// --- Compactor ------------------------------------------------------------------

TEST(Compactor, SingleErrorIsAlwaysVisible) {
  const ScanConfig cfg = ScanConfig::make(40, 8, 4);  // 2 channels.
  const ResponseCompactor compactor(cfg);
  const std::size_t W = 1;
  for (std::uint32_t o = 0; o < 40; ++o) {
    std::vector<Word> diff(40 * W, 0);
    diff[o * W] = 0b1;  // Output o fails on pattern 0.
    const FailureLog log = compactor.failure_log_from_diff(diff, W, 10);
    ASSERT_EQ(log.cfails.size(), 1u);
    EXPECT_EQ(log.cfails[0].pattern, 0u);
    EXPECT_EQ(log.cfails[0].channel, cfg.channel_of(o));
    EXPECT_EQ(log.cfails[0].cycle, cfg.position_of(o));
  }
}

TEST(Compactor, EvenParityAliases) {
  const ScanConfig cfg = ScanConfig::make(40, 8, 4);
  const ResponseCompactor compactor(cfg);
  // Find two outputs mapping to the same (channel, cycle).
  const auto cellmates = cfg.outputs_of(0, 0);
  ASSERT_GE(cellmates.size(), 2u);
  std::vector<Word> diff(40, 0);
  diff[cellmates[0]] = 0b1;
  diff[cellmates[1]] = 0b1;
  const FailureLog log = compactor.failure_log_from_diff(diff, 1, 10);
  EXPECT_TRUE(log.cfails.empty()) << "even error parity must cancel (alias)";
}

TEST(Compactor, OddParityVisible) {
  const ScanConfig cfg = ScanConfig::make(60, 12, 4);  // 3 channels.
  const ResponseCompactor compactor(cfg);
  const auto cellmates = cfg.outputs_of(1, 0);
  ASSERT_GE(cellmates.size(), 3u);
  std::vector<Word> diff(60, 0);
  diff[cellmates[0]] = 0b1;
  diff[cellmates[1]] = 0b1;
  diff[cellmates[2]] = 0b1;
  const FailureLog log = compactor.failure_log_from_diff(diff, 1, 10);
  ASSERT_EQ(log.cfails.size(), 1u);
  EXPECT_EQ(log.cfails[0].channel, 1u);
}

TEST(Compactor, CompactLogMatchesCompactDiff) {
  const ScanConfig cfg = ScanConfig::make(30, 6, 3);
  const ResponseCompactor compactor(cfg);
  Rng rng(5);
  const std::size_t W = 2;
  std::vector<Word> diff(30 * W);
  for (auto& w : diff) w = rng.next() & rng.next() & rng.next();  // Sparse.
  const std::size_t num_patterns = 100;
  // Mask the tail.
  for (std::size_t o = 0; o < 30; ++o) {
    diff[o * W + 1] &= (Word{1} << (num_patterns - 64)) - 1;
  }
  const FailureLog direct =
      compactor.failure_log_from_diff(diff, W, num_patterns);
  const FailureLog via_log = compactor.compact_log(
      sim::failure_log_from_diff(diff, 30, num_patterns));
  ASSERT_EQ(direct.cfails.size(), via_log.cfails.size());
  for (std::size_t i = 0; i < direct.cfails.size(); ++i) {
    EXPECT_EQ(direct.cfails[i], via_log.cfails[i]);
  }
}

TEST(Compactor, AmbiguitySetBoundedByRatio) {
  const ScanConfig cfg = ScanConfig::make(200, 40, 20);  // 2 channels.
  for (std::uint32_t ch = 0; ch < cfg.num_channels; ++ch) {
    for (std::uint32_t cyc = 0; cyc < cfg.chain_length; ++cyc) {
      EXPECT_LE(cfg.outputs_of(ch, cyc).size(), 20u);
    }
  }
}

// --- LFSR -----------------------------------------------------------------------

TEST(Lfsr, PrimitivePolynomialHasFullPeriod) {
  // x^16 + x^14 + x^13 + x^11 + 1 (a known primitive polynomial).
  const std::uint64_t taps =
      (1ULL << 16) | (1ULL << 14) | (1ULL << 13) | (1ULL << 11) | 1ULL;
  EXPECT_EQ(Lfsr::period(taps), (1ULL << 16) - 1);
}

TEST(Lfsr, NonPrimitiveHasShorterPeriod) {
  // x^4 + x^2 + 1 is not primitive.
  const std::uint64_t taps = (1ULL << 4) | (1ULL << 2) | 1ULL;
  EXPECT_LT(Lfsr::period(taps), (1ULL << 4) - 1);
}

TEST(Lfsr, ZeroSeedRemapped) {
  Lfsr l((1ULL << 4) | (1ULL << 3) | 1ULL, 0);
  EXPECT_NE(l.state(), 0u);
}

TEST(Lfsr, SequenceDeterministic) {
  const std::uint64_t taps = (1ULL << 8) | (1ULL << 6) | (1ULL << 5) |
                             (1ULL << 4) | 1ULL;
  Lfsr a(taps, 7), b(taps, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.step(), b.step());
}

// --- EDT decompressor -------------------------------------------------------------

TEST(EdtDecompressor, ExpandsChannelsToChains) {
  EdtDecompressor edt(40, 2);
  const auto bits = edt.expand_cycle({true, false});
  EXPECT_EQ(bits.size(), 40u);
}

TEST(EdtDecompressor, InjectionChangesOutput) {
  EdtDecompressor a(16, 2), b(16, 2);
  a.reset(1);
  b.reset(1);
  const auto xa = a.expand_cycle({false, false});
  const auto xb = b.expand_cycle({true, false});
  EXPECT_NE(xa, xb) << "channel data must influence the expansion";
}

TEST(EdtDecompressor, ResetRestoresSequence) {
  EdtDecompressor edt(8, 1);
  edt.reset(3);
  std::vector<std::vector<bool>> first;
  for (int i = 0; i < 5; ++i) first.push_back(edt.expand_cycle({i % 2 == 0}));
  edt.reset(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(edt.expand_cycle({i % 2 == 0}), first[i]);
  }
}

}  // namespace
}  // namespace m3dfl::compress
