// Tests of tier partitioning and MIV insertion.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "m3d/miv.h"
#include "m3d/partition.h"
#include "netlist/generators.h"
#include "sim/logic_sim.h"

namespace m3dfl::part {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::GeneratorParams;
using netlist::Tier;

Netlist make_benchmark(std::uint64_t seed, std::uint32_t gates = 400) {
  GeneratorParams p;
  p.num_logic_gates = gates;
  p.num_scan_cells = 32;
  p.num_levels = 9;
  p.seed = seed;
  return netlist::generate_netlist(p);
}

struct AlgoCase {
  PartitionAlgo algo;
  std::uint64_t seed;
};

class PartitionProperty : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(PartitionProperty, BalancedAndConsistent) {
  const Netlist nl = make_benchmark(GetParam().seed);
  PartitionOptions opts;
  opts.algo = GetParam().algo;
  opts.seed = GetParam().seed;
  const PartitionResult r = partition_netlist(nl, opts);
  ASSERT_EQ(r.tier_of_gate.size(), nl.num_gates());
  // Balance: both tiers populated, top share within a generous band.
  EXPECT_GT(r.top_fraction, 0.30);
  EXPECT_LT(r.top_fraction, 0.70);
  EXPECT_GT(r.cut_nets, 0u);
  EXPECT_GE(r.cut_connections, r.cut_nets);
}

TEST_P(PartitionProperty, CutStatsMatchManualCount) {
  const Netlist nl = make_benchmark(GetParam().seed + 7);
  PartitionOptions opts;
  opts.algo = GetParam().algo;
  opts.seed = GetParam().seed;
  const PartitionResult r = partition_netlist(nl, opts);
  std::size_t conns = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (GateId d : nl.gate(g).fanin) {
      if (r.tier_of_gate[d] != r.tier_of_gate[g]) ++conns;
    }
  }
  EXPECT_EQ(conns, r.cut_connections);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, PartitionProperty,
    ::testing::Values(AlgoCase{PartitionAlgo::kMinCut, 1},
                      AlgoCase{PartitionAlgo::kGreedyGain, 2},
                      AlgoCase{PartitionAlgo::kLevelDriven, 3},
                      AlgoCase{PartitionAlgo::kRandom, 4},
                      AlgoCase{PartitionAlgo::kMinCut, 5},
                      AlgoCase{PartitionAlgo::kRandom, 6}));

TEST(Partition, MinCutBeatsRandomCut) {
  const Netlist nl = make_benchmark(11, 600);
  PartitionOptions opts;
  opts.seed = 11;
  opts.algo = PartitionAlgo::kMinCut;
  const auto mincut = partition_netlist(nl, opts);
  opts.algo = PartitionAlgo::kRandom;
  const auto random = partition_netlist(nl, opts);
  EXPECT_LT(mincut.cut_connections, random.cut_connections);
}

TEST(Partition, PlacementSeedGivesSpatiallyCoherentCut) {
  const Netlist nl = make_benchmark(12, 600);
  PartitionOptions opts;
  opts.algo = PartitionAlgo::kMinCut;
  opts.seed = 12;
  const auto r = partition_netlist(nl, opts);
  // Gates near the left edge should be dominantly one tier, near the right
  // edge dominantly the other.
  std::size_t left_top = 0, left_n = 0, right_top = 0, right_n = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const float x = nl.gate(g).pos;
    if (x < 0.25f) {
      ++left_n;
      left_top += r.tier_of_gate[g] == Tier::kTop;
    } else if (x > 0.75f) {
      ++right_n;
      right_top += r.tier_of_gate[g] == Tier::kTop;
    }
  }
  const double left_frac = static_cast<double>(left_top) / left_n;
  const double right_frac = static_cast<double>(right_top) / right_n;
  EXPECT_GT(std::abs(left_frac - right_frac), 0.8);
}

TEST(Partition, DeterministicUnderSeed) {
  const Netlist nl = make_benchmark(13);
  PartitionOptions opts;
  opts.algo = PartitionAlgo::kMinCut;
  opts.seed = 99;
  const auto a = partition_netlist(nl, opts);
  const auto b = partition_netlist(nl, opts);
  EXPECT_EQ(a.tier_of_gate, b.tier_of_gate);
}

// --- MIV insertion -------------------------------------------------------------

class MivProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MivProperty, OneMivPerCutNet) {
  const Netlist nl = make_benchmark(GetParam());
  PartitionOptions opts;
  opts.algo = PartitionAlgo::kMinCut;
  opts.seed = GetParam();
  const PartitionResult part = partition_netlist(nl, opts);
  const MivInsertionResult r = insert_mivs(nl, part);
  EXPECT_EQ(r.num_mivs, part.cut_nets);
  EXPECT_EQ(r.netlist.num_mivs(), part.cut_nets);
  EXPECT_TRUE(r.netlist.validate().empty());
}

TEST_P(MivProperty, EveryConnectionIsTierLegal) {
  const Netlist nl = make_benchmark(GetParam() + 50);
  PartitionOptions opts;
  opts.seed = GetParam();
  const PartitionResult part = partition_netlist(nl, opts);
  const MivInsertionResult r = insert_mivs(nl, part);
  const Netlist& m3d = r.netlist;
  // After insertion, a non-MIV gate may only read same-tier signals; only
  // MIV gates cross tiers.
  for (GateId g = 0; g < m3d.num_gates(); ++g) {
    const auto& gate = m3d.gate(g);
    for (GateId d : gate.fanin) {
      if (gate.type == GateType::kMiv) continue;
      EXPECT_EQ(m3d.gate(d).tier, gate.tier)
          << "non-MIV gate " << g << " reads across tiers";
    }
  }
}

TEST_P(MivProperty, PreservesFunction) {
  const Netlist nl = make_benchmark(GetParam() + 99, 250);
  PartitionOptions opts;
  opts.seed = GetParam();
  const PartitionResult part = partition_netlist(nl, opts);
  const MivInsertionResult r = insert_mivs(nl, part);
  // MIVs are buffers: outputs must compute identical functions.
  Rng rng(GetParam());
  const sim::PatternSet inputs =
      sim::PatternSet::random(nl.num_inputs(), 128, rng);
  const auto va = sim::LogicSimulator(nl).run(inputs);
  const auto vb = sim::LogicSimulator(r.netlist).run(inputs);
  const std::size_t W = inputs.num_words();
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    for (std::size_t w = 0; w < W; ++w) {
      const sim::Word mask = inputs.valid_mask(w);
      EXPECT_EQ(va[nl.outputs()[o] * W + w] & mask,
                vb[r.netlist.outputs()[o] * W + w] & mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MivProperty, ::testing::Values(1, 2, 3, 42));

TEST(Miv, NoMivsWhenSingleTier) {
  const Netlist nl = make_benchmark(7, 150);
  PartitionResult part;
  part.tier_of_gate.assign(nl.num_gates(), Tier::kBottom);
  update_cut_stats(nl, part);
  EXPECT_EQ(part.cut_nets, 0u);
  const MivInsertionResult r = insert_mivs(nl, part);
  EXPECT_EQ(r.num_mivs, 0u);
  EXPECT_EQ(r.netlist.num_gates(), nl.num_gates());
}

}  // namespace
}  // namespace m3dfl::part
