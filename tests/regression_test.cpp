// Regression and edge-case tests for behaviours added during development:
// PODEM untestability proofs, placement propagation through transforms,
// constant-free generation, ranking semantics of diagnosis reports, the
// policy's reordering floor, and trainer early stopping.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "atpg/patterns.h"
#include "atpg/podem.h"
#include "common/rng.h"
#include "diagnosis/diagnoser.h"
#include "eval/experiments.h"
#include "gnn/trainer.h"
#include "netlist/generators.h"
#include "netlist/transforms.h"
#include "sim/logic_sim.h"

namespace m3dfl {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::GeneratorParams;
using netlist::Netlist;

// --- Generator: constants and placement ----------------------------------------

class GeneratorHygiene : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorHygiene, NoConstantNets) {
  GeneratorParams p;
  p.num_logic_gates = 400;
  p.num_scan_cells = 24;
  p.buffer_chain_len = 4;
  p.seed = GetParam();
  const Netlist nl = netlist::generate_netlist(p);
  Rng rng(GetParam() + 1);
  const sim::PatternSet ps =
      sim::PatternSet::random(nl.num_inputs(), 256, rng);
  const auto vals = sim::LogicSimulator(nl).run(ps);
  const std::size_t W = ps.num_words();
  std::size_t constants = 0;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    bool all0 = true, all1 = true;
    for (std::size_t w = 0; w < W; ++w) {
      const sim::Word m = ps.valid_mask(w);
      if ((vals[g * W + w] & m) != 0) all0 = false;
      if ((vals[g * W + w] & m) != m) all1 = false;
    }
    constants += all0 || all1;
  }
  // The signature veto rejects true constants at generation time; what
  // remains are rare low-activity nets that merely LOOK constant under a
  // finite random sample (P(toggle) << 1/256). Bound their share.
  EXPECT_LE(constants, nl.num_gates() / 50)
      << constants << " constant-looking nets of " << nl.num_gates();
}

TEST_P(GeneratorHygiene, NoDuplicateFanins) {
  GeneratorParams p;
  p.num_logic_gates = 300;
  p.num_scan_cells = 20;
  p.seed = GetParam();
  const Netlist nl = netlist::generate_netlist(p);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    auto fanin = nl.gate(g).fanin;
    std::sort(fanin.begin(), fanin.end());
    EXPECT_EQ(std::adjacent_find(fanin.begin(), fanin.end()), fanin.end())
        << "gate " << g << " has duplicate fanins";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorHygiene,
                         ::testing::Values(71, 72, 73));

TEST(Transforms, PlacementSurvivesResynthesisAndTpi) {
  GeneratorParams p;
  p.num_logic_gates = 200;
  p.num_scan_cells = 16;
  p.seed = 81;
  const Netlist base = netlist::generate_netlist(p);
  const Netlist re = netlist::resynthesize(base, 82);
  const Netlist tpi = netlist::insert_test_points(base, 0.02, 83);
  // Inputs keep their exact coordinates (same order in both).
  for (std::size_t i = 0; i < base.num_inputs(); ++i) {
    EXPECT_FLOAT_EQ(re.gate(re.inputs()[i]).pos,
                    base.gate(base.inputs()[i]).pos);
    EXPECT_FLOAT_EQ(tpi.gate(tpi.inputs()[i]).pos,
                    base.gate(base.inputs()[i]).pos);
  }
  // All placements remain normalized.
  for (GateId g = 0; g < re.num_gates(); ++g) {
    EXPECT_GE(re.gate(g).pos, 0.0f);
    EXPECT_LE(re.gate(g).pos, 1.0f);
  }
}

// --- PODEM: untestability proofs -------------------------------------------------

TEST(Podem, ProvesRedundantFaultUntestable) {
  // OR(a, INV(a)) == 1: a slow-to-rise on the OR output can never be
  // observed because the good machine never produces the 0 needed at V1...
  // actually the transition 0->1 needs V1 = 0, which is unsatisfiable.
  Netlist nl;
  const GateId a = nl.add_input();
  const GateId inv = nl.add_gate(GateType::kInv, {a});
  const GateId orr = nl.add_gate(GateType::kOr, {a, inv});
  const GateId buf = nl.add_gate(GateType::kBuf, {orr});
  nl.add_output(buf);
  nl.set_num_scan_cells(1);
  const netlist::SiteTable sites(nl);
  atpg::Podem podem(nl, sites);
  const auto r = podem.generate(
      {sites.stem_of(orr), sim::FaultPolarity::kSlowToRise});
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.untestable) << "constant-1 net cannot launch a rising edge";
}

TEST(Podem, FrameReuseIsStateless) {
  // Repeated generate() calls on one Podem instance (which reuses its
  // internal frames) must match fresh instances.
  GeneratorParams p;
  p.num_logic_gates = 150;
  p.num_scan_cells = 12;
  p.seed = 91;
  const Netlist nl = netlist::generate_netlist(p);
  const netlist::SiteTable sites(nl);
  atpg::Podem reused(nl, sites);
  for (netlist::SiteId s = 3; s < sites.size(); s += 97) {
    atpg::Podem fresh(nl, sites);
    const auto a = reused.generate({s, sim::FaultPolarity::kSlowToFall});
    const auto b = fresh.generate({s, sim::FaultPolarity::kSlowToFall});
    EXPECT_EQ(a.success, b.success) << "site " << s;
    if (a.success) {
      EXPECT_EQ(a.v1_inputs, b.v1_inputs);
      EXPECT_EQ(a.v2_inputs, b.v2_inputs);
    }
  }
}

// --- Diagnosis ranking semantics -------------------------------------------------

TEST(Diagnoser, TopTieGroupContainsPerfectMatch) {
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  diag::Diagnoser diagnoser = d.make_diagnoser();
  eval::DatagenOptions o;
  o.num_samples = 10;
  o.seed = 92;
  const eval::Dataset ds = eval::generate_dataset(d, o);
  for (const eval::Sample& s : ds.samples) {
    const diag::DiagnosisReport r = diagnoser.diagnose(s.log);
    ASSERT_FALSE(r.candidates.empty());
    // The first candidate explains at least as many failures as any other,
    // and some candidate in its tie group is a perfect match.
    const auto top_matched = r.candidates.front().matched;
    bool perfect_in_top_group = false;
    for (const diag::Candidate& c : r.candidates) {
      if (c.matched != top_matched) break;
      perfect_in_top_group |= c.score == 1.0;
    }
    EXPECT_TRUE(perfect_in_top_group);
  }
}

// --- Trainer early stopping -------------------------------------------------------

TEST(Trainer, EarlyStoppingHaltsBeforeEpochBudget) {
  Rng rng(93);
  // Trivial task: loss collapses immediately, so patience triggers.
  std::vector<graphx::SubGraph> graphs;
  std::vector<gnn::LabeledGraph> data;
  for (int i = 0; i < 16; ++i) {
    graphx::SubGraph g;
    g.nodes = {0, 1};
    g.row_ptr = {0, 1, 2};
    g.col_idx = {1, 0};
    g.features.assign(2 * graphx::kNumSubgraphFeatures,
                      i % 2 ? 1.0f : 0.0f);
    graphs.push_back(std::move(g));
  }
  for (int i = 0; i < 16; ++i) data.push_back({&graphs[i], i % 2});
  gnn::GraphClassifier model(graphx::kNumSubgraphFeatures, {8}, 2, 94);
  gnn::TrainOptions opts;
  opts.epochs = 200;
  opts.lr = 1e-2;
  // The plateau criterion: stop once 3 consecutive epochs improve the best
  // loss by less than 0.02 — reached long before the epoch budget here.
  opts.min_improvement = 0.02;
  opts.patience = 3;
  const gnn::TrainStats stats = gnn::train_graph_classifier(model, data, opts);
  EXPECT_LT(stats.epochs_run, 200);
  EXPECT_GT(gnn::classifier_accuracy(model, data), 0.9);
}

// --- Policy timing and backup dictionary -------------------------------------------

TEST(Policy, MeasuresUpdateTime) {
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  const eval::RunScale scale = eval::RunScale::tiny();
  const eval::TrainingBundle bundle =
      eval::build_training_bundle(eval::tiny_spec(), false, scale);
  const eval::TrainedFramework fw = eval::train_framework(bundle, scale);

  diag::Diagnoser diagnoser = d.make_diagnoser();
  eval::DatagenOptions o;
  o.num_samples = 3;
  o.seed = 95;
  const eval::Dataset ds = eval::generate_dataset(d, o);
  for (const eval::Sample& s : ds.samples) {
    const auto report = diagnoser.diagnose(s.log);
    const auto outcome =
        core::apply_policy(report, s.sub, fw.models(), fw.policy);
    EXPECT_GE(outcome.seconds, 0.0);
    EXPECT_LT(outcome.seconds, 1.0);  // The update step must be cheap.
    // Backup dictionary restores full ATPG accuracy: union of final +
    // backup contains everything the ATPG report contained.
    for (const diag::Candidate& c : report.candidates) {
      const bool in_final =
          std::any_of(outcome.report.candidates.begin(),
                      outcome.report.candidates.end(),
                      [&](const diag::Candidate& x) {
                        return x.site == c.site;
                      });
      const bool in_backup = std::any_of(
          outcome.backup.begin(), outcome.backup.end(),
          [&](const diag::Candidate& x) { return x.site == c.site; });
      EXPECT_TRUE(in_final || in_backup);
    }
  }
}

}  // namespace
}  // namespace m3dfl
