// Unit + property tests for the netlist substrate: construction, invariant
// validation, topological structure, fault-site enumeration, generators,
// and the function-preserving transforms.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "netlist/fault_site.h"
#include "netlist/generators.h"
#include "netlist/netlist.h"
#include "netlist/transforms.h"
#include "sim/logic_sim.h"

namespace m3dfl::netlist {
namespace {

Netlist make_small() {
  // c = AND(a, b); d = INV(c); outputs: c (scan 0), d (scan 1).
  Netlist nl;
  const GateId a = nl.add_input();
  const GateId b = nl.add_input();
  const GateId c = nl.add_gate(GateType::kAnd, {a, b});
  const GateId d = nl.add_gate(GateType::kInv, {c});
  nl.add_output(c);
  nl.add_output(d);
  nl.set_num_scan_cells(2);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = make_small();
  EXPECT_EQ(nl.num_gates(), 4u);
  EXPECT_EQ(nl.num_inputs(), 2u);
  EXPECT_EQ(nl.num_outputs(), 2u);
  EXPECT_EQ(nl.num_logic_gates(), 2u);
  EXPECT_EQ(nl.num_scan_cells(), 2u);
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
}

TEST(Netlist, FanoutMirrorsFanin) {
  const Netlist nl = make_small();
  const Gate& a = nl.gate(0);
  ASSERT_EQ(a.fanout.size(), 1u);
  EXPECT_EQ(a.fanout[0], 2u);
  const Gate& c = nl.gate(2);
  ASSERT_EQ(c.fanout.size(), 1u);
  EXPECT_EQ(c.fanout[0], 3u);
}

TEST(Netlist, TopoOrderRespectsEdges) {
  const Netlist nl = make_small();
  const auto& order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.num_gates());
  std::vector<std::size_t> position(nl.num_gates());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (GateId d : nl.gate(g).fanin) {
      EXPECT_LT(position[d], position[g]);
    }
  }
}

TEST(Netlist, LevelsAreOnePlusMaxFanin) {
  const Netlist nl = make_small();
  const auto& lv = nl.levels();
  EXPECT_EQ(lv[0], 0u);
  EXPECT_EQ(lv[1], 0u);
  EXPECT_EQ(lv[2], 1u);
  EXPECT_EQ(lv[3], 2u);
  EXPECT_EQ(nl.depth(), 2u);
}

TEST(Netlist, InputIndexLookup) {
  const Netlist nl = make_small();
  EXPECT_EQ(nl.input_index(0), 0);
  EXPECT_EQ(nl.input_index(1), 1);
  EXPECT_EQ(nl.input_index(2), -1);
}

TEST(Netlist, ValidateCatchesArityViolation) {
  Netlist nl;
  const GateId a = nl.add_input();
  nl.add_gate(GateType::kBuf, {a});
  // Manually corrupt: XOR with one fanin.
  nl.gate(1).type = GateType::kXor;
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, TypeHistogramCountsEveryGate) {
  const Netlist nl = make_small();
  const auto hist = nl.type_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kInput)], 2u);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kAnd)], 1u);
  EXPECT_EQ(hist[static_cast<std::size_t>(GateType::kInv)], 1u);
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, nl.num_gates());
}

// --- SiteTable -------------------------------------------------------------

TEST(SiteTable, EnumeratesEveryPin) {
  const Netlist nl = make_small();
  const SiteTable sites(nl);
  // 4 stems + 2 AND pins + 1 INV pin.
  EXPECT_EQ(sites.size(), 7u);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const SiteId stem = sites.stem_of(g);
    EXPECT_EQ(sites.site(stem).gate, g);
    EXPECT_TRUE(sites.site(stem).is_stem());
    EXPECT_EQ(sites.site(stem).driver, g);
    for (std::size_t k = 0; k < nl.gate(g).fanin.size(); ++k) {
      const SiteId br = sites.branch_of(g, static_cast<int>(k));
      EXPECT_EQ(sites.site(br).gate, g);
      EXPECT_EQ(sites.site(br).pin, static_cast<std::int16_t>(k));
      EXPECT_EQ(sites.site(br).driver, nl.gate(g).fanin[k]);
    }
  }
}

TEST(SiteTable, MivSitesMatchMivGates) {
  Netlist nl;
  const GateId a = nl.add_input();
  const GateId m = nl.add_gate(GateType::kMiv, {a});
  const GateId b = nl.add_gate(GateType::kBuf, {m});
  nl.add_output(b);
  nl.set_num_scan_cells(1);
  const SiteTable sites(nl);
  const auto mivs = sites.miv_sites(nl);
  ASSERT_EQ(mivs.size(), 1u);
  EXPECT_EQ(sites.site(mivs[0]).gate, m);
  EXPECT_TRUE(sites.is_miv_site(mivs[0], nl));
  EXPECT_FALSE(sites.is_miv_site(sites.stem_of(b), nl));
}

TEST(SiteTable, BranchTierIsReceiverTier) {
  Netlist nl;
  const GateId a = nl.add_input();
  const GateId b = nl.add_gate(GateType::kBuf, {a});
  nl.add_output(b);
  nl.set_num_scan_cells(1);
  nl.gate(a).tier = Tier::kBottom;
  nl.gate(b).tier = Tier::kTop;
  const SiteTable sites(nl);
  EXPECT_EQ(sites.tier_of(sites.stem_of(a), nl), Tier::kBottom);
  EXPECT_EQ(sites.tier_of(sites.branch_of(b, 0), nl), Tier::kTop);
}

// --- Generator properties ---------------------------------------------------

struct GenCase {
  std::uint32_t gates;
  std::uint32_t scan_cells;
  std::uint64_t seed;
};

class GeneratorProperty : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorProperty, ProducesValidFullyObservableNetlist) {
  const GenCase c = GetParam();
  GeneratorParams p;
  p.num_logic_gates = c.gates;
  p.num_scan_cells = c.scan_cells;
  p.num_levels = 10;
  p.seed = c.seed;
  const Netlist nl = generate_netlist(p);
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  EXPECT_EQ(nl.num_outputs(), c.scan_cells);
  EXPECT_EQ(nl.num_scan_cells(), c.scan_cells);
  EXPECT_GE(nl.num_logic_gates(), c.gates);

  // Full observability: every gate reaches at least one output.
  std::vector<char> reaches(nl.num_gates(), 0);
  std::vector<GateId> stack;
  for (GateId o : nl.outputs()) {
    if (!reaches[o]) {
      reaches[o] = 1;
      stack.push_back(o);
    }
  }
  while (!stack.empty()) {
    const GateId g = stack.back();
    stack.pop_back();
    for (GateId d : nl.gate(g).fanin) {
      if (!reaches[d]) {
        reaches[d] = 1;
        stack.push_back(d);
      }
    }
  }
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    EXPECT_TRUE(reaches[g]) << "gate " << g << " is unobservable";
  }
}

TEST_P(GeneratorProperty, DeterministicUnderSeed) {
  const GenCase c = GetParam();
  GeneratorParams p;
  p.num_logic_gates = c.gates;
  p.num_scan_cells = c.scan_cells;
  p.seed = c.seed;
  const Netlist a = generate_netlist(p);
  const Netlist b = generate_netlist(p);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (GateId g = 0; g < a.num_gates(); ++g) {
    EXPECT_EQ(a.gate(g).type, b.gate(g).type);
    EXPECT_EQ(a.gate(g).fanin, b.gate(g).fanin);
  }
}

TEST_P(GeneratorProperty, PlacementCoordinatesInUnitInterval) {
  const GenCase c = GetParam();
  GeneratorParams p;
  p.num_logic_gates = c.gates;
  p.num_scan_cells = c.scan_cells;
  p.seed = c.seed;
  const Netlist nl = generate_netlist(p);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    EXPECT_GE(nl.gate(g).pos, 0.0f);
    EXPECT_LE(nl.gate(g).pos, 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GeneratorProperty,
    ::testing::Values(GenCase{100, 12, 1}, GenCase{250, 30, 2},
                      GenCase{500, 48, 3}, GenCase{1000, 96, 4},
                      GenCase{333, 25, 99}));

// --- Transform properties ----------------------------------------------------

/// Simulates both netlists on the same random inputs and compares outputs.
void expect_functionally_equal(const Netlist& a, const Netlist& b,
                               std::uint64_t seed) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  Rng rng(seed);
  const sim::PatternSet inputs =
      sim::PatternSet::random(a.num_inputs(), 192, rng);
  const std::vector<sim::Word> va = sim::LogicSimulator(a).run(inputs);
  const std::vector<sim::Word> vb = sim::LogicSimulator(b).run(inputs);
  const std::size_t W = inputs.num_words();
  for (std::size_t o = 0; o < a.num_outputs(); ++o) {
    for (std::size_t w = 0; w < W; ++w) {
      const sim::Word mask = inputs.valid_mask(w);
      EXPECT_EQ(va[a.outputs()[o] * W + w] & mask,
                vb[b.outputs()[o] * W + w] & mask)
          << "output " << o << " word " << w;
    }
  }
}

class ResynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResynthesisProperty, PreservesFunction) {
  GeneratorParams p;
  p.num_logic_gates = 300;
  p.num_scan_cells = 24;
  p.seed = GetParam();
  const Netlist base = generate_netlist(p);
  const Netlist re = resynthesize(base, GetParam() * 7 + 1);
  EXPECT_TRUE(re.validate().empty());
  EXPECT_NE(re.num_gates(), base.num_gates());  // Structure changed...
  expect_functionally_equal(base, re, GetParam());  // ...function did not.
}

TEST_P(ResynthesisProperty, PreservesScanPairing) {
  GeneratorParams p;
  p.num_logic_gates = 200;
  p.num_scan_cells = 16;
  p.seed = GetParam();
  const Netlist base = generate_netlist(p);
  const Netlist re = resynthesize(base, GetParam());
  EXPECT_EQ(re.num_scan_cells(), base.num_scan_cells());
  EXPECT_EQ(re.num_inputs(), base.num_inputs());
  EXPECT_EQ(re.num_outputs(), base.num_outputs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResynthesisProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(TestPointInsertion, AddsObserveOnlyOutputs) {
  GeneratorParams p;
  p.num_logic_gates = 400;
  p.num_scan_cells = 32;
  p.seed = 5;
  const Netlist base = generate_netlist(p);
  const Netlist tpi = insert_test_points(base, 0.02, 6);
  EXPECT_TRUE(tpi.validate().empty());
  EXPECT_GT(tpi.num_outputs(), base.num_outputs());
  EXPECT_EQ(tpi.num_scan_cells(), base.num_scan_cells());
  // Budget respected: at most 2% of logic gates.
  EXPECT_LE(tpi.num_outputs() - base.num_outputs(),
            static_cast<std::size_t>(0.02 * base.num_logic_gates()) + 1);
  // The original outputs still compute the same functions.
  Rng rng(7);
  const sim::PatternSet inputs =
      sim::PatternSet::random(base.num_inputs(), 128, rng);
  const auto va = sim::LogicSimulator(base).run(inputs);
  const auto vb = sim::LogicSimulator(tpi).run(inputs);
  const std::size_t W = inputs.num_words();
  for (std::size_t o = 0; o < base.num_outputs(); ++o) {
    for (std::size_t w = 0; w < W; ++w) {
      const sim::Word mask = inputs.valid_mask(w);
      EXPECT_EQ(va[base.outputs()[o] * W + w] & mask,
                vb[tpi.outputs()[o] * W + w] & mask);
    }
  }
}

TEST(TestPointInsertion, ZeroBudgetIsIdentityOnOutputs) {
  GeneratorParams p;
  p.num_logic_gates = 150;
  p.num_scan_cells = 12;
  p.seed = 9;
  const Netlist base = generate_netlist(p);
  const Netlist tpi = insert_test_points(base, 0.0, 10);
  EXPECT_EQ(tpi.num_outputs(), base.num_outputs());
}

}  // namespace
}  // namespace m3dfl::netlist
