// Tests of the bit-parallel fault-simulation backend: arena invariants,
// SIMD-tier dispatch, golden equivalence against the event-driven engine
// (all five polarities, stem/branch sites, multi-fault machines, partial
// tail words, batch-size boundaries), and campaign-level parity of the
// dictionary build and dataset generation under --sim-backend=bitpar.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "diagnosis/dictionary.h"
#include "eval/benchmarks.h"
#include "eval/datagen.h"
#include "netlist/generators.h"
#include "sim/backend.h"
#include "sim/bitpar/arena.h"
#include "sim/bitpar/bitpar_sim.h"
#include "sim/bitpar/dispatch.h"
#include "sim/failure_log.h"
#include "sim/fault_sim.h"
#include "sim/logic_sim.h"

namespace m3dfl::sim {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;
using netlist::SiteTable;
using bitpar::BitParallelSimulator;
using bitpar::NetlistArena;
using bitpar::SimdTier;

constexpr FaultPolarity kPolarityCycle[] = {
    FaultPolarity::kSlowToRise, FaultPolarity::kSlowToFall,
    FaultPolarity::kSlow, FaultPolarity::kStuckAt0, FaultPolarity::kStuckAt1};

/// Generated netlist + bound event simulator + bound bit-parallel
/// simulator over the same pattern set (same recipe as sim_test's
/// FaultSimFixture, so the two suites exercise comparable designs).
struct BitParFixture {
  Netlist nl;
  SiteTable sites;
  FaultSimulator fsim;
  NetlistArena arena;
  BitParallelSimulator bp;
  PatternSet v1, v2;

  explicit BitParFixture(std::uint64_t seed, std::size_t patterns = 96,
                         SimdTier tier = bitpar::resolve_tier())
      : nl(make(seed)),
        sites(nl),
        fsim(nl, sites),
        arena(nl, sites),
        bp(arena, sites, tier) {
    Rng rng(seed + 100);
    v1 = PatternSet::random(nl.num_inputs(), patterns, rng);
    v2 = PatternSet::random(nl.num_inputs(), patterns, rng);
    fsim.bind(v1, v2);
    bp.bind(fsim.good());
  }

  static Netlist make(std::uint64_t seed) {
    netlist::GeneratorParams p;
    p.num_logic_gates = 160;
    p.num_scan_cells = 16;
    p.num_levels = 7;
    p.seed = seed;
    return generate_netlist(p);
  }
};

// --- Arena -------------------------------------------------------------------

TEST(NetlistArena, RenumberingRoundTripsAndIsTopological) {
  const Netlist nl = BitParFixture::make(11);
  const SiteTable sites(nl);
  const NetlistArena arena(nl, sites);

  ASSERT_EQ(arena.num_gates(), nl.num_gates());
  ASSERT_EQ(arena.num_outputs(), nl.num_outputs());
  for (std::uint32_t u = 0; u < arena.num_gates(); ++u) {
    EXPECT_EQ(arena.arena_of(arena.orig_of(u)), u);
    EXPECT_EQ(arena.type(u), nl.gate(arena.orig_of(u)).type);
    // Ascending arena id is a valid evaluation order.
    for (std::uint32_t f : arena.fanin(u)) ASSERT_LT(f, u);
    // Fanin lists preserve pin order.
    const auto& orig = nl.gate(arena.orig_of(u));
    ASSERT_EQ(arena.fanin(u).size(), orig.fanin.size());
    for (std::size_t k = 0; k < orig.fanin.size(); ++k) {
      EXPECT_EQ(arena.orig_of(arena.fanin(u)[k]), orig.fanin[k]);
    }
  }
}

TEST(NetlistArena, LevelsPartitionTheGateRange) {
  const Netlist nl = BitParFixture::make(12);
  const SiteTable sites(nl);
  const NetlistArena arena(nl, sites);
  std::uint32_t covered = 0;
  for (std::uint32_t l = 0; l < arena.num_levels(); ++l) {
    ASSERT_EQ(arena.level_begin(l), covered);
    ASSERT_LE(arena.level_begin(l), arena.level_end(l));
    for (std::uint32_t u = arena.level_begin(l); u < arena.level_end(l);
         ++u) {
      EXPECT_EQ(arena.level(u), l);
    }
    covered = arena.level_end(l);
  }
  EXPECT_EQ(covered, arena.num_gates());
}

TEST(NetlistArena, SitesAndOutputsAreRebased) {
  const Netlist nl = BitParFixture::make(13);
  const SiteTable sites(nl);
  const NetlistArena arena(nl, sites);
  ASSERT_EQ(arena.num_sites(), sites.size());
  for (netlist::SiteId s = 0; s < sites.size(); ++s) {
    const auto& orig = sites.site(s);
    const auto& ref = arena.site(s);
    EXPECT_EQ(arena.orig_of(ref.gate), orig.gate);
    EXPECT_EQ(arena.orig_of(ref.driver), orig.driver);
    EXPECT_EQ(ref.pin, orig.pin);
    EXPECT_EQ(ref.is_stem(), orig.is_stem());
  }
  // Every observed gate carries its observation-point indices, and every
  // output gate is trivially observable.
  std::size_t taps = 0;
  for (std::uint32_t u = 0; u < arena.num_gates(); ++u) {
    for (std::uint32_t o : arena.outputs_of(u)) {
      EXPECT_EQ(arena.arena_of(nl.outputs()[o]), u);
      EXPECT_TRUE(arena.observable(u));
      ++taps;
    }
  }
  EXPECT_EQ(taps, nl.num_outputs());
}

// --- Dispatch ----------------------------------------------------------------

TEST(Dispatch, TierNamesRoundTrip) {
  for (SimdTier t :
       {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
    const auto parsed = bitpar::parse_tier(bitpar::tier_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(bitpar::parse_tier("avx512").has_value());
  EXPECT_FALSE(bitpar::parse_tier("").has_value());
}

TEST(Dispatch, ScalarIsAlwaysAvailableAndBestIsAvailable) {
  EXPECT_TRUE(bitpar::tier_available(SimdTier::kScalar));
  EXPECT_TRUE(bitpar::tier_available(bitpar::best_tier()));
}

TEST(Dispatch, ForceOverridesEnvAndFallsBackWhenUnavailable) {
  bitpar::force_tier(SimdTier::kScalar);
  EXPECT_EQ(bitpar::resolve_tier(), SimdTier::kScalar);
  bitpar::force_tier(std::nullopt);

  setenv("M3DFL_SIMD", "scalar", 1);
  EXPECT_EQ(bitpar::resolve_tier(), SimdTier::kScalar);
  // The forced tier wins over the environment.
  bitpar::force_tier(bitpar::best_tier());
  EXPECT_EQ(bitpar::resolve_tier(), bitpar::best_tier());
  bitpar::force_tier(std::nullopt);
  // Unknown env values fall back to the best tier (with a notice).
  setenv("M3DFL_SIMD", "quantum", 1);
  EXPECT_EQ(bitpar::resolve_tier(), bitpar::best_tier());
  unsetenv("M3DFL_SIMD");
}

TEST(Dispatch, BackendNamesParse) {
  EXPECT_EQ(parse_backend("event"), SimBackend::kEvent);
  EXPECT_EQ(parse_backend("bitpar"), SimBackend::kBitParallel);
  EXPECT_EQ(parse_backend("bit-parallel"), SimBackend::kBitParallel);
  EXPECT_FALSE(parse_backend("gpu").has_value());
  EXPECT_STREQ(backend_name(SimBackend::kEvent), "event");
  EXPECT_STREQ(backend_name(SimBackend::kBitParallel), "bitpar");
}

// --- Golden equivalence vs the event-driven engine ---------------------------

/// Compares every lane of `res` against an event-engine observed_diff of
/// the same machine: detection flag, dense diff, sorted keys, and the
/// uncompacted failure log.
void expect_lanes_match_event(
    BitParFixture& fx, std::span<const std::vector<InjectedFault>> machines,
    const BitParallelSimulator::BatchResult& res, const char* what) {
  const std::size_t W = fx.fsim.num_words();
  std::vector<Word> ev_diff, bp_diff;
  std::vector<std::uint64_t> keys;
  for (std::size_t j = 0; j < machines.size(); ++j) {
    const bool ev_detected = fx.fsim.observed_diff(machines[j], ev_diff);
    ASSERT_EQ(res.detected_lane(j), ev_detected)
        << what << " lane " << j;
    ASSERT_EQ(res.diff_of(j, bp_diff), ev_detected) << what << " lane " << j;
    ASSERT_EQ(bp_diff, ev_diff) << what << " lane " << j;

    // keys_of must equal the sorted (output << 32 | pattern) bits of the
    // event diff — the dictionary signature contract.
    res.keys_of(j, keys);
    std::vector<std::uint64_t> ev_keys;
    for (std::size_t o = 0; o < fx.nl.num_outputs(); ++o) {
      for (std::size_t w = 0; w < W; ++w) {
        for (Word m = ev_diff[o * W + w]; m; m &= m - 1) {
          const std::size_t p =
              w * kWordBits +
              static_cast<std::size_t>(std::countr_zero(m));
          if (p < fx.fsim.num_patterns()) {
            ev_keys.push_back((static_cast<std::uint64_t>(o) << 32) | p);
          }
        }
      }
    }
    std::sort(ev_keys.begin(), ev_keys.end());
    ASSERT_EQ(keys, ev_keys) << what << " lane " << j;

    const FailureLog ev_log = failure_log_from_diff(
        ev_diff, fx.nl.num_outputs(), fx.fsim.num_patterns());
    const FailureLog bp_log = res.failure_log_of(j);
    ASSERT_EQ(bp_log.compacted, ev_log.compacted);
    ASSERT_EQ(bp_log.fails, ev_log.fails) << what << " lane " << j;
  }
}

/// Seed x pattern-count sweep; counts cover a single pattern, both sides
/// of every word boundary, interior partial tails, and full words.
class BitParGolden
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(BitParGolden, EverySiteEveryPolarityMatchesEventEngine) {
  const auto [seed, patterns] = GetParam();
  BitParFixture fx(seed, patterns);

  // All (site, polarity) jobs, packed kMaxLanes per batch — stem and
  // branch sites, every polarity, including never-activated faults.
  std::vector<InjectedFault> jobs;
  for (netlist::SiteId s = 0; s < fx.sites.size(); ++s) {
    for (FaultPolarity pol : kPolarityCycle) jobs.push_back({s, pol});
  }
  BitParallelSimulator::Workspace ws;
  BitParallelSimulator::BatchResult res;
  std::vector<std::vector<InjectedFault>> machines;
  for (std::size_t base = 0; base < jobs.size();
       base += bitpar::kMaxLanes) {
    const std::size_t count =
        std::min(bitpar::kMaxLanes, jobs.size() - base);
    fx.bp.run(std::span<const InjectedFault>(jobs).subspan(base, count), ws,
              res);
    machines.clear();
    for (std::size_t j = 0; j < count; ++j) {
      machines.push_back({jobs[base + j]});
    }
    expect_lanes_match_event(fx, machines, res, "single-fault");
  }
  EXPECT_GT(ws.stats.faults, 0u);
}

TEST_P(BitParGolden, MultiFaultMachinesMatchEventEngine) {
  const auto [seed, patterns] = GetParam();
  BitParFixture fx(seed + 500, patterns);
  Rng rng(seed + 60);

  // 100 machines of 2-3 faults at distinct gates (same contract as the
  // event engine's multi-fault tests), mixed polarities, plus a sprinkle
  // of empty machines, swept as one batch.
  std::vector<std::vector<InjectedFault>> machines;
  for (int m = 0; m < 100; ++m) {
    std::vector<InjectedFault> faults;
    if (m % 17 == 0) {
      machines.push_back(faults);  // Empty machine: must stay silent.
      continue;
    }
    const std::size_t k = 2 + m % 2;
    int guard = 0;
    while (faults.size() < k && guard++ < 300) {
      const auto site =
          static_cast<netlist::SiteId>(rng.next_below(fx.sites.size()));
      const GateId gate = fx.sites.site(site).gate;
      const bool dup = std::any_of(
          faults.begin(), faults.end(), [&](const InjectedFault& f) {
            return fx.sites.site(f.site).gate == gate;
          });
      if (dup) continue;
      faults.push_back({site, kPolarityCycle[rng.next_below(5)]});
    }
    ASSERT_EQ(faults.size(), k);
    machines.push_back(std::move(faults));
  }
  std::vector<std::span<const InjectedFault>> spans;
  for (const auto& m : machines) spans.push_back({m.data(), m.size()});

  BitParallelSimulator::Workspace ws;
  BitParallelSimulator::BatchResult res;
  fx.bp.run_machines(spans, ws, res);
  expect_lanes_match_event(fx, machines, res, "multi-fault");
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTails, BitParGolden,
    ::testing::Combine(
        ::testing::Values<std::uint64_t>(41, 42),
        ::testing::Values<std::size_t>(1, 63, 65, 70, 96, 127, 128)));

TEST(BitParallelSimulator, LaneResultsAreIndependentOfBatchSize) {
  BitParFixture fx(47, 96);
  // The same fault must produce identical results whether it rides in a
  // batch of 1, shares a partial tail word (63/65), or fills the machine
  // (512 lanes, cycling the site list).
  BitParallelSimulator::Workspace ws;
  BitParallelSimulator::BatchResult res;
  std::vector<Word> solo_diff, batched_diff;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{512}}) {
    std::vector<InjectedFault> jobs;
    for (std::size_t j = 0; j < batch; ++j) {
      const auto site = static_cast<netlist::SiteId>(
          (j * 7) % fx.sites.size());
      jobs.push_back({site, kPolarityCycle[j % 5]});
    }
    fx.bp.run(jobs, ws, res);
    ASSERT_EQ(res.num_machines, batch);
    for (std::size_t j = 0; j < batch; ++j) {
      BitParallelSimulator::BatchResult solo;
      fx.bp.run(std::span<const InjectedFault>(&jobs[j], 1), ws, solo);
      ASSERT_EQ(solo.detected_lane(0), res.detected_lane(j))
          << "batch " << batch << " lane " << j;
      solo.diff_of(0, solo_diff);
      res.diff_of(j, batched_diff);
      ASSERT_EQ(batched_diff, solo_diff)
          << "batch " << batch << " lane " << j;
    }
  }
}

/// Forced-tier equivalence: each compiled-in SIMD tier must reproduce the
/// event engine bit-for-bit. Skips (with a notice) tiers the host cannot
/// run — the CI dispatch matrix forces each tier on capable runners.
class BitParTier : public ::testing::TestWithParam<SimdTier> {};

TEST_P(BitParTier, MatchesEventEngineOnPartialTailWords) {
  const SimdTier tier = GetParam();
  if (!bitpar::tier_available(tier)) {
    GTEST_SKIP() << "SIMD tier " << bitpar::tier_name(tier)
                 << " not available on this host";
  }
  for (const std::size_t patterns : {std::size_t{70}, std::size_t{128}}) {
    BitParFixture fx(53, patterns, tier);
    ASSERT_EQ(fx.bp.tier(), tier);
    std::vector<InjectedFault> jobs;
    for (netlist::SiteId s = 0; s < fx.sites.size(); ++s) {
      jobs.push_back({s, kPolarityCycle[s % 5]});
    }
    BitParallelSimulator::Workspace ws;
    BitParallelSimulator::BatchResult res;
    std::vector<std::vector<InjectedFault>> machines;
    for (std::size_t base = 0; base < jobs.size();
         base += bitpar::kMaxLanes) {
      const std::size_t count =
          std::min(bitpar::kMaxLanes, jobs.size() - base);
      fx.bp.run(std::span<const InjectedFault>(jobs).subspan(base, count),
                ws, res);
      machines.clear();
      for (std::size_t j = 0; j < count; ++j) {
        machines.push_back({jobs[base + j]});
      }
      expect_lanes_match_event(fx, machines, res,
                               bitpar::tier_name(tier));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, BitParTier,
                         ::testing::Values(SimdTier::kScalar,
                                           SimdTier::kSse2,
                                           SimdTier::kAvx2),
                         [](const auto& info) {
                           return bitpar::tier_name(info.param);
                         });

// --- Campaign parity ---------------------------------------------------------

TEST(DictionaryBackend, FingerprintMatchesEventAtEveryThreadCount) {
  const Netlist nl = BitParFixture::make(61);
  const SiteTable sites(nl);
  FaultSimulator fsim(nl, sites);
  Rng rng(161);
  const PatternSet v1 = PatternSet::random(nl.num_inputs(), 96, rng);
  const PatternSet v2 = PatternSet::random(nl.num_inputs(), 96, rng);
  fsim.bind(v1, v2);

  diag::FaultDictionaryOptions ev_opts;
  ev_opts.num_threads = 1;
  const diag::FaultDictionary event_dict(nl, sites, fsim, ev_opts);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    diag::FaultDictionaryOptions bp_opts;
    bp_opts.backend = SimBackend::kBitParallel;
    bp_opts.num_threads = threads;
    const diag::FaultDictionary bp_dict(nl, sites, fsim, bp_opts);
    EXPECT_EQ(bp_dict.num_entries(), event_dict.num_entries())
        << "threads " << threads;
    EXPECT_EQ(bp_dict.fingerprint(), event_dict.fingerprint())
        << "threads " << threads;
    EXPECT_EQ(bp_dict.signature_bytes(), event_dict.signature_bytes());
  }
}

void expect_datasets_equal(const eval::Dataset& a, const eval::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const eval::Sample& x = a.samples[i];
    const eval::Sample& y = b.samples[i];
    ASSERT_EQ(x.faults, y.faults) << "sample " << i;
    ASSERT_EQ(x.truth_sites, y.truth_sites) << "sample " << i;
    ASSERT_EQ(x.fault_tier, y.fault_tier) << "sample " << i;
    ASSERT_EQ(x.truth_is_miv, y.truth_is_miv) << "sample " << i;
    ASSERT_EQ(x.log.compacted, y.log.compacted) << "sample " << i;
    ASSERT_EQ(x.log.fails, y.log.fails) << "sample " << i;
    ASSERT_EQ(x.log.cfails, y.log.cfails) << "sample " << i;
    ASSERT_EQ(x.sub.nodes, y.sub.nodes) << "sample " << i;
  }
}

TEST(DatagenBackend, BitParDatasetIsBitIdenticalToEvent) {
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  for (const bool compacted : {false, true}) {
    eval::DatagenOptions o;
    o.num_samples = 40;
    o.seed = 9;
    o.compacted = compacted;
    o.num_threads = 1;
    const eval::Dataset event_ds = eval::generate_dataset(d, o);
    ASSERT_GT(event_ds.size(), 0u);

    o.backend = SimBackend::kBitParallel;
    const eval::Dataset bp_ds = eval::generate_dataset(d, o);
    expect_datasets_equal(event_ds, bp_ds);

    // Thread count is a pure speed knob for the bitpar path too.
    o.num_threads = 3;
    const eval::Dataset bp_mt = eval::generate_dataset(d, o);
    expect_datasets_equal(event_ds, bp_mt);
  }
}

TEST(DatagenBackend, MultiFaultModeMatchesEvent) {
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  eval::DatagenOptions o;
  o.num_samples = 25;
  o.seed = 17;
  o.mode = eval::FaultMode::kMultiSameTier;
  o.num_threads = 1;
  const eval::Dataset event_ds = eval::generate_dataset(d, o);
  ASSERT_GT(event_ds.size(), 0u);
  o.backend = SimBackend::kBitParallel;
  const eval::Dataset bp_ds = eval::generate_dataset(d, o);
  expect_datasets_equal(event_ds, bp_ds);
}

}  // namespace
}  // namespace m3dfl::sim
