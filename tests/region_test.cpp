// Tests of the K-region generalization (the paper's >2-tier extension).

#include <gtest/gtest.h>

#include <set>

#include "core/region_predictor.h"
#include "eval/experiments.h"

namespace m3dfl::core {
namespace {

TEST(AssignRegions, PartitionsPlacementIntoContiguousStripes) {
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  const std::vector<int> region = assign_regions(d.nl, 4);
  std::set<int> seen(region.begin(), region.end());
  EXPECT_EQ(seen.size(), 4u);
  for (netlist::GateId g = 0; g < d.nl.num_gates(); ++g) {
    EXPECT_GE(region[g], 0);
    EXPECT_LT(region[g], 4);
    // Stripe membership follows placement.
    EXPECT_EQ(region[g],
              static_cast<int>(std::min(0.9999f, d.nl.gate(g).pos) * 4));
  }
}

class RegionK : public ::testing::TestWithParam<int> {};

TEST_P(RegionK, RelabelRewritesFeatureAndLabel) {
  const int k = GetParam();
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  const std::vector<int> region = assign_regions(d.nl, k);
  eval::DatagenOptions o;
  o.num_samples = 5;
  o.seed = 77;
  const eval::Dataset ds = eval::generate_dataset(d, o);
  RegionPredictor predictor(k, 11);
  for (const eval::Sample& s : ds.samples) {
    const graphx::SubGraph g = predictor.relabel(
        s.sub, region, d.sites, s.truth_sites.front());
    ASSERT_EQ(g.num_nodes(), s.sub.num_nodes());
    EXPECT_EQ(g.label_tier,
              region[d.sites.site(s.truth_sites.front()).gate]);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
      const float f = g.feature(i, 3);
      EXPECT_GE(f, 0.0f);
      EXPECT_LE(f, 1.0f);
      // Feature is the normalized region index of the node's gate.
      const int r = region[d.sites.site(g.nodes[i]).gate];
      EXPECT_FLOAT_EQ(f, static_cast<float>(r) / (k - 1));
    }
  }
}

TEST_P(RegionK, LearnsRegionLocalizationAboveChance) {
  const int k = GetParam();
  const eval::Design& d =
      eval::cached_design(eval::tiny_spec(), eval::Config::kSyn1);
  const std::vector<int> region = assign_regions(d.nl, k);

  eval::DatagenOptions o;
  o.num_samples = 120;
  o.seed = 78;
  const eval::Dataset train = eval::generate_dataset(d, o);
  o.num_samples = 40;
  o.seed = 79;
  const eval::Dataset test = eval::generate_dataset(d, o);

  RegionPredictor predictor(k, 505 + k);
  std::vector<graphx::SubGraph> train_graphs, test_graphs;
  std::vector<gnn::LabeledGraph> train_data, test_data;
  for (const eval::Sample& s : train.samples) {
    if (s.sub.num_nodes() == 0) continue;
    train_graphs.push_back(
        predictor.relabel(s.sub, region, d.sites, s.truth_sites.front()));
  }
  for (const eval::Sample& s : test.samples) {
    if (s.sub.num_nodes() == 0) continue;
    test_graphs.push_back(
        predictor.relabel(s.sub, region, d.sites, s.truth_sites.front()));
  }
  for (const auto& g : train_graphs) train_data.push_back({&g, g.label_tier});
  for (const auto& g : test_graphs) test_data.push_back({&g, g.label_tier});

  gnn::TrainOptions opts;
  opts.epochs = 25;
  opts.lr = 8e-3;
  predictor.train(train_data, opts);
  const double acc = predictor.accuracy(test_data);
  EXPECT_GT(acc, 1.5 / k) << "k=" << k << " accuracy " << acc;
  // Prediction API returns a coherent argmax.
  const auto pred = predictor.predict_region(test_graphs.front());
  EXPECT_GE(pred.region, 0);
  EXPECT_LT(pred.region, k);
  EXPECT_GT(pred.probability, 1.0 / k - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(K, RegionK, ::testing::Values(3, 4));

}  // namespace
}  // namespace m3dfl::core
